#!/usr/bin/env python
"""Assemble benchmarks/results/ into one markdown results document.

Run after ``pytest benchmarks/ --benchmark-only`` to get a single file
with every regenerated table and figure, ordered by experiment id —
useful for diffing two checkouts' results or attaching to a report.

Usage:  python tools/collect_results.py [-o RESULTS.md]
"""

from __future__ import annotations

import argparse
import os
import re
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                           "benchmarks", "results")

#: Experiment ordering: t1..t4, f1..f11, a1..a3 (then anything else).
def _sort_key(filename: str):
    match = re.match(r"([a-z])(\d+)_", filename)
    if not match:
        return (9, 99, filename)
    family = {"t": 0, "f": 1, "a": 2}.get(match.group(1), 8)
    return (family, int(match.group(2)), filename)


def collect(results_dir: str = RESULTS_DIR) -> str:
    if not os.path.isdir(results_dir):
        raise SystemExit(
            f"{results_dir} not found — run "
            "'pytest benchmarks/ --benchmark-only' first"
        )
    names = sorted(
        (n for n in os.listdir(results_dir) if n.endswith(".txt")),
        key=_sort_key,
    )
    if not names:
        raise SystemExit(f"no .txt results in {results_dir}")
    parts = ["# Regenerated experiment results", ""]
    for name in names:
        experiment = name.rsplit(".", 1)[0]
        with open(os.path.join(results_dir, name)) as handle:
            body = handle.read().rstrip()
        parts.append(f"## {experiment}")
        parts.append("")
        parts.append("```")
        parts.append(body)
        parts.append("```")
        parts.append("")
    return "\n".join(parts) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="RESULTS.md")
    args = parser.parse_args(argv)
    document = collect()
    with open(args.output, "w") as handle:
        handle.write(document)
    print(f"wrote {args.output} ({document.count(chr(10))} lines, "
          f"{len(document.split('## ')) - 1} experiments)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
