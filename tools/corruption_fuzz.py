#!/usr/bin/env python
"""Corruption-fuzz harness for the trace-file integrity layer.

Generates real traces from (scaled-down) t3 trace-volume workloads,
then applies seeded random damage — truncations at arbitrary offsets,
single- and multi-bit flips — and checks the two invariants the format
promises:

* **Strict reads never silently accept damage.**  Version-3 through
  -6 files (every byte CRC-covered — for v5/v6 the CRC spans the
  *stored* compressed payload bytes, so damage surfaces before any
  decompression) must raise :class:`TraceFormatError` for *any* byte
  change; version-2 files (no CRCs) must at least detect every
  truncation.  For v6 a targeted mode flips bits only inside a
  chunk's payload header and per-section table (codec ids, reserved
  bits, stored/decoded lengths) — the metadata projection pushdown
  trusts to skip sections.
* **Salvage reads never crash.**  ``strict=False`` must survive every
  damaged input with a parseable header, return a consistent
  :class:`SalvageReport`, and agree between the materializing and
  streaming readers.
* **A corrupted index trailer degrades, never lies.**  Damage confined
  to a v4 file's zone-map trailer loses the index only: the salvage
  read recovers every record, exposes no zone maps, and answers
  queries byte-identically to the pristine file (full scan) — and the
  strict read refuses the file outright.

Exit status 0 when every iteration holds, 1 with a failure listing
otherwise.  Deterministic for a given ``--seed``.

Usage::

    PYTHONPATH=src python tools/corruption_fuzz.py --iterations 200

``--live`` fuzzes the *tail* path instead: live-form traces (sentinel
header, sealed frames, no trailer) cut at arbitrary byte offsets with
optional bit flips in the sealed prefix or the torn tail.  The tailer
must wait or raise cleanly — never crash, never surface a chunk
containing damaged bytes, never double-count across polls — and a
clean cut must deliver exactly the fully sealed frames.

``--export-corpus DIR`` instead writes a seeded regression corpus —
every pristine trace plus a deterministic set of damaged variants and
a ``manifest.json`` describing each case — for checking into the test
tree and replaying on every CI run (``tests/pdt/test_corpus_replay``).
"""

import argparse
import json
import os
import random
import sys
import tempfile
import typing

from repro.pdt import TraceConfig, open_trace, read_trace
from repro.pdt.format import (
    _CHUNK_CRC,
    _HEADER,
    _V5_PAYLOAD,
    _V6_SECTION,
    V6_SECTION_COUNT,
    VERSION_CHUNKED,
    VERSION_COMPRESSED,
    VERSION_CRC,
    VERSION_INDEXED,
    VERSION_SECTIONED,
    TraceFormatError,
    chunk_frame_struct,
    data_offset,
)
from repro.pdt.index import index_size
from repro.pdt.writer import trace_to_bytes
from repro.tq import Query
from repro.workloads import (
    MatmulWorkload,
    MonteCarloWorkload,
    StreamingPipelineWorkload,
    run_workload,
)

#: Scaled-down versions of the t3 trace-volume workloads: same record
#: mix (DMA loops, mailboxes, pipeline handoffs), fuzz-friendly runtime.
WORKLOADS = (
    ("matmul", lambda: MatmulWorkload(n=128, tile=32, n_spes=2)),
    ("streaming", lambda: StreamingPipelineWorkload(stages=2, blocks=8)),
    ("montecarlo", lambda: MonteCarloWorkload(samples_per_spe=2_000, n_spes=2)),
)


def build_corpus() -> typing.List[typing.Tuple[str, int, bytes]]:
    """(name, version, blob) for each workload in each chunked layout."""
    corpus = []
    for name, factory in WORKLOADS:
        result = run_workload(factory(), TraceConfig(buffer_bytes=4096))
        source = result.trace_source()
        for version in (
            VERSION_SECTIONED,
            VERSION_COMPRESSED,
            VERSION_INDEXED,
            VERSION_CRC,
            VERSION_CHUNKED,
        ):
            source.header.version = version
            corpus.append((name, version, trace_to_bytes(source)))
    return corpus


def mutate(
    rng: random.Random, blob: bytes
) -> typing.Tuple[bytes, str, bool]:
    """One random damage case: (mutated, description, truncated)."""
    kind = rng.choice(("truncate", "flip", "multiflip", "truncate+flip"))
    data = bytearray(blob)
    truncated = False
    notes = []
    if kind.startswith("truncate"):
        cut = rng.randrange(0, len(data))
        data = data[:cut]
        truncated = True
        notes.append(f"truncate@{cut}")
    if kind.endswith("flip") and len(data) > 0:
        n_flips = 1 if kind != "multiflip" else rng.randrange(2, 9)
        for __ in range(n_flips):
            pos = rng.randrange(len(data))
            bit = 1 << rng.randrange(8)
            data[pos] ^= bit
            notes.append(f"flip@{pos}:0x{bit:02x}")
    return bytes(data), " ".join(notes) or kind, truncated


def mutate_trailer(rng: random.Random, blob: bytes) -> typing.Tuple[bytes, str]:
    """Damage confined to a v4 file's index trailer (the last
    ``index_size(n_chunks)`` bytes): flips inside it, or a cut at or
    after its first byte — so every record payload survives intact."""
    trailer_off = len(blob) - index_size(open_trace(blob).n_chunks)
    kind = rng.choice(("flip", "multiflip", "truncate"))
    if kind == "truncate":
        cut = rng.randrange(trailer_off, len(blob))
        return blob[:cut], f"trailer-truncate@{cut}"
    data = bytearray(blob)
    notes = []
    for __ in range(1 if kind == "flip" else rng.randrange(2, 9)):
        pos = rng.randrange(trailer_off, len(data))
        bit = 1 << rng.randrange(8)
        data[pos] ^= bit
        notes.append(f"trailer-flip@{pos}:0x{bit:02x}")
    return bytes(data), " ".join(notes)


def _chunk_payload_spans(
    blob: bytes, version: int, n_chunks: int
) -> typing.List[typing.Tuple[int, int]]:
    """(payload_offset, payload_bytes) per chunk of a closed file."""
    frame = chunk_frame_struct(version)
    offset = data_offset(version)
    spans = []
    for __ in range(n_chunks):
        n_records, payload_bytes = frame.unpack_from(blob, offset)[:2]
        offset += frame.size
        spans.append((offset, payload_bytes))
        offset += payload_bytes
    return spans


def mutate_v6_sections(rng: random.Random, blob: bytes) -> typing.Tuple[bytes, str]:
    """Damage confined to one v6 chunk's payload header or per-section
    table — the codec ids, reserved bits and stored/decoded lengths
    that a masked decode trusts to *skip* sections.  The frame CRC
    covers these bytes, so a strict read must refuse the file before
    any section is ever decompressed, whatever the column mask."""
    spans = _chunk_payload_spans(
        blob, VERSION_SECTIONED, open_trace(blob).n_chunks
    )
    start, payload_bytes = spans[rng.randrange(len(spans))]
    table_len = min(
        _V5_PAYLOAD.size + V6_SECTION_COUNT * _V6_SECTION.size, payload_bytes
    )
    data = bytearray(blob)
    pos = start + rng.randrange(table_len)
    bit = 1 << rng.randrange(8)
    data[pos] ^= bit
    return bytes(data), f"v6-section-flip@{pos}:0x{bit:02x}"


def _query_fingerprint(source) -> typing.Tuple:
    """Deterministic query answers, for pristine-vs-salvaged equality."""
    records = Query(source).where(spe=1).project(
        "time", "side", "core", "code", "seq"
    )
    profile = Query(source).groupby("side", "kind").agg(
        n="count", t_min=("min", "time"), t_max=("max", "time")
    )
    return (
        tuple(records.records()),
        tuple(tuple(sorted(row.items())) for row in profile.run()),
    )


def check_trailer_case(
    name: str, blob: bytes, mutated: bytes
) -> typing.List[str]:
    """Index-only damage: strict refuses, salvage answers unchanged."""
    failures = []
    if mutated == blob:
        return failures
    try:
        open_trace(mutated)
        failures.append("strict open_trace accepted index-trailer damage")
    except TraceFormatError:
        pass
    except Exception as exc:  # pragma: no cover - the bug being hunted
        failures.append(
            f"strict open_trace raised {type(exc).__name__} "
            f"(not TraceFormatError): {exc}"
        )
    try:
        salvaged = open_trace(mutated, strict=False)
    except Exception as exc:  # pragma: no cover
        failures.append(
            f"salvage open_trace crashed on trailer damage: "
            f"{type(exc).__name__}: {exc}"
        )
        return failures
    if salvaged.salvage is None or not salvaged.salvage.damaged:
        failures.append("trailer damage salvaged without being reported")
    if salvaged.zone_maps() is not None:
        failures.append("salvaged read still exposes zone maps")
    pristine = open_trace(blob)
    if salvaged.n_records != pristine.n_records:
        failures.append(
            f"trailer-only damage lost records: {salvaged.n_records} "
            f"of {pristine.n_records}"
        )
    if _query_fingerprint(salvaged) != _query_fingerprint(pristine):
        failures.append(
            "query over the salvaged file diverged from the pristine file"
        )
    return failures


def check_one(
    name: str, version: int, blob: bytes, mutated: bytes, truncated: bool
) -> typing.List[str]:
    """Run both readers over one damaged input; returns failures."""
    failures = []
    if mutated == blob:
        return failures  # the damage was a no-op (e.g. truncate at EOF)

    # --- strict: must detect (v3 always; v2 at least truncations) ---
    must_detect = version >= VERSION_CRC or truncated
    try:
        read_trace(mutated)
        strict_raised = False
    except TraceFormatError:
        strict_raised = True
    except Exception as exc:  # pragma: no cover - the bug being hunted
        failures.append(
            f"strict read_trace raised {type(exc).__name__} "
            f"(not TraceFormatError): {exc}"
        )
        strict_raised = True
    if must_detect and not strict_raised:
        failures.append(
            f"strict read_trace silently accepted damage (v{version})"
        )
    try:
        source = open_trace(mutated)
        list(source.iter_chunks())
        source.scan_sync()
        stream_raised = False
    except TraceFormatError:
        stream_raised = True
    except Exception as exc:  # pragma: no cover
        failures.append(
            f"strict open_trace raised {type(exc).__name__} "
            f"(not TraceFormatError): {exc}"
        )
        stream_raised = True
    if must_detect and not stream_raised:
        failures.append(
            f"strict open_trace silently accepted damage (v{version})"
        )

    # --- salvage: must survive and account consistently ---
    try:
        trace = read_trace(mutated, strict=False)
    except TraceFormatError:
        # Only excusable when the header itself is unusable: too short,
        # or the damage hit the magic/version bytes.
        if len(mutated) >= _HEADER.size and mutated[:6] == blob[:6]:
            failures.append("salvage raised with a parseable header")
        return failures
    except Exception as exc:  # pragma: no cover
        failures.append(
            f"salvage read_trace crashed: {type(exc).__name__}: {exc}"
        )
        return failures
    report = trace.salvage
    if report is None:
        failures.append("salvage read returned no SalvageReport")
        return failures
    if report.records_recovered != trace.n_records:
        failures.append(
            f"report says {report.records_recovered} recovered, trace "
            f"holds {trace.n_records}"
        )
    if version >= VERSION_CRC and not report.damaged:
        # Every byte of a v3/v4/v5 file is covered by a CRC (and an
        # indexed file must end in its trailer), so any change must
        # surface — for v5 the CRC spans the stored compressed bytes,
        # so this holds without decompressing anything.
        failures.append(f"v{version} salvage reported clean on damaged bytes")
    try:
        streamed = open_trace(mutated, strict=False)
        if streamed.n_records != trace.n_records:
            failures.append(
                f"salvage disagreement: open_trace {streamed.n_records} "
                f"records vs read_trace {trace.n_records}"
            )
    except Exception as exc:  # pragma: no cover
        failures.append(
            f"salvage open_trace crashed: {type(exc).__name__}: {exc}"
        )
    return failures


# ----------------------------------------------------------------------
# live mode: damage at the growing tail of an unclosed file
# ----------------------------------------------------------------------

def build_live_corpus() -> typing.List[typing.Tuple[str, int, bytes]]:
    """(name, version, blob) in *live* form: sentinel header plus every
    sealed frame, no index trailer — a writer that never closed."""
    from repro.live import StepWriter

    corpus = []
    for name, factory in WORKLOADS:
        result = run_workload(factory(), TraceConfig(buffer_bytes=4096))
        source = result.trace_source()
        for version in (VERSION_SECTIONED, VERSION_COMPRESSED, VERSION_INDEXED):
            source.header.version = version
            with tempfile.TemporaryDirectory() as tmp:
                writer = StepWriter(
                    source, os.path.join(tmp, "live.pdt"), chunk_records=64
                )
                writer.write_chunks(writer.n_chunks_total)
                with open(writer.path, "rb") as handle:
                    corpus.append((name, version, handle.read()))
    return corpus


def live_layout(
    blob: bytes, version: int
) -> typing.Tuple[typing.List[int], typing.List[int]]:
    """Frame end offsets and cumulative record counts of a live blob,
    parsed directly from the framing (independent of the tail reader
    under test)."""
    offset = data_offset(version)
    ends: typing.List[int] = []
    cum: typing.List[int] = []
    total = 0
    while offset + _CHUNK_CRC.size <= len(blob):
        n_records, payload_bytes, __ = _CHUNK_CRC.unpack_from(blob, offset)
        offset += _CHUNK_CRC.size + payload_bytes
        if offset > len(blob):
            break
        total += n_records
        ends.append(offset)
        cum.append(total)
    return ends, cum


def mutate_live(
    rng: random.Random, blob: bytes, version: int
) -> typing.Tuple[bytes, str, typing.Dict[str, typing.Any]]:
    """One live damage case: a tail cut, optionally plus a bit flip in
    the sealed prefix or in the pending (torn) region."""
    ends, __ = live_layout(blob, version)
    kind = rng.choice(("cut", "cut+flip-sealed", "cut+flip-pending"))
    cut = rng.randrange(0, len(blob) + 1)
    data = bytearray(blob[:cut])
    flips: typing.List[int] = []
    notes = [f"cut@{cut}"]
    sealed_end = max(
        [end for end in ends if end <= cut], default=data_offset(version)
    )
    if kind == "cut+flip-sealed" and sealed_end > 0:
        pos = rng.randrange(min(sealed_end, len(data))) if data else None
        if pos is not None:
            data[pos] ^= 1 << rng.randrange(8)
            flips.append(pos)
            notes.append(f"flip@{pos}")
    elif kind == "cut+flip-pending" and cut > sealed_end:
        pos = rng.randrange(sealed_end, cut)
        data[pos] ^= 1 << rng.randrange(8)
        flips.append(pos)
        notes.append(f"pending-flip@{pos}")
    return bytes(data), " ".join(notes), {"cut": cut, "flips": flips}


def check_live_case(
    name: str,
    version: int,
    blob: bytes,
    mutated: bytes,
    info: typing.Mapping[str, typing.Any],
) -> typing.List[str]:
    """The live-tail contract over one damaged prefix.

    A tailer polling the damaged file must wait or raise cleanly —
    never crash, never deliver bytes containing the damage, never
    deliver more than the pristine prefix holds, and never count a
    record twice across polls.  A *clean* cut (no flips) must deliver
    exactly the fully sealed frames.
    """
    from repro.live import FollowQuery, TailSource, WAITING

    failures: typing.List[str] = []
    ends, cum = live_layout(blob, version)
    head = data_offset(version)
    cut, flips = info["cut"], list(info["flips"])
    k_expected = sum(1 for end in ends if end <= cut)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "live.pdt")
        with open(path, "wb") as handle:
            handle.write(mutated)
        tail = TailSource(path)
        try:
            tick = tail.poll()
        except TraceFormatError:
            if not flips:
                failures.append("clean tail cut raised TraceFormatError")
            return failures
        except Exception as exc:  # pragma: no cover - the bug being hunted
            failures.append(
                f"tail poll crashed: {type(exc).__name__}: {exc}"
            )
            return failures

        delivered = tick.n_chunks
        if any(pos < head for pos in flips):
            # Damaged header: nothing may be delivered (waiting), and a
            # magic/version hit would have raised above.
            if tick.status != WAITING or delivered != 0:
                failures.append(
                    f"delivered {delivered} chunks under a damaged header "
                    f"(status={tick.status})"
                )
            return failures
        delivered_end = ends[delivered - 1] if delivered else head
        if any(head <= pos < delivered_end for pos in flips):
            failures.append("delivered a chunk containing flipped bytes")
        if delivered > k_expected:
            failures.append(
                f"delivered {delivered} chunks, prefix holds {k_expected}"
            )
        sealed_end = ends[k_expected - 1] if k_expected else head
        if all(pos >= sealed_end for pos in flips) and delivered != k_expected:
            # No damage touched a sealed frame (flips, if any, are in
            # the pending tail) — every sealed frame must surface.
            failures.append(
                f"undamaged sealed prefix withheld: {delivered} of "
                f"{k_expected} chunks"
            )
        want_records = cum[delivered - 1] if delivered else 0
        if tick.n_records != want_records:
            failures.append(
                f"{tick.n_records} records for {delivered} chunks, "
                f"framing says {want_records}"
            )
        again = tail.poll()
        if again.new_chunks or again.n_chunks != delivered:
            failures.append("re-poll of an unchanged file re-delivered "
                            "chunks (double count)")
        if not flips and delivered:
            from repro.tq import Query

            follow = FollowQuery(
                Query(None)
                .groupby("bucket", time_bucket=50_000)
                .agg(n="count"),
                path,
            )
            snapshot = follow.poll()
            total = sum(row["n"] for row in snapshot.rows)
            if total != want_records:
                failures.append(
                    f"follow query counted {total} records, framing says "
                    f"{want_records}"
                )
    return failures


def fuzz_live(iterations: int, seed: int, verbose: bool = False) -> int:
    corpus = build_live_corpus()
    print(
        f"live corpus: {len(corpus)} traces "
        f"({', '.join(f'{n} v{v} {len(b)}B' for n, v, b in corpus)})"
    )
    rng = random.Random(seed)
    all_failures = []
    for i in range(iterations):
        name, version, blob = corpus[rng.randrange(len(corpus))]
        mutated, description, info = mutate_live(rng, blob, version)
        failures = check_live_case(name, version, blob, mutated, info)
        if failures:
            all_failures.append((i, name, version, description, failures))
            for failure in failures:
                print(
                    f"FAIL [{i}] {name} v{version} live ({description}): "
                    f"{failure}",
                    file=sys.stderr,
                )
        elif verbose:
            print(f"ok   [{i}] {name} v{version} live ({description})")
    print(
        f"{iterations} live iterations, seed {seed}: "
        f"{len(all_failures)} failing cases"
    )
    return 1 if all_failures else 0


def fuzz(iterations: int, seed: int, verbose: bool = False) -> int:
    corpus = build_corpus()
    print(
        f"corpus: {len(corpus)} traces "
        f"({', '.join(f'{n} v{v} {len(b)}B' for n, v, b in corpus)})"
    )
    rng = random.Random(seed)
    all_failures = []
    for i in range(iterations):
        name, version, blob = corpus[rng.randrange(len(corpus))]
        if version >= VERSION_SECTIONED and rng.random() < 0.25:
            # Targeted mode: flip bits only in the v6 section metadata
            # a masked decode relies on without inflating anything.
            mutated, description = mutate_v6_sections(rng, blob)
            failures = check_one(name, version, blob, mutated, False)
        elif version >= VERSION_INDEXED and rng.random() < 0.34:
            # Targeted mode: damage only the index trailer, where the
            # contract is sharper — nothing but pruning may be lost.
            mutated, description = mutate_trailer(rng, blob)
            failures = check_trailer_case(name, blob, mutated)
        else:
            mutated, description, truncated = mutate(rng, blob)
            failures = check_one(name, version, blob, mutated, truncated)
        if failures:
            all_failures.append((i, name, version, description, failures))
            for failure in failures:
                print(
                    f"FAIL [{i}] {name} v{version} ({description}): "
                    f"{failure}",
                    file=sys.stderr,
                )
        elif verbose:
            print(f"ok   [{i}] {name} v{version} ({description})")
    print(
        f"{iterations} iterations, seed {seed}: "
        f"{len(all_failures)} failing cases"
    )
    return 1 if all_failures else 0


def export_corpus(
    directory: str, seed: int, cases_per_trace: int = 2
) -> int:
    """Write a deterministic damage corpus under ``directory``.

    For every (workload, version) trace: the pristine blob, then
    ``cases_per_trace`` general damage cases, plus (v4 only) the same
    number of index-trailer-confined cases.  ``manifest.json`` records
    how each file was derived so a replay harness can re-run the exact
    invariant check the fuzzer would have.
    """
    os.makedirs(directory, exist_ok=True)
    rng = random.Random(seed)
    manifest: typing.List[typing.Dict[str, typing.Any]] = []
    for name, version, blob in build_corpus():
        pristine = f"{name}-v{version}.pdt"
        with open(os.path.join(directory, pristine), "wb") as handle:
            handle.write(blob)
        cases: typing.List[typing.Tuple[str, bytes, str, bool]] = []
        while len(cases) < cases_per_trace:
            mutated, description, truncated = mutate(rng, blob)
            if mutated != blob:
                cases.append(("general", mutated, description, truncated))
        if version >= VERSION_INDEXED:
            added = 0
            while added < cases_per_trace:
                mutated, description = mutate_trailer(rng, blob)
                if mutated != blob:
                    cases.append(("trailer", mutated, description, False))
                    added += 1
        if version >= VERSION_SECTIONED:
            added = 0
            while added < cases_per_trace:
                mutated, description = mutate_v6_sections(rng, blob)
                if mutated != blob:
                    cases.append(
                        ("v6-sections", mutated, description, False)
                    )
                    added += 1
        for i, (mode, mutated, description, truncated) in enumerate(cases):
            filename = f"{name}-v{version}-{mode}-{i}.pdt"
            with open(os.path.join(directory, filename), "wb") as handle:
                handle.write(mutated)
            manifest.append(
                {
                    "file": filename,
                    "pristine": pristine,
                    "workload": name,
                    "version": version,
                    "mode": mode,
                    "description": description,
                    "truncated": truncated,
                }
            )
    # Live-form traces (sentinel header, no trailer) with damage at the
    # growing tail; a separate stream keeps the cases above stable.
    live_rng = random.Random(seed + 1)
    for name, version, blob in build_live_corpus():
        pristine = f"{name}-v{version}-live.pdt"
        with open(os.path.join(directory, pristine), "wb") as handle:
            handle.write(blob)
        added = 0
        while added < cases_per_trace:
            mutated, description, info = mutate_live(live_rng, blob, version)
            if mutated == blob:
                continue
            filename = f"{name}-v{version}-live-{added}.pdt"
            with open(os.path.join(directory, filename), "wb") as handle:
                handle.write(mutated)
            manifest.append(
                {
                    "file": filename,
                    "pristine": pristine,
                    "workload": name,
                    "version": version,
                    "mode": "live",
                    "description": description,
                    "truncated": True,
                    "cut": info["cut"],
                    "flips": info["flips"],
                }
            )
            added += 1
    with open(os.path.join(directory, "manifest.json"), "w") as handle:
        json.dump({"seed": seed, "cases": manifest}, handle, indent=1)
        handle.write("\n")
    print(f"wrote {len(manifest)} damage cases to {directory}")
    return 0


def main(argv: typing.Optional[typing.List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fuzz the trace readers with random corruption."
    )
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument("--seed", type=int, default=20080427)
    parser.add_argument("-v", "--verbose", action="store_true")
    parser.add_argument(
        "--live", action="store_true",
        help="fuzz the live tail path instead: cuts and flips at the "
        "growing end of an unclosed trace — the tailer must wait or "
        "raise cleanly, never crash, never deliver damaged or "
        "double-counted chunks",
    )
    parser.add_argument(
        "--export-corpus", metavar="DIR",
        help="write a seeded regression corpus (pristine + damaged "
        "traces + manifest.json) instead of fuzzing",
    )
    args = parser.parse_args(argv)
    if args.export_corpus:
        return export_corpus(args.export_corpus, args.seed)
    if args.live:
        return fuzz_live(args.iterations, args.seed, verbose=args.verbose)
    return fuzz(args.iterations, args.seed, verbose=args.verbose)


if __name__ == "__main__":
    sys.exit(main())
