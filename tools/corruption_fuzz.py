#!/usr/bin/env python
"""Corruption-fuzz harness for the trace-file integrity layer.

Generates real traces from (scaled-down) t3 trace-volume workloads,
then applies seeded random damage — truncations at arbitrary offsets,
single- and multi-bit flips — and checks the two invariants the format
promises:

* **Strict reads never silently accept damage.**  Version-3 files must
  raise :class:`TraceFormatError` for *any* byte change; version-2
  files (no CRCs) must at least detect every truncation.
* **Salvage reads never crash.**  ``strict=False`` must survive every
  damaged input with a parseable header, return a consistent
  :class:`SalvageReport`, and agree between the materializing and
  streaming readers.

Exit status 0 when every iteration holds, 1 with a failure listing
otherwise.  Deterministic for a given ``--seed``.

Usage::

    PYTHONPATH=src python tools/corruption_fuzz.py --iterations 200
"""

import argparse
import random
import sys
import typing

from repro.pdt import TraceConfig, open_trace, read_trace
from repro.pdt.format import (
    _HEADER,
    VERSION_CHUNKED,
    VERSION_CRC,
    TraceFormatError,
)
from repro.pdt.writer import trace_to_bytes
from repro.workloads import (
    MatmulWorkload,
    MonteCarloWorkload,
    StreamingPipelineWorkload,
    run_workload,
)

#: Scaled-down versions of the t3 trace-volume workloads: same record
#: mix (DMA loops, mailboxes, pipeline handoffs), fuzz-friendly runtime.
WORKLOADS = (
    ("matmul", lambda: MatmulWorkload(n=128, tile=32, n_spes=2)),
    ("streaming", lambda: StreamingPipelineWorkload(stages=2, blocks=8)),
    ("montecarlo", lambda: MonteCarloWorkload(samples_per_spe=2_000, n_spes=2)),
)


def build_corpus() -> typing.List[typing.Tuple[str, int, bytes]]:
    """(name, version, blob) for each workload in each chunked layout."""
    corpus = []
    for name, factory in WORKLOADS:
        result = run_workload(factory(), TraceConfig(buffer_bytes=4096))
        source = result.trace_source()
        for version in (VERSION_CRC, VERSION_CHUNKED):
            source.header.version = version
            corpus.append((name, version, trace_to_bytes(source)))
    return corpus


def mutate(
    rng: random.Random, blob: bytes
) -> typing.Tuple[bytes, str, bool]:
    """One random damage case: (mutated, description, truncated)."""
    kind = rng.choice(("truncate", "flip", "multiflip", "truncate+flip"))
    data = bytearray(blob)
    truncated = False
    notes = []
    if kind.startswith("truncate"):
        cut = rng.randrange(0, len(data))
        data = data[:cut]
        truncated = True
        notes.append(f"truncate@{cut}")
    if kind.endswith("flip") and len(data) > 0:
        n_flips = 1 if kind != "multiflip" else rng.randrange(2, 9)
        for __ in range(n_flips):
            pos = rng.randrange(len(data))
            bit = 1 << rng.randrange(8)
            data[pos] ^= bit
            notes.append(f"flip@{pos}:0x{bit:02x}")
    return bytes(data), " ".join(notes) or kind, truncated


def check_one(
    name: str, version: int, blob: bytes, mutated: bytes, truncated: bool
) -> typing.List[str]:
    """Run both readers over one damaged input; returns failures."""
    failures = []
    if mutated == blob:
        return failures  # the damage was a no-op (e.g. truncate at EOF)

    # --- strict: must detect (v3 always; v2 at least truncations) ---
    must_detect = version >= VERSION_CRC or truncated
    try:
        read_trace(mutated)
        strict_raised = False
    except TraceFormatError:
        strict_raised = True
    except Exception as exc:  # pragma: no cover - the bug being hunted
        failures.append(
            f"strict read_trace raised {type(exc).__name__} "
            f"(not TraceFormatError): {exc}"
        )
        strict_raised = True
    if must_detect and not strict_raised:
        failures.append(
            f"strict read_trace silently accepted damage (v{version})"
        )
    try:
        source = open_trace(mutated)
        list(source.iter_chunks())
        source.scan_sync()
        stream_raised = False
    except TraceFormatError:
        stream_raised = True
    except Exception as exc:  # pragma: no cover
        failures.append(
            f"strict open_trace raised {type(exc).__name__} "
            f"(not TraceFormatError): {exc}"
        )
        stream_raised = True
    if must_detect and not stream_raised:
        failures.append(
            f"strict open_trace silently accepted damage (v{version})"
        )

    # --- salvage: must survive and account consistently ---
    try:
        trace = read_trace(mutated, strict=False)
    except TraceFormatError:
        # Only excusable when the header itself is unusable: too short,
        # or the damage hit the magic/version bytes.
        if len(mutated) >= _HEADER.size and mutated[:6] == blob[:6]:
            failures.append("salvage raised with a parseable header")
        return failures
    except Exception as exc:  # pragma: no cover
        failures.append(
            f"salvage read_trace crashed: {type(exc).__name__}: {exc}"
        )
        return failures
    report = trace.salvage
    if report is None:
        failures.append("salvage read returned no SalvageReport")
        return failures
    if report.records_recovered != trace.n_records:
        failures.append(
            f"report says {report.records_recovered} recovered, trace "
            f"holds {trace.n_records}"
        )
    if version >= VERSION_CRC and not report.damaged:
        # Every byte of a v3 file is covered by a CRC, so any change
        # must surface in the report.
        failures.append("v3 salvage reported clean on damaged bytes")
    try:
        streamed = open_trace(mutated, strict=False)
        if streamed.n_records != trace.n_records:
            failures.append(
                f"salvage disagreement: open_trace {streamed.n_records} "
                f"records vs read_trace {trace.n_records}"
            )
    except Exception as exc:  # pragma: no cover
        failures.append(
            f"salvage open_trace crashed: {type(exc).__name__}: {exc}"
        )
    return failures


def fuzz(iterations: int, seed: int, verbose: bool = False) -> int:
    corpus = build_corpus()
    print(
        f"corpus: {len(corpus)} traces "
        f"({', '.join(f'{n} v{v} {len(b)}B' for n, v, b in corpus)})"
    )
    rng = random.Random(seed)
    all_failures = []
    for i in range(iterations):
        name, version, blob = corpus[rng.randrange(len(corpus))]
        mutated, description, truncated = mutate(rng, blob)
        failures = check_one(name, version, blob, mutated, truncated)
        if failures:
            all_failures.append((i, name, version, description, failures))
            for failure in failures:
                print(
                    f"FAIL [{i}] {name} v{version} ({description}): "
                    f"{failure}",
                    file=sys.stderr,
                )
        elif verbose:
            print(f"ok   [{i}] {name} v{version} ({description})")
    print(
        f"{iterations} iterations, seed {seed}: "
        f"{len(all_failures)} failing cases"
    )
    return 1 if all_failures else 0


def main(argv: typing.Optional[typing.List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fuzz the trace readers with random corruption."
    )
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument("--seed", type=int, default=20080427)
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    return fuzz(args.iterations, args.seed, verbose=args.verbose)


if __name__ == "__main__":
    sys.exit(main())
