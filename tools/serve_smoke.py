#!/usr/bin/env python
"""Smoke the serving daemon end to end, the way an operator would.

Generates a real trace, launches ``pdt-serve`` **as a subprocess**
through its console entry point (so the CLI wiring — argument parsing,
startup registration, the bound-address banner — is on the hook, not
just the library), then drives the JSON-line protocol from several
concurrent client threads and checks the serving contract:

* every served response is byte-identical to the canonical encoding of
  the same query executed directly through a serial ``tq.Query``;
* a registered-at-startup trace and a registered-over-the-wire trace
  both answer;
* eviction takes a trace out of service with a clean client error;
* ``stats`` reports a catalog within its memory budget.

Exit status 0 on success, 1 with a failure listing otherwise.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile
import threading
import typing

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
sys.path.insert(0, REPO_SRC)

from repro.pdt import TraceConfig, open_trace  # noqa: E402
from repro.serve import ProtocolError, ServeClient, canonical_json  # noqa: E402
from repro.serve.protocol import build_query  # noqa: E402
from repro.workloads import (  # noqa: E402
    MatmulWorkload,
    StreamingPipelineWorkload,
    run_and_write_trace,
)

N_CLIENTS = 4

QUERY_SPECS = (
    {
        "mode": "run",
        "where": {"side": 1},
        "groupby": ["core", "kind"],
        "agg": {"n": "count", "bytes": ["sum", "size"]},
    },
    {"mode": "count"},
    {
        "mode": "records",
        "where": {"t0": 0, "spe": 0},
        "project": ["time", "kind", "seq"],
    },
)


def _direct(path: str, spec: dict) -> typing.Any:
    mode = spec.get("mode", "run")
    with open_trace(path) as source:
        query = build_query(source, spec)
        if mode == "run":
            return query.run()
        if mode == "records":
            return [list(row) for row in query.records()]
        return query.count()


def main(argv: typing.Optional[typing.List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget-mb", type=int, default=32)
    args = parser.parse_args(argv)

    failures: typing.List[str] = []
    check = lambda ok, what: None if ok else failures.append(what)  # noqa: E731

    with tempfile.TemporaryDirectory() as tmp:
        boot_path = os.path.join(tmp, "boot.pdt")
        wire_path = os.path.join(tmp, "wire.pdt")
        run_and_write_trace(
            StreamingPipelineWorkload(stages=3, blocks=256), boot_path,
            TraceConfig(buffer_bytes=4096),
        )
        run_and_write_trace(
            MatmulWorkload(n=64, tile=32, n_spes=2), wire_path,
            TraceConfig(buffer_bytes=1024),
        )

        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve.cli",
                "--port", "0",
                "--budget-mb", str(args.budget_mb),
                "--register", f"boot={boot_path}",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            # The daemon prints "serving on HOST:PORT" once bound.
            address = None
            for line in daemon.stdout:
                match = re.match(r"serving on (\S+):(\d+)", line)
                if match:
                    address = (match.group(1), int(match.group(2)))
                    break
            check(address is not None, "daemon never printed its address")
            if address is None:
                raise SystemExit(1)

            with ServeClient(address) as client:
                check(client.ping() == "pong", "ping failed")
                client.register("wire", wire_path)
                names = [row["name"] for row in client.list_traces()]
                check(names == ["boot", "wire"], f"list: {names}")

            expected = {
                name: [
                    canonical_json(_direct(path, spec))
                    for spec in QUERY_SPECS
                ]
                for name, path in (("boot", boot_path), ("wire", wire_path))
            }

            def hammer(__i):
                with ServeClient(address) as client:
                    for name, want in sorted(expected.items()):
                        for spec, want_line in zip(QUERY_SPECS, want):
                            got = canonical_json(client.query(name, **spec))
                            check(
                                got == want_line,
                                f"{name} {spec.get('mode')}: served bytes "
                                "diverged from direct execution",
                            )

            threads = [
                threading.Thread(target=hammer, args=(i,))
                for i in range(N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)

            with ServeClient(address) as client:
                client.evict("wire")
                try:
                    client.query("wire", mode="count")
                    check(False, "evicted trace still answered")
                except ProtocolError as exc:
                    check("no such trace" in str(exc), f"evict error: {exc}")
                stats = client.stats()
                budget = stats["catalog"]["memory_budget"]
                cached = stats["catalog"]["cached_bytes"]
                check(budget == args.budget_mb * 1024 * 1024,
                      f"budget: {budget}")
                check(cached <= budget, f"cache over budget: {cached}")
                check(stats["requests_served"] > 0, "no requests counted")
        finally:
            daemon.terminate()
            daemon.wait(timeout=10)

    if failures:
        print(f"FAIL: {len(failures)} check(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
