#!/usr/bin/env python
"""Smoke ``pdt-analyze --follow`` end to end, the way an operator would.

A **writer subprocess** replays a workload into a trace file a chunk at
a time; concurrently, ``pdt-analyze --follow`` runs as its own
subprocess (console-entry wiring on the hook, not just the library),
tailing the file with the live view plus ``--bucket`` streaming.  The
checks:

* the follower exits 0 only after the writer closes the file, and its
  last frame reports ``status=complete`` with the full record count;
* every ``sealed bucket`` line it printed matches the batch ``tq`` run
  over the finished file — the streamed counts are the final counts;
* by completion the sealed set covers every bucket the batch run has;
* against a file whose writer never closes, ``--max-polls`` stops the
  follower with exit status 3.

Exit status 0 on success, 1 with a failure listing otherwise.

Usage::

    PYTHONPATH=src python tools/follow_smoke.py
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile
import typing

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
sys.path.insert(0, REPO_SRC)

from repro.pdt import open_trace  # noqa: E402
from repro.tq import Query  # noqa: E402

BUCKET_WIDTH = 20_000
CHUNK_RECORDS = 8

#: The writer child: replay a workload through a StepWriter, a chunk
#: per tick, then close the file properly.
_WRITER_SCRIPT = """\
import sys, time
path, delay = sys.argv[1], float(sys.argv[2])
from repro.pdt import TraceConfig
from repro.pdt.format import VERSION_COMPRESSED
from repro.workloads import MatmulWorkload, run_workload
from repro.live import StepWriter
result = run_workload(
    MatmulWorkload(n=64, tile=32, n_spes=2), TraceConfig(buffer_bytes=1024)
)
source = result.trace_source()
source.header.version = VERSION_COMPRESSED
writer = StepWriter(source, path, chunk_records={chunk_records})
while not writer.exhausted:
    writer.write_chunks(1)
    time.sleep(delay)
writer.close()
"""

_SEALED_LINE = re.compile(r"sealed bucket (\d+): (\d+) records")


def _batch_buckets(path: str) -> typing.Dict[int, int]:
    with open_trace(path) as source:
        rows = (
            Query(source)
            .groupby("bucket", time_bucket=BUCKET_WIDTH)
            .agg(n="count")
            .run()
        )
    return {row["bucket"]: row["n"] for row in rows}


def main(argv: typing.Optional[typing.List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write-delay", type=float, default=0.05,
                        help="seconds between writer chunks")
    parser.add_argument("--refresh", type=float, default=0.02,
                        help="follower refresh interval")
    args = parser.parse_args(argv)

    failures: typing.List[str] = []
    check = lambda ok, what: None if ok else failures.append(what)  # noqa: E731

    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")

    with tempfile.TemporaryDirectory() as tmp:
        live_path = os.path.join(tmp, "live.pdt")
        writer = subprocess.Popen(
            [
                sys.executable, "-c",
                _WRITER_SCRIPT.format(chunk_records=CHUNK_RECORDS),
                live_path, str(args.write_delay),
            ],
            env=env,
        )
        follower = subprocess.run(
            [
                sys.executable, "-m", "repro.cli.analyze",
                live_path,
                "--follow",
                "--refresh", str(args.refresh),
                "--bucket", str(BUCKET_WIDTH),
                "--max-polls", "2000",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        check(writer.wait(timeout=60) == 0, "writer subprocess failed")
        check(
            follower.returncode == 0,
            f"follower exited {follower.returncode}: "
            f"{follower.stderr.strip()[:200]}",
        )
        frames = follower.stdout
        check("status=complete" in frames, "no complete frame rendered")
        check("status=growing" in frames,
              "follower never saw the file growing (writer too fast?)")
        check(re.search(r"^  spe1 ", frames, re.M) is not None,
              "per-core table missing spe1")

        want = _batch_buckets(live_path)
        with open_trace(live_path) as source:
            total = source.n_records
        check(
            re.search(rf"status=complete.*records={total}\b", frames)
            is not None,
            f"final frame does not report all {total} records",
        )
        sealed: typing.Dict[int, int] = {}
        for match in _SEALED_LINE.finditer(frames):
            bucket, n = int(match.group(1)), int(match.group(2))
            check(
                bucket not in sealed,
                f"bucket {bucket} sealed twice",
            )
            sealed[bucket] = n
        check(
            sealed == want,
            f"streamed buckets {sealed} != batch buckets {want}",
        )

        # A writer that never closes: --max-polls bails out with 3.
        stuck_path = os.path.join(tmp, "stuck.pdt")
        from repro.pdt import TraceConfig
        from repro.pdt.format import VERSION_COMPRESSED
        from repro.workloads import MatmulWorkload, run_workload
        from repro.live import StepWriter

        result = run_workload(
            MatmulWorkload(n=64, tile=32, n_spes=2),
            TraceConfig(buffer_bytes=1024),
        )
        source = result.trace_source()
        source.header.version = VERSION_COMPRESSED
        stuck = StepWriter(source, stuck_path, chunk_records=CHUNK_RECORDS)
        stuck.write_chunks(2)
        bailed = subprocess.run(
            [
                sys.executable, "-m", "repro.cli.analyze",
                stuck_path, "--follow", "--refresh", "0.01",
                "--max-polls", "3",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        check(
            bailed.returncode == 3,
            f"stuck follower exited {bailed.returncode}, want 3",
        )
        check("still growing" in bailed.stderr,
              "no still-growing diagnostic on stderr")

    if failures:
        print(f"FAIL: {len(failures)} check(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("follow smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
