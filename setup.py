"""Setup shim.

This environment is offline with setuptools 65 and no ``wheel``
package, so PEP 660 editable installs (which must build an editable
wheel) cannot work.  This shim lets ``pip install -e .`` fall back to
the legacy ``setup.py develop`` path.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
