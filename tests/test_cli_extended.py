"""CLI tests for the extended flags: --config, --wrap, --only-spes, --html."""

import os

from repro.cli.analyze import main as analyze_main
from repro.cli.trace import main as trace_main
from repro.pdt import TraceConfig, read_trace
from repro.pdt.configfile import save_config


def test_trace_with_xml_config(tmp_path, capsys):
    config_path = str(tmp_path / "pdt.xml")
    save_config(TraceConfig.dma_only(buffer_bytes=2048), config_path)
    trace_path = str(tmp_path / "c.pdt")
    assert trace_main(
        ["montecarlo", "-n", "2", "-o", trace_path, "--config", config_path]
    ) == 0
    trace = read_trace(trace_path)
    groups = {r.group for r in trace.all_records()}
    assert "mailbox" not in groups  # dma-only config applied


def test_trace_wrap_flag(tmp_path):
    trace_path = str(tmp_path / "w.pdt")
    assert trace_main(
        ["streaming", "-n", "2", "-o", trace_path, "--wrap", "--buffer", "1024"]
    ) == 0
    assert os.path.exists(trace_path)


def test_trace_only_spes_flag(tmp_path):
    trace_path = str(tmp_path / "f.pdt")
    assert trace_main(
        ["montecarlo", "-n", "2", "-o", trace_path, "--only-spes", "1"]
    ) == 0
    trace = read_trace(trace_path)
    assert trace.records_for_spe(1)
    assert not trace.records_for_spe(0)


def test_analyze_html_output(tmp_path, capsys):
    trace_path = str(tmp_path / "h.pdt")
    trace_main(["matmul", "-n", "2", "-o", trace_path])
    capsys.readouterr()
    html_path = str(tmp_path / "report.html")
    assert analyze_main([trace_path, "--html", html_path]) == 0
    content = open(html_path).read()
    assert content.startswith("<!DOCTYPE html>")
    assert "Per-SPE statistics" in content


def test_analyze_profile_and_comm_flags(tmp_path, capsys):
    trace_path = str(tmp_path / "p.pdt")
    trace_main(["streaming", "-n", "2", "-o", trace_path])
    capsys.readouterr()
    analyze_main([trace_path, "--profile", "--comm"])
    out = capsys.readouterr().out
    assert "event profile" in out
    assert "communication channels" in out
    assert "signal" in out


def test_new_cli_workloads_run(tmp_path):
    for name in ("mandelbrot", "mandelbrot-static", "streaming-ls"):
        path = str(tmp_path / f"{name}.pdt")
        assert trace_main([name, "-n", "2", "-o", path]) == 0, name
