"""Differential correctness: the parallel engine vs the serial one.

The contract under test is absolute — **byte-identical results in
every mode** — so every assertion here is plain ``==`` on the exact
objects the two paths return (rows, record tuples, counts, numpy
series), never approximate comparison.  The matrix covers every
workload in :mod:`repro.workloads`, every on-disk format version
(v1 legacy through v4 indexed, plus a v3 file with a ``.pdtx``
sidecar attached), and ``jobs`` of 1 (serial fallback), 2, and 4.
"""

import typing

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pdt import TraceConfig, open_trace, write_trace
from repro.pdt.format import (
    VERSION_CHUNKED,
    VERSION_COMPRESSED,
    VERSION_CRC,
    VERSION_INDEXED,
    VERSION_LEGACY,
)
from repro.par import parallel_count, parallel_records, parallel_rows
from repro.ta.profile import profile_table
from repro.ta.series import (
    source_event_rate_series,
    source_issue_bandwidth_series,
)
from repro.ta.stats import source_summary_rows
from repro.tq import Query, build_sidecar, open_indexed
from repro.workloads import (
    FftWorkload,
    HistogramWorkload,
    MandelbrotWorkload,
    MatmulWorkload,
    MonteCarloWorkload,
    SpmvWorkload,
    StreamingPipelineWorkload,
    run_workload,
)

JOB_COUNTS = (1, 2, 4)

#: Every workload in repro.workloads, scaled down to fuzz-friendly
#: runtimes while keeping each one's characteristic record mix.
WORKLOADS = (
    ("matmul", lambda: MatmulWorkload(n=64, tile=32, n_spes=2)),
    ("streaming", lambda: StreamingPipelineWorkload(stages=2, blocks=6)),
    ("montecarlo", lambda: MonteCarloWorkload(samples_per_spe=1500, n_spes=2)),
    ("fft", lambda: FftWorkload(points=256, batch=8, n_spes=2)),
    ("histogram", lambda: HistogramWorkload(samples=8192, bins=32, n_spes=2)),
    (
        "mandelbrot",
        lambda: MandelbrotWorkload(
            width=64, height=16, max_iterations=16, n_spes=2
        ),
    ),
    (
        "spmv",
        lambda: SpmvWorkload(n=256, density=0.05, rows_per_block=64, n_spes=2),
    ),
)

VERSIONS = ("v1", "v2", "v3", "v4", "v5", "v3+sidecar")

_VERSION_CODES = {
    "v1": VERSION_LEGACY,
    "v2": VERSION_CHUNKED,
    "v3": VERSION_CRC,
    "v4": VERSION_INDEXED,
    "v5": VERSION_COMPRESSED,
    "v3+sidecar": VERSION_CRC,
}


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """workload name -> version label -> trace file path."""
    tmp = tmp_path_factory.mktemp("par-diff")
    out: typing.Dict[str, typing.Dict[str, str]] = {}
    for name, factory in WORKLOADS:
        result = run_workload(factory(), TraceConfig(buffer_bytes=1024))
        source = result.trace_source()
        paths = {}
        for label in VERSIONS:
            source.header.version = _VERSION_CODES[label]
            path = str(tmp / f"{name}-{label.replace('+', '-')}.pdt")
            write_trace(source, path)
            if label == "v3+sidecar":
                build_sidecar(path)
            paths[label] = path
        out[name] = paths
    return out


def _open(path: str, label: str):
    if label == "v3+sidecar":
        source = open_indexed(path)
        assert source.zone_maps() is not None
        return source
    return open_trace(path)


def _case(corpus, name, label):
    return corpus[name][label]


_MATRIX = pytest.mark.parametrize(
    "name,label",
    [(n, v) for n, __ in WORKLOADS for v in VERSIONS],
    ids=[f"{n}-{v}" for n, __ in WORKLOADS for v in VERSIONS],
)


@_MATRIX
def test_grouped_aggregation_identical(corpus, name, label):
    """groupby + every aggregate op (count/sum/min/max/mean/p50/p99),
    plus the CLI's (side, core, kind) profile query."""
    path = _case(corpus, name, label)

    def cli_query(source):
        return (
            Query(source)
            .groupby("side", "core", "kind")
            .agg(count="count", t_min=("min", "time"), t_max=("max", "time"))
        )

    def dma_query(source):
        return (
            Query(source)
            .where(event="mfc_get")
            .groupby("spe")
            .agg(
                n="count",
                total=("sum", "size"),
                lo=("min", "size"),
                hi=("max", "size"),
                mid=("p50", "size"),
                tail=("p99", "size"),
                avg=("mean", "size"),
            )
        )

    for build in (cli_query, dma_query):
        with _open(path, label) as source:
            serial_query = build(source)
            expected = serial_query.run()
            expected_stats = serial_query.stats
        for jobs in JOB_COUNTS:
            with _open(path, label) as source:
                query = build(source)
                rows = parallel_rows(query, jobs)
                assert rows == expected, (name, label, jobs)
                if jobs > 1 and expected_stats is not None:
                    assert query.stats == expected_stats, (name, label, jobs)


@_MATRIX
def test_records_and_count_identical(corpus, name, label):
    path = _case(corpus, name, label)

    def build(source):
        return Query(source).where(spe=1)

    with _open(path, label) as source:
        expected_records = list(build(source).records())
        expected_count = build(source).count()
    for jobs in JOB_COUNTS:
        with _open(path, label) as source:
            assert parallel_records(build(source), jobs) == expected_records
        with _open(path, label) as source:
            assert parallel_count(build(source), jobs) == expected_count


@_MATRIX
def test_summary_rows_and_series_identical(corpus, name, label):
    path = _case(corpus, name, label)
    with _open(path, label) as source:
        expected_rows = source_summary_rows(source)
    with _open(path, label) as source:
        expected_rate = source_event_rate_series(source, buckets=16)
    with _open(path, label) as source:
        expected_bw = source_issue_bandwidth_series(source, buckets=16)
    for jobs in JOB_COUNTS:
        with _open(path, label) as source:
            assert source_summary_rows(source, jobs=jobs) == expected_rows
        with _open(path, label) as source:
            centers, rate = source_event_rate_series(
                source, buckets=16, jobs=jobs
            )
            assert np.array_equal(centers, expected_rate[0])
            assert np.array_equal(rate, expected_rate[1])
        with _open(path, label) as source:
            centers, bw = source_issue_bandwidth_series(
                source, buckets=16, jobs=jobs
            )
            assert np.array_equal(centers, expected_bw[0])
            assert np.array_equal(bw, expected_bw[1])


@pytest.mark.parametrize("name", [n for n, __ in WORKLOADS])
def test_profile_table_identical(corpus, name):
    path = _case(corpus, name, "v4")
    with open_trace(path) as source:
        expected = profile_table(source)
    for jobs in JOB_COUNTS:
        with open_trace(path) as source:
            assert profile_table(source, jobs=jobs) == expected, (name, jobs)


# ----------------------------------------------------------------------
# randomized predicates (hypothesis): serial == parallel holds for
# arbitrary filter combinations, not just the hand-picked ones above
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def matmul_v4(corpus):
    path = corpus["matmul"]["v4"]
    with open_trace(path) as source:
        times = [
            row[0] for row in Query(source).project("time").records()
        ]
    return path, min(times), max(times)


@settings(max_examples=25, deadline=None)
@given(
    window=st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    use_window=st.booleans(),
    spe=st.sampled_from([None, 0, 1, 7]),
    event=st.sampled_from(
        [None, "mfc_get", "mfc_put", "sync", ["mfc_get", "mfc_put"]]
    ),
    jobs=st.sampled_from([2, 4]),
)
def test_random_predicates_identical(
    matmul_v4, window, use_window, spe, event, jobs
):
    path, t_lo, t_hi = matmul_v4
    t0 = t1 = None
    if use_window:
        span = t_hi - t_lo
        a, b = sorted(window)
        t0 = int(t_lo + a * span)
        t1 = int(t_lo + b * span)

    def build(source):
        return (
            Query(source)
            .where(t0=t0, t1=t1, spe=spe, event=event)
            .groupby("side", "kind")
            .agg(n="count", mid=("p50", "time"), t_max=("max", "time"))
        )

    with open_trace(path) as source:
        serial_query = build(source)
        expected_rows = serial_query.run()
        expected_stats = serial_query.stats
    with open_trace(path) as source:
        expected_records = list(
            Query(source).where(t0=t0, t1=t1, spe=spe, event=event).records()
        )
    with open_trace(path) as source:
        query = build(source)
        assert parallel_rows(query, jobs) == expected_rows
        assert query.stats == expected_stats
    with open_trace(path) as source:
        query = Query(source).where(t0=t0, t1=t1, spe=spe, event=event)
        assert parallel_records(query, jobs) == expected_records
