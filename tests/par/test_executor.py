"""Unit tests for the shard planner, the mergeable aggregation states,
and the executor's fault degradation.

The fault tests use the executor's ``_TEST_FAULT`` hook: the fault is
stamped onto every task but fires only inside pool workers
(``_IN_POOL_WORKER`` is set by the pool initializer), so the parent's
serial re-execution of the same task must succeed — and must produce
exactly the serial answer.
"""

import pytest

from repro.pdt import TraceConfig, open_trace, write_trace
from repro.pdt.format import VERSION_CRC, VERSION_INDEXED
from repro.par import executor, parallel_records, parallel_rows, plan_shards
from repro.par.plan import chunk_weights, partition
from repro.tq import Query
from repro.tq.pipeline import AggState, PartialAggregation
from repro.tq.source import PruneStats
from repro.workloads import MatmulWorkload, run_workload


# ----------------------------------------------------------------------
# partition / planning
# ----------------------------------------------------------------------
def test_partition_is_contiguous_and_exhaustive():
    for weights in (
        [1] * 10,
        [5, 0, 0, 0, 1, 9, 2],
        [0, 0, 0, 0],
        [100],
        list(range(33)),
    ):
        for shards in (1, 2, 3, 4, 7, 16):
            ranges = partition(weights, shards)
            assert len(ranges) <= shards
            # Exhaustive, contiguous, in order: concatenated ranges
            # reconstruct [0, n) exactly.
            flat = [i for lo, hi in ranges for i in range(lo, hi)]
            assert flat == list(range(len(weights))), (weights, shards)
            assert all(lo < hi for lo, hi in ranges)


def test_partition_balances_by_weight():
    # One heavy chunk up front: it gets its own shard rather than
    # dragging half the trace with it.
    ranges = partition([100, 1, 1, 1], 2)
    assert ranges[0] == (0, 1)
    assert ranges[-1][1] == 4


def test_partition_empty_and_degenerate():
    assert partition([], 4) == []
    assert partition([3, 4], 1) == [(0, 2)]


def test_chunk_weights_zero_for_pruned_chunks(tmp_path):
    result = run_workload(
        MatmulWorkload(n=64, tile=32, n_spes=2), TraceConfig(buffer_bytes=1024)
    )
    source = result.trace_source()
    source.header.version = VERSION_INDEXED
    path = str(tmp_path / "m.pdt")
    write_trace(source, path)
    with open_trace(path) as trace:
        query = Query(trace).where(spe=1)
        weights = chunk_weights(trace, query.predicate)
        counts = trace.chunk_record_counts()
        assert len(weights) == trace.n_chunks
        # Pruned chunks weigh nothing; admitted ones weigh their zone's
        # record count.
        assert all(w == 0 or w == c for w, c in zip(weights, counts))
        assert any(w == 0 for w in weights)  # something prunes for spe=1


def test_plan_shards_covers_all_chunks(tmp_path):
    result = run_workload(
        MatmulWorkload(n=64, tile=32, n_spes=2), TraceConfig(buffer_bytes=1024)
    )
    source = result.trace_source()
    source.header.version = VERSION_CRC
    path = str(tmp_path / "m3.pdt")
    write_trace(source, path)
    with open_trace(path) as trace:
        ranges = plan_shards(trace, 3)
        assert ranges and ranges[0][0] == 0
        assert ranges[-1][1] == trace.n_chunks
        for (__, a_hi), (b_lo, __) in zip(ranges, ranges[1:]):
            assert a_hi == b_lo


# ----------------------------------------------------------------------
# mergeable partial states
# ----------------------------------------------------------------------
def test_agg_state_merge_equals_single_pass():
    values = [5, 1, 9, 3, 3, 8, 2, 7]
    for op in ("sum", "min", "max", "mean", "p50", "p99"):
        whole = AggState.create(op, "x")
        for v in values:
            whole.update(v)
        left = AggState.create(op, "x")
        right = AggState.create(op, "x")
        for v in values[:3]:
            left.update(v)
        for v in values[3:]:
            right.update(v)
        left.merge(right)
        assert left.finalize() == whole.finalize(), op


def test_agg_state_merge_empty_sides():
    empty = AggState.create("max", "x")
    loaded = AggState.create("max", "x")
    loaded.update(4)
    empty.merge(loaded)
    assert empty.finalize() == 4
    assert AggState.create("sum", "x").finalize() is None
    both = AggState.create("min", "x")
    both.merge(AggState.create("min", "x"))
    assert both.finalize() is None


def test_partial_aggregation_merge_and_empty_rule():
    aggs = [("n", "count", None), ("hi", "max", "x")]
    a = PartialAggregation.create((), aggs)
    b = PartialAggregation.create((), aggs)
    # The ungrouped empty-selection rule (one all-empty row) must hold
    # after merging two empty partials...
    merged = PartialAggregation.create((), aggs)
    merged.merge(PartialAggregation.create((), aggs))
    assert merged.finalize() == [{"n": 0, "hi": None}]
    # ...and a grouped empty selection stays empty.
    grouped = PartialAggregation.create(("spe",), aggs)
    grouped.merge(PartialAggregation.create(("spe",), aggs))
    assert grouped.finalize() == []
    # Disjoint and overlapping groups both merge.
    na, ha = a.states_for((0,))
    na.count += 1
    ha.update(10)
    nb, hb = b.states_for((0,))
    nb.count += 1
    hb.update(20)
    nb2, hb2 = b.states_for((1,))
    nb2.count += 1
    hb2.update(5)
    a.merge(b)
    assert a.finalize() == [{"n": 2, "hi": 20}, {"n": 1, "hi": 5}]


def test_partial_aggregation_merge_shape_mismatch():
    a = PartialAggregation.create(("spe",), [("n", "count", None)])
    b = PartialAggregation.create(("core",), [("n", "count", None)])
    with pytest.raises(ValueError):
        a.merge(b)


def test_prune_stats_merged():
    parts = [
        PruneStats(total_chunks=4, scanned_chunks=1, indexed=True),
        PruneStats(total_chunks=3, scanned_chunks=3, indexed=True),
    ]
    merged = PruneStats.merged(parts)
    assert merged == PruneStats(total_chunks=7, scanned_chunks=4, indexed=True)
    mixed = PruneStats.merged(
        parts + [PruneStats(total_chunks=1, scanned_chunks=1, indexed=False)]
    )
    assert not mixed.indexed
    assert not PruneStats.merged([]).indexed


# ----------------------------------------------------------------------
# fault degradation: a worker fault never changes the answer
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fault_trace(tmp_path_factory):
    result = run_workload(
        MatmulWorkload(n=64, tile=32, n_spes=2), TraceConfig(buffer_bytes=1024)
    )
    source = result.trace_source()
    source.header.version = VERSION_INDEXED
    path = str(tmp_path_factory.mktemp("par-fault") / "fault.pdt")
    write_trace(source, path)
    with open_trace(path) as trace:
        query = (
            Query(trace)
            .groupby("side", "core", "kind")
            .agg(count="count", t_max=("max", "time"))
        )
        expected_rows = query.run()
        expected_stats = query.stats
    with open_trace(path) as trace:
        expected_records = list(Query(trace).where(spe=0).records())
    return path, expected_rows, expected_stats, expected_records


@pytest.mark.parametrize("fault", ["raise", "crash"])
def test_worker_fault_degrades_to_serial(fault_trace, fault, monkeypatch):
    path, expected_rows, expected_stats, expected_records = fault_trace
    monkeypatch.setattr(executor, "_TEST_FAULT", fault)
    with open_trace(path) as trace:
        query = (
            Query(trace)
            .groupby("side", "core", "kind")
            .agg(count="count", t_max=("max", "time"))
        )
        assert parallel_rows(query, 2) == expected_rows
        assert query.stats == expected_stats
    with open_trace(path) as trace:
        query = Query(trace).where(spe=0)
        assert parallel_records(query, 2) == expected_records


def test_fault_injection_actually_fires_in_workers(fault_trace, monkeypatch):
    """Guard against the fault tests passing vacuously: the injected
    fault must raise when the worker flag is set."""
    path = fault_trace[0]
    monkeypatch.setattr(executor, "_IN_POOL_WORKER", True)
    monkeypatch.setattr(executor, "_TEST_FAULT", "raise")
    with open_trace(path) as trace:
        query = Query(trace).groupby("spe").agg(n="count")
        tasks = executor._prepare(query, 2, "aggregate")
    assert tasks is not None and all(t.fault == "raise" for t in tasks)
    with pytest.raises(RuntimeError, match="injected shard fault"):
        executor.run_shard(tasks[0])


def test_corrupt_shard_under_salvage_keeps_accounting(tmp_path):
    """Parallel over a salvaged (damaged) file: identical rows and an
    identical SalvageReport to the serial read."""
    result = run_workload(
        MatmulWorkload(n=64, tile=32, n_spes=2), TraceConfig(buffer_bytes=1024)
    )
    source = result.trace_source()
    source.header.version = VERSION_CRC
    path = str(tmp_path / "damaged.pdt")
    write_trace(source, path)
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0xFF  # corrupt one mid-file chunk
    open(path, "wb").write(bytes(blob))
    with open_trace(path, strict=False) as trace:
        assert trace.salvage is not None and trace.salvage.damaged
        expected = Query(trace).groupby("side", "kind").agg(n="count").run()
        expected_report = trace.salvage
    for jobs in (2, 4):
        with open_trace(path, strict=False) as trace:
            query = Query(trace).groupby("side", "kind").agg(n="count")
            assert parallel_rows(query, jobs) == expected
            assert trace.salvage.summary() == expected_report.summary()


def test_serial_fallbacks(fault_trace):
    """jobs=1, in-memory sources, and single-chunk traces all fall back
    to the plain serial path (and still answer identically)."""
    path, expected_rows, __, __records = fault_trace
    with open_trace(path) as trace:
        query = (
            Query(trace)
            .groupby("side", "core", "kind")
            .agg(count="count", t_max=("max", "time"))
        )
        assert executor._prepare(query, 1, "aggregate") is None
        assert parallel_rows(query, 1) == expected_rows
    result = run_workload(
        MatmulWorkload(n=64, tile=32, n_spes=2), TraceConfig(buffer_bytes=1024)
    )
    memory = result.trace_source()
    query = (
        Query(memory)
        .groupby("side", "core", "kind")
        .agg(count="count", t_max=("max", "time"))
    )
    assert executor._prepare(query, 4, "aggregate") is None
    assert parallel_rows(query, 4) == query.run()
