"""Tests for the atomic unit and the LS effective-address windows."""

import pytest

from repro.cell import CellConfig, CellMachine
from repro.cell.addressing import LS_WINDOW_BASE, LS_WINDOW_STRIDE
from repro.cell.atomic import LOCK_LINE, ReservationStation
from repro.cell.memory import MemoryError_
from repro.cell.mfc import DmaDirection
from repro.kernel import Delay, KernelError


def make_machine(n_spes=2):
    return CellMachine(CellConfig(n_spes=n_spes, main_memory_size=1 << 20))


def drive(machine, gen):
    out = {}

    def wrap():
        out["r"] = yield from gen

    machine.spawn(wrap())
    machine.run()
    return out.get("r")


# ----------------------------------------------------------------------
# ReservationStation unit behaviour
# ----------------------------------------------------------------------
def test_reserve_and_conditional_store_succeeds():
    station = ReservationStation()
    station.reserve(0, 256)
    assert station.holds(0, 256 + 60)  # same line
    assert station.conditional_store(0, 256)
    assert station.reservation_of(0) is None


def test_conditional_store_without_reservation_fails():
    station = ReservationStation()
    assert not station.conditional_store(0, 128)
    assert station.putllc_failures == 1


def test_winner_kills_other_reservations_on_line():
    station = ReservationStation()
    station.reserve(0, 0)
    station.reserve(1, 0)
    assert station.conditional_store(0, 0)
    assert not station.conditional_store(1, 0)


def test_plain_store_kills_overlapping_reservations():
    station = ReservationStation()
    station.reserve(0, 0)
    station.reserve(1, 256)
    station.notify_store(120, 16)  # crosses lines 0 and 128
    assert station.reservation_of(0) is None
    assert station.reservation_of(1) == 256  # untouched


def test_new_reservation_replaces_old():
    station = ReservationStation()
    station.reserve(0, 0)
    station.reserve(0, 512)
    assert not station.holds(0, 0)
    assert station.holds(0, 512)


# ----------------------------------------------------------------------
# MFC atomic commands end to end
# ----------------------------------------------------------------------
def test_getllar_putllc_round_trip():
    machine = make_machine()
    spe = machine.spe(0)
    line = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)
    machine.memory.write(line, b"\x05" * LOCK_LINE)

    def prog():
        yield from spe.mfc.atomic_getllar(0, line)
        assert spe.ls.read(0, 4) == b"\x05" * 4
        spe.ls.write(0, b"\x09" * LOCK_LINE)
        success = yield from spe.mfc.atomic_putllc(0, line)
        return success

    assert drive(machine, prog()) is True
    assert machine.memory.read(line, 4) == b"\x09" * 4


def test_putllc_loses_to_intervening_dma_put():
    machine = make_machine()
    spe0, spe1 = machine.spe(0), machine.spe(1)
    line = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)

    def prog():
        yield from spe0.mfc.atomic_getllar(0, line)
        # SPE 1 plainly writes the line while SPE 0 holds a reservation.
        cmd = spe1.mfc.make_command(DmaDirection.PUT, 0, line, LOCK_LINE, tag=0)
        completion = yield from spe1.mfc.issue(cmd)
        yield completion
        success = yield from spe0.mfc.atomic_putllc(0, line)
        return success

    assert drive(machine, prog()) is False
    assert machine.spe(0).mfc.reservations.putllc_failures == 1


def test_contended_putllc_exactly_one_winner():
    machine = make_machine()
    line = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)
    results = {}

    def contender(spe_id):
        spe = machine.spe(spe_id)
        yield from spe.mfc.atomic_getllar(0, line)
        yield Delay(10)
        results[spe_id] = yield from spe.mfc.atomic_putllc(0, line)

    machine.spawn(contender(0))
    machine.spawn(contender(1))
    machine.run()
    assert sorted(results.values()) == [False, True]


def test_putlluc_unconditional_and_invalidating():
    machine = make_machine()
    spe0, spe1 = machine.spe(0), machine.spe(1)
    line = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)

    def prog():
        yield from spe0.mfc.atomic_getllar(0, line)
        spe1.ls.write(0, b"\x11" * LOCK_LINE)
        yield from spe1.mfc.atomic_putlluc(0, line)
        success = yield from spe0.mfc.atomic_putllc(0, line)
        return success

    assert drive(machine, prog()) is False
    assert machine.memory.read(line, 4) == b"\x11" * 4


def test_atomic_alignment_enforced():
    machine = make_machine()
    spe = machine.spe(0)

    def prog():
        try:
            yield from spe.mfc.atomic_getllar(64, 128)
        except KernelError:
            return "ls-misaligned"

    assert drive(machine, prog()) == "ls-misaligned"


def test_atomic_rejects_ls_window_targets():
    machine = make_machine()
    spe = machine.spe(0)

    def prog():
        try:
            yield from spe.mfc.atomic_getllar(0, LS_WINDOW_BASE)
        except KernelError:
            return "rejected"

    assert drive(machine, prog()) == "rejected"


# ----------------------------------------------------------------------
# LS effective-address windows (SPE-to-SPE DMA)
# ----------------------------------------------------------------------
def test_address_map_resolves_main_memory_and_ls():
    machine = make_machine()
    amap = machine.address_map
    store, offset = amap.resolve(4096, 16)
    assert store is machine.memory
    assert offset == 4096
    base = amap.ls_base_ea(1)
    assert base == LS_WINDOW_BASE + LS_WINDOW_STRIDE
    store, offset = amap.resolve(base + 256, 16)
    assert store is machine.spe(1).ls
    assert offset == 256


def test_address_map_bounds():
    machine = make_machine(n_spes=2)
    amap = machine.address_map
    with pytest.raises(MemoryError_, match="beyond SPE 1"):
        amap.resolve(LS_WINDOW_BASE + 5 * LS_WINDOW_STRIDE, 16)
    with pytest.raises(MemoryError_, match="overruns"):
        amap.resolve(amap.ls_base_ea(0) + 256 * 1024 - 8, 16)
    with pytest.raises(MemoryError_, match="no SPE"):
        amap.ls_base_ea(9)


def test_dma_put_into_another_spes_ls():
    machine = make_machine()
    spe0, spe1 = machine.spe(0), machine.spe(1)
    spe0.ls.write(0, b"\xCD" * 64)
    target_ea = machine.address_map.ls_base_ea(1) + 1024

    def prog():
        cmd = spe0.mfc.make_command(DmaDirection.PUT, 0, target_ea, 64, tag=0)
        completion = yield from spe0.mfc.issue(cmd)
        yield completion

    drive(machine, prog())
    assert spe1.ls.read(1024, 64) == b"\xCD" * 64


def test_ls_to_ls_transfer_skips_dram_latency():
    machine = make_machine()
    spe0 = machine.spe(0)
    mem_ea = machine.memory.allocate(4096)
    ls_ea = machine.address_map.ls_base_ea(1) + 4096
    times = {}

    def timed_put(name, ea):
        start = machine.sim.now
        cmd = spe0.mfc.make_command(DmaDirection.PUT, 0, ea, 4096, tag=0)
        completion = yield from spe0.mfc.issue(cmd)
        yield completion
        times[name] = machine.sim.now - start

    def prog():
        yield from timed_put("dram", mem_ea)
        yield from timed_put("ls", ls_ea)

    drive(machine, prog())
    # LS-to-LS saves the DRAM latency; ring-hop distances also differ
    # (spe0 -> spe1 is closer than spe0 -> mic on a 2-SPE ring).
    hop = machine.config.dma.eib_hop_latency
    hop_delta = (
        machine.eib.hops("spe0", "mic") - machine.eib.hops("spe0", "spe1")
    ) * hop
    assert times["ls"] == times["dram"] - machine.config.dma.memory_latency - hop_delta
