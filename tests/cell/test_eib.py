"""Tests for the EIB contention/bandwidth model."""

from repro.cell.config import DmaTimings
from repro.cell.eib import Eib
from repro.kernel import Simulator


def make_eib(**overrides):
    sim = Simulator()
    timings = DmaTimings(**overrides)
    return sim, Eib(sim, timings)


def test_transfer_cycles_formula():
    __, eib = make_eib(eib_command_latency=50, eib_bytes_per_cycle=8)
    assert eib.transfer_cycles(8) == 51
    assert eib.transfer_cycles(16 * 1024) == 50 + 2048
    # partial beat rounds up
    assert eib.transfer_cycles(9) == 50 + 2


def test_single_transfer_duration():
    sim, eib = make_eib(eib_command_latency=50, eib_bytes_per_cycle=8)
    done = []

    def proc():
        yield from eib.transfer(800, requester="spe0")
        done.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert done == [50 + 100]


def test_parallel_transfers_up_to_ring_count():
    sim, eib = make_eib(eib_rings=4, eib_command_latency=0, eib_bytes_per_cycle=8)
    ends = []

    def proc(i):
        yield from eib.transfer(80, requester=f"spe{i}")
        ends.append(sim.now)

    for i in range(4):
        sim.spawn(proc(i))
    sim.run()
    assert ends == [10, 10, 10, 10]


def test_contention_serialises_excess_transfers():
    sim, eib = make_eib(eib_rings=1, eib_command_latency=0, eib_bytes_per_cycle=8)
    ends = []

    def proc(i):
        yield from eib.transfer(80, requester=f"spe{i}")
        ends.append(sim.now)

    for i in range(3):
        sim.spawn(proc(i))
    sim.run()
    assert ends == [10, 20, 30]
    assert eib.stats.wait_cycles == 10 + 20


def test_stats_accumulate_per_requester():
    sim, eib = make_eib()

    def proc(name, nbytes):
        yield from eib.transfer(nbytes, requester=name)

    sim.spawn(proc("spe0", 128))
    sim.spawn(proc("spe0", 128))
    sim.spawn(proc("spe1", 64))
    sim.run()
    assert eib.stats.transfers == 3
    assert eib.stats.bytes_moved == 320
    assert eib.stats.per_requester_bytes == {"spe0": 256, "spe1": 64}


def test_zero_byte_transfer_rejected():
    sim, eib = make_eib()
    errors = []

    def proc():
        try:
            yield from eib.transfer(0)
        except ValueError as exc:
            errors.append(str(exc))

    sim.spawn(proc())
    sim.run()
    assert len(errors) == 1
