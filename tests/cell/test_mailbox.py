"""Tests for mailboxes and signal-notification registers."""

import pytest

from repro.cell.mailbox import MailboxSet, SignalRegister
from repro.kernel import Delay, KernelError, Simulator


def test_spu_read_inbound_blocks_until_ppe_writes():
    sim = Simulator()
    mbx = MailboxSet(sim, spe_id=0)
    got = []

    def spu():
        value = yield mbx.spu_read_inbound()
        got.append((value, sim.now))

    def ppe():
        yield Delay(100)
        mbx.ppe_write_inbound(0xDEAD)

    sim.spawn(spu())
    sim.spawn(ppe())
    sim.run()
    assert got == [(0xDEAD, 100)]


def test_inbound_mailbox_overwrites_when_full():
    sim = Simulator()
    mbx = MailboxSet(sim, spe_id=0, inbound_depth=2)
    assert mbx.ppe_write_inbound(1) is False
    assert mbx.ppe_write_inbound(2) is False
    assert mbx.ppe_write_inbound(3) is True  # overwrote 2
    assert mbx.ppe_inbound_space() == 0


def test_spu_write_outbound_blocks_when_full():
    sim = Simulator()
    mbx = MailboxSet(sim, spe_id=1, outbound_depth=1)
    times = []

    def spu():
        yield mbx.spu_write_outbound(10)
        times.append(("first", sim.now))
        yield mbx.spu_write_outbound(20)
        times.append(("second", sim.now))

    def ppe():
        yield Delay(50)
        value = yield mbx.ppe_read_outbound()
        assert value == 10

    sim.spawn(spu())
    sim.spawn(ppe())
    sim.run()
    assert times == [("first", 0), ("second", 50)]


def test_ppe_try_read_outbound_polls():
    sim = Simulator()
    mbx = MailboxSet(sim, spe_id=0)
    assert mbx.ppe_try_read_outbound() is None

    def spu():
        yield mbx.spu_write_outbound(7)

    sim.spawn(spu())
    sim.run()
    assert mbx.ppe_outbound_count() == 1
    assert mbx.ppe_try_read_outbound() == 7
    assert mbx.ppe_try_read_outbound() is None


def test_mailbox_values_must_be_u32():
    sim = Simulator()
    mbx = MailboxSet(sim, spe_id=0)
    with pytest.raises(KernelError):
        mbx.ppe_write_inbound(1 << 32)

    def spu():
        yield mbx.spu_write_outbound(-1)

    proc = sim.spawn(spu())
    with pytest.raises(KernelError):
        sim.run()
        raise proc.exception


def test_outbound_interrupt_mailbox_independent():
    sim = Simulator()
    mbx = MailboxSet(sim, spe_id=0)

    def spu():
        yield mbx.spu_write_outbound(1)
        yield mbx.spu_write_outbound_interrupt(2)

    sim.spawn(spu())
    sim.run()
    assert mbx.outbound.count == 1
    assert mbx.outbound_interrupt.count == 1


# ----------------------------------------------------------------------
# signals
# ----------------------------------------------------------------------
def test_signal_or_mode_accumulates_bits():
    sim = Simulator()
    sig = SignalRegister(sim, "sig", or_mode=True)
    sig.send(0b01)
    sig.send(0b10)
    assert sig.value == 0b11
    assert sig.take() == 0b11
    assert sig.value == 0


def test_signal_overwrite_mode_replaces():
    sim = Simulator()
    sig = SignalRegister(sim, "sig", or_mode=False)
    sig.send(0b01)
    sig.send(0b10)
    assert sig.value == 0b10


def test_signal_read_blocks_until_nonzero():
    sim = Simulator()
    mbx = MailboxSet(sim, spe_id=0)
    got = []

    def spu():
        yield mbx.signal1.read()
        got.append((mbx.signal1.take(), sim.now))

    def ppe():
        yield Delay(30)
        mbx.signal1.send(0x5)

    sim.spawn(spu())
    sim.spawn(ppe())
    sim.run()
    assert got == [(0x5, 30)]


def test_signal_read_when_already_set_is_immediate():
    sim = Simulator()
    sig = SignalRegister(sim, "sig")
    sig.send(1)
    fired = []

    def spu():
        yield sig.read()
        fired.append(sim.now)

    sim.spawn(spu())
    sim.run()
    assert fired == [0]


def test_signal_rejects_wide_values():
    sim = Simulator()
    sig = SignalRegister(sim, "sig")
    with pytest.raises(KernelError):
        sig.send(1 << 33)
