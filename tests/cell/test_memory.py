"""Tests for memories, allocation, and DMA alignment rules."""

import pytest

from repro.cell.memory import (
    AlignmentError,
    LocalStore,
    MainMemory,
    MemoryError_,
    check_dma_alignment,
)


# ----------------------------------------------------------------------
# byte storage
# ----------------------------------------------------------------------
def test_main_memory_read_write_round_trip():
    mem = MainMemory(4096)
    mem.write(128, b"hello cell")
    assert mem.read(128, 10) == b"hello cell"


def test_memory_reads_zero_initialised():
    mem = MainMemory(256)
    assert mem.read(0, 16) == bytes(16)


def test_memory_out_of_range_rejected():
    mem = MainMemory(256)
    with pytest.raises(MemoryError_):
        mem.read(250, 16)
    with pytest.raises(MemoryError_):
        mem.write(-1, b"x")


def test_local_store_is_per_spe_named():
    ls = LocalStore(1024, spe_id=3)
    assert "spe3" in ls.name


# ----------------------------------------------------------------------
# allocators
# ----------------------------------------------------------------------
def test_main_memory_allocator_aligns_to_128():
    mem = MainMemory(64 * 1024)
    a = mem.allocate(100)
    b = mem.allocate(100)
    assert a % 128 == 0
    assert b % 128 == 0
    assert b >= a + 100


def test_main_memory_allocator_never_returns_zero():
    mem = MainMemory(64 * 1024)
    assert mem.allocate(16) != 0


def test_allocator_exhaustion():
    mem = MainMemory(1024)
    with pytest.raises(MemoryError_):
        mem.allocate(2048)


def test_local_store_allocator_and_free_bytes():
    ls = LocalStore(1024, spe_id=0)
    addr = ls.allocate(100, align=16)
    assert addr % 16 == 0
    assert ls.free_bytes == 1024 - (addr + 100)


def test_local_store_exhaustion_mentions_trace_buffer():
    ls = LocalStore(256, spe_id=0)
    ls.allocate(200)
    with pytest.raises(MemoryError_, match="trace buffer"):
        ls.allocate(100)


def test_allocator_rejects_bad_alignment():
    mem = MainMemory(4096)
    with pytest.raises(MemoryError_):
        mem.allocate(16, align=48)


# ----------------------------------------------------------------------
# DMA alignment rules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("size", [1, 2, 4, 8])
def test_small_dma_naturally_aligned_ok(size):
    # Naturally aligned with matching low-4-bit residues on both sides.
    check_dma_alignment(16 + size, 32 + size, size)


def test_small_dma_misaligned_rejected():
    with pytest.raises(AlignmentError):
        check_dma_alignment(3, 4, 4)


def test_small_dma_low_bits_must_match():
    # 8-byte DMA, both 8-aligned, but low-4-bit residues differ (0 vs 8).
    with pytest.raises(AlignmentError):
        check_dma_alignment(16, 8, 8)


def test_bulk_dma_multiple_of_16_required():
    with pytest.raises(AlignmentError):
        check_dma_alignment(0, 0, 24)


def test_bulk_dma_16_byte_alignment_required():
    with pytest.raises(AlignmentError):
        check_dma_alignment(8, 0, 32)
    with pytest.raises(AlignmentError):
        check_dma_alignment(0, 8, 32)


def test_bulk_dma_ok():
    check_dma_alignment(0, 16, 16 * 1024)


def test_zero_size_dma_rejected():
    with pytest.raises(AlignmentError):
        check_dma_alignment(0, 0, 0)
