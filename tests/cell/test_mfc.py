"""Tests for the MFC: command validation, queuing, tags, ordering."""

import pytest

from repro.cell.config import CellConfig, DmaTimings
from repro.cell.machine import CellMachine
from repro.cell.mfc import DmaDirection, DmaListElement
from repro.kernel import Delay, KernelError


def make_machine(**dma_overrides):
    dma = DmaTimings(**dma_overrides)
    return CellMachine(CellConfig(n_spes=2, dma=dma, main_memory_size=1 << 20))


def run_on(machine, gen):
    done = {}

    def wrapper():
        result = yield from gen
        done["result"] = result

    machine.spawn(wrapper())
    machine.run()
    return done.get("result")


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_command_kind_mnemonics():
    machine = make_machine()
    mfc = machine.spe(0).mfc
    get = mfc.make_command(DmaDirection.GET, 0, 128, 16, tag=1)
    putf = mfc.make_command(DmaDirection.PUT, 0, 128, 16, tag=1, fence=True)
    getb = mfc.make_command(DmaDirection.GET, 0, 128, 16, tag=1, barrier=True)
    assert get.kind == "GET"
    assert putf.kind == "PUTF"
    assert getb.kind == "GETB"


def test_oversized_dma_rejected():
    machine = make_machine(max_dma_size=16 * 1024)
    mfc = machine.spe(0).mfc
    with pytest.raises(KernelError, match="16384-byte"):
        mfc.make_command(DmaDirection.GET, 0, 0, 32 * 1024, tag=0)


def test_bad_tag_rejected():
    machine = make_machine()
    mfc = machine.spe(0).mfc
    with pytest.raises(KernelError):
        mfc.make_command(DmaDirection.GET, 0, 0, 16, tag=32)
    with pytest.raises(KernelError):
        mfc.make_command(DmaDirection.GET, 0, 0, 16, tag=-1)


def test_list_command_validation():
    machine = make_machine()
    mfc = machine.spe(0).mfc
    with pytest.raises(KernelError):
        mfc.make_list_command(DmaDirection.GET, 0, [], tag=0)
    elems = [DmaListElement(128 * i, 128) for i in range(4)]
    cmd = mfc.make_list_command(DmaDirection.GET, 0, elems, tag=2)
    assert cmd.is_list
    assert cmd.size == 512
    assert cmd.kind == "GETL"


# ----------------------------------------------------------------------
# data movement
# ----------------------------------------------------------------------
def test_get_moves_bytes_from_memory_to_ls():
    machine = make_machine()
    spe = machine.spe(0)
    ea = machine.memory.allocate(64)
    machine.memory.write(ea, bytes(range(64)))

    def prog():
        cmd = spe.mfc.make_command(DmaDirection.GET, 0, ea, 64, tag=3)
        completion = yield from spe.mfc.issue(cmd)
        yield completion

    run_on(machine, prog())
    assert spe.ls.read(0, 64) == bytes(range(64))


def test_put_moves_bytes_from_ls_to_memory():
    machine = make_machine()
    spe = machine.spe(0)
    ea = machine.memory.allocate(32)
    spe.ls.write(128, b"\xab" * 32)

    def prog():
        cmd = spe.mfc.make_command(DmaDirection.PUT, 128, ea, 32, tag=0)
        completion = yield from spe.mfc.issue(cmd)
        yield completion

    run_on(machine, prog())
    assert machine.memory.read(ea, 32) == b"\xab" * 32


def test_list_dma_gathers_scattered_elements():
    machine = make_machine()
    spe = machine.spe(0)
    eas = [machine.memory.allocate(16) for _ in range(3)]
    for i, ea in enumerate(eas):
        machine.memory.write(ea, bytes([i]) * 16)

    def prog():
        elems = [DmaListElement(ea, 16) for ea in eas]
        cmd = spe.mfc.make_list_command(DmaDirection.GET, 0, elems, tag=1)
        completion = yield from spe.mfc.issue(cmd)
        yield completion

    run_on(machine, prog())
    assert spe.ls.read(0, 48) == b"\x00" * 16 + b"\x01" * 16 + b"\x02" * 16


# ----------------------------------------------------------------------
# tag groups
# ----------------------------------------------------------------------
def test_tag_wait_all_waits_for_every_tagged_command():
    machine = make_machine()
    spe = machine.spe(0)
    ea = machine.memory.allocate(4096)
    finished = []

    def prog():
        for i in range(4):
            cmd = spe.mfc.make_command(DmaDirection.GET, i * 1024, ea, 1024, tag=5)
            yield from spe.mfc.issue(cmd)
        yield spe.mfc.tag_wait_event(1 << 5, "all")
        finished.append(machine.sim.now)
        assert spe.mfc.outstanding_in_tag(5) == 0

    run_on(machine, prog())
    assert finished
    truth = [c.complete_time for c in spe.mfc.completed_commands]
    assert finished[0] == max(truth)


def test_tag_wait_any_fires_on_first_quiescent_tag():
    machine = make_machine()
    spe = machine.spe(0)
    ea = machine.memory.allocate(1 << 16)
    order = []

    def prog():
        small = spe.mfc.make_command(DmaDirection.GET, 0, ea, 16, tag=1)
        big = spe.mfc.make_command(DmaDirection.GET, 4096, ea, 16 * 1024, tag=2)
        yield from spe.mfc.issue(big)
        yield from spe.mfc.issue(small)
        status = yield spe.mfc.tag_wait_event((1 << 1) | (1 << 2), "any")
        order.append(("any", status, machine.sim.now))
        yield spe.mfc.tag_wait_event(1 << 2, "all")
        order.append(("all", machine.sim.now))

    run_on(machine, prog())
    kind, status, t_any = order[0]
    assert kind == "any"
    assert status & (1 << 1)  # the small one finished first
    assert order[1][1] > t_any


def test_tag_wait_on_idle_tag_completes_immediately():
    machine = make_machine()
    spe = machine.spe(0)
    times = []

    def prog():
        yield spe.mfc.tag_wait_event(1 << 7, "all")
        times.append(machine.sim.now)

    run_on(machine, prog())
    assert times == [0]


def test_tag_wait_empty_mask_rejected():
    machine = make_machine()
    with pytest.raises(KernelError):
        machine.spe(0).mfc.tag_wait_event(0, "all")
    with pytest.raises(KernelError):
        machine.spe(0).mfc.tag_wait_event(1, "sometimes")


# ----------------------------------------------------------------------
# queue capacity and stalls
# ----------------------------------------------------------------------
def test_queue_full_blocks_issuer_and_counts_stall():
    machine = make_machine(queue_depth=2, mfc_parallel=1)
    spe = machine.spe(0)
    ea = machine.memory.allocate(1 << 16)

    def prog():
        for __ in range(5):
            cmd = spe.mfc.make_command(DmaDirection.GET, 0, ea, 16 * 1024, tag=0)
            yield from spe.mfc.issue(cmd)
        yield spe.mfc.tag_wait_event(1 << 0, "all")

    run_on(machine, prog())
    assert spe.mfc.stats.commands == 5
    assert spe.mfc.stats.queue_full_stalls >= 1
    assert spe.mfc.stats.queue_full_cycles > 0


# ----------------------------------------------------------------------
# ordering: fence and barrier
# ----------------------------------------------------------------------
def test_plain_commands_can_overlap():
    machine = make_machine(mfc_parallel=2, eib_rings=4)
    spe = machine.spe(0)
    ea = machine.memory.allocate(1 << 16)

    def prog():
        a = spe.mfc.make_command(DmaDirection.GET, 0, ea, 16 * 1024, tag=0)
        b = spe.mfc.make_command(DmaDirection.GET, 16 * 1024, ea, 16 * 1024, tag=1)
        yield from spe.mfc.issue(a)
        yield from spe.mfc.issue(b)
        yield spe.mfc.tag_wait_event(0b11, "all")

    run_on(machine, prog())
    cmds = {c.tag: c for c in spe.mfc.completed_commands}
    # b dispatched before a completed -> overlap
    assert cmds[1].dispatch_time < cmds[0].complete_time


def test_barrier_prevents_overlap():
    machine = make_machine(mfc_parallel=2, eib_rings=4)
    spe = machine.spe(0)
    ea = machine.memory.allocate(1 << 16)

    def prog():
        a = spe.mfc.make_command(DmaDirection.GET, 0, ea, 16 * 1024, tag=0)
        b = spe.mfc.make_command(
            DmaDirection.GET, 16 * 1024, ea, 16 * 1024, tag=1, barrier=True
        )
        yield from spe.mfc.issue(a)
        yield from spe.mfc.issue(b)
        yield spe.mfc.tag_wait_event(0b11, "all")

    run_on(machine, prog())
    cmds = {c.tag: c for c in spe.mfc.completed_commands}
    assert cmds[1].dispatch_time >= cmds[0].complete_time


def test_fence_orders_within_tag_only():
    machine = make_machine(mfc_parallel=2, eib_rings=4)
    spe = machine.spe(0)
    ea = machine.memory.allocate(1 << 17)

    def prog():
        a = spe.mfc.make_command(DmaDirection.GET, 0, ea, 16 * 1024, tag=0)
        fenced_same = spe.mfc.make_command(
            DmaDirection.GET, 16 * 1024, ea, 16 * 1024, tag=0, fence=True
        )
        yield from spe.mfc.issue(a)
        yield from spe.mfc.issue(fenced_same)
        yield spe.mfc.tag_wait_event(0b1, "all")

    run_on(machine, prog())
    first, second = spe.mfc.completed_commands
    assert second.dispatch_time >= first.complete_time


def test_proxy_queue_is_separate():
    machine = make_machine(queue_depth=1, proxy_queue_depth=8)
    spe = machine.spe(0)
    ea = machine.memory.allocate(4096)

    def prog():
        spu_cmd = spe.mfc.make_command(DmaDirection.GET, 0, ea, 1024, tag=0)
        proxy_cmd = spe.mfc.make_command(DmaDirection.PUT, 2048, ea, 1024, tag=1)
        yield from spe.mfc.issue(spu_cmd)
        # proxy issue succeeds immediately even though SPU queue is depth 1
        yield from spe.mfc.issue(proxy_cmd, proxy=True)
        yield spe.mfc.tag_wait_event(0b11, "all")

    run_on(machine, prog())
    assert spe.mfc.stats.commands == 2
    assert spe.mfc.stats.queue_full_stalls == 0


def test_ground_truth_timestamps_monotone():
    machine = make_machine()
    spe = machine.spe(0)
    ea = machine.memory.allocate(1 << 16)

    def prog():
        for i in range(6):
            cmd = spe.mfc.make_command(DmaDirection.GET, 0, ea, 4096, tag=i % 3)
            yield from spe.mfc.issue(cmd)
            yield Delay(10)
        yield spe.mfc.tag_wait_event(0b111, "all")

    run_on(machine, prog())
    for cmd in spe.mfc.completed_commands:
        assert cmd.issue_time <= cmd.dispatch_time < cmd.complete_time
