"""Tests for machine assembly, config, and SPU state tracking."""

import pytest

from repro.cell import CellConfig, CellMachine, SpuState
from repro.cell.config import ClockSpec
from repro.kernel import Delay, KernelError


def test_default_machine_has_8_spes():
    machine = CellMachine()
    assert len(machine.spes) == 8
    assert machine.spe(7).spe_id == 7


def test_spe_index_validation():
    machine = CellMachine(CellConfig(n_spes=2))
    with pytest.raises(IndexError):
        machine.spe(2)


def test_config_validation():
    with pytest.raises(ValueError):
        CellConfig(n_spes=0)
    with pytest.raises(ValueError):
        CellConfig(n_spes=17)
    with pytest.raises(ValueError):
        CellConfig(timebase_divider=0)


def test_with_skewed_clocks_builds_specs():
    config = CellConfig(n_spes=4).with_skewed_clocks([0, 100, 200, 300], [0, 1, 2, 3])
    assert config.clock_spec(2) == ClockSpec(offset_cycles=200, drift_ppm=2.0)
    # Beyond configured entries: defaults.
    assert CellConfig(n_spes=4).clock_spec(3) == ClockSpec()


def test_with_skewed_clocks_length_mismatch():
    with pytest.raises(ValueError):
        CellConfig().with_skewed_clocks([0, 1], [0.0])


def test_cycle_conversions():
    machine = CellMachine()
    assert machine.cycles_to_seconds(3_200_000_000) == pytest.approx(1.0)
    assert machine.cycles_to_us(3200) == pytest.approx(1.0)


def test_state_track_accumulates_time():
    machine = CellMachine(CellConfig(n_spes=1))
    spe = machine.spe(0)

    def prog():
        spe.begin_program()
        yield Delay(100)
        spe.enter_wait(SpuState.WAIT_DMA)
        yield Delay(40)
        spe.leave_wait()
        yield Delay(60)
        spe.end_program()

    machine.spawn(prog())
    total = machine.run()
    assert total == 200
    assert spe.track.totals[SpuState.RUN] == 160
    assert spe.track.totals[SpuState.WAIT_DMA] == 40
    assert spe.track.busy_cycles() == 160
    assert spe.track.stall_cycles() == 40


def test_state_track_records_intervals_in_order():
    machine = CellMachine(CellConfig(n_spes=1))
    spe = machine.spe(0)

    def prog():
        yield Delay(10)
        spe.begin_program()
        yield Delay(20)
        spe.end_program()

    machine.spawn(prog())
    machine.run()
    states = [s for (_, _, s) in spe.track.intervals]
    assert states == [SpuState.IDLE, SpuState.RUN]
    for start, end, __ in spe.track.intervals:
        assert start < end


def test_nested_wait_rejected():
    machine = CellMachine(CellConfig(n_spes=1))
    spe = machine.spe(0)
    spe.begin_program()
    spe.enter_wait(SpuState.WAIT_DMA)
    with pytest.raises(KernelError):
        spe.enter_wait(SpuState.WAIT_MBOX)


def test_double_begin_program_rejected():
    machine = CellMachine(CellConfig(n_spes=1))
    spe = machine.spe(0)
    spe.begin_program()
    with pytest.raises(KernelError):
        spe.begin_program()


def test_end_without_begin_rejected():
    machine = CellMachine(CellConfig(n_spes=1))
    with pytest.raises(KernelError):
        machine.spe(0).end_program()


def test_ppe_timebase_reads_advance():
    machine = CellMachine()
    readings = []

    def prog():
        readings.append(machine.ppe.read_timebase())
        yield Delay(machine.config.timebase_divider * 5)
        readings.append(machine.ppe.read_timebase())

    machine.spawn(prog())
    machine.run()
    assert readings[1] - readings[0] == 5


def test_ppe_hw_threads_limit_concurrency():
    machine = CellMachine()
    running = []
    peak = []

    def thread(i):
        yield machine.ppe.acquire_thread()
        running.append(i)
        peak.append(len(running))
        yield Delay(10)
        running.remove(i)
        machine.ppe.release_thread()

    for i in range(5):
        machine.spawn(thread(i))
    machine.run()
    assert max(peak) <= 2


def test_mmio_access_charges_latency():
    machine = CellMachine()
    times = []

    def prog():
        yield from machine.ppe.mmio_access()
        times.append(machine.sim.now)

    machine.spawn(prog())
    machine.run()
    assert times == [machine.config.mmio_latency]
    assert machine.ppe.mmio_accesses == 1
