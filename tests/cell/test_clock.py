"""Tests for the timebase and decrementer clock models."""

import pytest

from repro.cell.clock import Decrementer, TimeBase
from repro.cell.config import ClockSpec


def test_timebase_counts_up_by_divider():
    tb = TimeBase(divider=120)
    assert tb.read(0) == 0
    assert tb.read(119) == 0
    assert tb.read(120) == 1
    assert tb.read(1200) == 10


def test_timebase_round_trip():
    tb = TimeBase(divider=120)
    assert tb.to_cycles(7) == 840
    assert tb.read(tb.to_cycles(7)) == 7


def test_timebase_divider_validation():
    with pytest.raises(ValueError):
        TimeBase(divider=0)


def test_decrementer_counts_down():
    dec = Decrementer(120, ClockSpec(start_value=1000))
    assert dec.read(0) == 1000
    assert dec.read(119) == 1000
    assert dec.read(120) == 999
    assert dec.read(1200) == 990


def test_decrementer_offset_delays_start():
    dec = Decrementer(120, ClockSpec(offset_cycles=600, start_value=1000))
    assert dec.read(0) == 1000
    assert dec.read(600) == 1000
    assert dec.read(600 + 120) == 999


def test_decrementer_wraps_through_zero():
    dec = Decrementer(10, ClockSpec(start_value=2))
    assert dec.read(20) == 0
    assert dec.read(30) == 0xFFFF_FFFF
    assert dec.read(40) == 0xFFFF_FFFE


def test_decrementer_drift_changes_period():
    start = 10**7
    nominal = Decrementer(120, ClockSpec(start_value=start))
    fast = Decrementer(120, ClockSpec(start_value=start, drift_ppm=-1000.0))
    horizon = 120 * 10**6  # one million nominal ticks
    nominal_ticks = start - nominal.read(horizon)
    fast_ticks = start - fast.read(horizon)
    # -1000 ppm shortens the period, so the fast clock ticks ~1000 more.
    assert fast_ticks - nominal_ticks == pytest.approx(1000, abs=2)


def test_elapsed_ticks_handles_wrap():
    dec = Decrementer(10, ClockSpec(start_value=5))
    raw_then = dec.read(0)  # 5
    raw_now = dec.read(100)  # wrapped below zero
    assert dec.elapsed_ticks(raw_then, raw_now) == 10


def test_decrementer_is_pure_function_of_time():
    dec = Decrementer(120, ClockSpec(start_value=500))
    assert dec.read(999) == dec.read(999)
