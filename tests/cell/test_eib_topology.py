"""EIB ring-topology tests: hop distances and placement latency."""

import pytest

from repro.cell.config import DmaTimings
from repro.cell.eib import Eib
from repro.kernel import Simulator


def make_eib(n_spes=8, **overrides):
    sim = Simulator()
    return sim, Eib(sim, DmaTimings(**overrides), n_spes=n_spes)


def test_ring_positions_cover_all_units():
    __, eib = make_eib(n_spes=4)
    assert set(eib.ring_position) == {"ppe", "spe0", "spe1", "spe2", "spe3", "mic"}


def test_hop_distance_symmetric_and_shortest():
    __, eib = make_eib(n_spes=8)  # ring of 10 units
    assert eib.hops("spe0", "spe0") == 0
    assert eib.hops("spe0", "spe1") == 1
    assert eib.hops("spe1", "spe0") == 1
    # ppe (pos 0) to mic (pos 9): one hop the short way round.
    assert eib.hops("ppe", "mic") == 1
    # spe0 (pos 1) to spe7 (pos 8): min(7, 3) = 3.
    assert eib.hops("spe0", "spe7") == 3


def test_unknown_unit_rejected():
    __, eib = make_eib()
    with pytest.raises(ValueError, match="unknown EIB unit"):
        eib.hops("spe0", "gpu")


def test_transfer_cycles_include_hops():
    __, eib = make_eib(eib_command_latency=50, eib_bytes_per_cycle=8,
                       eib_hop_latency=4)
    base = eib.transfer_cycles(80, hops=0)
    assert eib.transfer_cycles(80, hops=3) == base + 12


def test_transfer_duration_depends_on_placement():
    sim, eib = make_eib(n_spes=8, eib_command_latency=0,
                        eib_bytes_per_cycle=8, eib_hop_latency=10)
    ends = {}

    def move(name, src, dst):
        yield from eib.transfer(80, requester=name, src=src, dst=dst)
        ends[name] = sim.now

    sim.spawn(move("near", "spe0", "spe1"))
    sim.run()
    t_near = ends["near"]
    sim2, eib2 = make_eib(n_spes=8, eib_command_latency=0,
                          eib_bytes_per_cycle=8, eib_hop_latency=10)

    def move2():
        yield from eib2.transfer(80, requester="far", src="spe0", dst="spe7")
        ends["far"] = sim2.now

    sim2.spawn(move2())
    sim2.run()
    assert ends["far"] - t_near == (3 - 1) * 10


def test_zero_hop_latency_disables_placement_effect():
    __, eib = make_eib(eib_hop_latency=0)
    assert eib.transfer_cycles(80, hops=0) == eib.transfer_cycles(80, hops=4)
