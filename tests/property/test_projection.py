"""Property: a masked decode is a projection of the full decode.

Projection pushdown must be invisible in results: for any chunk, any
payload version, any column mask, and either codec implementation,
the columns a masked decode serves are byte-identical to the same
columns of the full decode — and the *unrequested* columns, which a
lazy chunk materializes on first access, are identical too.  The
scalar codec (``REPRO_SCALAR_CODEC=1``) and the no-compression hatch
(``REPRO_NO_COMPRESS=1``) are part of the matrix: the fast paths are
only trusted because these oracles agree.

Also here: the v6 corrupt-section contract.  The frame CRC covers the
stored bytes, so on-disk corruption of *any* section fails a strict
read before decompression regardless of the mask; at payload level
(post-CRC, e.g. salvage or direct payload decode) a damaged section
that the mask never touches costs nothing, and first access raises
exactly the error the full decode raises.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.pdt import codec
from repro.pdt.colenc import decode_chunk_payload, encode_chunk_payload
from repro.pdt.events import SIDE_PPE, SIDE_SPE, code_for_kind
from repro.pdt.format import (
    _V5_PAYLOAD,
    _V6_SECTION,
    V6_SECTION_COUNT,
    VERSION_COMPRESSED,
    VERSION_SECTIONED,
    TraceFormatError,
)
from repro.pdt.store import CHUNK_COLUMNS, ColumnChunk, LazyChunk

SPECS = [
    code_for_kind(SIDE_SPE, name)
    for name in ("mfc_get", "mfc_put", "wait_tag_begin", "wait_tag_end",
                 "sync", "user_marker")
] + [
    code_for_kind(SIDE_PPE, name)
    for name in ("context_create", "context_run_begin", "context_run_end")
]

record = st.tuples(
    st.integers(min_value=0, max_value=len(SPECS) - 1),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=0xFFFF_FFFF),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(min_value=-(1 << 40), max_value=1 << 40),
)

#: Masks worth drawing: empty (row count only), singles of each lazy
#: column, the static trio, a mixed pair, and the full set (which the
#: decoder normalizes back to an eager decode).
MASKS = [
    frozenset(),
    frozenset({"side", "code"}),  # count-by-event: core stays deferred
    frozenset({"side", "code", "core"}),
    frozenset({"raw_ts"}),
    frozenset({"seq"}),
    frozenset({"values"}),
    frozenset({"raw_ts", "values"}),
    frozenset({"side", "seq", "values"}),
    frozenset(CHUNK_COLUMNS),
]


def build_chunk(draws):
    chunk = ColumnChunk()
    for spec_i, core, seq, raw, seed in draws:
        spec = SPECS[spec_i]
        values = tuple(seed + j for j in range(len(spec.fields)))
        chunk.append(spec.side, spec.code, core, seq, raw, values)
    return chunk


def assert_projection(full, got, chunk):
    """``got`` (a masked decode) must project ``full`` exactly —
    including the columns the mask skipped, which materialize lazily."""
    assert len(got) == len(chunk)
    for name in ("side", "code", "core", "seq", "raw_ts", "values",
                 "val_off", "truth"):
        want = getattr(full, name)
        have = getattr(got, name)
        assert list(have) == list(want), name
        assert have.typecode == want.typecode, name


def _env(name, fn, *args):
    os.environ[name] = "1"
    try:
        return fn(*args)
    finally:
        del os.environ[name]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(record, max_size=80),
    st.sampled_from([VERSION_COMPRESSED, VERSION_SECTIONED]),
    st.sampled_from(MASKS),
)
def test_masked_decode_projects_the_full_decode(draws, version, mask):
    chunk = build_chunk(draws)
    payload = encode_chunk_payload(chunk, version)
    full = decode_chunk_payload(payload, len(chunk), version)
    assert_projection(full, chunk, chunk)
    masked = decode_chunk_payload(payload, len(chunk), version, mask)
    assert_projection(full, masked, chunk)
    scalar = _env(
        "REPRO_SCALAR_CODEC",
        decode_chunk_payload, payload, len(chunk), version, mask,
    )
    assert_projection(full, scalar, chunk)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(record, max_size=60),
    st.sampled_from([VERSION_COMPRESSED, VERSION_SECTIONED]),
    st.sampled_from(MASKS),
)
def test_no_compress_hatch_masked_decode_projects(draws, version, mask):
    chunk = build_chunk(draws)
    payload = _env("REPRO_NO_COMPRESS", encode_chunk_payload, chunk, version)
    full = decode_chunk_payload(payload, len(chunk), version)
    assert_projection(full, chunk, chunk)
    masked = decode_chunk_payload(payload, len(chunk), version, mask)
    assert_projection(full, masked, chunk)
    scalar = _env(
        "REPRO_SCALAR_CODEC",
        decode_chunk_payload, payload, len(chunk), version, mask,
    )
    assert_projection(full, scalar, chunk)


@settings(max_examples=40, deadline=None)
@given(st.lists(record, max_size=60), st.sampled_from(MASKS))
def test_v4_record_stream_masked_decode_projects(draws, mask):
    """The pre-v5 read path honors masks too: the stream is still
    walked end to end, but the per-column gathers defer."""
    from repro.pdt.handle import _decode_chunk
    from repro.pdt.format import VERSION_INDEXED

    chunk = build_chunk(draws)
    stream = codec.encode_batch(chunk)
    full = _decode_chunk(stream, 0, len(chunk), len(stream),
                         VERSION_INDEXED)
    assert_projection(full, chunk, chunk)
    masked = _decode_chunk(stream, 0, len(chunk), len(stream),
                           VERSION_INDEXED, mask)
    assert_projection(full, masked, chunk)
    scalar = _env(
        "REPRO_SCALAR_CODEC",
        _decode_chunk, stream, 0, len(chunk), len(stream),
        VERSION_INDEXED, mask,
    )
    assert_projection(full, scalar, chunk)


@settings(max_examples=60, deadline=None)
@given(st.lists(record, max_size=80))
def test_v6_round_trips_and_codec_paths_agree(draws):
    chunk = build_chunk(draws)
    payload = encode_chunk_payload(chunk, VERSION_SECTIONED)
    assert _env(
        "REPRO_SCALAR_CODEC", encode_chunk_payload, chunk, VERSION_SECTIONED
    ) == payload
    decoded = decode_chunk_payload(payload, len(chunk), VERSION_SECTIONED)
    for name in ("side", "code", "core", "seq", "raw_ts", "values"):
        assert bytes(getattr(decoded, name)) == bytes(getattr(chunk, name))
    enc, outer_codec, reserved, packed = _V5_PAYLOAD.unpack_from(payload)
    assert outer_codec == 0 and reserved == 0
    table_end = _V5_PAYLOAD.size + V6_SECTION_COUNT * _V6_SECTION.size
    decoded_total = 0
    stored_total = 0
    for i in range(V6_SECTION_COUNT):
        codec_id, flags, res, stored_len, decoded_len = _V6_SECTION.unpack_from(
            payload, _V5_PAYLOAD.size + i * _V6_SECTION.size
        )
        assert flags == 0 and res == 0
        decoded_total += decoded_len
        stored_total += stored_len
    assert decoded_total == packed
    assert table_end + stored_total == len(payload)


def _sectioned_payload():
    """A chunk whose raw_ts section is certainly zlib-compressed."""
    chunk = ColumnChunk()
    spec = code_for_kind(SIDE_SPE, "mfc_get")
    values = tuple(range(len(spec.fields)))
    for i in range(512):
        chunk.append(spec.side, spec.code, i % 4, i, 1000 + 8 * i, values)
    payload = encode_chunk_payload(chunk, VERSION_SECTIONED)
    codec_id = payload[_V5_PAYLOAD.size]  # section 0 = raw_ts
    assert codec_id != 0, "test premise: raw_ts section must be compressed"
    return chunk, payload


@pytest.mark.skipif(
    bool(os.environ.get("REPRO_FULL_DECODE")),
    reason="asserts a damaged section stays deferred; the hatch decodes it",
)
def test_v6_corrupt_unrequested_section_costs_nothing():
    chunk, payload = _sectioned_payload()
    clean = decode_chunk_payload(payload, len(chunk), VERSION_SECTIONED)
    body_start = _V5_PAYLOAD.size + V6_SECTION_COUNT * _V6_SECTION.size
    bad = bytearray(payload)
    bad[body_start + 3] ^= 0xFF  # inside the raw_ts stored body
    bad = bytes(bad)
    # The full decode inflates every section and fails.
    with pytest.raises(TraceFormatError) as full_err:
        decode_chunk_payload(bad, len(chunk), VERSION_SECTIONED)
    # A mask that never touches raw_ts decodes fine and identically.
    masked = decode_chunk_payload(
        bad, len(chunk), VERSION_SECTIONED, frozenset({"side", "values"})
    )
    for name in ("side", "code", "core", "values", "val_off"):
        assert list(getattr(masked, name)) == list(getattr(clean, name))
    # First access of the damaged column raises the full decode's error.
    with pytest.raises(TraceFormatError) as lazy_err:
        masked.raw_ts
    assert str(lazy_err.value) == str(full_err.value)


def test_v6_section_table_is_validated_eagerly_under_any_mask():
    """Structural damage to the section *table* never hides behind a
    mask: stored-length overruns and bad reserved bits fail up front."""
    chunk, payload = _sectioned_payload()
    narrow = frozenset({"side"})
    # Nonzero reserved bits in an unrequested section's table entry.
    bad = bytearray(payload)
    bad[_V5_PAYLOAD.size + 1] = 1  # flags of section 0 (raw_ts)
    with pytest.raises(TraceFormatError, match="reserved bits"):
        decode_chunk_payload(bytes(bad), len(chunk), VERSION_SECTIONED,
                             narrow)
    # A stored length that overruns the payload.
    bad = bytearray(payload)
    _V6_SECTION.pack_into(
        bad, _V5_PAYLOAD.size,
        *(lambda c, f, r, s, d: (c, f, r, s + 10_000, d))(
            *_V6_SECTION.unpack_from(payload, _V5_PAYLOAD.size)
        ),
    )
    with pytest.raises(TraceFormatError):
        decode_chunk_payload(bytes(bad), len(chunk), VERSION_SECTIONED,
                             narrow)
    # A nonzero outer codec id on a v6 columnar payload.
    bad = bytearray(payload)
    bad[1] = 1
    with pytest.raises(TraceFormatError, match="outer codec"):
        decode_chunk_payload(bytes(bad), len(chunk), VERSION_SECTIONED,
                             narrow)


@pytest.mark.skipif(
    bool(os.environ.get("REPRO_FULL_DECODE")),
    reason="asserts the empty mask yields a lazy chunk; the hatch is eager",
)
def test_truth_column_defaults_and_projection_has_row_count():
    """An empty mask still yields a chunk with the right row count and
    a default truth column (all -1), matching the eager decode."""
    chunk, payload = _sectioned_payload()
    empty = decode_chunk_payload(payload, len(chunk), VERSION_SECTIONED,
                                 frozenset())
    assert isinstance(empty, LazyChunk)
    assert len(empty) == len(chunk)
    assert list(empty.truth) == [-1] * len(chunk)
