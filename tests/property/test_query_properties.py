"""Property: tq answers are independent of how the trace is served.

For randomized traces and randomized predicates, the query pipeline
must return byte-identical results over:

* the in-memory store (computed zone maps),
* a v4 file (index trailer, chunks pruned by seeking),
* a v3 file (no index — full scan),
* the same v3 file with a backfilled ``.pdtx`` sidecar,
* a v2 file (pre-CRC chunked layout, full scan),

and all of them must equal an independent brute-force reference that
scans every record with no tq machinery at all.  A v1 legacy file
(which re-groups records into per-core streams, so chunk order is not
preserved) must agree up to record order and exactly on aggregates.
"""

import dataclasses
import io
import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.pdt.correlate import ClockCorrelator
from repro.pdt.events import SIDE_PPE, SIDE_SPE, code_for_kind
from repro.pdt.reader import open_trace
from repro.pdt.store import ColumnStore, StoreSource
from repro.pdt.trace import TraceHeader
from repro.pdt.writer import write_trace
from repro.tq import Query, build_sidecar, open_indexed

DIVIDER = 120
DEC_START = 0xF000_0000  # decrementers count DOWN from here
SYNC = code_for_kind(SIDE_SPE, "sync")
SPE_KINDS = [
    code_for_kind(SIDE_SPE, name)
    for name in ("mfc_get", "mfc_put", "wait_tag_begin", "wait_tag_end",
                 "user_marker")
]
PPE_KINDS = [
    code_for_kind(SIDE_PPE, name)
    for name in ("context_create", "context_run_begin", "context_run_end")
]
QUERY_KINDS = ("mfc_get", "mfc_put", "user_marker", "context_create")

# One drawn event: producing core (0 = PPE), kind selector, timebase
# ticks since the previous event, payload seed.
event = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=1 << 20),
)

# A drawn query: optional time window (as tick bounds), SPE, side, kind.
query_spec = st.tuples(
    st.one_of(st.none(), st.tuples(st.integers(0, 2200), st.integers(0, 2200))),
    st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    st.one_of(st.none(), st.sampled_from((SIDE_PPE, SIDE_SPE))),
    st.one_of(st.none(), st.sampled_from(QUERY_KINDS)),
)


def build_store(draws):
    """Materialize drawn events as a valid multi-chunk column store."""
    recs = []
    tick = 1
    spe_cores = set()
    for core_sel, kind_sel, dt, seed in draws:
        tick += dt
        if core_sel == 0:
            spec = PPE_KINDS[kind_sel % len(PPE_KINDS)]
            side, core = SIDE_PPE, 0
        else:
            spec = SPE_KINDS[kind_sel % len(SPE_KINDS)]
            side, core = SIDE_SPE, core_sel - 1
            spe_cores.add(core)
        values = tuple((seed + j) % 65536 for j in range(len(spec.fields)))
        recs.append((tick, side, spec.code, core, values))
    # Every SPE core brackets its stream with sync records so the
    # clocks correlate (tb_raw = timebase tick; the decrementer here
    # ticks at timebase rate, offset per core).
    end = tick + 1
    for core in sorted(spe_cores):
        recs.insert(0, (0, SIDE_SPE, SYNC.code, core, (0,)))
        recs.append((end, SIDE_SPE, SYNC.code, core, (end,)))
    store = ColumnStore(chunk_records=5)
    seqs = {}
    for tick, side, code, core, values in recs:
        if side == SIDE_SPE:
            dec0 = DEC_START + core * 0x1_0001
            raw = (dec0 - tick) % (1 << 32)
        else:
            raw = tick
        seq = seqs.get((side, core), 0)
        seqs[(side, core)] = seq + 1
        store.append(side, code, core, seq, raw, values)
    return store


def header(version):
    return TraceHeader(
        n_spes=4, timebase_divider=DIVIDER, spu_clock_hz=3.2e9,
        groups_bitmap=0b111111, buffer_bytes=16384, version=version,
    )


PROJECTION = ("time", "side", "core", "code", "seq", "raw_ts")


def brute_force(source, window, spe, side, kind):
    """Reference scan: no Predicate, no IndexedSource, no Query."""
    correlator = ClockCorrelator(source)
    wanted = (
        {(s.side, s.code) for s in SPE_KINDS + PPE_KINDS + [SYNC]
         if str(s.kind) == kind}
        if kind is not None else None
    )
    out = []
    for chunk in source.iter_chunks():
        for i in range(len(chunk)):
            rside, code, core = chunk.side[i], chunk.code[i], chunk.core[i]
            time = correlator.place_value(rside, core, chunk.raw_ts[i])
            if window is not None and not (window[0] <= time <= window[1]):
                continue
            if spe is not None and (rside != SIDE_SPE or core != spe):
                continue
            if side is not None and rside != side:
                continue
            if wanted is not None and (rside, code) not in wanted:
                continue
            out.append((time, rside, core, code, chunk.seq[i], chunk.raw_ts[i]))
    return out


def run_query(source, window, spe, side, kind):
    query = Query(source).where(
        t0=window[0] if window else None,
        t1=window[1] if window else None,
        spe=spe, side=side, event=kind,
    )
    rows = list(query.project(*PROJECTION).records())
    aggs = (
        query.groupby("side", "core", "kind")
        .agg(n="count", t_min=("min", "time"), t_max=("max", "time"))
        .run()
    )
    return rows, aggs


@settings(max_examples=20, deadline=None)
@given(st.lists(event, min_size=0, max_size=40), query_spec)
def test_every_serving_path_matches_brute_force(draws, spec):
    window, spe, side, kind = spec
    if window is not None:
        # Tick bounds -> corrected-cycle bounds, normalized lo <= hi.
        lo, hi = sorted(window)
        window = (lo * DIVIDER, hi * DIVIDER)
    store = build_store(draws)
    memory = StoreSource(header(4), store)
    expected = brute_force(memory, window, spe, side, kind)

    with tempfile.TemporaryDirectory() as tmp:
        paths = {}
        for version in (2, 3, 4, 5):
            paths[version] = os.path.join(tmp, f"v{version}.pdt")
            write_trace(StoreSource(header(version), store), paths[version])
        legacy = io.BytesIO()
        write_trace(StoreSource(header(1), store), legacy)

        rows, aggs = run_query(memory, window, spe, side, kind)
        assert rows == expected

        for version in (2, 3, 4, 5):
            file_rows, file_aggs = run_query(
                open_trace(paths[version]), window, spe, side, kind
            )
            assert file_rows == expected, f"v{version} diverged"
            assert file_aggs == aggs, f"v{version} aggregates diverged"

        # Backfilled sidecar on the index-free v3 file.
        build_sidecar(paths[3])
        sidecar_source = open_indexed(paths[3])
        if store.n_records:
            assert sidecar_source.zone_maps() is not None
        sidecar_rows, sidecar_aggs = run_query(
            sidecar_source, window, spe, side, kind
        )
        assert sidecar_rows == expected
        assert sidecar_aggs == aggs

        # v1 re-groups records into per-core streams: same multiset of
        # records, identical aggregates.
        v1_rows, v1_aggs = run_query(
            open_trace(legacy.getvalue()), window, spe, side, kind
        )
        assert sorted(v1_rows) == sorted(expected)
        assert v1_aggs == aggs


@settings(max_examples=20, deadline=None)
@given(st.lists(event, min_size=1, max_size=40), query_spec)
def test_pruning_is_sound_and_chunk_aligned(draws, spec):
    """Whatever the predicate, the pruned chunk set is a superset of
    the chunks holding matches — pruning may waste a decode, never
    drop a record."""
    from repro.pdt.index import build_zone_maps
    from repro.tq import IndexedSource, Predicate

    window, spe, side, kind = spec
    if window is not None:
        lo, hi = sorted(window)
        window = (lo * DIVIDER, hi * DIVIDER)
    store = build_store(draws)
    memory = StoreSource(header(4), store)
    correlator = ClockCorrelator(memory)
    predicate = Predicate().refine(
        t0=window[0] if window else None,
        t1=window[1] if window else None,
        spe=spe, side=side, event=kind,
    )
    zones = build_zone_maps(memory.iter_chunks(), correlator)
    for zone, chunk in zip(zones, memory.iter_chunks()):
        if predicate.admits(zone):
            continue
        # A refused chunk must hold no matching record.
        for i in range(len(chunk)):
            rside, code, core = chunk.side[i], chunk.code[i], chunk.core[i]
            if not predicate.matches_static(rside, code, core):
                continue
            time = correlator.place_value(rside, core, chunk.raw_ts[i])
            assert not predicate.matches_time(time), (
                f"zone refused a chunk holding a matching record: "
                f"{(rside, code, core, time)} vs {zone}"
            )
    pruned = IndexedSource(memory, predicate, correlator)
    served = sum(len(c) for c in pruned.iter_chunks())
    assert served == pruned.n_records
    assert pruned.stats.total_chunks == len(zones)
