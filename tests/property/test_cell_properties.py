"""Property-based tests on Cell substrate invariants."""

from hypothesis import given, settings, strategies as st

from repro.cell import CellConfig, CellMachine
from repro.cell.atomic import LOCK_LINE, ReservationStation
from repro.cell.clock import Decrementer, TimeBase
from repro.cell.config import ClockSpec
from repro.cell.memory import MainMemory
from repro.cell.mfc import DmaDirection


# ----------------------------------------------------------------------
# clocks
# ----------------------------------------------------------------------
@settings(max_examples=100)
@given(
    divider=st.integers(min_value=1, max_value=1000),
    t1=st.integers(min_value=0, max_value=10**12),
    t2=st.integers(min_value=0, max_value=10**12),
)
def test_timebase_monotone_nondecreasing(divider, t1, t2):
    tb = TimeBase(divider)
    lo, hi = sorted((t1, t2))
    assert tb.read(lo) <= tb.read(hi)


@settings(max_examples=100)
@given(
    divider=st.integers(min_value=1, max_value=1000),
    offset=st.integers(min_value=0, max_value=10**6),
    drift=st.floats(min_value=-2000, max_value=2000, allow_nan=False),
    t1=st.integers(min_value=0, max_value=10**10),
    t2=st.integers(min_value=0, max_value=10**10),
)
def test_decrementer_elapsed_ticks_consistent(divider, offset, drift, t1, t2):
    """elapsed_ticks over raw readings equals the tick-count delta."""
    dec = Decrementer(divider, ClockSpec(offset_cycles=offset, drift_ppm=drift))
    lo, hi = sorted((t1, t2))
    raw_lo, raw_hi = dec.read(lo), dec.read(hi)
    elapsed = dec.elapsed_ticks(raw_lo, raw_hi)
    # Reconstruct expected tick delta directly.
    def ticks(t):
        e = t - offset
        return 0 if e <= 0 else int(e / dec.period_cycles)

    assert elapsed == (ticks(hi) - ticks(lo)) % (1 << 32)


# ----------------------------------------------------------------------
# allocator
# ----------------------------------------------------------------------
@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4096),
            st.sampled_from([16, 32, 64, 128, 256]),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_allocator_no_overlap_and_aligned(requests):
    mem = MainMemory(1 << 20)
    regions = []
    for size, align in requests:
        addr = mem.allocate(size, align)
        assert addr % align == 0
        for (other_addr, other_size) in regions:
            assert addr + size <= other_addr or other_addr + other_size <= addr
        regions.append((addr, size))


# ----------------------------------------------------------------------
# reservation station
# ----------------------------------------------------------------------
@settings(max_examples=50)
@given(st.lists(
    st.tuples(
        st.sampled_from(["reserve", "putllc", "store"]),
        st.integers(min_value=0, max_value=7),      # spe
        st.integers(min_value=0, max_value=4096),   # address
    ),
    max_size=60,
))
def test_reservation_station_invariants(ops):
    """A PUTLLC only ever succeeds against this SPE's current line,
    and at most one reservation exists per SPE."""
    station = ReservationStation()
    model = {}  # spe -> line (mirror implementation independently)
    for op, spe, addr in ops:
        line = addr & ~(LOCK_LINE - 1)
        if op == "reserve":
            station.reserve(spe, addr)
            model[spe] = line
        elif op == "putllc":
            expected = model.get(spe) == line
            assert station.conditional_store(spe, addr) == expected
            if expected:
                del model[spe]
                for other, other_line in list(model.items()):
                    if other_line == line:
                        del model[other]
        else:  # plain store of 16 bytes
            station.notify_store(addr, 16)
            first = line
            last = (addr + 15) & ~(LOCK_LINE - 1)
            for other, other_line in list(model.items()):
                if first <= other_line <= last:
                    del model[other]
        for spe_id, reserved in model.items():
            assert station.reservation_of(spe_id) == reserved


# ----------------------------------------------------------------------
# DMA data integrity
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=16, max_size=16), min_size=1, max_size=64),
    tag=st.integers(min_value=0, max_value=30),
)
def test_dma_round_trip_preserves_bytes(chunks, tag):
    payload = b"".join(chunks)  # always a 16-byte multiple
    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 20))
    spe = machine.spe(0)
    src = machine.memory.allocate(len(payload), align=16)
    dst = machine.memory.allocate(len(payload), align=16)
    machine.memory.write(src, payload)

    def prog():
        get_cmd = spe.mfc.make_command(
            DmaDirection.GET, 0, src, len(payload), tag=tag
        )
        completion = yield from spe.mfc.issue(get_cmd)
        yield completion
        put_cmd = spe.mfc.make_command(
            DmaDirection.PUT, 0, dst, len(payload), tag=tag
        )
        completion = yield from spe.mfc.issue(put_cmd)
        yield completion

    machine.spawn(prog())
    machine.run()
    assert machine.memory.read(dst, len(payload)) == payload
