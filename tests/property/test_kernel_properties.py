"""Property-based tests on the simulation kernel's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.kernel import Channel, Delay, Event, Resource, Simulator


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=40))
def test_time_never_runs_backwards(delays):
    sim = Simulator()
    observed = []

    def proc(delay):
        yield Delay(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.spawn(proc(delay))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(delays)


@settings(max_examples=50)
@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=5),
)
def test_resource_conservation(hold_times, capacity):
    """At no instant do more than `capacity` holders exist, and every
    acquirer eventually runs."""
    sim = Simulator()
    res = Resource(sim, capacity)
    active = []
    peak = []
    completed = []

    def user(i, hold):
        yield res.acquire()
        active.append(i)
        peak.append(len(active))
        yield Delay(hold)
        active.remove(i)
        res.release()
        completed.append(i)

    for i, hold in enumerate(hold_times):
        sim.spawn(user(i, hold))
    sim.run()
    assert max(peak) <= capacity
    assert sorted(completed) == list(range(len(hold_times)))
    assert res.in_use == 0


@settings(max_examples=50)
@given(
    items=st.lists(st.integers(), min_size=0, max_size=50),
    capacity=st.integers(min_value=1, max_value=8),
    consumer_delay=st.integers(min_value=0, max_value=20),
)
def test_channel_conserves_and_orders_items(items, capacity, consumer_delay):
    sim = Simulator()
    chan = Channel(sim, capacity)
    received = []

    def producer():
        for item in items:
            yield chan.put(item)

    def consumer():
        yield Delay(consumer_delay)
        for __ in items:
            received.append((yield chan.get()))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert received == items
    assert chan.count == 0


@settings(max_examples=30)
@given(
    n_waiters=st.integers(min_value=1, max_value=10),
    trigger_at=st.integers(min_value=0, max_value=100),
)
def test_event_wakes_every_waiter_exactly_once(n_waiters, trigger_at):
    sim = Simulator()
    event = Event(sim)
    woken = []

    def waiter(i):
        value = yield event
        woken.append((i, value, sim.now))

    for i in range(n_waiters):
        sim.spawn(waiter(i))

    def firer():
        yield Delay(trigger_at)
        event.trigger("v")

    sim.spawn(firer())
    sim.run()
    assert len(woken) == n_waiters
    assert all(value == "v" and t == trigger_at for (_, value, t) in woken)


@settings(max_examples=30)
@given(st.data())
def test_deterministic_replay(data):
    """Any random mix of processes produces the identical trace twice."""
    n = data.draw(st.integers(min_value=1, max_value=10))
    specs = [
        (
            data.draw(st.integers(min_value=0, max_value=50)),
            data.draw(st.integers(min_value=1, max_value=5)),
        )
        for __ in range(n)
    ]

    def run_once():
        sim = Simulator()
        chan = Channel(sim, 4)
        log = []

        def worker(i, start, steps):
            yield Delay(start)
            for s in range(steps):
                yield chan.put((i, s))
                log.append(("put", i, s, sim.now))

        def drainer(total):
            for __ in range(total):
                item = yield chan.get()
                log.append(("got", item, sim.now))

        total = sum(steps for (_, steps) in specs)
        for i, (start, steps) in enumerate(specs):
            sim.spawn(worker(i, start, steps))
        sim.spawn(drainer(total))
        sim.run()
        return log

    assert run_once() == run_once()
