"""Property: incremental zone maps == the one-shot trailer, at every
prefix.

:class:`repro.live.IncrementalIndex` is fed sealed chunks one at a
time; the writer builds its index once over the whole stream.  For any
chunking of any workload, after any number of sealed chunks *k*, the
incremental snapshot must encode — through the real
:func:`~repro.pdt.index.encode_index` — to exactly the trailer bytes a
one-shot writer puts on disk for a closed trace holding those *k*
chunks.  Not equivalent: identical, CRC and all.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pdt.format import VERSION_COMPRESSED, VERSION_INDEXED
from repro.pdt.index import encode_index, index_size
from repro.live import IncrementalIndex, StepWriter
from tests.live.util import workload_source

WORKLOAD_POOL = ("matmul", "streaming", "montecarlo")


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    """Reusable sources (the expensive part) plus a scratch dir whose
    files each example overwrites."""
    tmp = tmp_path_factory.mktemp("incr-index")
    sources = {
        (name, version): workload_source(name, version)
        for name in WORKLOAD_POOL
        for version in (VERSION_INDEXED, VERSION_COMPRESSED)
    }
    return tmp, sources


def _trailer_bytes(path: str, n_chunks: int) -> bytes:
    with open(path, "rb") as fh:
        blob = fh.read()
    return blob[len(blob) - index_size(n_chunks):]


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(WORKLOAD_POOL),
    version=st.sampled_from((VERSION_INDEXED, VERSION_COMPRESSED)),
    chunk_records=st.integers(min_value=3, max_value=24),
    data=st.data(),
)
def test_incremental_snapshot_matches_one_shot_trailer(
    harness, name, version, chunk_records, data
):
    tmp, sources = harness
    writer = StepWriter(
        sources[(name, version)], str(tmp / "live.pdt"), chunk_records
    )
    incremental = IncrementalIndex()
    divider = writer.header.timebase_divider
    snap = str(tmp / "snap.pdt")
    fed = 0
    while not writer.exhausted:
        writer.write_chunks(data.draw(st.integers(1, 3), label="step"))
        while fed < writer.n_sealed:
            incremental.observe_chunk(writer.chunks[fed])
            fed += 1
        # The incremental prefix trailer vs the one a one-shot writer
        # emits for a closed trace of exactly these chunks.
        writer.snapshot(snap)
        encoded = encode_index(
            incremental.snapshot(divider), incremental.total_records
        )
        assert encoded == _trailer_bytes(snap, writer.n_sealed), (
            name, version, chunk_records, fed,
        )
    # Totals agree with the stream, and the *final* snapshot equals the
    # real file's trailer after close — the live path converges to the
    # batch artifact bit for bit.
    assert incremental.total_records == writer.sealed_records
    writer.close()
    final = encode_index(
        incremental.snapshot(divider), incremental.total_records
    )
    assert final == _trailer_bytes(writer.path, writer.n_sealed)
    # Snapshots are re-entrant: taking one more changes nothing.
    assert final == encode_index(
        incremental.snapshot(divider), incremental.total_records
    )
