"""Model-based testing of the MFC: random programs vs a simple oracle.

Hypothesis generates random interleavings of DMA issues and tag-group
waits; an independent bookkeeping model predicts what each wait is
allowed to observe.  The invariants:

* a wait-all on a mask resumes no earlier than the completion of every
  command issued before it on those tags, and every such command is
  complete when it resumes;
* the MFC's own ground-truth timestamps are ordered
  (issue <= dispatch < complete);
* every byte lands where it was sent (distinct regions per command).
"""

from hypothesis import given, settings, strategies as st

from repro.cell import CellConfig, CellMachine
from repro.cell.mfc import DmaDirection

op_issue = st.tuples(
    st.just("issue"),
    st.sampled_from([DmaDirection.GET, DmaDirection.PUT]),
    st.integers(min_value=0, max_value=3),  # tag
    st.sampled_from([16, 64, 256, 1024, 4096]),  # size
)
op_wait = st.tuples(
    st.just("wait"),
    st.integers(min_value=1, max_value=15),  # mask over tags 0..3
    st.sampled_from(["all", "any"]),
    st.just(0),
)
program_strategy = st.lists(st.one_of(op_issue, op_wait), min_size=1, max_size=25)


@settings(max_examples=40, deadline=None)
@given(ops=program_strategy)
def test_random_programs_respect_tag_semantics(ops):
    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 22))
    spe = machine.spe(0)
    mfc = spe.mfc

    # Pre-stage distinct patterns so GETs are checkable.
    issues = [op for op in ops if op[0] == "issue"]
    regions = []
    ls_cursor = 0
    for i, (_, direction, tag, size) in enumerate(issues):
        ea = machine.memory.allocate(size, align=16)
        pattern = bytes([(i * 7 + 1) % 256]) * size
        if direction is DmaDirection.GET:
            machine.memory.write(ea, pattern)
        else:
            spe.ls.write(ls_cursor, pattern)
        regions.append((ea, ls_cursor, pattern))
        ls_cursor += size

    observed_waits = []  # (mask, mode, resume_time, issued_before)
    issued = []  # commands in issue order

    def prog():
        issue_index = 0
        for op in ops:
            if op[0] == "issue":
                __, direction, tag, size = op
                ea, ls, __ = regions[issue_index]
                command = mfc.make_command(direction, ls, ea, size, tag=tag)
                yield from mfc.issue(command)
                issued.append(command)
                issue_index += 1
            else:
                __, mask, mode, __ = op
                yield mfc.tag_wait_event(mask, mode)
                observed_waits.append(
                    (mask, mode, machine.sim.now, list(issued))
                )
        # Drain everything before the program ends.
        yield mfc.tag_wait_event(0b1111, "all")

    machine.spawn(prog())
    machine.run()

    # Invariant 1: ground-truth timestamp ordering.
    for command in mfc.completed_commands:
        assert command.issue_time <= command.dispatch_time < command.complete_time

    # Invariant 2: every command completed, nothing outstanding.
    assert len(mfc.completed_commands) == len(issues)
    for tag in range(4):
        assert mfc.outstanding_in_tag(tag) == 0

    # Invariant 3: wait-all semantics vs the oracle.
    for mask, mode, resume_time, issued_before in observed_waits:
        covered = [c for c in issued_before if mask & (1 << c.tag)]
        if mode == "all":
            for command in covered:
                assert command.complete_time <= resume_time, (
                    f"wait-all(mask={mask:#x}) resumed at {resume_time} before "
                    f"command {command.cmd_id} completed at {command.complete_time}"
                )
        elif covered:
            # wait-any: at least one covered tag fully quiescent at resume.
            quiescent = any(
                all(
                    c.complete_time <= resume_time
                    for c in covered
                    if c.tag == tag
                )
                for tag in range(4)
                if mask & (1 << tag)
            )
            assert quiescent

    # Invariant 4: data integrity for every transfer.
    for command, (ea, ls, pattern) in zip(issued, regions):
        if command.direction is DmaDirection.GET:
            assert spe.ls.read(ls, command.size) == pattern
        else:
            assert machine.memory.read(ea, command.size) == pattern
