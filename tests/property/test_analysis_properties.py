"""Property-based tests on PDT/TA invariants over randomized workloads."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.pdt import TraceConfig, read_trace
from repro.pdt.correlate import ClockCorrelator
from repro.pdt.events import SIDE_SPE, TraceRecord, code_for_kind
from repro.pdt.trace import Trace, TraceHeader
from repro.pdt.writer import trace_to_bytes
from repro.ta import analyze
from repro.ta.model import STATE_RUN, WAIT_STATES
from repro.ta.stats import TraceStatistics

from tests.pdt.util import dma_loop_program, run_workload, traced_machine


# ----------------------------------------------------------------------
# correlator recovers synthetic linear clock maps
# ----------------------------------------------------------------------
@settings(max_examples=40)
@given(
    start_value=st.integers(min_value=10**6, max_value=0xFFFF_FFFF),
    cycles_per_tick=st.floats(min_value=100.0, max_value=140.0, allow_nan=False),
    base_time=st.integers(min_value=0, max_value=10**9),
    n_sync=st.integers(min_value=2, max_value=20),
    gap_ticks=st.integers(min_value=100, max_value=10_000),
)
def test_correlator_recovers_synthetic_linear_map(
    start_value, cycles_per_tick, base_time, n_sync, gap_ticks
):
    """Build sync records from a known linear clock relation and check
    the least-squares fit reproduces it."""
    divider = 120
    header = TraceHeader(
        n_spes=1, timebase_divider=divider, spu_clock_hz=3.2e9,
        groups_bitmap=0b111111, buffer_bytes=16384,
    )
    trace = Trace(header=header)
    sync_spec = code_for_kind(SIDE_SPE, "sync")
    for i in range(n_sync):
        ticks = i * gap_ticks
        dec_raw = (start_value - ticks) % (1 << 32)
        global_cycles = base_time + ticks * cycles_per_tick
        tb_raw = int(global_cycles // divider)
        trace.add(
            TraceRecord.from_values(
                SIDE_SPE, sync_spec.code, 0, i, dec_raw, [tb_raw]
            )
        )
    fit = ClockCorrelator(trace).fits[0]
    # Slope recovered within the quantization the tb_raw floor adds.
    assert abs(fit.cycles_per_tick - cycles_per_tick) <= divider / gap_ticks + 0.5
    # Anchor placement within about one timebase tick.
    assert abs(fit.to_global(start_value) - base_time) <= 2 * divider


# ----------------------------------------------------------------------
# timeline invariants over randomized workload parameters
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    iterations=st.integers(min_value=1, max_value=12),
    size=st.sampled_from([256, 1024, 4096]),
    compute=st.integers(min_value=0, max_value=20_000),
    buffer_bytes=st.sampled_from([512, 1024, 4096]),
)
def test_reconstruction_invariants_hold_for_any_workload_shape(
    iterations, size, compute, buffer_bytes
):
    machine, rt, hooks = traced_machine(TraceConfig(buffer_bytes=buffer_bytes))
    run_workload(
        machine, rt,
        dma_loop_program(iterations=iterations, size=size, compute=compute),
        n_spes=2,
    )
    trace = hooks.to_trace()
    model = analyze(trace)
    for spe_id, core in model.cores.items():
        # Intervals tile the window exactly.
        cursor = core.window_start
        for interval in core.intervals:
            assert interval.start == cursor
            assert interval.state == STATE_RUN or interval.state in WAIT_STATES
            cursor = interval.end
        assert cursor == core.window_end
        # Every issued DMA became a span; all were observed (the
        # program waits on every transfer).
        assert len(core.dma_spans) == 2 * iterations
        assert all(span.observed for span in core.dma_spans)
        assert all(span.duration >= 0 for span in core.dma_spans)
    stats = TraceStatistics.from_model(model)
    for s in stats.per_spe.values():
        assert s.run_cycles + s.stall_cycles == s.window
        assert 0.0 <= s.utilization <= 1.0
        assert s.dma.total_bytes == 2 * iterations * size
    # The trace file round-trips losslessly.
    restored = read_trace(trace_to_bytes(trace))
    assert restored.n_records == trace.n_records


# ----------------------------------------------------------------------
# reader robustness: corrupted files never crash, they fail cleanly
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    flip_at=st.integers(min_value=0),
    flip_to=st.integers(min_value=0, max_value=255),
)
def test_reader_survives_single_byte_corruption(flip_at, flip_to):
    from repro.pdt.reader import TraceFormatError

    machine, rt, hooks = traced_machine()
    run_workload(machine, rt, dma_loop_program(iterations=2), n_spes=1)
    blob = bytearray(trace_to_bytes(hooks.to_trace()))
    position = flip_at % len(blob)
    blob[position] = flip_to
    try:
        restored = read_trace(bytes(blob))
    except (TraceFormatError, ValueError):
        return  # clean rejection is fine
    # Accepted: must still be structurally sound.
    assert restored.n_records >= 0
