"""Property: the codec is a bijection on its wire format.

For any record of any spec, encode -> decode -> encode must reproduce
the original bytes exactly — the chunked trace file depends on this
(re-writing a read trace must be a byte-identical copy), and so does
the LS-buffer read-back path.
"""

import io

from hypothesis import given, settings, strategies as st

from repro.pdt.codec import decode_fields, encode_fields
from repro.pdt.events import EVENT_SPECS
from repro.pdt.reader import open_trace
from repro.pdt.store import ColumnStore, StoreSource
from repro.pdt.trace import TraceHeader
from repro.pdt.writer import write_trace

_ALL_SPECS = sorted(EVENT_SPECS.values(), key=lambda s: (s.side, s.code))

i64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)

record_components = st.builds(
    lambda spec, core, seq, raw_ts, data: (
        spec.side,
        spec.code,
        core,
        seq,
        raw_ts,
        tuple(data.draw(i64) for __ in spec.fields),
    ),
    spec=st.sampled_from(_ALL_SPECS),
    core=st.integers(min_value=0, max_value=0xFFFF),
    seq=st.integers(min_value=0, max_value=0xFFFF_FFFF),
    raw_ts=st.integers(min_value=0, max_value=(1 << 64) - 1),
    data=st.data(),
)


@given(record_components)
def test_encode_decode_encode_is_byte_identical(components):
    side, code, core, seq, raw_ts, values = components
    blob = encode_fields(side, code, core, seq, raw_ts, values)
    decoded = decode_fields(blob, 0)
    assert decoded[:5] == (side, code, core, seq, raw_ts)
    assert tuple(decoded[5]) == values
    assert decoded[6] == len(blob)
    again = encode_fields(*decoded[:6])
    assert again == blob


@settings(max_examples=25, deadline=None)
@given(st.lists(record_components, min_size=0, max_size=40))
def test_file_round_trip_is_byte_identical(components):
    """write -> open -> write reproduces the chunked file bytes."""
    store = ColumnStore()
    seq_by_core = {}
    for side, code, core, __seq, raw_ts, values in components:
        # Streams must be in strict per-core sequence order to satisfy
        # trace validation; the free seq draw only matters for the
        # single-record codec property above.
        seq = seq_by_core.get((side, core), 0)
        seq_by_core[(side, core)] = seq + 1
        store.append(side, code, core, seq, raw_ts, values)
    header = TraceHeader(
        n_spes=8, timebase_divider=120, spu_clock_hz=3.2e9,
        groups_bitmap=0b111111, buffer_bytes=16384,
    )
    source = StoreSource(header, store)

    first = io.BytesIO()
    write_trace(source, first)
    second = io.BytesIO()
    write_trace(open_trace(first.getvalue()), second)
    assert second.getvalue() == first.getvalue()
