"""Property: every v5 column encoding is an exact bijection.

For arbitrary drawn columns (including non-monotone timestamps and
adversarial value mixes), each encoding must round-trip exactly, and
the scalar and vectorized implementations must be *byte-identical* in
both directions — the scalar path is the differential oracle for the
numpy kernels, so any divergence is a bug even when both round-trip.

The whole-payload layer is covered too: ``encode_chunk_payload`` /
``decode_chunk_payload`` over generated chunks of real event types,
with compression on (default) and off (``REPRO_NO_COMPRESS=1``).
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.pdt import codec
from repro.pdt.colenc import (
    decode_chunk_payload,
    drle_decode,
    drle_encode,
    dzv_decode,
    dzv_encode,
    encode_chunk_payload,
)
from repro.pdt.events import SIDE_PPE, SIDE_SPE, code_for_kind
from repro.pdt.format import TraceFormatError
from repro.pdt.store import ColumnChunk

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)

#: Deltas cluster near zero in real traces; mix tiny deltas with
#: arbitrary u64s so both the fast path and the wraparound path fire.
u64_column = st.lists(
    st.one_of(U64, st.integers(min_value=0, max_value=300)), max_size=200
)

#: Low-cardinality columns, like side/code/core: long runs, small dict.
small_column = st.lists(
    st.integers(min_value=0, max_value=7), max_size=200
)


def _with_scalar(fn, *args):
    """Run ``fn`` under the scalar reference implementation."""
    import os

    os.environ["REPRO_SCALAR_CODEC"] = "1"
    try:
        return fn(*args)
    finally:
        del os.environ["REPRO_SCALAR_CODEC"]


@settings(max_examples=200, deadline=None)
@given(u64_column)
def test_dzv_round_trips_and_paths_agree(values):
    encoded = dzv_encode(values)
    assert _with_scalar(dzv_encode, values) == encoded
    assert list(dzv_decode(encoded, len(values))) == values
    assert list(_with_scalar(dzv_decode, encoded, len(values))) == values


@settings(max_examples=200, deadline=None)
@given(small_column)
def test_drle_round_trips_and_paths_agree(values):
    encoded = drle_encode(values)
    assert _with_scalar(drle_encode, values) == encoded
    assert list(drle_decode(encoded, len(values))) == values
    assert list(_with_scalar(drle_decode, encoded, len(values))) == values


@settings(max_examples=100, deadline=None)
@given(u64_column)
def test_dzv_rejects_wrong_count(values):
    encoded = dzv_encode(values)
    for wrong in (len(values) + 1, max(0, len(values) - 1)):
        if wrong == len(values):
            continue
        with pytest.raises(TraceFormatError):
            dzv_decode(encoded, wrong)
        with pytest.raises(TraceFormatError):
            _with_scalar(dzv_decode, encoded, wrong)


@settings(max_examples=100, deadline=None)
@given(small_column.filter(len))
def test_drle_rejects_wrong_count(values):
    encoded = drle_encode(values)
    for wrong in (len(values) + 1, len(values) - 1):
        with pytest.raises(TraceFormatError):
            drle_decode(encoded, wrong)
        with pytest.raises(TraceFormatError):
            _with_scalar(drle_decode, encoded, wrong)


# ----------------------------------------------------------------------
# whole-chunk payloads over real event types
# ----------------------------------------------------------------------
SPECS = [
    code_for_kind(SIDE_SPE, name)
    for name in ("mfc_get", "mfc_put", "wait_tag_begin", "wait_tag_end",
                 "sync", "user_marker")
] + [
    code_for_kind(SIDE_PPE, name)
    for name in ("context_create", "context_run_begin", "context_run_end")
]

# One drawn record: spec selector, core, seq, raw timestamp, value seed.
record = st.tuples(
    st.integers(min_value=0, max_value=len(SPECS) - 1),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=0xFFFF_FFFF),
    U64,
    st.integers(min_value=-(1 << 40), max_value=1 << 40),
)


def build_chunk(draws):
    chunk = ColumnChunk()
    for spec_i, core, seq, raw, seed in draws:
        spec = SPECS[spec_i]
        values = tuple(seed + j for j in range(len(spec.fields)))
        chunk.append(spec.side, spec.code, core, seq, raw, values)
    return chunk


def chunk_tuple(chunk):
    return (
        bytes(chunk.side), bytes(chunk.code), bytes(chunk.core),
        bytes(chunk.seq), bytes(chunk.raw_ts), bytes(chunk.values),
    )


@settings(max_examples=100, deadline=None)
@given(st.lists(record, max_size=60))
def test_payload_round_trips_and_paths_agree(draws):
    chunk = build_chunk(draws)
    want = chunk_tuple(chunk)
    payload = encode_chunk_payload(chunk)
    assert _with_scalar(encode_chunk_payload, chunk) == payload
    assert chunk_tuple(decode_chunk_payload(payload, len(chunk))) == want
    assert chunk_tuple(
        _with_scalar(decode_chunk_payload, payload, len(chunk))
    ) == want


@settings(max_examples=50, deadline=None)
@given(st.lists(record, max_size=60))
def test_no_compress_hatch_round_trips(draws):
    import os

    chunk = build_chunk(draws)
    want = chunk_tuple(chunk)
    os.environ["REPRO_NO_COMPRESS"] = "1"
    try:
        payload = encode_chunk_payload(chunk)
        # The hatch stores the v2-v4 record stream verbatim behind the
        # v5 payload header.
        assert payload[_v5_header_size():] == codec.encode_batch(chunk)
    finally:
        del os.environ["REPRO_NO_COMPRESS"]
    # Readers need no hatch: every payload kind always decodes.
    assert chunk_tuple(decode_chunk_payload(payload, len(chunk))) == want
    assert chunk_tuple(
        _with_scalar(decode_chunk_payload, payload, len(chunk))
    ) == want


def _v5_header_size():
    from repro.pdt.format import _V5_PAYLOAD

    return _V5_PAYLOAD.size


@settings(max_examples=50, deadline=None)
@given(st.lists(record, min_size=1, max_size=30),
       st.integers(min_value=0, max_value=7),
       st.integers(min_value=0, max_value=7))
def test_payload_corruption_never_decodes_silently(draws, pos_seed, bit):
    """Flipping a bit in the payload either still matches (impossible:
    the flip changes bytes) — it must raise or decode to a *different*
    chunk, never crash with a non-TraceFormatError."""
    chunk = build_chunk(draws)
    payload = bytearray(encode_chunk_payload(chunk))
    pos = pos_seed * max(1, len(payload) // 8) % len(payload)
    payload[pos] ^= 1 << bit
    try:
        decoded = decode_chunk_payload(bytes(payload), len(chunk))
    except TraceFormatError:
        return
    # A lucky flip may still parse; it must at least parse consistently.
    assert len(decoded) == len(chunk)


def test_seq_beyond_u32_is_rejected_like_the_record_stream():
    chunk = ColumnChunk()
    spec = SPECS[0]
    values = tuple(range(len(spec.fields)))
    chunk.append(spec.side, spec.code, 0, 1 << 32, 7, values)
    with pytest.raises(struct.error):
        encode_chunk_payload(chunk)
    with pytest.raises(struct.error):
        _with_scalar(encode_chunk_payload, chunk)
