"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; if one breaks, the README's
promises break with it.  They write their figure files into a temp cwd.
"""

import os
import runpy
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = [
    "quickstart.py",
    "double_buffering.py",
    "load_balance.py",
    "pipeline_bottleneck.py",
    "trace_diff.py",
    "job_farm.py",
    "alf_convolution.py",
    "query_trace.py",
    "serve_client.py",
    "corpus_diff.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), script


def test_quickstart_outputs_artifacts(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "quickstart.py"))
    runpy.run_path(path, run_name="__main__")
    assert (tmp_path / "quickstart.pdt").exists()
    out = capsys.readouterr().out
    assert "results verified: True" in out
    assert "PDT trace report" in out


def test_double_buffering_produces_svgs(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "double_buffering.py"))
    runpy.run_path(path, run_name="__main__")
    assert (tmp_path / "matmul_before.svg").exists()
    assert (tmp_path / "matmul_after.svg").exists()
    out = capsys.readouterr().out
    assert "speedup from the fix" in out
