"""Manifest identity, round-trip, and validation tests."""

import json

import pytest

from repro.corpus import CorpusError, CorpusManifest, RunRecord, config_id


def _record(run_id="w.cell.spes2-buf16384-db-all.r0", **overrides):
    payload = {
        "run_id": run_id,
        "workload": "w",
        "label": "cell",
        "config": {
            "n_spes": 2,
            "buffer_bytes": 16384,
            "double_buffered": True,
            "groups": None,
        },
        "seed": 7,
        "repeat": 0,
        "path": f"{run_id}.pdt",
        "stats": {"elapsed_cycles": 100},
    }
    payload.update(overrides)
    return RunRecord(**payload)


def test_config_id_is_deterministic_and_readable():
    config = {
        "n_spes": 4,
        "buffer_bytes": 8192,
        "double_buffered": False,
        "groups": ["dma", "lifecycle"],
    }
    assert config_id(config) == "spes4-buf8192-sb-dma+lifecycle"
    # Group order must not matter; None means all; empty means none.
    config["groups"] = ["lifecycle", "dma"]
    assert config_id(config) == "spes4-buf8192-sb-dma+lifecycle"
    config["groups"] = None
    assert config_id(config) == "spes4-buf8192-sb-all"
    config["groups"] = []
    assert config_id(config) == "spes4-buf8192-sb-none"


def test_record_group_separates_labels_not_configs():
    base = _record(label="base")
    cand = _record(label="cand")
    assert base.config_id == cand.config_id
    assert base.group != cand.group


def test_manifest_roundtrip(tmp_path):
    manifest = CorpusManifest(
        base_seed=3, repeats=2, runs=[_record(), _record(run_id="other.r1")]
    )
    manifest.save(str(tmp_path))
    loaded = CorpusManifest.load(str(tmp_path))
    assert loaded.to_json() == manifest.to_json()
    assert loaded.root == str(tmp_path)
    # Relative trace paths resolve against the corpus directory.
    assert loaded.trace_path(_record().run_id).startswith(str(tmp_path))


def test_unknown_run_id_names_the_corpus():
    manifest = CorpusManifest(base_seed=0, repeats=1, runs=[_record()])
    with pytest.raises(CorpusError, match="no such run"):
        manifest.run("missing")


def test_groups_sorted_by_repeat():
    manifest = CorpusManifest(
        base_seed=0,
        repeats=2,
        runs=[
            _record(run_id="a.r1", repeat=1),
            _record(run_id="a.r0", repeat=0),
        ],
    )
    (members,) = manifest.groups().values()
    assert [m.repeat for m in members] == [0, 1]


def _write(tmp_path, payload):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(payload))
    return str(path)


def test_load_rejects_wrong_version(tmp_path):
    with pytest.raises(CorpusError, match="version"):
        CorpusManifest.load(_write(tmp_path, {"version": 99, "runs": []}))


def test_load_rejects_duplicate_run_ids(tmp_path):
    run = _record().to_json()
    payload = {"version": 1, "base_seed": 0, "repeats": 1, "runs": [run, run]}
    with pytest.raises(CorpusError, match="duplicate run id"):
        CorpusManifest.load(_write(tmp_path, payload))


def test_load_rejects_missing_keys_and_bad_config(tmp_path):
    run = _record().to_json()
    del run["seed"]
    with pytest.raises(CorpusError, match="missing keys"):
        CorpusManifest.load(
            _write(tmp_path, {"version": 1, "runs": [run]})
        )
    run = _record().to_json()
    run["config"] = {"not_a_config": True}
    with pytest.raises(CorpusError, match="malformed config"):
        CorpusManifest.load(
            _write(tmp_path, {"version": 1, "runs": [run]})
        )


def test_load_rejects_malformed_json(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text("{not json")
    with pytest.raises(CorpusError, match="malformed manifest JSON"):
        CorpusManifest.load(str(path))
