"""pdt-corpus CLI: argument validation, list/diff output, and the
self-gating check command."""

import json

import pytest

from repro.corpus.cli import main


# ----------------------------------------------------------------------
# validation: exit 2 with a clear message, never a traceback
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "argv, message",
    [
        (["diff", "c", "a", "b", "--jobs", "0"], "--jobs must be >= 1"),
        (["diff", "c", "a", "b", "--buckets", "0"], "--buckets must be >= 1"),
        (["run", "out", "--repeats", "0"], "--repeats must be >= 1"),
        (["check", "out", "--repeats", "0"], "--repeats must be >= 1"),
        (["check", "out", "--jobs", "-2"], "--jobs must be >= 1"),
        (["check", "out", "--k", "0"], "--k must be > 0"),
        (["check", "out", "--inject", "1.0"], "--inject must be > 1.0"),
    ],
)
def test_bad_arguments_exit_2(capsys, argv, message):
    assert main(argv) == 2
    assert message in capsys.readouterr().err


def test_unknown_corpus_dir_exits_2(capsys, tmp_path):
    assert main(["list", str(tmp_path / "nope")]) == 2
    assert "pdt-corpus:" in capsys.readouterr().err


def test_diff_unknown_run_id_exits_2(capsys, corpus):
    assert main(["diff", corpus.root, "missing-a", "missing-b"]) == 2
    assert "no such run" in capsys.readouterr().err


# ----------------------------------------------------------------------
# list / diff over the shared corpus
# ----------------------------------------------------------------------
def test_list_prints_every_run(capsys, corpus):
    assert main(["list", corpus.root]) == 0
    out = capsys.readouterr().out
    for record in corpus.runs:
        assert record.run_id in out
    assert f"{len(corpus.runs)} runs" in out


def test_list_json_matches_manifest(capsys, corpus):
    assert main(["list", corpus.root, "--json"]) == 0
    assert json.loads(capsys.readouterr().out) == corpus.to_json()


def test_diff_report_and_json(capsys, corpus, tmp_path):
    base = corpus.runs[0].run_id
    cand = corpus.runs[-1].run_id
    out_json = str(tmp_path / "diff.json")
    assert main(["diff", corpus.root, base, cand, "--json", out_json]) == 0
    out = capsys.readouterr().out
    assert "ranked by |relative change|" in out
    assert "per-SPE stall breakdown" in out
    with open(out_json) as fh:
        payload = json.load(fh)
    assert payload["baseline"] == base and payload["candidate"] == cand
    # Every default metric appears, ranked by |relative change|.
    names = [m["metric"] for m in payload["metrics"]]
    assert len(names) == 9 and "stall_total_cycles" in names
    rels = [
        abs(m["rel"]) if m["rel"] is not None else float("inf")
        for m in payload["metrics"]
    ]
    assert rels == sorted(rels, reverse=True)
    assert payload["series"]["rows"], "aligned series missing"


def test_diff_jobs_flag_is_result_invariant(capsys, corpus, tmp_path):
    base, cand = corpus.runs[0].run_id, corpus.runs[-1].run_id
    j1 = str(tmp_path / "j1.json")
    j4 = str(tmp_path / "j4.json")
    assert main(["diff", corpus.root, base, cand, "--json", j1]) == 0
    assert main(
        ["diff", corpus.root, base, cand, "--jobs", "4", "--json", j4]
    ) == 0
    with open(j1) as a, open(j4) as b:
        assert a.read() == b.read()


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
def test_check_gate_passes_and_emits_bench_json(capsys, tmp_path):
    out_json = str(tmp_path / "BENCH_corpus.json")
    code = main(
        ["check", str(tmp_path / "gate"), "--repeats", "3", "--seed", "0",
         "--json", out_json]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "clean pair: 0 flagged (ok)" in out
    assert "caught" in out
    with open(out_json) as fh:
        payload = json.load(fh)
    assert payload["ok"] is True
    assert payload["bench"] == "corpus_gate"
    assert payload["clean"]["flagged"] == 0
    assert payload["injected"]["regressions"] >= 1
    assert payload["repeats"] == 3
