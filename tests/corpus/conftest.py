"""Shared corpus fixture: one seeded two-label spmv matrix.

spmv is the noise-bearing workload — its nonzero count (and therefore
compute and DMA behaviour) varies with the seed — so the same corpus
exercises the matrix runner, the plan-backed metrics, the differ, and
the regression detector's noise model.  Built once per session; every
test treats it as read-only.
"""

import pytest

from repro.corpus import run_matrix
from repro.corpus.runner import CellSpec

REPEATS = 3
BASE_SEED = 0


@pytest.fixture(scope="session")
def corpus(tmp_path_factory):
    out = tmp_path_factory.mktemp("corpus")
    cells = [
        CellSpec(workload="spmv", n_spes=2, label="base"),
        CellSpec(workload="spmv", n_spes=2, label="cand"),
    ]
    return run_matrix(cells, str(out), repeats=REPEATS, base_seed=BASE_SEED)
