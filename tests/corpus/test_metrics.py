"""Plan-backed corpus metrics against the timeline model's ground
truth, plus the sharding byte-identity contract."""

import pytest

from repro.corpus import evaluate_metrics, open_corpus, stall_breakdown_rows
from repro.corpus.metrics import (
    bucket_series_plan,
    dma_profile_plan,
    default_metrics,
    run_plan,
)
from repro.serve.protocol import canonical_json
from repro.ta import analyze
from repro.ta.stats import TraceStatistics


@pytest.fixture(scope="module")
def first_run(corpus):
    with open_corpus(corpus) as catalog:
        run_id = corpus.runs[0].run_id
        with catalog.acquire(run_id) as (handle, __, __identity):
            yield handle


def test_metrics_match_timeline_model(first_run):
    """The groupby end-minus-begin trick must reproduce exactly what
    the interval-pairing timeline model measures."""
    values = evaluate_metrics(first_run)
    stats = TraceStatistics.from_model(analyze(first_run.source()))
    per_spe = stats.per_spe.values()
    assert values["events_total"] == first_run.n_records
    assert values["stall_dma_cycles"] == sum(
        s.wait_dma_cycles for s in per_spe
    )
    assert values["stall_mbox_cycles"] == sum(
        s.wait_mbox_cycles for s in per_spe
    )
    assert values["stall_signal_cycles"] == sum(
        s.wait_signal_cycles for s in per_spe
    )
    assert values["stall_total_cycles"] == (
        values["stall_dma_cycles"]
        + values["stall_mbox_cycles"]
        + values["stall_signal_cycles"]
    )
    assert values["dma_bytes"] == sum(s.dma.total_bytes for s in per_spe)
    assert values["dma_count"] == sum(s.dma.count for s in per_spe)
    assert values["span_cycles"] > 0
    assert values["dma_p99_bytes"] > 0


def test_breakdown_rows_sum_to_metrics(first_run):
    values = evaluate_metrics(first_run)
    rows = stall_breakdown_rows(first_run)
    for family in ("dma", "mbox", "signal"):
        total = sum(r["cycles"] for r in rows if r["family"] == family)
        assert total == values[f"stall_{family}_cycles"], family
    assert all(row["waits"] >= 0 for row in rows)


def test_sharded_evaluation_is_byte_identical(first_run):
    """jobs=2 must reproduce the serial rows exactly — same values,
    same order, same canonical JSON bytes."""
    for spec in default_metrics():
        for plan in spec.plans:
            serial = run_plan(first_run, plan, jobs=1)
            sharded = run_plan(first_run, plan, jobs=2)
            assert canonical_json(serial) == canonical_json(sharded)
    assert evaluate_metrics(first_run, jobs=1) == evaluate_metrics(
        first_run, jobs=2
    )


def test_dma_profile_covers_every_spe(first_run):
    rows = run_plan(first_run, dma_profile_plan())
    assert [row["spe"] for row in rows] == [0, 1]
    for row in rows:
        assert row["bytes"] == pytest.approx(row["n"] * row["mean_bytes"])


def test_bucket_series_plan_validates_width(first_run):
    with pytest.raises(ValueError, match="width"):
        bucket_series_plan(0)
    rows = run_plan(first_run, bucket_series_plan(1000))
    assert sum(row["n"] for row in rows) == first_run.n_records
    assert [row["bucket"] for row in rows] == sorted(
        row["bucket"] for row in rows
    )
