"""Matrix runner tests: seeding, sweeping, execution, registration."""

import os
import subprocess
import sys

import pytest

from repro.corpus import (
    CorpusError,
    CorpusManifest,
    cell_seed,
    open_corpus,
    run_matrix,
    sweep_cells,
)
from repro.corpus.runner import CellSpec

from tests.corpus.conftest import BASE_SEED, REPEATS

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def test_cell_seed_is_deterministic_and_distinct():
    cell = CellSpec(workload="matmul", label="base")
    assert cell_seed(0, cell, 0) == cell_seed(0, cell, 0)
    # Different repeats, labels, and base seeds all sample new seeds —
    # repeats form the noise population, labels the baseline/candidate
    # pair, base seeds whole new corpora.
    seeds = {
        cell_seed(0, cell, 0),
        cell_seed(0, cell, 1),
        cell_seed(0, CellSpec(workload="matmul", label="cand"), 0),
        cell_seed(1, cell, 0),
    }
    assert len(seeds) == 4


def test_sweep_cells_is_the_cross_product():
    cells = sweep_cells(
        ["matmul", "fft"],
        n_spes=(1, 2),
        buffer_bytes=(8192,),
        double_buffered=(True, False),
    )
    assert len(cells) == 8
    # Workload-major enumeration, and every cell distinct.
    assert cells[0].workload == "matmul" and cells[-1].workload == "fft"
    assert len({cell.run_id(0) for cell in cells}) == 8


def test_cellspec_validates():
    with pytest.raises(CorpusError, match="unknown workload"):
        CellSpec(workload="quicksort")
    with pytest.raises(CorpusError, match="n_spes"):
        CellSpec(workload="matmul", n_spes=0)


def test_run_matrix_rejects_duplicates_and_empty(tmp_path):
    cell = CellSpec(workload="matmul")
    with pytest.raises(CorpusError, match="distinct labels"):
        run_matrix([cell, cell], str(tmp_path))
    with pytest.raises(CorpusError, match="no cells"):
        run_matrix([], str(tmp_path))
    with pytest.raises(CorpusError, match="repeats"):
        run_matrix([cell], str(tmp_path), repeats=0)


def test_corpus_records_everything(corpus):
    assert len(corpus.runs) == 2 * REPEATS
    for record in corpus.runs:
        # Trace file exists where the manifest says.
        path = corpus.trace_path(record.run_id)
        assert os.path.exists(path)
        assert record.stats["trace_bytes"] == os.path.getsize(path)
        # Seeds re-derive from the manifest's own identity fields.
        cell = CellSpec(
            workload=record.workload,
            n_spes=record.config["n_spes"],
            buffer_bytes=record.config["buffer_bytes"],
            double_buffered=record.config["double_buffered"],
            label=record.label,
        )
        assert record.seed == cell_seed(BASE_SEED, cell, record.repeat)
        assert record.stats["verified"] is True
        assert record.stats["records"] > 0
    # Reloading the saved manifest reproduces it exactly.
    assert CorpusManifest.load(corpus.root).to_json() == corpus.to_json()


def test_rerun_reproduces_traces_byte_for_byte(tmp_path):
    """The reproducibility contract: the same matrix re-run in a fresh
    interpreter produces byte-identical traces.  (Fresh interpreter
    because PPE thread ids continue a process-wide sequence; the
    seeded workload content is identical either way.)"""
    script = (
        "import sys, hashlib\n"
        "from repro.corpus import run_matrix\n"
        "from repro.corpus.runner import CellSpec\n"
        "cells = [CellSpec(workload='spmv', n_spes=1)]\n"
        "m = run_matrix(cells, sys.argv[1], base_seed=9)\n"
        "path = m.trace_path(m.runs[0].run_id)\n"
        "print(hashlib.sha256(open(path, 'rb').read()).hexdigest())\n"
    )
    digests = []
    for sub in ("a", "b"):
        out = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path / sub)],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": _SRC},
        )
        digests.append(out.stdout.strip())
    assert digests[0] == digests[1]


def test_open_corpus_registers_every_run(corpus):
    with open_corpus(corpus) as catalog:
        assert len(catalog) == len(corpus.runs)
        for record in corpus.runs:
            with catalog.acquire(record.run_id) as (handle, __, __identity):
                assert handle.n_records == record.stats["records"]


def test_open_corpus_is_all_or_nothing(corpus, tmp_path):
    broken = CorpusManifest(
        base_seed=corpus.base_seed,
        repeats=corpus.repeats,
        runs=list(corpus.runs),
        root=corpus.root,
    )
    missing = broken.runs[-1]
    broken.runs[-1] = type(missing)(
        run_id=missing.run_id,
        workload=missing.workload,
        label=missing.label,
        config=missing.config,
        seed=missing.seed,
        repeat=missing.repeat,
        path="does-not-exist.pdt",
        stats=missing.stats,
    )
    with pytest.raises(OSError):
        open_corpus(broken)
