"""Noise-aware regression detection: the robust statistics, the flag
rule, and the end-to-end zero-false-positive / catches-injection gate
property on a real seeded corpus."""

import pytest

from repro.corpus import (
    CorpusError,
    collect_cell_metrics,
    compare_cells,
    detect_regressions,
    inject_regression,
    median,
    open_corpus,
    robust_spread,
)
from repro.corpus.regress import MetricComparison

from tests.corpus.conftest import REPEATS


# ----------------------------------------------------------------------
# robust statistics
# ----------------------------------------------------------------------
def test_median_odd_even_and_empty():
    assert median([3, 1, 2]) == 2
    assert median([4, 1, 2, 3]) == 2.5
    with pytest.raises(CorpusError):
        median([])


def test_robust_spread_deterministic_population_is_zero():
    assert robust_spread([7, 7, 7]) == 0.0


def test_robust_spread_never_below_half_range():
    # Three repeats with two tied: the MAD alone would be 0 even
    # though the population is clearly noisy.
    values = [100, 100, 140]
    assert robust_spread(values) == 20.0
    # With genuinely spread values the scaled MAD leads.
    assert robust_spread([0, 10, 20]) == pytest.approx(1.4826 * 10)


def _comparison(base, cand, metric="stall_total_cycles", k=4.0):
    return MetricComparison(
        metric=metric,
        workload="w",
        config_id="cfg",
        base_label="base",
        cand_label="cand",
        base_values=tuple(base),
        cand_values=tuple(cand),
        k=k,
    )


def test_flag_rule_is_k_times_spread_never_raw():
    # Noise band scales with the population's own spread: the same
    # absolute delta flags in a quiet population, not in a noisy one.
    quiet = _comparison([1000, 1001, 1002], [1200, 1201, 1202])
    noisy = _comparison([1000, 900, 1100], [1200, 1100, 1300])
    assert quiet.flagged and quiet.direction == "regression"
    assert not noisy.flagged and noisy.direction == "ok"


def test_deterministic_change_flags_and_boundary_is_strict():
    # spread 0, delta 0: must NOT flag (0 > 0 is false).
    assert not _comparison([5, 5, 5], [5, 5, 5]).flagged
    # spread 0, any delta: flags at any k.
    assert _comparison([5, 5, 5], [6, 6, 6], k=100.0).flagged
    # |delta| exactly k*spread: strictly inside the noise band.
    # Populations chosen so spread is exactly 2.0 (half-range fallback,
    # a power of two) and the arithmetic is float-exact.
    base, cand = (0.0, 4.0, 4.0), (25.0, 29.0, 29.0)
    at_boundary = _comparison(base, cand, k=12.5)
    assert at_boundary.delta == 25.0
    assert at_boundary.threshold == 25.0
    assert not at_boundary.flagged
    # One notch tighter and it flags.
    assert _comparison(base, cand, k=12.0).flagged


def test_directions():
    down = _comparison([100, 100, 100], [50, 50, 50])
    assert down.direction == "improvement"
    neutral = _comparison([100, 100, 100], [50, 50, 50], metric="dma_bytes")
    assert neutral.direction == "changed"


def test_compare_cells_requires_a_common_pair():
    cells = {("w", "base", "cfg"): {"m": [1.0]}}
    with pytest.raises(CorpusError, match="both labels"):
        compare_cells(cells, "base", "cand")
    with pytest.raises(CorpusError, match="k must be"):
        compare_cells(cells, "base", "base", k=0)


def test_inject_regression_scales_only_target_label_and_prefix():
    cells = {
        ("w", "base", "cfg"): {"stall_total_cycles": [100.0], "dma_bytes": [10.0]},
        ("w", "cand", "cfg"): {"stall_total_cycles": [100.0], "dma_bytes": [10.0]},
    }
    injected = inject_regression(cells, "cand", "stall_", 1.5)
    assert injected[("w", "base", "cfg")] == cells[("w", "base", "cfg")]
    assert injected[("w", "cand", "cfg")]["stall_total_cycles"] == [150.0]
    assert injected[("w", "cand", "cfg")]["dma_bytes"] == [10.0]
    # The original is untouched.
    assert cells[("w", "cand", "cfg")]["stall_total_cycles"] == [100.0]


# ----------------------------------------------------------------------
# the gate property, on the real corpus
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cell_metrics(corpus):
    with open_corpus(corpus) as catalog:
        return collect_cell_metrics(corpus, catalog)


def test_zero_false_positives_on_identical_configs(corpus, cell_metrics):
    """base and cand run the same configuration under different seeds:
    every metric delta is pure noise and none may flag."""
    report = compare_cells(
        cell_metrics, "base", "cand", repeats=corpus.repeats
    )
    assert report.repeats == REPEATS
    assert report.flagged == []
    assert len(report.comparisons) == 9
    assert "0 flagged" in report.format_report()


def test_injected_stall_regression_is_caught(corpus, cell_metrics):
    """A synthetic +25% stall-time regression must flag — and only
    stall metrics may flag."""
    injected = inject_regression(cell_metrics, "cand", "stall_", 1.25)
    report = compare_cells(injected, "base", "cand", repeats=corpus.repeats)
    assert report.regressions, "injected regression went undetected"
    assert all(c.metric.startswith("stall_") for c in report.flagged)
    # Flagged comparisons rank first.
    assert report.comparisons[0].flagged


def test_detect_regressions_end_to_end(corpus):
    with open_corpus(corpus) as catalog:
        report = detect_regressions(corpus, catalog, "base", "cand")
    assert report.flagged == []
    payload = report.to_json()
    assert payload["flagged"] == 0
    assert payload["repeats"] == REPEATS
    assert len(payload["comparisons"]) == 9
