"""The serving daemon's differential matrix.

The headline contract: a served response is **byte-identical** to the
canonical encoding of the same query executed directly through a
serial :class:`repro.tq.Query` — for every workload in
:mod:`repro.workloads`, every on-disk version (v1 legacy through v4
indexed, plus v3 with a sidecar), every protocol query mode, from
eight concurrent client threads, with the catalog's memory budget
enforced throughout and zero descriptors left behind.
"""

import builtins
import io
import json
import threading
import typing

import pytest

from repro.pdt import TraceConfig, open_trace, write_trace
from repro.serve import (
    ServeClient,
    ServerConfig,
    TraceCatalog,
    TraceServer,
    canonical_json,
)
from repro.serve.protocol import build_query
from repro.tq import build_sidecar

from tests.par.test_differential import VERSIONS, WORKLOADS, _VERSION_CODES

N_CLIENT_THREADS = 8

#: The canned query set every (workload, version) pair is served:
#: filtered grouped aggregation, timed projection, bare count, and a
#: field-filtered reduction with min/max/percentile ops.
QUERY_SPECS = (
    {
        "mode": "run",
        "where": {"spe": 1},
        "groupby": ["spe", "kind"],
        "agg": {"n": "count", "bytes": ["sum", "size"]},
    },
    {
        "mode": "records",
        "where": {"t0": 0},
        "project": ["time", "side", "core", "kind", "seq"],
    },
    {"mode": "count", "where": {"side": 1}},
    {
        "mode": "run",
        "where_fields": [{"name": "size", "lo": 1}],
        "groupby": ["core", "kind"],
        "agg": {
            "n": "count",
            "total": ["sum", "size"],
            "hi": ["max", "size"],
            "mid": ["p50", "size"],
        },
    },
)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """trace name ("workload-version") -> path, the par-suite matrix."""
    tmp = tmp_path_factory.mktemp("serve-diff")
    from repro.workloads import run_workload

    out = {}
    for name, factory in WORKLOADS:
        result = run_workload(factory(), TraceConfig(buffer_bytes=1024))
        source = result.trace_source()
        for label in VERSIONS:
            source.header.version = _VERSION_CODES[label]
            path = str(tmp / f"{name}-{label.replace('+', '-')}.pdt")
            write_trace(source, path)
            if label == "v3+sidecar":
                build_sidecar(path)
            out[f"{name}-{label}"] = path
    return out


def _direct_response(request: dict, path: str) -> str:
    """What the server must emit for ``request``: the same query run
    serially through the library, canonically encoded."""
    mode = request.get("mode", "run")
    with open_trace(path) as source:
        query = build_query(source, request)
        if mode == "run":
            result: typing.Any = query.run()
        elif mode == "records":
            result = [list(row) for row in query.records()]
        else:
            result = query.count()
    return canonical_json(
        {"id": request["id"], "ok": True, "result": result}
    )


@pytest.fixture(scope="module")
def server(corpus):
    catalog = TraceCatalog(memory_budget=32 * 1024 * 1024)
    with TraceServer(catalog, ServerConfig(port=0)).start() as srv:
        with ServeClient(srv.address) as client:
            for name, path in sorted(corpus.items()):
                client.register(name, path)
        yield srv


def test_matrix_byte_identical_from_concurrent_clients(corpus, server):
    """Every (workload, version, query) case, split across 8 client
    threads; each raw response line must equal the direct serial
    encoding byte for byte."""
    cases = []
    for i, (name, path) in enumerate(sorted(corpus.items())):
        for j, spec in enumerate(QUERY_SPECS):
            request = {
                "op": "query",
                "trace": name,
                "id": f"{name}/{j}",
                **spec,
            }
            cases.append((request, _direct_response(request, path)))
    assert len(cases) == len(WORKLOADS) * len(VERSIONS) * len(QUERY_SPECS)

    failures: typing.List[str] = []
    barrier = threading.Barrier(N_CLIENT_THREADS)

    def client_thread(slice_index):
        with ServeClient(server.address) as client:
            barrier.wait(timeout=30)
            for request, want in cases[slice_index::N_CLIENT_THREADS]:
                got = client.request_raw(request)
                if got != want:
                    failures.append(
                        f"{request['id']}: served {got[:200]!r} "
                        f"!= direct {want[:200]!r}"
                    )

    threads = [
        threading.Thread(target=client_thread, args=(i,))
        for i in range(N_CLIENT_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not failures, failures[:5]

    # The budget held the whole time.
    stats = server.server_stats()
    assert stats["catalog"]["cached_bytes"] <= server.catalog.memory_budget
    assert stats["admission"]["peak_active"] <= server.config.max_concurrent


def test_result_cache_hit_is_byte_identical(corpus, server):
    name = sorted(corpus)[0]
    request = {"op": "query", "trace": name, "id": 1, **QUERY_SPECS[0]}
    with ServeClient(server.address) as client:
        before = server.catalog.result_cache.stats().hits
        first = client.request_raw(request)
        second = client.request_raw(request)
    assert first == second
    assert server.catalog.result_cache.stats().hits > before


def test_differing_plans_do_not_share_cache_entries(corpus, server):
    name = sorted(corpus)[0]
    base = {"op": "query", "trace": name, "id": 1, "mode": "count"}
    with ServeClient(server.address) as client:
        all_records = client.request({**base, "where": {"t0": 0}})
        spe1_only = client.request({**base, "where": {"t0": 0, "spe": 1}})
    assert all_records > spe1_only  # a shared entry would equate them


def test_errors_are_responses_not_disconnects(server):
    with ServeClient(server.address) as client:
        with pytest.raises(Exception, match="no such trace"):
            client.query("never-registered", mode="count")
        with pytest.raises(Exception, match="unknown op"):
            client.request({"op": "explode"})
        garbled = json.loads(client.request_line("this is not json"))
        assert garbled["ok"] is False
        assert "malformed JSON" in garbled["error"]
        assert client.ping() == "pong"  # connection survived all three


def test_admission_control_funnels_clients(corpus):
    """With max_concurrent=2, eight hammering clients never exceed two
    active executions, and everyone still gets correct answers."""
    name, path = sorted(corpus.items())[0]
    catalog = TraceCatalog(memory_budget=4 * 1024 * 1024)
    config = ServerConfig(port=0, max_concurrent=2)
    with TraceServer(catalog, config).start() as srv:
        with ServeClient(srv.address) as admin:
            admin.register(name, path)
        request = {"op": "query", "trace": name, "id": 0, **QUERY_SPECS[3]}
        want = _direct_response(request, path)

        failures = []
        barrier = threading.Barrier(N_CLIENT_THREADS)

        def hammer():
            with ServeClient(srv.address) as client:
                barrier.wait(timeout=30)
                for __ in range(4):
                    if client.request_raw(request) != want:
                        failures.append("diverged")

        threads = [
            threading.Thread(target=hammer)
            for __ in range(N_CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures
        stats = srv.admission.stats()
        assert stats["peak_active"] <= 2
        assert stats["admitted"] == N_CLIENT_THREADS * 4


def test_sharded_execution_matches_serial_bytes(corpus):
    """jobs=2: responses funnel through the shared repro.par pool and
    still match direct *serial* execution byte for byte."""
    name, path = sorted(corpus.items())[0]
    catalog = TraceCatalog(memory_budget=4 * 1024 * 1024)
    with TraceServer(catalog, ServerConfig(port=0, jobs=2)).start() as srv:
        with ServeClient(srv.address) as client:
            client.register(name, path)
            for j, spec in enumerate(QUERY_SPECS):
                request = {"op": "query", "trace": name, "id": j, **spec}
                assert client.request_raw(request) == _direct_response(
                    request, path
                )


class _TrackingFile(io.BytesIO):
    def __init__(self, data, registry):
        super().__init__(data)
        registry.append(self)


def test_server_lifecycle_leaks_no_descriptors(corpus, monkeypatch):
    """Register, query from several threads, evict one trace, stop the
    server: every descriptor ever opened for the traces is closed."""
    picked = dict(sorted(corpus.items())[:2])
    blobs = {path: open(path, "rb").read() for path in picked.values()}
    issued: list = []
    real_open = builtins.open

    def fake_open(file, mode="r", *args, **kwargs):
        if file in blobs and "b" in mode and "w" not in mode:
            return _TrackingFile(blobs[file], issued)
        return real_open(file, mode, *args, **kwargs)

    monkeypatch.setattr(builtins, "open", fake_open)

    catalog = TraceCatalog(memory_budget=4 * 1024 * 1024)
    server = TraceServer(catalog, ServerConfig(port=0)).start()
    try:
        with ServeClient(server.address) as client:
            for name, path in picked.items():
                client.register(name, path)

        def worker(name):
            with ServeClient(server.address) as client:
                for spec in QUERY_SPECS:
                    client.query(name, **spec)

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in picked
            for __ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        with ServeClient(server.address) as client:
            client.evict(sorted(picked)[0])
    finally:
        server.stop()
    assert issued, "the tracking open was never exercised"
    assert all(f.closed for f in issued), (
        f"{sum(1 for f in issued if not f.closed)} descriptors leaked"
    )


def test_register_and_list_roundtrip(corpus, server):
    with ServeClient(server.address) as client:
        rows = client.list_traces()
    assert len(rows) >= len(corpus) - 1  # other tests may evict
    by_name = {row["name"]: row for row in rows}
    indexed = [n for n in by_name if n.endswith(("v4", "v3+sidecar"))]
    assert indexed and all(by_name[n]["indexed"] for n in indexed)
