"""TraceCatalog: registration, refcounted acquire, deferred eviction,
generation-scoped caches, and the memory budget."""

import threading

import pytest

from repro.pdt import TraceConfig, TraceFormatError, write_trace
from repro.serve.catalog import CatalogError, TraceCatalog
from repro.tq import Query
from repro.workloads import MatmulWorkload, StreamingPipelineWorkload, run_workload


@pytest.fixture(scope="module")
def trace_paths(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("catalog")
    paths = {}
    for name, factory in (
        ("matmul", lambda: MatmulWorkload(n=64, tile=32, n_spes=2)),
        ("streaming", lambda: StreamingPipelineWorkload(stages=2, blocks=6)),
    ):
        result = run_workload(factory(), TraceConfig(buffer_bytes=1024))
        path = str(tmp / f"{name}.pdt")
        write_trace(result.trace_source(), path)
        paths[name] = path
    return paths


@pytest.fixture()
def catalog():
    with TraceCatalog(memory_budget=4 * 1024 * 1024) as cat:
        yield cat


# -- registration ------------------------------------------------------


def test_register_list_contains(catalog, trace_paths):
    info = catalog.register("m", trace_paths["matmul"])
    assert info["name"] == "m"
    assert info["records"] > 0 and info["chunks"] > 0
    catalog.register("s", trace_paths["streaming"])
    assert [row["name"] for row in catalog.list_traces()] == ["m", "s"]
    assert "m" in catalog and "missing" not in catalog
    assert len(catalog) == 2


def test_register_duplicate_raises(catalog, trace_paths):
    catalog.register("m", trace_paths["matmul"])
    with pytest.raises(CatalogError, match="already registered"):
        catalog.register("m", trace_paths["streaming"])


def test_register_bad_path_fails_clean(catalog, tmp_path):
    with pytest.raises(OSError):
        catalog.register("ghost", str(tmp_path / "missing.pdt"))
    garbage = tmp_path / "garbage.pdt"
    garbage.write_bytes(b"not a trace at all" * 10)
    with pytest.raises(TraceFormatError):
        catalog.register("garbage", str(garbage))
    assert len(catalog) == 0  # failed registrations leave no entry


# -- acquire / evict ---------------------------------------------------


def test_acquire_yields_working_handle(catalog, trace_paths):
    catalog.register("m", trace_paths["matmul"])
    with catalog.acquire("m") as (handle, chunk_cache, identity):
        assert identity == ("m", 0)
        count = Query(handle.source(chunk_cache=chunk_cache)).count()
        assert count == handle.n_records
    with pytest.raises(CatalogError, match="no such trace"):
        with catalog.acquire("missing"):
            pass


def test_immediate_eviction_closes_handle(catalog, trace_paths):
    catalog.register("m", trace_paths["matmul"])
    with catalog.acquire("m") as (handle, __, ___):
        pass
    out = catalog.evict("m")
    assert out == {"evicted": "m", "deferred": False}
    assert handle.closed
    assert "m" not in catalog
    with pytest.raises(CatalogError):
        catalog.evict("m")


def test_eviction_with_in_flight_query_is_deferred(catalog, trace_paths):
    """Evicting a trace someone is querying must not close the handle
    under them: the entry vanishes from list/acquire immediately, the
    descriptors die with the last release."""
    catalog.register("m", trace_paths["matmul"])
    entered = threading.Event()
    release = threading.Event()
    results = {}

    def slow_query():
        with catalog.acquire("m") as (handle, chunk_cache, __):
            entered.set()
            release.wait(timeout=10)
            results["count"] = Query(
                handle.source(chunk_cache=chunk_cache)
            ).count()
            results["handle"] = handle

    thread = threading.Thread(target=slow_query)
    thread.start()
    assert entered.wait(timeout=10)
    out = catalog.evict("m")
    assert out == {"evicted": "m", "deferred": True}
    assert "m" not in catalog  # invisible immediately...
    with pytest.raises(CatalogError):
        with catalog.acquire("m"):
            pass
    assert not results.get("handle", None)  # query still running
    release.set()
    thread.join(timeout=10)
    assert results["count"] > 0  # the in-flight query finished intact
    assert results["handle"].closed  # ...and the last release closed it


def test_reregister_after_evict_bumps_generation(catalog, trace_paths):
    catalog.register("m", trace_paths["matmul"])
    with catalog.acquire("m") as (__, ___, identity_a):
        pass
    catalog.evict("m")
    catalog.register("m", trace_paths["streaming"])
    with catalog.acquire("m") as (__, ___, identity_b):
        pass
    assert identity_a[1] != identity_b[1]


def test_eviction_invalidates_this_traces_cache_entries(
    catalog, trace_paths
):
    catalog.register("m", trace_paths["matmul"])
    catalog.register("s", trace_paths["streaming"])
    for name in ("m", "s"):
        with catalog.acquire(name) as (handle, chunk_cache, __):
            list(handle.source(chunk_cache=chunk_cache).iter_chunks())
    assert catalog.chunk_cache.current_bytes > 0
    with catalog.acquire("s") as (__, ___, s_identity):
        pass
    catalog.evict("m")
    # Only s's chunks survive.
    remaining = catalog.chunk_cache.stats().entries
    assert remaining > 0
    assert (
        catalog.chunk_cache.invalidate(
            lambda key: key[1] != s_identity
        )
        == 0
    )


# -- budget ------------------------------------------------------------


def test_memory_budget_bounds_cached_bytes(trace_paths):
    """A catalog with a tiny budget still answers queries correctly —
    it just can't keep everything warm."""
    with TraceCatalog(memory_budget=8 * 1024) as small:
        small.register("m", trace_paths["matmul"])
        for __round in range(3):
            with small.acquire("m") as (handle, chunk_cache, ___):
                chunks = list(
                    handle.source(chunk_cache=chunk_cache).iter_chunks()
                )
                assert chunks
        stats = small.stats()
        assert stats["cached_bytes"] <= 8 * 1024
        assert (
            small.chunk_cache.current_bytes
            <= small.chunk_cache.budget_bytes
        )


def test_budget_split_covers_whole_budget(catalog):
    assert (
        catalog.chunk_cache.budget_bytes + catalog.result_cache.budget_bytes
        == catalog.memory_budget
    )


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        TraceCatalog(memory_budget=-1)


# -- lifecycle ---------------------------------------------------------


def test_close_evicts_everything(trace_paths):
    catalog = TraceCatalog(memory_budget=1 << 20)
    catalog.register("m", trace_paths["matmul"])
    with catalog.acquire("m") as (handle, __, ___):
        pass
    catalog.close()
    assert handle.closed
    assert catalog.chunk_cache.current_bytes == 0
    with pytest.raises(CatalogError):
        catalog.register("late", trace_paths["streaming"])
    with pytest.raises(CatalogError):
        with catalog.acquire("m"):
            pass


def test_close_with_in_flight_acquire_defers(trace_paths):
    catalog = TraceCatalog(memory_budget=1 << 20)
    catalog.register("m", trace_paths["matmul"])
    manager = catalog.acquire("m")
    handle, __, ___ = manager.__enter__()
    catalog.close()
    assert not handle.closed  # still borrowed
    manager.__exit__(None, None, None)
    assert handle.closed


def test_stats_shape(catalog, trace_paths):
    catalog.register("m", trace_paths["matmul"])
    stats = catalog.stats()
    assert stats["traces"] == 1
    assert stats["memory_budget"] == catalog.memory_budget
    assert stats["open_descriptors"] >= 0
    for cache_row in (stats["chunk_cache"], stats["result_cache"]):
        assert set(cache_row) == {
            "hits", "misses", "insertions", "evictions", "rejected",
            "current_bytes", "budget_bytes", "entries",
        }
