"""LruCache / ChunkCache: byte-budget accounting and eviction order."""

import threading

import pytest

from repro.serve.cache import ChunkCache, LruCache, chunk_nbytes


def test_put_get_and_recency():
    cache = LruCache(100)
    assert cache.put("a", 1, 40)
    assert cache.put("b", 2, 40)
    assert cache.get("a") == 1  # refreshes "a"
    assert cache.put("c", 3, 40)  # evicts "b", the cold one
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.current_bytes == 80
    assert len(cache) == 2


def test_eviction_until_fits_under_tight_budget():
    cache = LruCache(100)
    for key in "abcde":
        cache.put(key, key, 20)
    assert len(cache) == 5
    # One 90-byte entry needs all five 20-byte LRU entries gone.
    assert cache.put("big", "x", 90)
    assert len(cache) == 1
    assert cache.get("big") == "x"
    assert all(cache.get(k) is None for k in "abcde")
    assert cache.current_bytes == 90
    # A 75-byte entry after one 20-byte insert evicts only "big".
    cache.put("f", "f", 20)
    cache.put("mid", "m", 75)
    assert cache.get("f") == "f"
    assert cache.get("big") is None
    assert cache.current_bytes == 95


def test_oversize_entry_rejected_not_cached():
    cache = LruCache(50)
    cache.put("keep", 1, 30)
    assert not cache.put("huge", 2, 51)
    assert cache.get("huge") is None
    assert cache.get("keep") == 1  # rejection evicted nothing
    assert cache.stats().rejected == 1


def test_refresh_replaces_bytes():
    cache = LruCache(100)
    cache.put("a", 1, 60)
    cache.put("a", 2, 30)
    assert cache.get("a") == 2
    assert cache.current_bytes == 30


def test_invalidate_by_predicate():
    cache = LruCache(1000)
    cache.put(("chunk", ("t1", 0), 0), "x", 10)
    cache.put(("chunk", ("t1", 0), 1), "y", 10)
    cache.put(("chunk", ("t2", 0), 0), "z", 10)
    dropped = cache.invalidate(
        lambda key: len(key) >= 2 and key[1] == ("t1", 0)
    )
    assert dropped == 2
    assert cache.get(("chunk", ("t2", 0), 0)) == "z"
    assert cache.current_bytes == 10


def test_zero_budget_caches_nothing():
    cache = LruCache(0)
    assert not cache.put("a", 1, 1)
    # Zero-byte entries are accounted as one byte, so a zero budget
    # really caches nothing (they used to bypass the budget entirely).
    assert not cache.put("b", 2, 0)
    assert cache.get("b") is None
    assert len(cache) == 0
    assert cache.stats().rejected == 2


def test_zero_byte_entries_cannot_bypass_the_budget():
    """Regression: nbytes == 0 entries never triggered the eviction
    loop, so any number of them accumulated under any byte budget."""
    cache = LruCache(10)
    for i in range(1000):
        cache.put(("empty", i), i, 0)
    # At one accounted byte each, at most budget_bytes entries survive.
    assert len(cache) <= 10
    assert cache.current_bytes <= 10
    assert cache.stats().evictions >= 990


def test_clear_counts_dropped_entries_as_evictions():
    """Regression: clear() silently discarded entries, so stats-based
    accounting (insertions - evictions == entries) went stale."""
    cache = LruCache(100)
    cache.put("a", 1, 10)
    cache.put("b", 2, 10)
    cache.clear()
    assert len(cache) == 0
    assert cache.current_bytes == 0
    stats = cache.stats()
    assert stats.evictions == 2
    assert stats.insertions - stats.evictions == stats.entries == 0


def test_thread_safety_smoke():
    cache = LruCache(10_000)
    errors = []

    def worker(seed):
        try:
            for i in range(500):
                cache.put((seed, i % 50), i, 17)
                cache.get((seed ^ 1, i % 50))
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert cache.current_bytes <= 10_000


def test_chunk_cache_namespaces_traces(traces_chunk):
    shared = LruCache(1 << 20)
    one = ChunkCache(shared, ("one", 0))
    two = ChunkCache(shared, ("two", 0))
    one.put(0, traces_chunk)
    got = one.get(0)
    assert got is not None and len(got) == len(traces_chunk)
    for name in ("side", "code", "core", "seq", "raw_ts", "values",
                 "val_off", "truth"):
        assert list(getattr(got, name)) == list(getattr(traces_chunk, name))
    assert two.get(0) is None
    # Per-column entries charge exactly what is resident: every column
    # buffer except the synthesized truth column, which is never cached.
    truth = traces_chunk.truth
    assert shared.current_bytes == (
        chunk_nbytes(traces_chunk) - truth.itemsize * len(truth)
    )
    assert shared.current_bytes > 0


def test_chunk_cache_is_per_column(traces_chunk):
    shared = LruCache(1 << 20)
    cache = ChunkCache(shared, ("one", 0))
    cache.put(0, traces_chunk)
    narrow = cache.get(0, frozenset({"side", "code"}))
    assert list(narrow.side) == list(traces_chunk.side)
    assert list(narrow.code) == list(traces_chunk.code)
    with pytest.raises(RuntimeError):
        narrow.raw_ts  # not requested, so not assembled
    # Evict one column: a full-width get must miss while narrower
    # projections that avoid the hole still hit.
    shared.invalidate(lambda key: key[-1] == "raw_ts")
    assert cache.get(0) is None
    assert cache.get(0, frozenset({"side", "values"})) is not None


@pytest.fixture(scope="module")
def traces_chunk(tmp_path_factory):
    from repro.pdt import TraceConfig, open_trace, write_trace
    from repro.workloads import MatmulWorkload, run_workload

    result = run_workload(
        MatmulWorkload(n=64, tile=32, n_spes=2), TraceConfig(buffer_bytes=1024)
    )
    path = str(tmp_path_factory.mktemp("cache") / "m.pdt")
    write_trace(result.trace_source(), path)
    with open_trace(path) as source:
        return next(source.iter_chunks())
