"""pdt-serve argument validation: bad values exit 2 with a clear
message on stderr — never a traceback."""

import pytest

from repro.serve.cli import main


@pytest.mark.parametrize(
    "argv, message",
    [
        (["--jobs", "0"], "--jobs must be >= 1"),
        (["--jobs", "-3"], "--jobs must be >= 1"),
        (["--max-clients", "0"], "--max-clients must be >= 1"),
        (["--budget-mb", "0"], "--budget-mb must be >= 1"),
        (["--budget-mb", "-5"], "--budget-mb must be >= 1"),
    ],
)
def test_bad_arguments_exit_2(capsys, argv, message):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert message in err
    assert "Traceback" not in err


def test_bad_registration_exits_2(capsys, tmp_path):
    assert main(["--register", f"x={tmp_path / 'missing.pdt'}"]) == 2
    assert "pdt-serve:" in capsys.readouterr().err


def test_excess_jobs_clamp_noted(capsys, tmp_path):
    # Clamping happens before registration; the bad path then stops
    # the server from ever binding.
    assert main(
        ["--jobs", "9999", "--register", f"x={tmp_path / 'missing.pdt'}"]
    ) == 2
    assert "exceeds" in capsys.readouterr().err
