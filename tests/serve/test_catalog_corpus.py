"""TraceCatalog under corpus load: dozens of registered traces, a
deliberately small byte budget, refcounted acquires with deferred
eviction mid-flight, all-or-nothing bulk registration, and zero
descriptor leaks at the end of it all."""

import os

import pytest

from repro.pdt import TraceConfig, write_trace
from repro.serve.catalog import CatalogError, TraceCatalog
from repro.tq import Query
from repro.workloads import MonteCarloWorkload, run_workload

N_TRACES = 24


def _open_fds():
    return len(os.listdir("/proc/self/fd"))


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    result = run_workload(
        MonteCarloWorkload(samples_per_spe=500, n_spes=2),
        TraceConfig(buffer_bytes=1024),
    )
    path = str(tmp_path_factory.mktemp("corpusload") / "run.pdt")
    write_trace(result.trace_source(), path)
    return path


def _items(trace_path, n=N_TRACES):
    return [(f"run{i:02d}", trace_path) for i in range(n)]


def test_register_many_registers_all_in_order(trace_path):
    with TraceCatalog(memory_budget=64 * 1024) as catalog:
        rows = catalog.register_many(_items(trace_path))
        assert [row["name"] for row in rows] == [
            f"run{i:02d}" for i in range(N_TRACES)
        ]
        assert len(catalog) == N_TRACES


def test_register_many_is_all_or_nothing(trace_path, tmp_path):
    fds_before = _open_fds()
    with TraceCatalog() as catalog:
        items = _items(trace_path, 5)
        items.insert(3, ("broken", str(tmp_path / "missing.pdt")))
        with pytest.raises(OSError):
            catalog.register_many(items)
        # Nothing survives a partial failure, including the 3 opens
        # that had already succeeded.
        assert len(catalog) == 0
        assert catalog.stats()["open_descriptors"] == 0
    assert _open_fds() == fds_before


def test_register_many_duplicate_rolls_back(trace_path):
    with TraceCatalog() as catalog:
        catalog.register("run01", trace_path)
        with pytest.raises(CatalogError, match="already registered"):
            catalog.register_many(_items(trace_path, 4))
        # The pre-existing registration survives; the bulk ones don't.
        assert len(catalog) == 1
        assert "run01" in catalog and "run00" not in catalog


def test_corpus_load_small_budget_no_fd_leak(trace_path):
    """The corpus pattern: every trace queried through its shared
    handle, nested acquires refcounting, eviction landing mid-query
    deferred to release — and at close, every descriptor returned."""
    fds_before = _open_fds()
    with TraceCatalog(memory_budget=32 * 1024) as catalog:
        catalog.register_many(_items(trace_path))
        expected = None
        for i in range(N_TRACES):
            name = f"run{i:02d}"
            with catalog.acquire(name) as (handle, __, __identity):
                rows = (
                    Query(handle.source())
                    .groupby("spe")
                    .agg(n="count")
                    .run()
                )
                if expected is None:
                    expected = rows
                assert rows == expected
        # Nested acquires of one name share the handle refcounted.
        with catalog.acquire("run00") as (outer, __, __i1):
            with catalog.acquire("run00") as (inner, __, __i2):
                assert inner is outer
                # Eviction while two borrows are live: invisible at
                # once, closed only at the last release.
                assert catalog.evict("run00")["deferred"] is True
                assert "run00" not in catalog
            # Inner released, outer still borrowed: the handle must
            # still answer queries.
            assert outer.n_records > 0
            assert (
                Query(outer.source()).agg(n="count").run()[0]["n"]
                == outer.n_records
            )
        assert len(catalog) == N_TRACES - 1
        # The budget kept the caches bounded the whole time.
        stats = catalog.stats()
        assert stats["cached_bytes"] <= 32 * 1024
    assert _open_fds() == fds_before


def test_close_returns_every_descriptor(trace_path):
    fds_before = _open_fds()
    catalog = TraceCatalog(memory_budget=32 * 1024)
    catalog.register_many(_items(trace_path))
    handles = []
    for i in range(0, N_TRACES, 3):
        with catalog.acquire(f"run{i:02d}") as (handle, __, __identity):
            handle.source()  # force descriptors open
            handles.append(handle)
    catalog.close()
    assert _open_fds() == fds_before
    assert all(handle.open_descriptors == 0 for handle in handles)
