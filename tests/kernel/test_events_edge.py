"""Edge-case tests for waitable combinators and subscription plumbing."""

import pytest

from repro.kernel import (
    AllOf,
    AnyOf,
    Delay,
    Event,
    KernelError,
    Simulator,
)


def test_all_of_rejects_empty_and_non_waitable():
    with pytest.raises(KernelError):
        AllOf([])
    with pytest.raises(TypeError):
        AllOf([Delay(1), 42])
    with pytest.raises(KernelError):
        AnyOf([])


def test_all_of_failure_propagates_and_cancels():
    sim = Simulator()
    bad = Event(sim)
    caught = []

    def waiter():
        try:
            yield AllOf([Delay(1000), bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer():
        yield Delay(3)
        bad.fail(RuntimeError("child died"))

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert caught == ["child died"]
    # The losing Delay(1000) was cancelled: time stops at the failure.
    assert sim.now == 3


def test_any_of_failure_propagates():
    sim = Simulator()
    bad = Event(sim)
    caught = []

    def waiter():
        try:
            yield AnyOf([Delay(1000), bad])
        except ValueError:
            caught.append(True)

    def firer():
        yield Delay(2)
        bad.fail(ValueError("boom"))

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert caught == [True]
    assert sim.now == 2


def test_nested_combinators():
    sim = Simulator()
    results = []

    def waiter():
        index, value = yield AnyOf([
            AllOf([Delay(5), Delay(7)]),
            Delay(100),
        ])
        results.append((index, value, sim.now))

    sim.spawn(waiter())
    sim.run()
    assert results == [(0, [5, 7], 7)]
    assert sim.now == 7  # the losing Delay(100) was cancelled


def test_event_unsubscribe_before_trigger():
    sim = Simulator()
    ev = Event(sim)
    fired = []
    token = ev.subscribe(sim, lambda v, e: fired.append(v))
    ev.unsubscribe(token)
    ev.trigger("x")
    sim.run()
    assert fired == []


def test_event_value_access_rules():
    sim = Simulator()
    ev = Event(sim, name="v")
    with pytest.raises(KernelError, match="not yet triggered"):
        _ = ev.value
    ev.trigger(123)
    assert ev.value == 123
    assert ev.triggered


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_event_cross_simulator_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    ev = Event(sim_a)

    def waiter():
        yield ev

    sim_b.spawn(waiter())
    with pytest.raises(KernelError, match="different simulator"):
        sim_b.run()


def test_current_process_attribution():
    sim = Simulator()
    seen = []

    def named(tag):
        seen.append((tag, sim.current_process.name))
        yield Delay(1)
        seen.append((tag, sim.current_process.name))

    sim.spawn(named("a"), name="proc-a")
    sim.spawn(named("b"), name="proc-b")
    sim.run()
    assert ("a", "proc-a") in seen
    assert ("b", "proc-b") in seen
    assert all(tag in name for tag, name in seen)
    assert sim.current_process is None  # restored after stepping


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def instant():
        yield Delay(0)

    proc = sim.spawn(instant())
    sim.run()
    proc.interrupt()  # silently ignored: nothing to interrupt
    assert not proc.alive
    assert proc.exception is None


def test_kill_idempotent_after_death():
    sim = Simulator()

    def sleeper():
        yield Delay(100)

    proc = sim.spawn(sleeper())
    sim.run(until=10)
    proc.kill()
    sim.run()
    proc.kill()  # no-op on a dead process
    assert not proc.alive
