"""Tests for Resource and Channel."""

import pytest

from repro.kernel import (
    Channel,
    Delay,
    KernelError,
    QueueEmpty,
    Resource,
    Simulator,
)


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------
def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    grants = []

    def user(i, hold):
        yield res.acquire()
        grants.append((i, sim.now))
        yield Delay(hold)
        res.release()

    sim.spawn(user(0, 10))
    sim.spawn(user(1, 10))
    sim.spawn(user(2, 10))
    sim.run()
    assert grants == [(0, 0), (1, 0), (2, 10)]


def test_resource_fifo_fairness():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(i):
        yield res.acquire()
        order.append(i)
        yield Delay(5)
        res.release()

    for i in range(6):
        sim.spawn(user(i))
    sim.run()
    assert order == list(range(6))


def test_resource_release_without_acquire_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(KernelError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(KernelError):
        Resource(sim, capacity=0)


def test_resource_counters():
    sim = Simulator()
    res = Resource(sim, capacity=3)

    def holder():
        yield res.acquire()
        yield Delay(100)

    sim.spawn(holder())
    sim.spawn(holder())
    sim.run(until=1)
    assert res.in_use == 2
    assert res.available == 1
    assert res.queue_length == 0


# ----------------------------------------------------------------------
# Channel
# ----------------------------------------------------------------------
def test_channel_put_get_fifo():
    sim = Simulator()
    chan = Channel(sim, capacity=4)
    got = []

    def producer():
        for i in range(3):
            yield chan.put(i)

    def consumer():
        for _ in range(3):
            item = yield chan.get()
            got.append(item)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert got == [0, 1, 2]


def test_channel_put_blocks_when_full():
    sim = Simulator()
    chan = Channel(sim, capacity=1)
    times = []

    def producer():
        yield chan.put("a")
        times.append(("a-stored", sim.now))
        yield chan.put("b")
        times.append(("b-stored", sim.now))

    def consumer():
        yield Delay(20)
        yield chan.get()
        yield chan.get()

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert times == [("a-stored", 0), ("b-stored", 20)]


def test_channel_get_blocks_when_empty():
    sim = Simulator()
    chan = Channel(sim, capacity=1)
    got = []

    def consumer():
        item = yield chan.get()
        got.append((item, sim.now))

    def producer():
        yield Delay(7)
        yield chan.put("x")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [("x", 7)]


def test_channel_try_put_respects_capacity():
    sim = Simulator()
    chan = Channel(sim, capacity=2)
    assert chan.try_put(1)
    assert chan.try_put(2)
    assert not chan.try_put(3)
    assert chan.count == 2


def test_channel_try_get_raises_on_empty():
    sim = Simulator()
    chan = Channel(sim, capacity=2)
    with pytest.raises(QueueEmpty):
        chan.try_get()


def test_channel_put_overwrite_replaces_newest():
    sim = Simulator()
    chan = Channel(sim, capacity=2)
    assert chan.put_overwrite(1) is False
    assert chan.put_overwrite(2) is False
    assert chan.put_overwrite(3) is True  # overwrote 2
    assert chan.try_get() == 1
    assert chan.try_get() == 3


def test_channel_try_get_unblocks_putter():
    sim = Simulator()
    chan = Channel(sim, capacity=1)
    stored = []

    def producer():
        yield chan.put("a")
        yield chan.put("b")
        stored.append(sim.now)

    def consumer():
        yield Delay(5)
        assert chan.try_get() == "a"

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert stored == [5]
    assert chan.count == 1


def test_channel_capacity_validation():
    sim = Simulator()
    with pytest.raises(KernelError):
        Channel(sim, capacity=0)


def test_channel_waiting_getters_served_fifo():
    sim = Simulator()
    chan = Channel(sim, capacity=4)
    got = []

    def consumer(i):
        item = yield chan.get()
        got.append((i, item))

    for i in range(3):
        sim.spawn(consumer(i))

    def producer():
        yield Delay(1)
        for v in "abc":
            yield chan.put(v)

    sim.spawn(producer())
    sim.run()
    assert got == [(0, "a"), (1, "b"), (2, "c")]
