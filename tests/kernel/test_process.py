"""Tests for process semantics: yield protocol, join, crash, interrupt."""

import pytest

from repro.kernel import (
    AllOf,
    AnyOf,
    Delay,
    Event,
    Interrupt,
    KernelError,
    ProcessKilled,
    Simulator,
)


def run_to_end(sim):
    sim.run()
    return sim.now


def test_process_delay_sequence():
    sim = Simulator()
    trail = []

    def proc():
        yield Delay(5)
        trail.append(sim.now)
        yield Delay(7)
        trail.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert trail == [5, 12]


def test_process_return_value_via_join():
    sim = Simulator()
    results = []

    def worker():
        yield Delay(3)
        return 42

    def boss():
        value = yield sim.spawn(worker())
        results.append((sim.now, value))

    sim.spawn(boss())
    sim.run()
    assert results == [(3, 42)]


def test_join_already_finished_process():
    sim = Simulator()
    results = []

    def worker():
        yield Delay(1)
        return "done"

    worker_proc = sim.spawn(worker())

    def boss():
        yield Delay(10)
        value = yield worker_proc
        results.append((sim.now, value))

    sim.spawn(boss())
    sim.run()
    assert results == [(10, "done")]


def test_result_raises_while_alive():
    sim = Simulator()

    def worker():
        yield Delay(5)

    proc = sim.spawn(worker())
    with pytest.raises(KernelError):
        _ = proc.result


def test_crash_propagates_to_joiner():
    sim = Simulator()
    caught = []

    def bad():
        yield Delay(1)
        raise ValueError("boom")

    def boss():
        try:
            yield sim.spawn(bad())
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(boss())
    sim.run()
    assert caught == ["boom"]


def test_unjoined_crash_raises_out_of_run():
    sim = Simulator()

    def bad():
        yield Delay(1)
        raise ValueError("unseen boom")

    sim.spawn(bad())
    with pytest.raises(ValueError, match="unseen boom"):
        sim.run()


def test_yield_non_waitable_is_a_process_error():
    sim = Simulator()
    caught = []

    def bad():
        try:
            yield 42
        except KernelError as exc:
            caught.append("non-waitable" in str(exc))

    sim.spawn(bad())
    sim.run()
    assert caught == [True]


def test_event_trigger_wakes_waiter_with_value():
    sim = Simulator()
    ev = Event(sim, name="go")
    got = []

    def waiter():
        value = yield ev
        got.append((sim.now, value))

    def firer():
        yield Delay(9)
        ev.trigger("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == [(9, "payload")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = Event(sim)
    ev.trigger(1)
    with pytest.raises(KernelError):
        ev.trigger(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = Event(sim)
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer():
        yield Delay(2)
        ev.fail(RuntimeError("hw fault"))

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert caught == ["hw fault"]


def test_wait_on_already_triggered_event_resumes_immediately():
    sim = Simulator()
    ev = Event(sim)
    ev.trigger("early")
    got = []

    def waiter():
        yield Delay(4)
        value = yield ev
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(4, "early")]


def test_all_of_waits_for_every_child():
    sim = Simulator()
    got = []

    def waiter():
        values = yield AllOf([Delay(3), Delay(10), Delay(6)])
        got.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert got == [(10, [3, 10, 6])]


def test_any_of_returns_first_and_cancels_rest():
    sim = Simulator()
    got = []

    def waiter():
        index, value = yield AnyOf([Delay(30), Delay(4), Delay(20)])
        got.append((sim.now, index, value))

    sim.spawn(waiter())
    sim.run()
    # The losing delays were cancelled, so the sim ends at 4, not 30.
    assert got == [(4, 1, 4)]
    assert sim.now == 4


def test_any_of_event_vs_delay_timeout_pattern():
    sim = Simulator()
    got = []
    ev = Event(sim)

    def waiter():
        index, _ = yield AnyOf([ev, Delay(100)])
        got.append(("event" if index == 0 else "timeout", sim.now))

    def firer():
        yield Delay(10)
        ev.trigger()

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == [("event", 10)]


def test_interrupt_wakes_blocked_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield Delay(1000)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    sleeper_proc = sim.spawn(sleeper())

    def interrupter():
        yield Delay(5)
        sleeper_proc.interrupt("wake up")

    sim.spawn(interrupter())
    sim.run()
    assert log == [(5, "wake up")]
    assert sim.now == 5


def test_kill_terminates_without_external_crash():
    sim = Simulator()

    def sleeper():
        yield Delay(1000)

    victim = sim.spawn(sleeper())

    def killer():
        yield Delay(2)
        victim.kill("test")

    sim.spawn(killer())
    sim.run()
    assert not victim.alive
    assert isinstance(victim.exception, ProcessKilled)


def test_yield_from_composes_suboperations():
    sim = Simulator()
    trail = []

    def sub(n):
        yield Delay(n)
        trail.append(sim.now)
        return n * 2

    def main():
        a = yield from sub(5)
        b = yield from sub(3)
        trail.append(a + b)

    sim.spawn(main())
    sim.run()
    assert trail == [5, 8, 16]


def test_spawn_non_generator_rejected():
    sim = Simulator()

    def not_a_generator():
        return 1

    with pytest.raises(TypeError):
        sim.spawn(not_a_generator())


def test_many_processes_deterministic_order():
    """Two identical runs produce identical event orders."""

    def run_once():
        sim = Simulator()
        order = []

        def worker(i):
            yield Delay(10)
            order.append(i)
            yield Delay(i % 3)
            order.append(100 + i)

        for i in range(25):
            sim.spawn(worker(i))
        sim.run()
        return order

    assert run_once() == run_once()
