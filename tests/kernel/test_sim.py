"""Tests for the simulator core: scheduling, time, determinism."""

import pytest

from repro.kernel import DeadlockError, Delay, Event, SimTimeError, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_and_run_advances_time():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "a")
    sim.schedule(5, fired.append, "b")
    sim.run()
    assert fired == ["b", "a"]
    assert sim.now == 10


def test_same_time_callbacks_fire_fifo():
    sim = Simulator()
    fired = []
    for i in range(20):
        sim.schedule(7, fired.append, i)
    sim.run()
    assert fired == list(range(20))


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimTimeError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimTimeError):
        sim.schedule_at(5, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(5, fired.append, "early")
    sim.schedule(50, fired.append, "late")
    sim.run(until=20)
    assert fired == ["early"]
    assert sim.now == 20
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_in_past_rejected():
    sim = Simulator()
    sim.schedule(30, lambda: None)
    sim.run()
    with pytest.raises(SimTimeError):
        sim.run(until=10)


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    fired = []
    timer = sim.schedule(5, fired.append, "x")
    timer.cancel()
    sim.run()
    assert fired == []


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_pending_events_ignores_cancelled():
    sim = Simulator()
    keep = sim.schedule(1, lambda: None)
    drop = sim.schedule(2, lambda: None)
    drop.cancel()
    assert sim.pending_events == 1
    assert keep.cancelled is False


def test_callbacks_can_schedule_more_work():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 30


def test_deadlock_detected_when_process_blocks_forever():
    sim = Simulator()
    ev = Event(sim)

    def waiter():
        yield ev

    sim.spawn(waiter())
    with pytest.raises(DeadlockError):
        sim.run()


def test_delay_zero_is_legal_and_resumes_same_time():
    sim = Simulator()
    seen = []

    def proc():
        t = yield Delay(0)
        seen.append((t, sim.now))

    sim.spawn(proc())
    sim.run()
    assert seen == [(0, 0)]
