"""pdt-analyze --jobs: validation, clamping, and identical output."""

import os

import pytest

from repro.cli.analyze import main as analyze_main
from repro.cli.trace import main as trace_main


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli-jobs") / "mc.pdt")
    assert trace_main(
        ["montecarlo", "-n", "2", "-o", path, "--buffer", "1024"]
    ) == 0
    return path


def test_jobs_zero_is_an_error(trace_path, capsys):
    assert analyze_main([trace_path, "--jobs", "0", "--spe", "0"]) == 2
    err = capsys.readouterr().err
    assert "--jobs must be >= 1" in err


def test_jobs_negative_is_an_error(trace_path, capsys):
    assert analyze_main([trace_path, "--jobs", "-4", "--spe", "0"]) == 2
    err = capsys.readouterr().err
    assert "--jobs must be >= 1" in err and "-4" in err


def test_jobs_above_cpu_count_clamps_and_succeeds(trace_path, capsys):
    over = (os.cpu_count() or 1) + 7
    assert analyze_main(
        [trace_path, "--jobs", str(over), "--spe", "0"]
    ) == 0
    captured = capsys.readouterr()
    assert "exceeds" in captured.err
    assert "matching records" in captured.out


def test_jobs_query_output_identical_to_serial(trace_path, capsys):
    assert analyze_main([trace_path, "--spe", "0", "-v"]) == 0
    serial = capsys.readouterr().out
    jobs = str(max(2, os.cpu_count() or 1))
    assert analyze_main(
        [trace_path, "--spe", "0", "-v", "--jobs", jobs]
    ) == 0
    parallel = capsys.readouterr().out
    assert parallel == serial


def test_jobs_report_profile_identical_to_serial(trace_path, capsys):
    assert analyze_main([trace_path, "--profile"]) == 0
    serial = capsys.readouterr().out
    jobs = str(max(2, os.cpu_count() or 1))
    assert analyze_main([trace_path, "--profile", "--jobs", jobs]) == 0
    parallel = capsys.readouterr().out
    assert parallel == serial
