"""Tests for the results-assembly tool."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "tools"))

import collect_results  # noqa: E402
import corruption_fuzz  # noqa: E402


def test_collect_orders_experiments(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    for name, body in (
        ("f2_x.txt", "figure two"),
        ("a1_y.txt", "ablation one"),
        ("t1_z.txt", "table one"),
        ("f10_w.txt", "figure ten"),
    ):
        (results / name).write_text(body)
    document = collect_results.collect(str(results))
    order = [
        line[3:] for line in document.splitlines() if line.startswith("## ")
    ]
    assert order == ["t1_z", "f2_x", "f10_w", "a1_y"]
    assert "figure ten" in document


def test_collect_missing_dir_exits(tmp_path):
    import pytest

    with pytest.raises(SystemExit):
        collect_results.collect(str(tmp_path / "nope"))


def test_corruption_fuzz_smoke(capsys):
    # A short seeded run: the integrity invariants must hold and the
    # harness must exit 0.  CI runs the full N=200 sweep.
    assert corruption_fuzz.main(["--iterations", "20", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "0 failing cases" in out


def test_corruption_fuzz_mutations_are_deterministic():
    import random

    blob = bytes(range(256)) * 4
    first = corruption_fuzz.mutate(random.Random(42), blob)
    second = corruption_fuzz.mutate(random.Random(42), blob)
    assert first == second


def test_main_writes_output(tmp_path, capsys, monkeypatch):
    # Use the real results directory produced by the benchmark suite if
    # present; otherwise fabricate one.
    results = tmp_path / "results"
    results.mkdir()
    (results / "t1_a.txt").write_text("hello")
    monkeypatch.setattr(collect_results, "RESULTS_DIR", str(results))
    out = tmp_path / "RESULTS.md"
    assert collect_results.main(["-o", str(out)]) == 0
    assert out.read_text().startswith("# Regenerated experiment results")
