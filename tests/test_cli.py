"""CLI tests: pdt-trace and pdt-analyze end to end."""

import os

import pytest

from repro.cli.analyze import main as analyze_main
from repro.cli.trace import WORKLOADS, main as trace_main


def test_trace_then_analyze_round_trip(tmp_path, capsys):
    trace_path = str(tmp_path / "mc.pdt")
    code = trace_main(["montecarlo", "-n", "2", "-o", trace_path])
    assert code == 0
    assert os.path.exists(trace_path)
    out = capsys.readouterr().out
    assert "verified" in out
    assert "records" in out

    svg_path = str(tmp_path / "mc.svg")
    csv_path = str(tmp_path / "mc.csv")
    code = analyze_main(
        [trace_path, "--svg", svg_path, "--csv-stats", csv_path, "--width", "60"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "PDT trace report" in out
    assert "load balance" in out
    assert os.path.exists(svg_path)
    assert open(svg_path).read().startswith("<svg")
    assert open(csv_path).read().startswith("spe,")


def test_trace_cli_event_preset(tmp_path, capsys):
    trace_path = str(tmp_path / "s.pdt")
    code = trace_main(
        ["streaming", "-n", "2", "-o", trace_path, "--events", "dma",
         "--buffer", "2048"]
    )
    assert code == 0
    from repro.pdt import read_trace

    trace = read_trace(trace_path)
    groups = {r.group for r in trace.all_records()}
    assert "mailbox" not in groups
    assert "dma" in groups


def test_trace_cli_single_buffered_flag(tmp_path):
    trace_path = str(tmp_path / "m.pdt")
    assert trace_main(
        ["montecarlo", "-n", "1", "-o", trace_path, "--single-buffered-trace"]
    ) == 0


def test_analyze_cli_records_csv(tmp_path, capsys):
    trace_path = str(tmp_path / "t.pdt")
    trace_main(["montecarlo", "-n", "1", "-o", trace_path])
    capsys.readouterr()
    records_path = str(tmp_path / "records.csv")
    analyze_main([trace_path, "--csv-records", records_path])
    assert open(records_path).readline().startswith("time,side,core")


def test_every_cli_workload_is_runnable(tmp_path):
    # Keep it cheap: 2 SPEs, smallest defaults, just check exit code 0.
    for name in sorted(WORKLOADS):
        path = str(tmp_path / f"{name}.pdt")
        assert trace_main([name, "-n", "2", "-o", path]) == 0, name


def test_trace_cli_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        trace_main(["does-not-exist"])
