"""CLI tests: pdt-trace and pdt-analyze end to end."""

import os

import pytest

from repro.cli.analyze import main as analyze_main
from repro.cli.trace import WORKLOADS, main as trace_main


def test_trace_then_analyze_round_trip(tmp_path, capsys):
    trace_path = str(tmp_path / "mc.pdt")
    code = trace_main(["montecarlo", "-n", "2", "-o", trace_path])
    assert code == 0
    assert os.path.exists(trace_path)
    out = capsys.readouterr().out
    assert "verified" in out
    assert "records" in out

    svg_path = str(tmp_path / "mc.svg")
    csv_path = str(tmp_path / "mc.csv")
    code = analyze_main(
        [trace_path, "--svg", svg_path, "--csv-stats", csv_path, "--width", "60"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "PDT trace report" in out
    assert "load balance" in out
    assert os.path.exists(svg_path)
    assert open(svg_path).read().startswith("<svg")
    assert open(csv_path).read().startswith("spe,")


def test_trace_cli_event_preset(tmp_path, capsys):
    trace_path = str(tmp_path / "s.pdt")
    code = trace_main(
        ["streaming", "-n", "2", "-o", trace_path, "--events", "dma",
         "--buffer", "2048"]
    )
    assert code == 0
    from repro.pdt import read_trace

    trace = read_trace(trace_path)
    groups = {r.group for r in trace.all_records()}
    assert "mailbox" not in groups
    assert "dma" in groups


def test_trace_cli_single_buffered_flag(tmp_path):
    trace_path = str(tmp_path / "m.pdt")
    assert trace_main(
        ["montecarlo", "-n", "1", "-o", trace_path, "--single-buffered-trace"]
    ) == 0


def test_analyze_cli_records_csv(tmp_path, capsys):
    trace_path = str(tmp_path / "t.pdt")
    trace_main(["montecarlo", "-n", "1", "-o", trace_path])
    capsys.readouterr()
    records_path = str(tmp_path / "records.csv")
    analyze_main([trace_path, "--csv-records", records_path])
    assert open(records_path).readline().startswith("time,side,core")


def test_every_cli_workload_is_runnable(tmp_path):
    # Keep it cheap: 2 SPEs, smallest defaults, just check exit code 0.
    for name in sorted(WORKLOADS):
        path = str(tmp_path / f"{name}.pdt")
        assert trace_main([name, "-n", "2", "-o", path]) == 0, name


def test_trace_cli_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        trace_main(["does-not-exist"])


# ----------------------------------------------------------------------
# error handling and data quality
# ----------------------------------------------------------------------
def test_analyze_cli_garbage_file_exits_2(tmp_path, capsys):
    bad = tmp_path / "junk.pdt"
    bad.write_bytes(b"this is not a trace file at all, not even close")
    assert analyze_main([str(bad)]) == 2
    captured = capsys.readouterr()
    assert "pdt-analyze" in captured.err
    assert str(bad) in captured.err


def test_analyze_cli_missing_file_exits_2(tmp_path, capsys):
    assert analyze_main([str(tmp_path / "nope.pdt")]) == 2
    assert "pdt-analyze" in capsys.readouterr().err


def test_analyze_cli_salvage_flag_recovers_damaged_trace(tmp_path, capsys):
    trace_path = str(tmp_path / "mc.pdt")
    trace_main(["montecarlo", "-n", "1", "-o", trace_path])
    capsys.readouterr()
    from repro.pdt.format import chunk_frame_struct, data_offset

    with open(trace_path, "rb") as handle:
        blob = bytearray(handle.read())
    # One corrupt byte in the first chunk's payload (the PPE records);
    # the SPE chunks survive, so the salvaged trace still analyzes.
    version = blob[4]
    blob[data_offset(version) + chunk_frame_struct(version).size + 5] ^= 0xFF
    with open(trace_path, "wb") as handle:
        handle.write(bytes(blob))
    # Strict: detected, reported, exit 2 — never a silent wrong read.
    assert analyze_main([trace_path]) == 2
    assert "pdt-analyze" in capsys.readouterr().err
    # Salvage: the readable chunks analyze, the loss is itemized.
    assert analyze_main([trace_path, "--salvage"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("salvage:")
    assert "--- data quality ---" in out
    assert "corrupt chunks skipped" in out


def test_region_exhaustion_reports_data_quality(tmp_path, capsys):
    """Acceptance path: a run that outgrows its trace region prints a
    loss warning at trace time, and the analyzer's data-quality section
    shows the same nonzero count."""
    import re

    trace_path = str(tmp_path / "small.pdt")
    assert trace_main(
        ["matmul", "-n", "1", "-o", trace_path, "--region", "2048"]
    ) == 0
    out = capsys.readouterr().out
    match = re.search(r"trace loss: (\d+) records dropped at region full", out)
    assert match, out
    dropped = int(match.group(1))
    assert dropped > 0
    assert analyze_main([trace_path]) == 0
    out = capsys.readouterr().out
    assert "--- data quality ---" in out
    assert (
        f"{dropped} records lost: {dropped} dropped at region full" in out
    )


def test_wrap_run_reports_overwritten_in_data_quality(tmp_path, capsys):
    import re

    trace_path = str(tmp_path / "wrap.pdt")
    assert trace_main(
        ["matmul", "-n", "1", "-o", trace_path, "--region", "2048",
         "--wrap"]
    ) == 0
    out = capsys.readouterr().out
    match = re.search(r"(\d+) overwritten by wrap \((\d+) wraps\)", out)
    assert match, out
    overwritten = int(match.group(1))
    assert overwritten > 0
    assert analyze_main([trace_path]) == 0
    out = capsys.readouterr().out
    assert f"{overwritten} overwritten by wrap" in out
    assert "blind interval" in out


def test_clean_run_reports_no_loss(tmp_path, capsys):
    trace_path = str(tmp_path / "clean.pdt")
    assert trace_main(["montecarlo", "-n", "1", "-o", trace_path]) == 0
    capsys.readouterr()
    assert analyze_main([trace_path]) == 0
    out = capsys.readouterr().out
    assert "no records lost" in out


def test_analyze_query_mode_parses_header_exactly_once(tmp_path, capsys,
                                                       monkeypatch):
    """One pdt-analyze invocation = one TraceHandle = one header read,
    even when the invocation combines --write-index with query passes
    (which used to reopen the trace per pass)."""
    import repro.pdt.handle as handle_mod

    trace_path = str(tmp_path / "mc.pdt")
    assert trace_main(["montecarlo", "-n", "2", "-o", trace_path]) == 0
    capsys.readouterr()

    calls = []
    real_parse = handle_mod._parse_header

    def counting_parse(blob):
        calls.append(blob)
        return real_parse(blob)

    monkeypatch.setattr(handle_mod, "_parse_header", counting_parse)

    assert analyze_main(
        [trace_path, "--write-index", "--spe", "0", "--between", "0:10000000"]
    ) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert len(calls) == 1, f"header parsed {len(calls)} times, want 1"

    # A plain report invocation is also a single parse.
    calls.clear()
    assert analyze_main([trace_path]) == 0
    capsys.readouterr()
    assert len(calls) == 1, f"header parsed {len(calls)} times, want 1"
