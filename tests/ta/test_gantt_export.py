"""Rendering and export tests."""

import csv
import io

import pytest

from repro.ta import (
    TraceStatistics,
    analyze,
    records_to_csv,
    render_ascii,
    render_svg,
    stats_to_csv,
)

from tests.ta.util import (
    compute_only_program,
    run_traced,
    single_buffered_program,
)


def model_for(programs):
    __, hooks = run_traced(programs)
    return analyze(hooks.to_trace())


def test_ascii_has_one_lane_pair_per_spe():
    model = model_for([compute_only_program(), compute_only_program()])
    text = render_ascii(model, width=60)
    assert "spe0 " in text
    assert "spe1 " in text
    assert text.count("dma |") == 2
    assert "legend:" in text


def test_ascii_rows_have_requested_width():
    model = model_for([compute_only_program()])
    text = render_ascii(model, width=50)
    for line in text.splitlines():
        if line.startswith("spe") or line.startswith("  dma"):
            row = line.split("|")[1]
            assert len(row) == 50


def test_ascii_compute_only_is_mostly_run():
    model = model_for([compute_only_program(cycles=1_000_000)])
    text = render_ascii(model, width=60)
    state_row = [l for l in text.splitlines() if l.startswith("spe0")][0]
    row = state_row.split("|")[1]
    assert row.count("#") > 50


def test_ascii_single_buffered_shows_dma_waits():
    model = model_for([single_buffered_program(iterations=20, compute=500)])
    text = render_ascii(model, width=60)
    state_row = [l for l in text.splitlines() if l.startswith("spe0")][0]
    assert "d" in state_row.split("|")[1]
    dma_row = [l for l in text.splitlines() if l.startswith("  dma")][0]
    assert "_" in dma_row.split("|")[1]


def test_ascii_ppe_lane_shows_occupancy():
    model = model_for([compute_only_program(cycles=200_000),
                       compute_only_program(cycles=200_000)])
    text = render_ascii(model, width=60)
    ppe_lines = [l for l in text.splitlines() if l.startswith("ppe")]
    assert len(ppe_lines) == 1
    row = ppe_lines[0].split("|")[1]
    assert "2" in row  # both contexts ran concurrently


def test_ascii_width_validation():
    model = model_for([compute_only_program()])
    with pytest.raises(ValueError):
        render_ascii(model, width=5)


def test_svg_is_well_formed_and_complete():
    model = model_for([single_buffered_program(iterations=5)])
    svg = render_svg(model)
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert svg.count("<rect") >= len(model.core(0).intervals) + len(
        model.core(0).dma_spans
    )
    assert "spe0" in svg
    # Every open tag closes (crude well-formedness).
    assert svg.count("<rect") == svg.count("/>") + svg.count("</rect>")


def test_svg_tooltips_carry_dma_details():
    model = model_for([single_buffered_program(iterations=3, size=4096)])
    svg = render_svg(model)
    assert "size=4096" in svg
    assert "get tag=1" in svg


def test_records_csv_round_readable():
    __, hooks = run_traced([compute_only_program()])
    model = analyze(hooks.to_trace())
    text = records_to_csv(model.correlated)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == model.trace.n_records
    kinds = {row["kind"] for row in rows}
    assert "spe_entry" in kinds
    assert "context_run_end" in kinds
    times = [int(row["time"]) for row in rows]
    assert times == sorted(times)


def test_stats_csv_has_per_spe_rows():
    __, hooks = run_traced([compute_only_program(), compute_only_program()])
    stats = TraceStatistics.from_model(analyze(hooks.to_trace()))
    text = stats_to_csv(stats)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert [row["spe"] for row in rows] == ["0", "1"]
    assert all(float(row["utilization"]) > 0 for row in rows)


def test_csv_writers_accept_file_objects(tmp_path):
    __, hooks = run_traced([compute_only_program()])
    model = analyze(hooks.to_trace())
    stats = TraceStatistics.from_model(model)
    path = tmp_path / "out.csv"
    with open(path, "w") as handle:
        records_to_csv(model.correlated, handle)
    assert path.read_text().startswith("time,side,core,seq,kind")
    with open(path, "w") as handle:
        stats_to_csv(stats, handle)
    assert path.read_text().startswith("spe,")
