"""End-to-end event-loss accounting: tracer -> file -> analyzer.

The paper's workflow demands the analysis never silently pretend the
trace is complete: region-full drops, wrap overwrites, and salvage
losses must all surface in the model's DataQuality and in the report.
"""

import pytest

from repro.pdt import TraceConfig, open_trace, read_trace, write_trace
from repro.pdt.format import chunk_frame_struct, data_offset
from repro.ta.model import STATE_LOST, analyze
from repro.ta.report import data_quality_section, full_report

from tests.ta.util import run_traced, single_buffered_program


def _lossy_run(wrap):
    config = TraceConfig(
        buffer_bytes=512, trace_region_bytes=2048, wrap=wrap
    )
    return run_traced(
        [single_buffered_program(iterations=40)], trace_config=config
    )


def test_clean_run_has_clean_data_quality():
    __, hooks = run_traced([single_buffered_program()])
    model = analyze(hooks.event_source())
    quality = model.data_quality()
    assert quality.clean
    assert quality.records_lost == 0
    assert quality.intervals == {}
    assert "no records lost" in data_quality_section(model)


@pytest.mark.parametrize("wrap", [False, True])
def test_loss_counts_flow_from_tracer_to_model(tmp_path, wrap):
    """The acceptance property: the analyzer's data-quality numbers,
    read back from the trace *file*, equal the tracer's own stats."""
    __, hooks = _lossy_run(wrap)
    stats = hooks.stats.spe(0)
    if wrap:
        assert stats.overwritten_records > 0 and stats.wraps >= 1
    else:
        assert stats.dropped_records > 0
    path = str(tmp_path / "lossy.pdt")
    write_trace(hooks.event_source(), path)
    model = analyze(open_trace(path))
    quality = model.data_quality()
    assert not quality.clean
    assert quality.dropped == stats.dropped_records
    assert quality.overwritten == stats.overwritten_records
    assert quality.wraps == stats.wraps
    assert quality.records_lost == stats.dropped_records + stats.overwritten_records
    assert quality.per_spe[0].total == quality.records_lost
    # The summary line carries the same numbers.
    summary = quality.summary()
    assert f"{quality.records_lost} records lost" in summary
    assert f"{stats.dropped_records} dropped at region full" in summary


def test_loss_interval_is_placed_on_the_global_timeline(tmp_path):
    """The raw decrementer bounds in the trace_loss record map to a
    real global-time blind interval inside the run's span."""
    __, hooks = _lossy_run(wrap=True)
    path = str(tmp_path / "wrap.pdt")
    write_trace(hooks.event_source(), path)
    model = analyze(open_trace(path))
    intervals = model.loss_intervals()
    assert 0 in intervals
    interval = intervals[0]
    assert interval.state == STATE_LOST
    assert interval.duration >= 0
    core = model.core(0)
    # The blind span lies within (a hair of) the observed window.
    assert interval.start >= 0
    assert interval.end <= model.t_end + model.correlator.divider * 4
    assert core.loss is not None and core.loss.overwritten > 0


def test_wrap_blind_interval_not_modulus_inflated(tmp_path):
    """Wrap mode with a large LS buffer: no half-full flush ever fires,
    so every pre-wrap sync is overwritten and the surviving records —
    and the trace_loss bounds, by construction — predate the first
    surviving sync anchor.

    Regression: the correlator mapped pre-anchor decrementer readings
    with an unsigned modular difference, wrapping them a full 2**32
    ticks into the future; the blind interval and the model span
    inflated to ~divider * 2**32 cycles.
    """
    config = TraceConfig(
        buffer_bytes=16384, trace_region_bytes=2048, wrap=True
    )
    __, hooks = run_traced(
        [single_buffered_program(iterations=60)], trace_config=config
    )
    stats = hooks.stats.spe(0)
    assert stats.overwritten_records > 0 and stats.wraps >= 1
    # Only wrap drains and the final flush — no half-full flushes.
    assert stats.flushes <= stats.wraps + 1
    path = str(tmp_path / "bigbuf.pdt")
    write_trace(hooks.event_source(), path)
    model = analyze(open_trace(path))
    span = model.t_end - model.t_start
    assert span < 1 << 32, "model span inflated by a decrementer wrap"
    interval = model.loss_intervals()[0]
    assert interval.state == STATE_LOST
    assert (
        model.t_start - span
        <= interval.start
        < interval.end
        <= model.t_end + span
    )


def test_report_includes_data_quality_section(tmp_path):
    __, hooks = _lossy_run(wrap=False)
    path = str(tmp_path / "drops.pdt")
    write_trace(hooks.event_source(), path)
    report = full_report(open_trace(path))
    assert "--- data quality ---" in report
    assert "dropped at region full" in report
    assert "spe0:" in report


def test_salvage_losses_join_tracer_losses(tmp_path):
    """Corrupt one chunk of a lossy trace: DataQuality combines the
    wrap overwrites with the salvage drop."""
    __, hooks = _lossy_run(wrap=True)
    stats = hooks.stats.spe(0)
    path = str(tmp_path / "both.pdt")
    write_trace(hooks.event_source(), path)
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    version = blob[4]
    # Corrupt the first chunk (the PPE records): SPE evidence survives.
    blob[data_offset(version) + chunk_frame_struct(version).size + 3] ^= 0x80
    source = open_trace(bytes(blob), strict=False)
    assert source.salvage is not None and source.salvage.chunks_dropped == 1
    model = analyze(source)
    quality = model.data_quality()
    assert quality.corrupt_chunks == 1
    assert quality.salvage_lost > 0
    assert quality.overwritten == stats.overwritten_records
    assert (
        quality.records_lost
        == stats.dropped_records
        + stats.overwritten_records
        + quality.salvage_lost
    )
    section = data_quality_section(model)
    assert "corrupt chunks skipped" in section
    assert "salvage:" in section
