"""Timeline reconstruction tests, validated against simulator truth."""

import pytest

from repro.cell import SpuState
from repro.pdt.events import SIDE_SPE, TraceRecord, code_for_kind
from repro.ta import analyze
from repro.ta.model import (
    STATE_IDLE,
    STATE_RUN,
    STATE_WAIT_DMA,
    STATE_WAIT_MBOX,
    ModelError,
)

from tests.ta.util import (
    compute_only_program,
    double_buffered_program,
    run_traced,
    single_buffered_program,
)


def test_core_window_brackets_all_intervals():
    __, hooks = run_traced([single_buffered_program()])
    model = analyze(hooks.to_trace())
    core = model.core(0)
    assert core.exit_observed
    for interval in core.intervals:
        assert core.window_start <= interval.start < interval.end <= core.window_end


def test_intervals_tile_the_window_without_overlap():
    __, hooks = run_traced([single_buffered_program()])
    core = analyze(hooks.to_trace()).core(0)
    cursor = core.window_start
    for interval in core.intervals:
        assert interval.start == cursor
        cursor = interval.end
    assert cursor == core.window_end


def test_wait_dma_time_matches_ground_truth():
    machine, hooks = run_traced([single_buffered_program(iterations=20)])
    core = analyze(hooks.to_trace()).core(0)
    truth = machine.spe(0).track.totals[SpuState.WAIT_DMA]
    reconstructed = core.time_in(STATE_WAIT_DMA)
    # The wait interval brackets include the begin/end record overhead
    # and clock quantization; allow 25% slack on a stall-heavy run.
    assert reconstructed == pytest.approx(truth, rel=0.25)
    assert reconstructed > 0


def test_wait_mbox_reconstructed():
    __, hooks = run_traced([compute_only_program()])
    core = analyze(hooks.to_trace()).core(0)
    # write_out_mbox produces a (brief) WAIT_MBOX interval.
    assert core.time_in(STATE_WAIT_MBOX) > 0


def test_dma_span_count_matches_issued_commands():
    machine, hooks = run_traced([single_buffered_program(iterations=12)])
    core = analyze(hooks.to_trace()).core(0)
    app_dmas = [
        c for c in machine.spe(0).mfc.completed_commands
        if not c.issuer.startswith("pdt-trace")
    ]
    assert len(core.dma_spans) == len(app_dmas) == 12
    assert all(span.observed for span in core.dma_spans)
    assert all(span.direction == "get" for span in core.dma_spans)
    assert all(span.size == 8192 for span in core.dma_spans)


def test_dma_span_latency_close_to_truth():
    machine, hooks = run_traced([single_buffered_program(iterations=10)])
    core = analyze(hooks.to_trace()).core(0)
    truth = [
        c.complete_time - c.issue_time
        for c in machine.spe(0).mfc.completed_commands
        if not c.issuer.startswith("pdt-trace")
    ]
    observed = [span.duration for span in core.dma_spans]
    # Observed latency >= true latency (software sees completion late),
    # and not wildly larger on a single-buffered loop that waits
    # immediately.
    for obs, tru in zip(observed, truth):
        assert obs >= tru * 0.5
        assert obs <= tru + 2500


def test_double_buffered_spans_overlap_compute():
    __, hooks = run_traced([double_buffered_program(iterations=10, compute=20000)])
    core = analyze(hooks.to_trace()).core(0)
    # With prefetching, waits observe completions late: span durations
    # stretch over the compute phase.
    assert len(core.dma_spans) == 10


def test_unpaired_wait_raises_model_error():
    __, hooks = run_traced([single_buffered_program(iterations=2)])
    trace = hooks.to_trace()
    records = trace.spe_records[0]
    # Drop the first wait_tag_end record.
    for i, record in enumerate(records):
        if record.kind == "wait_tag_end":
            del records[i]
            break
    # Renumber to keep seq valid.
    for seq, record in enumerate(records):
        record.seq = seq
    with pytest.raises(ModelError, match="begins inside open wait"):
        analyze(trace)


def test_truncated_trace_missing_final_end_raises():
    __, hooks = run_traced([single_buffered_program(iterations=1)])
    trace = hooks.to_trace()
    records = trace.spe_records[0]
    last_end = max(
        i for i, r in enumerate(records) if r.kind.endswith("_end")
    )
    trace.spe_records[0] = records[:last_end]
    with pytest.raises(ModelError, match="never ended"):
        analyze(trace)


def test_ppe_run_spans_cover_spe_windows():
    __, hooks = run_traced([compute_only_program(), compute_only_program()])
    model = analyze(hooks.to_trace())
    assert len(model.ppe_runs) == 2
    for run in model.ppe_runs:
        core = model.core(run.spe_id)
        # PPE observes run begin before SPE entry; quantization slack.
        assert run.start <= core.window_start + 120
        assert run.end >= core.window_end - 120
        assert run.stop_code == 0


def test_model_time_bounds():
    __, hooks = run_traced([compute_only_program()])
    model = analyze(hooks.to_trace())
    assert model.t_start <= model.core(0).window_start
    assert model.t_end >= model.core(0).window_end


def test_unknown_spe_raises():
    __, hooks = run_traced([compute_only_program()])
    model = analyze(hooks.to_trace())
    with pytest.raises(ModelError, match="no records for SPE 5"):
        model.core(5)


def test_multi_program_stream_segments_and_idle_gaps():
    """Virtual contexts rotate programs through one SPE: the model
    reconstructs one segment per program with IDLE between."""
    from repro.cell import CellConfig, CellMachine
    from repro.libspe import Runtime, SpeProgram
    from repro.pdt import PdtHooks, TraceConfig

    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 26))
    hooks = PdtHooks(TraceConfig())
    rt = Runtime(machine, hooks=hooks)

    def job(tag):
        def entry(spu, argp, envp):
            yield from spu.compute(5000)
            return tag

        return SpeProgram(f"j{tag}", entry)

    def main():
        for i in range(3):
            ctx = yield from rt.context_create(virtual=True)
            yield from ctx.load(job(i))
            yield from ctx.run()

    machine.spawn(main())
    machine.run()
    core = analyze(hooks.to_trace()).core(0)
    assert len(core.segments) == 3
    # Segments are disjoint and ordered.
    for (s1, e1), (s2, e2) in zip(core.segments, core.segments[1:]):
        assert e1 <= s2
    # IDLE intervals appear between segments, run time covers ~3x5000.
    assert core.time_in(STATE_IDLE) > 0
    assert core.time_in(STATE_RUN) >= 3 * 5000
    # Intervals still tile the overall window.
    cursor = core.window_start
    for interval in core.intervals:
        assert interval.start == cursor
        cursor = interval.end
    assert cursor == core.window_end


def test_unobserved_dma_closes_at_window_edge():
    """A program that issues a PUT and exits without waiting."""
    from repro.libspe import SpeProgram

    def entry(spu, argp, envp):
        spu.ls_write(0, b"\x01" * 128)
        yield from spu.mfc_put(0, argp, 128, tag=3)
        yield from spu.write_out_mbox(0)
        return 0

    __, hooks = run_traced([SpeProgram("fire-and-forget", entry)])
    core = analyze(hooks.to_trace()).core(0)
    assert len(core.dma_spans) == 1
    span = core.dma_spans[0]
    assert not span.observed
    assert span.end == core.window_end
