"""Critical-path analysis tests."""

import pytest

from repro.pdt import TraceConfig
from repro.ta import analyze
from repro.ta.critical import critical_path
from repro.workloads import StreamingPipelineWorkload, run_workload

from tests.ta.util import compute_only_program, run_traced


def test_single_core_path_is_its_own_window():
    __, hooks = run_traced([compute_only_program(cycles=100_000)])
    model = analyze(hooks.to_trace())
    path = critical_path(model)
    assert path.steps
    assert all(step.core == "spe0" for step in path.steps)
    core = model.core(0)
    assert path.steps[0].start == core.window_start
    assert path.steps[-1].end == core.window_end
    # The path covers the whole window with no gaps.
    assert path.span == core.window
    cursor = path.steps[0].start
    for step in path.steps:
        assert step.start == cursor
        cursor = step.end


def test_pipeline_path_crosses_cores_via_messages():
    result = run_workload(
        StreamingPipelineWorkload(stages=3, blocks=8, block_bytes=1024,
                                  compute_per_block=4000, depth=1),
        TraceConfig(),
    )
    model = analyze(result.trace())
    path = critical_path(model)
    cores_on_path = {step.core for step in path.steps}
    assert len(cores_on_path) >= 2  # the walk crossed cores
    assert any(step.state == "message" for step in path.steps)


def test_bottleneck_dominates_critical_path():
    result = run_workload(
        StreamingPipelineWorkload(
            stages=4, blocks=24, block_bytes=4096, compute_per_block=3000,
            depth=2, bottleneck_stage=2, bottleneck_factor=8,
        ),
        TraceConfig(),
    )
    model = analyze(result.trace())
    path = critical_path(model)
    assert path.dominant_core() == "spe2"
    by_core = path.time_by_core()
    total = sum(by_core.values())
    # The hidden 8x-slower stage owns most of the path.
    assert by_core["spe2"] / total > 0.5
    # And most path time is run (the bottleneck computing), not waiting.
    by_state = path.time_by_state()
    assert by_state.get("run", 0) > by_state.get("wait_signal", 0)


def test_path_rows_and_accounting_consistent():
    result = run_workload(
        StreamingPipelineWorkload(stages=2, blocks=6, block_bytes=1024),
        TraceConfig(),
    )
    path = critical_path(analyze(result.trace()))
    rows = path.rows()
    assert len(rows) == len(path.steps)
    assert sum(r["cycles"] for r in rows) == sum(
        path.time_by_core().values()
    )
    # Steps are chronological.
    starts = [r["start"] for r in rows]
    assert starts == sorted(starts)


def test_empty_model_yields_empty_path():
    from repro.pdt.trace import Trace, TraceHeader
    from repro.ta.model import TimelineModel
    from repro.pdt.correlate import CorrelatedTrace, ClockCorrelator

    header = TraceHeader(n_spes=0, timebase_divider=120, spu_clock_hz=3.2e9,
                         groups_bitmap=0, buffer_bytes=1024)
    trace = Trace(header=header)
    model = analyze(trace)
    path = critical_path(model)
    assert path.steps == []
    assert path.span == 0
