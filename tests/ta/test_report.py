"""Report formatting tests."""

from repro.ta.report import format_table, full_report

from tests.ta.util import compute_only_program, run_traced, single_buffered_program


def test_format_table_alignment():
    rows = [{"a": 1, "bb": "x"}, {"a": 222, "bb": "yy"}]
    text = format_table(rows)
    lines = text.splitlines()
    assert len(lines) == 4  # header, separator, 2 rows
    assert all(len(line) == len(lines[0]) for line in lines)


def test_format_table_empty():
    assert format_table([]) == "(no data)\n"


def test_full_report_sections_present():
    __, hooks = run_traced([single_buffered_program(), compute_only_program()])
    text = full_report(hooks.to_trace(), gantt_width=60)
    for heading in (
        "PDT trace report",
        "timeline",
        "per-SPE statistics",
        "stall attribution",
        "load balance",
        "buffering, per SPE",
    ):
        assert heading in text
    assert "spe0" in text
    assert "spe1" in text


def test_full_report_verdicts_match_workloads():
    __, hooks = run_traced(
        [single_buffered_program(iterations=20, compute=500)]
    )
    text = full_report(hooks.to_trace())
    assert "single-buffered" in text
