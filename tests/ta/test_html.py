"""HTML report tests."""

from repro.ta.html import html_report, save_html_report

from tests.ta.util import run_traced, single_buffered_program


def make_trace():
    __, hooks = run_traced([single_buffered_program(iterations=5),
                            single_buffered_program(iterations=5)])
    return hooks.to_trace()


def test_html_report_is_complete_document():
    doc = html_report(make_trace())
    assert doc.startswith("<!DOCTYPE html>")
    assert doc.rstrip().endswith("</html>")
    for section in ("Timeline", "Per-SPE statistics", "Stall attribution",
                    "Diagnoses", "Event profile", "Communication channels"):
        assert section in doc
    assert "<svg" in doc
    assert "spe0" in doc and "spe1" in doc


def test_html_report_escapes_title():
    doc = html_report(make_trace(), title="<script>alert(1)</script>")
    assert "<script>alert" not in doc
    assert "&lt;script&gt;" in doc


def test_html_report_verdicts_present():
    doc = html_report(make_trace())
    assert "single-buffered" in doc
    assert "load balance" in doc


def test_save_html_report(tmp_path):
    path = str(tmp_path / "report.html")
    save_html_report(make_trace(), path, title="run 42")
    content = open(path).read()
    assert "run 42" in content
    assert content.startswith("<!DOCTYPE html>")
