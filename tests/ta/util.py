"""Workload fixtures with known timeline structure for TA tests."""

from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime, SpeProgram
from repro.pdt import PdtHooks, TraceConfig


def single_buffered_program(iterations=10, size=8192, compute=3000):
    """GET -> wait -> compute -> repeat: the SPU stalls on every GET."""

    def entry(spu, argp, envp):
        ls = spu.ls_alloc(size)
        for __ in range(iterations):
            yield from spu.mfc_get(ls, argp, size, tag=1)
            yield from spu.mfc_wait_tag(1 << 1)
            yield from spu.compute(compute)
        yield from spu.write_out_mbox(0)
        return 0

    return SpeProgram("single-buffered", entry)


def double_buffered_program(iterations=10, size=8192, compute=3000):
    """Prefetch the next block while computing on the current one."""

    def entry(spu, argp, envp):
        ls = [spu.ls_alloc(size), spu.ls_alloc(size)]
        yield from spu.mfc_get(ls[0], argp, size, tag=0)
        for i in range(iterations):
            current = i % 2
            if i + 1 < iterations:
                yield from spu.mfc_get(ls[1 - current], argp, size, tag=1 - current)
            yield from spu.mfc_wait_tag(1 << current)
            yield from spu.compute(compute)
        yield from spu.write_out_mbox(0)
        return 0

    return SpeProgram("double-buffered", entry)


def compute_only_program(cycles=50_000):
    def entry(spu, argp, envp):
        yield from spu.compute(cycles)
        yield from spu.write_out_mbox(0)
        return 0

    return SpeProgram("compute-only", entry)


def run_traced(program_per_spe, trace_config=None, cell_config=None):
    """Run one program per SPE (list) under PDT; returns (machine, hooks)."""
    n_spes = len(program_per_spe)
    machine = CellMachine(
        cell_config or CellConfig(n_spes=n_spes, main_memory_size=1 << 26)
    )
    hooks = PdtHooks(trace_config or TraceConfig(buffer_bytes=2048))
    runtime = Runtime(machine, hooks=hooks)
    buffers = [machine.memory.allocate(64 * 1024) for __ in range(n_spes)]

    def main():
        contexts = []
        for program in program_per_spe:
            ctx = yield from runtime.context_create()
            yield from ctx.load(program)
            contexts.append(ctx)
        procs = [
            ctx.run_async(argp=buffers[i]) for i, ctx in enumerate(contexts)
        ]
        for ctx in contexts:
            yield from ctx.out_mbox_read()
        for proc in procs:
            yield proc
        runtime.finalize()

    machine.spawn(main())
    machine.run()
    return machine, hooks
