"""Tests for the time-series views."""

import numpy as np
import pytest

from repro.ta import analyze
from repro.ta.series import (
    active_spes_series,
    dma_inflight_series,
    issue_bandwidth_series,
    series_to_rows,
)

from tests.ta.util import (
    compute_only_program,
    double_buffered_program,
    run_traced,
    single_buffered_program,
)


def model_for(programs):
    __, hooks = run_traced(programs)
    return analyze(hooks.to_trace())


def test_series_shapes_and_bounds():
    model = model_for([single_buffered_program(iterations=8)])
    centers, inflight = dma_inflight_series(model, buckets=40)
    assert centers.shape == inflight.shape == (40,)
    assert np.all(inflight >= 0)
    assert np.all(np.diff(centers) > 0)


def test_inflight_integral_matches_total_span_time():
    model = model_for([single_buffered_program(iterations=10)])
    core = model.core(0)
    total_span_cycles = sum(s.duration for s in core.dma_spans)
    centers, inflight = dma_inflight_series(model, buckets=64, spe_id=0)
    bucket_width = centers[1] - centers[0]
    integral = float((inflight * bucket_width).sum())
    assert integral == pytest.approx(total_span_cycles, rel=0.02)


def test_double_buffering_sustains_higher_concurrency():
    single = model_for([single_buffered_program(iterations=15, compute=3000)])
    double = model_for([double_buffered_program(iterations=15, compute=3000)])
    __, inflight_single = dma_inflight_series(single, buckets=30, spe_id=0)
    __, inflight_double = dma_inflight_series(double, buckets=30, spe_id=0)
    assert inflight_double.mean() > inflight_single.mean()


def test_issue_bandwidth_conserves_bytes():
    model = model_for([single_buffered_program(iterations=10, size=4096)])
    centers, bandwidth = issue_bandwidth_series(model, buckets=32)
    bucket_width = centers[1] - centers[0]
    total = float((bandwidth * bucket_width).sum())
    assert total == pytest.approx(10 * 4096, rel=0.01)


def test_active_spes_bounded_by_core_count():
    model = model_for([compute_only_program(), compute_only_program()])
    __, active = active_spes_series(model, buckets=20)
    assert np.all(active <= 2.0 + 1e-9)
    assert active.max() > 1.5  # both compute simultaneously


def test_series_to_rows_format():
    model = model_for([compute_only_program()])
    centers, active = active_spes_series(model, buckets=5)
    rows = series_to_rows(centers, active, "active_spes")
    assert len(rows) == 5
    assert set(rows[0]) == {"t_cycles", "active_spes"}


def test_bucket_validation():
    model = model_for([compute_only_program()])
    with pytest.raises(ValueError):
        dma_inflight_series(model, buckets=0)
