"""Statistics and use-case analysis tests."""

import pytest

from repro.cell import SpuState
from repro.ta import (
    TraceStatistics,
    analyze,
    analyze_buffering,
    analyze_load_balance,
)
from repro.ta.analysis import stall_attribution
from repro.ta.model import STATE_WAIT_DMA

from tests.ta.util import (
    compute_only_program,
    double_buffered_program,
    run_traced,
    single_buffered_program,
)


def stats_for(programs, **kw):
    machine, hooks = run_traced(programs, **kw)
    model = analyze(hooks.to_trace())
    return machine, model, TraceStatistics.from_model(model)


def test_utilization_high_for_compute_only():
    __, __, stats = stats_for([compute_only_program(cycles=500_000)])
    assert stats.per_spe[0].utilization > 0.95


def test_utilization_reflects_dma_stalls():
    __, __, single = stats_for([single_buffered_program(iterations=20, compute=1000)])
    __, __, double = stats_for([double_buffered_program(iterations=20, compute=30000)])
    assert single.per_spe[0].utilization < double.per_spe[0].utilization


def test_stall_breakdown_consistent_with_truth():
    machine, __, stats = stats_for([single_buffered_program(iterations=15)])
    s = stats.per_spe[0]
    truth = machine.spe(0).track
    assert s.wait_dma_cycles == pytest.approx(
        truth.totals[SpuState.WAIT_DMA], rel=0.3
    )
    assert s.run_cycles + s.stall_cycles == s.window


def test_dma_statistics_totals():
    __, __, stats = stats_for([single_buffered_program(iterations=10, size=4096)])
    dma = stats.per_spe[0].dma
    assert dma.count == 10
    assert dma.bytes_get == 10 * 4096
    assert dma.bytes_put == 0
    assert dma.mean_latency > 0
    assert dma.p95_latency >= dma.mean_latency
    assert dma.max_latency >= dma.p95_latency
    counts, edges = dma.latency_histogram(bins=5)
    assert counts.sum() == 10
    assert len(edges) == 6


def test_empty_dma_statistics_are_zero():
    __, __, stats = stats_for([compute_only_program()])
    dma = stats.per_spe[0].dma
    assert dma.count == 0
    assert dma.mean_latency == 0.0
    assert dma.p95_latency == 0.0
    counts, __ = dma.latency_histogram()
    assert counts.sum() == 0


def test_mailbox_counters():
    __, __, stats = stats_for([compute_only_program()])
    assert stats.per_spe[0].mailbox_writes == 1  # the done-mailbox
    assert stats.per_spe[0].mailbox_reads == 0


def test_summary_rows_shape():
    __, __, stats = stats_for([compute_only_program(), compute_only_program()])
    rows = stats.summary_rows()
    assert [row["spe"] for row in rows] == [0, 1]
    for row in rows:
        assert 0 <= row["utilization"] <= 1


# ----------------------------------------------------------------------
# use case: buffering
# ----------------------------------------------------------------------
def test_buffering_analysis_flags_single_buffering():
    __, model, __ = stats_for([single_buffered_program(iterations=20, compute=500)])
    report = analyze_buffering(model, 0)
    assert report.wait_dma_fraction > 0.2
    assert "single-buffered" in report.verdict


def test_buffering_analysis_approves_double_buffering():
    __, model, __ = stats_for(
        [double_buffered_program(iterations=20, compute=40_000)]
    )
    report = analyze_buffering(model, 0)
    assert report.overlap_fraction > 0.6
    assert report.wait_dma_fraction < 0.2
    assert "double-buffered" in report.verdict


def test_buffering_analysis_no_dma():
    __, model, __ = stats_for([compute_only_program()])
    report = analyze_buffering(model, 0)
    assert report.verdict == "no DMA activity"
    assert report.dma_inflight_cycles == 0


# ----------------------------------------------------------------------
# use case: load balance
# ----------------------------------------------------------------------
def test_load_balance_flags_skewed_work():
    __, __, stats = stats_for(
        [compute_only_program(cycles=400_000), compute_only_program(cycles=100_000)]
    )
    report = analyze_load_balance(stats)
    assert report.slowest_spe == 0
    assert report.fastest_spe == 1
    assert report.imbalance_factor > 1.4
    assert "imbalanced" in report.verdict


def test_load_balance_approves_even_work():
    __, __, stats = stats_for(
        [compute_only_program(cycles=200_000), compute_only_program(cycles=200_000)]
    )
    report = analyze_load_balance(stats)
    assert report.imbalance_factor == pytest.approx(1.0, abs=0.05)
    assert "balanced" in report.verdict


def test_imbalance_factor_definition():
    __, __, stats = stats_for(
        [compute_only_program(cycles=300_000), compute_only_program(cycles=100_000)]
    )
    busy = [s.run_cycles for s in stats.per_spe.values()]
    assert stats.imbalance_factor == pytest.approx(
        max(busy) / (sum(busy) / len(busy))
    )


# ----------------------------------------------------------------------
# stall attribution
# ----------------------------------------------------------------------
def test_stall_attribution_sums_to_window():
    __, __, stats = stats_for([single_buffered_program(iterations=10)])
    fractions = stall_attribution(stats)
    assert fractions["run"] + fractions["wait_dma"] + fractions["wait_mbox"] + \
        fractions["wait_signal"] == pytest.approx(1.0)


def test_dominant_stall_is_dma_for_single_buffered():
    __, __, stats = stats_for([single_buffered_program(iterations=20, compute=500)])
    state, cycles = stats.dominant_stall()
    assert state == STATE_WAIT_DMA
    assert cycles > 0
