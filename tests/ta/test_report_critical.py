"""The full report includes the critical-path section."""

from repro.pdt import TraceConfig
from repro.ta.report import full_report
from repro.workloads import StreamingPipelineWorkload, run_workload


def test_full_report_names_critical_path_dominant_core():
    result = run_workload(
        StreamingPipelineWorkload(
            stages=3, blocks=12, block_bytes=2048, compute_per_block=2000,
            depth=2, bottleneck_stage=1, bottleneck_factor=6,
        ),
        TraceConfig(),
    )
    text = full_report(result.trace())
    assert "critical path" in text
    assert "dominant: spe1" in text
