"""Edge-case coverage for ta.export and ta.diff.

The CSV exporters and the before/after diff are the last hop before a
user's spreadsheet; empty and one-sided inputs must produce something
well-formed (or a clear error), never a traceback.
"""

import csv
import io

import pytest

from repro.ta import analyze
from repro.ta.diff import diff_stats
from repro.ta.export import records_to_csv, stats_to_csv
from repro.ta.stats import TraceStatistics

from tests.ta.util import single_buffered_program, run_traced


@pytest.fixture(scope="module")
def traced_model():
    __, hooks = run_traced([single_buffered_program(iterations=4)] * 2)
    return analyze(hooks.event_source())


def test_records_to_csv_round_trips_through_csv_reader(traced_model):
    text = records_to_csv(traced_model.iter_placed())
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == [
        "time", "side", "core", "seq", "kind", "raw_ts", "fields",
    ]
    assert len(rows) > 1
    assert all(len(row) == 7 for row in rows[1:])
    sides = {row[1] for row in rows[1:]}
    assert sides <= {"ppe", "spe"} and "spe" in sides


def test_records_to_csv_empty_iterable():
    text = records_to_csv([])
    rows = list(csv.reader(io.StringIO(text)))
    assert len(rows) == 1  # header only, still valid CSV


def test_records_to_csv_destination_writes_not_returns(traced_model):
    sink = io.StringIO()
    returned = records_to_csv(traced_model.iter_placed(), sink)
    assert returned == ""
    assert sink.getvalue().startswith("time,")


def test_stats_to_csv_round_trip(traced_model):
    stats = TraceStatistics.from_model(traced_model)
    text = stats_to_csv(stats)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == stats.n_spes
    assert {row["spe"] for row in rows} == {"0", "1"}


def test_stats_to_csv_empty_stats():
    empty = TraceStatistics(per_spe={}, span=0)
    assert stats_to_csv(empty) == ""
    sink = io.StringIO()
    assert stats_to_csv(empty, sink) == ""
    assert sink.getvalue() == ""


def test_diff_empty_traces():
    empty = TraceStatistics(per_spe={}, span=0)
    diff = diff_stats(empty, empty)
    assert diff.per_spe == []
    assert diff.rows() == []
    assert diff.speedup == float("inf")  # 0-span candidate
    assert "faster" in diff.verdict


def test_diff_one_sided_trace_raises(traced_model):
    stats = TraceStatistics.from_model(traced_model)
    empty = TraceStatistics(per_spe={}, span=0)
    with pytest.raises(ValueError, match="SPE sets differ"):
        diff_stats(stats, empty)
    with pytest.raises(ValueError, match="SPE sets differ"):
        diff_stats(empty, stats)


def test_diff_identical_runs_is_all_zero(traced_model):
    stats = TraceStatistics.from_model(traced_model)
    diff = diff_stats(stats, stats)
    assert diff.verdict == "unchanged (within 2%)"
    assert diff.speedup == pytest.approx(1.0)
    for row in diff.rows():
        assert row["utilization_delta"] == 0
        assert row["wait_dma_delta"] == 0
        assert row["dma_bytes_delta"] == 0


def test_diff_detects_regression(traced_model):
    stats = TraceStatistics.from_model(traced_model)
    slower = TraceStatistics(per_spe=stats.per_spe, span=stats.span * 2)
    diff = diff_stats(stats, slower)
    assert diff.speedup == pytest.approx(0.5)
    assert "regressed" in diff.verdict
    faster = diff_stats(slower, stats)
    assert faster.speedup == pytest.approx(2.0)
    assert "improved" in faster.verdict
