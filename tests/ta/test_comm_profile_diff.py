"""Tests for communication edges, event profiles, and trace diffs."""

import pytest

from repro.pdt import TraceConfig
from repro.ta import (
    analyze,
    communication_edges,
    diff_stats,
    event_profile,
    profile_table,
    summarize_channels,
    top_event_kinds,
)
from repro.ta.comm import PPE_TO_SPE_MAILBOX, SIGNAL, SPE_TO_PPE_MAILBOX
from repro.ta.stats import TraceStatistics
from repro.workloads import MatmulWorkload, StreamingPipelineWorkload, run_workload

from tests.ta.util import compute_only_program, run_traced


# ----------------------------------------------------------------------
# communication edges
# ----------------------------------------------------------------------
def test_spe_to_ppe_mailbox_edges_matched():
    __, hooks = run_traced([compute_only_program(), compute_only_program()])
    model = analyze(hooks.to_trace())
    edges = communication_edges(model)
    done_edges = [e for e in edges if e.channel == SPE_TO_PPE_MAILBOX]
    assert len(done_edges) == 2  # one done-mailbox per SPE
    assert {e.src for e in done_edges} == {"spe0", "spe1"}
    assert all(e.dst == "ppe" for e in done_edges)
    assert all(e.latency >= 0 for e in done_edges)


def test_ppe_to_spe_mailbox_edge_value_carried():
    from repro.libspe import SpeProgram

    def echo(spu, argp, envp):
        value = yield from spu.read_in_mbox()
        yield from spu.write_out_mbox(value)
        return 0

    from repro.cell import CellConfig, CellMachine
    from repro.libspe import Runtime
    from repro.pdt import PdtHooks

    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 26))
    hooks = PdtHooks(TraceConfig())
    rt = Runtime(machine, hooks=hooks)

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("echo", echo))
        proc = ctx.run_async()
        yield from ctx.in_mbox_write(0xABCD)
        yield from ctx.out_mbox_read()
        yield proc

    machine.spawn(main())
    machine.run()
    edges = communication_edges(analyze(hooks.to_trace()))
    inbox = [e for e in edges if e.channel == PPE_TO_SPE_MAILBOX]
    assert len(inbox) == 1
    assert inbox[0].value == 0xABCD
    assert inbox[0].src == "ppe"
    assert inbox[0].dst == "spe0"


def test_signal_edges_in_pipeline():
    result = run_workload(
        StreamingPipelineWorkload(stages=3, blocks=6, block_bytes=1024),
        TraceConfig(),
    )
    model = analyze(result.trace())
    edges = communication_edges(model)
    signal_edges = [e for e in edges if e.channel == SIGNAL]
    # Data credits flow forward, space credits flow backward.
    forward = [e for e in signal_edges if e.src < e.dst]
    backward = [e for e in signal_edges if e.src > e.dst]
    assert forward and backward
    for edge in signal_edges:
        assert edge.recv_time >= edge.send_time - 120  # quantization slack


def test_channel_summaries():
    result = run_workload(
        StreamingPipelineWorkload(stages=2, blocks=6, block_bytes=1024),
        TraceConfig(),
    )
    edges = communication_edges(analyze(result.trace()))
    summaries = summarize_channels(edges)
    channels = {s.channel for s in summaries}
    assert SIGNAL in channels
    assert SPE_TO_PPE_MAILBOX in channels
    for summary in summaries:
        assert summary.count > 0
        assert summary.max_latency >= summary.mean_latency * 0.5


def test_edges_sorted_by_send_time():
    result = run_workload(
        StreamingPipelineWorkload(stages=2, blocks=4, block_bytes=1024),
        TraceConfig(),
    )
    edges = communication_edges(analyze(result.trace()))
    sends = [e.send_time for e in edges]
    assert sends == sorted(sends)


# ----------------------------------------------------------------------
# event profile
# ----------------------------------------------------------------------
def test_profile_counts_sum_to_stream_sizes():
    __, hooks = run_traced([compute_only_program()])
    trace = hooks.to_trace()
    rows = event_profile(trace)
    spe_total = sum(r.count for r in rows if r.core == "spe0")
    assert spe_total == len(trace.records_for_spe(0))
    ppe_total = sum(r.count for r in rows if r.core == "ppe")
    assert ppe_total == len(trace.ppe_records)


def test_profile_rows_descending_within_core():
    result = run_workload(
        MatmulWorkload(n=128, tile=64, n_spes=2), TraceConfig()
    )
    rows = event_profile(result.trace())
    for core in ("spe0", "spe1", "ppe"):
        counts = [r.count for r in rows if r.core == core]
        assert counts == sorted(counts, reverse=True)
    shares = [r.share for r in rows if r.core == "spe0"]
    assert sum(shares) == pytest.approx(1.0)


def test_top_event_kinds_ranked():
    result = run_workload(
        MatmulWorkload(n=128, tile=64, n_spes=2), TraceConfig()
    )
    top = top_event_kinds(result.trace(), n=3)
    assert len(top) == 3
    assert top[0][1] >= top[1][1] >= top[2][1]
    # Matmul is DMA-dominated: a DMA kind leads.
    assert top[0][0] in ("mfc_getl", "wait_tag_begin", "wait_tag_end")


def test_profile_table_shape():
    __, hooks = run_traced([compute_only_program()])
    rows = profile_table(hooks.to_trace())
    assert all(set(row) == {"core", "kind", "count", "share"} for row in rows)


# ----------------------------------------------------------------------
# trace diff
# ----------------------------------------------------------------------
def stats_of(workload):
    result = run_workload(workload, TraceConfig.dma_only())
    assert result.verified
    return TraceStatistics.from_model(analyze(result.trace()))


def test_diff_reports_double_buffering_improvement():
    baseline = stats_of(MatmulWorkload(n=128, tile=64, n_spes=2))
    candidate = stats_of(
        MatmulWorkload(n=128, tile=64, n_spes=2, double_buffered=True)
    )
    diff = diff_stats(baseline, candidate)
    assert diff.speedup > 1.1
    assert "improved" in diff.verdict
    for delta in diff.per_spe:
        assert delta.wait_dma_delta < 0  # the stalls went away
        assert delta.utilization_delta > 0


def test_diff_detects_regression_and_unchanged():
    fast = stats_of(MatmulWorkload(n=128, tile=64, n_spes=2, double_buffered=True))
    slow = stats_of(MatmulWorkload(n=128, tile=64, n_spes=2))
    regression = diff_stats(fast, slow)
    assert "regressed" in regression.verdict
    same = diff_stats(fast, fast)
    assert same.verdict.startswith("unchanged")
    assert same.speedup == pytest.approx(1.0)


def test_diff_rejects_mismatched_spe_sets():
    two = stats_of(MatmulWorkload(n=128, tile=64, n_spes=2))
    four = stats_of(MatmulWorkload(n=256, tile=64, n_spes=4))
    with pytest.raises(ValueError, match="SPE sets differ"):
        diff_stats(two, four)


def test_diff_rows_format():
    stats = stats_of(MatmulWorkload(n=128, tile=64, n_spes=2))
    diff = diff_stats(stats, stats)
    rows = diff.rows()
    assert [row["spe"] for row in rows] == [0, 1]
    assert all(row["wait_dma_delta"] == 0 for row in rows)
