"""Salvage vs a live tail: "still growing" is not "truncated".

The regression this suite pins: a non-strict open of a file a writer
simply has not closed yet (sentinel header, no trailer, possibly a
half-written frame at EOF) must report ``growing`` — zero loss, zero
damage — while a file that was *closed* and then lost its tail must
still report ``truncated``.  Conflating the two either scares live
consumers with phantom corruption or hides real loss behind "probably
still writing".
"""

import pytest

from repro.pdt import open_handle
from repro.pdt.format import (
    VERSION_COMPRESSED,
    VERSION_CRC,
    VERSION_INDEXED,
    data_offset,
)
from repro.live import StepWriter
from tests.live.util import workload_source


@pytest.mark.parametrize(
    "version", (VERSION_INDEXED, VERSION_COMPRESSED), ids=("v4", "v5")
)
def test_paused_writer_reads_as_growing_not_damaged(tmp_path, version):
    source = workload_source("streaming", version)
    writer = StepWriter(source, str(tmp_path / "live.pdt"), chunk_records=8)
    writer.write_chunks(3)
    with open_handle(writer.path, strict=False) as handle:
        salvage = handle.salvage
        assert salvage is not None
        assert salvage.growing is True
        assert salvage.truncated is False
        assert salvage.damaged is False
        assert salvage.records_lost == 0
        assert salvage.tail_pending_bytes == 0
        # The readable prefix is exactly the sealed chunks.
        assert handle.n_chunks == 3
        assert handle.n_records == writer.sealed_records
        assert "growing" in salvage.summary()


@pytest.mark.parametrize(
    "version", (VERSION_INDEXED, VERSION_COMPRESSED), ids=("v4", "v5")
)
def test_torn_tail_is_pending_bytes_not_loss(tmp_path, version):
    source = workload_source("matmul", version)
    writer = StepWriter(source, str(tmp_path / "live.pdt"), chunk_records=8)
    writer.write_chunks(2)
    torn = writer.tear(7)
    with open_handle(writer.path, strict=False) as handle:
        salvage = handle.salvage
        assert salvage.growing is True
        assert salvage.damaged is False
        assert salvage.records_dropped == 0
        assert salvage.tail_pending_bytes == torn
        assert salvage.bad_ranges == []
        assert handle.n_chunks == 2
        assert "pending" in salvage.summary()
    # The same bytes at the end of a *closed* stream are truncation.
    writer.heal()
    writer.write_chunks(writer.n_chunks_total)
    writer.close()
    with open(writer.path, "rb") as fh:
        blob = fh.read()
    cut = str(tmp_path / "cut.pdt")
    with open(cut, "wb") as fh:
        # Cut mid-way through the chunk region, not merely into the
        # trailer: records the patched header promises are gone.
        fh.write(blob[: (data_offset(version) + len(blob)) // 2])
    with open_handle(cut, strict=False) as handle:
        salvage = handle.salvage
        assert salvage.growing is False
        assert salvage.truncated is True
        assert salvage.damaged is True


def test_closed_file_has_no_salvage(tmp_path):
    source = workload_source("matmul", VERSION_COMPRESSED)
    writer = StepWriter(source, str(tmp_path / "live.pdt"), chunk_records=8)
    writer.write_chunks(writer.n_chunks_total)
    writer.close()
    with open_handle(writer.path, strict=False) as handle:
        salvage = handle.salvage
        # A clean closed file either reports no salvage at all or an
        # all-clear report — never growing, never damaged.
        if salvage is not None:
            assert salvage.damaged is False
            assert salvage.growing is False
    # And the strict path accepts it outright, trailer and all.
    with open_handle(writer.path) as handle:
        assert handle.salvage is None
        assert handle.zone_maps() is not None


def test_pre_index_sentinel_is_truncation_not_growth(tmp_path):
    """v3 has no trailer to distinguish "open" from "patched", so a
    sentinel-headered v3 file must still salvage as damage — growth
    detection is gated to v4+."""
    source = workload_source("matmul", VERSION_CRC)
    writer = StepWriter(source, str(tmp_path / "old.pdt"), chunk_records=8)
    writer.write_chunks(2)
    with open_handle(writer.path, strict=False) as handle:
        salvage = handle.salvage
        assert salvage is not None
        assert salvage.growing is False


def test_growing_record_count_tracks_each_pause(tmp_path):
    """At every pause point the salvaged prefix counts exactly the
    sealed records — no double count, no phantom drop."""
    source = workload_source("fft", VERSION_COMPRESSED)
    writer = StepWriter(source, str(tmp_path / "live.pdt"), chunk_records=8)
    while not writer.exhausted:
        writer.write_chunks(1)
        with open_handle(writer.path, strict=False) as handle:
            assert handle.n_records == writer.sealed_records
            assert handle.salvage.growing is True
            assert handle.salvage.records_lost == 0
    writer.close()
    with open_handle(writer.path, strict=False) as handle:
        assert handle.n_records == writer.sealed_records
        salvage = handle.salvage
        assert salvage is None or not salvage.growing
