"""TailSource unit behavior: framing, pending vs corrupt, completion.

The tail's one invariant: anything shorter than its own framing is
"not written yet"; anything fully present that fails its CRC is
damage.  Chunks surface exactly once.
"""

import struct

import pytest

from repro.pdt import TraceFormatError
from repro.pdt.format import (
    _HEADER,
    _U32,
    VERSION_CHUNKED,
    VERSION_COMPRESSED,
    VERSION_CRC,
    VERSION_INDEXED,
    data_offset,
)
from repro.live import COMPLETE, GROWING, WAITING, StepWriter, TailSource
from tests.live.util import workload_source


@pytest.fixture()
def writer(tmp_path):
    source = workload_source("matmul", VERSION_COMPRESSED)
    return StepWriter(source, str(tmp_path / "live.pdt"), chunk_records=8)


def test_missing_file_waits(tmp_path):
    tail = TailSource(str(tmp_path / "nope.pdt"))
    tick = tail.poll()
    assert tick.status == WAITING
    assert tick.n_chunks == 0


def test_partial_header_waits(tmp_path, writer):
    with open(writer.path, "rb") as fh:
        blob = fh.read()
    partial = str(tmp_path / "partial.pdt")
    for cut in (0, 3, _HEADER.size - 1, _HEADER.size + 1):
        with open(partial, "wb") as fh:
            fh.write(blob[:cut])
        tick = TailSource(partial).poll()
        assert tick.status == WAITING, cut


def test_bad_magic_raises(tmp_path):
    path = str(tmp_path / "junk.pdt")
    with open(path, "wb") as fh:
        fh.write(b"NOPE" + bytes(_HEADER.size + _U32.size))
    with pytest.raises(TraceFormatError):
        TailSource(path).poll()


def test_header_crc_mismatch_waits_not_corrupt(tmp_path, writer):
    """A header failing its CRC is the closing writer mid-patch — the
    tail must wait, never declare corruption."""
    with open(writer.path, "rb") as fh:
        blob = bytearray(fh.read())
    blob[_HEADER.size] ^= 0xFF  # CRC byte
    path = str(tmp_path / "midpatch.pdt")
    with open(path, "wb") as fh:
        fh.write(blob)
    assert TailSource(path).poll().status == WAITING


def test_chunks_surface_exactly_once(writer):
    tail = TailSource(writer.path)
    assert tail.poll().status == GROWING
    writer.write_chunks(2)
    tick = tail.poll()
    assert [c.index for c in tick.new_chunks] == [0, 1]
    assert sum(len(c.chunk) for c in tick.new_chunks) == tick.n_records
    # Unchanged file: no re-delivery, no double count.
    again = tail.poll()
    assert again.new_chunks == []
    assert again.n_chunks == 2
    writer.write_chunks(1)
    assert [c.index for c in tail.poll().new_chunks] == [2]


def test_torn_frame_is_pending(writer):
    tail = TailSource(writer.path)
    writer.write_chunks(1)
    assert tail.poll().n_chunks == 1  # drain the sealed chunk
    # Torn inside the frame prefix, then inside the payload.
    for i, cut in enumerate((5, 30)):
        writer.tear(cut)
        tick = tail.poll()
        assert tick.status == GROWING
        assert tick.new_chunks == []
        assert tick.pending_bytes >= cut
        writer.heal()
        healed = tail.poll()
        assert [c.index for c in healed.new_chunks] == [i + 1]
    assert tail.poll().n_chunks == 3


def test_flipped_sealed_byte_raises(tmp_path, writer):
    """Damage inside a *fully present* chunk is definite corruption:
    sealed bytes are never rewritten by the writer."""
    writer.write_chunks(2)
    with open(writer.path, "rb") as fh:
        blob = bytearray(fh.read())
    blob[data_offset(VERSION_COMPRESSED) + 20] ^= 0x01
    path = str(tmp_path / "flipped.pdt")
    with open(path, "wb") as fh:
        fh.write(blob)
    with pytest.raises(TraceFormatError):
        TailSource(path).poll()


def test_trailer_completion(writer):
    tail = TailSource(writer.path)
    while not writer.exhausted:
        writer.write_chunks(1)
        assert tail.poll().status == GROWING
    writer.close()
    tick = tail.poll()
    assert tick.status == COMPLETE
    assert tick.pending_bytes == 0
    assert tail.trailer_zones is not None
    assert len(tail.trailer_zones) == tail.n_chunks
    # Complete is terminal and idempotent.
    assert tail.poll().status == COMPLETE


def test_partial_trailer_is_pending(tmp_path, writer):
    writer.close()
    with open(writer.path, "rb") as fh:
        blob = bytearray(fh.read())
    # Rebuild the live form: sentinel header (as mid-run), trailer cut.
    source = workload_source("matmul", VERSION_COMPRESSED)
    live = StepWriter(source, str(tmp_path / "relive.pdt"), chunk_records=8)
    live.write_chunks(live.n_chunks_total)
    with open(live.path, "ab") as fh:
        fh.write(b"PDTX" + bytes(6))  # a torn index trailer
    tick = TailSource(live.path).poll()
    assert tick.status == GROWING
    assert tick.n_chunks == live.n_chunks_total
    assert tick.pending_bytes == 10


@pytest.mark.parametrize("version", (VERSION_CHUNKED, VERSION_CRC))
def test_pre_index_versions_complete_via_patched_header(tmp_path, version):
    """v2/v3 have no trailer: the seek-patched header is the end-of-
    stream signal."""
    source = workload_source("matmul", version)
    writer = StepWriter(source, str(tmp_path / "old.pdt"), chunk_records=8)
    tail = TailSource(writer.path)
    writer.write_chunks(writer.n_chunks_total)
    assert tail.poll().status == GROWING  # sentinel still standing
    writer.close()
    tick = tail.poll()
    assert tick.status == COMPLETE
    assert tick.n_chunks == writer.n_chunks_total


def test_wait_helper_times_out(writer):
    tail = TailSource(writer.path)
    with pytest.raises(TimeoutError):
        tail.wait(timeout=0.05, interval=0.01)
    writer.write_chunks(1)
    tick = tail.wait(lambda t: t.n_chunks >= 1, timeout=1.0, interval=0.01)
    assert tick.n_chunks >= 1


def test_decode_false_skips_decoding(writer):
    tail = TailSource(writer.path, decode=False)
    writer.write_chunks(1)
    tick = tail.poll()
    assert tick.new_chunks[0].chunk is None
    assert tick.n_records == 8
