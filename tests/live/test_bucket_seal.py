"""``time_bucket`` boundary semantics under prefix growth.

The seal contract: once :class:`FollowQuery` reports a bucket sealed,
that bucket's rows never change — not when more chunks arrive, not
when the trailing writer closes the file, with or without zone-map
pruning.  A withheld bucket may appear later; a sealed one may never
mutate or disappear.
"""

import pytest

from repro.pdt.format import VERSION_COMPRESSED, VERSION_INDEXED
from repro.live import FollowQuery, StepWriter
from tests.live.util import (
    WORKLOAD_NAMES,
    batch_rows,
    filtered_query,
    windowed_query,
    workload_source,
)

SEEDED_MATRIX = [
    (name, version, prune)
    for name in WORKLOAD_NAMES
    for version in (VERSION_INDEXED, VERSION_COMPRESSED)
    for prune in (False, True)
]


@pytest.mark.parametrize(
    "name,version,prune",
    SEEDED_MATRIX,
    ids=[
        f"{n}-v{v}-{'prune' if p else 'scan'}" for n, v, p in SEEDED_MATRIX
    ],
)
def test_sealed_bucket_never_changes(tmp_path, name, version, prune):
    source = workload_source(name, version)
    writer = StepWriter(source, str(tmp_path / "live.pdt"), chunk_records=8)
    follow = FollowQuery(windowed_query(None), writer.path, prune=prune)
    emitted = {}  # bucket -> rows as first reported sealed
    while not writer.exhausted:
        writer.write_chunks(1)
        snapshot = follow.poll()
        by_bucket = {}
        for row in snapshot.sealed_rows:
            by_bucket.setdefault(row["bucket"], []).append(row)
        for bucket, rows in by_bucket.items():
            if bucket in emitted:
                assert emitted[bucket] == rows, (name, bucket)
            else:
                emitted[bucket] = rows
        # Sealed buckets are monotone: none may disappear.
        assert set(emitted) <= set(snapshot.sealed_buckets) | (
            set(emitted) - set(by_bucket)
        )
    writer.close()
    final = follow.poll()
    assert final.complete
    # Everything seals at completion, and every row sealed early is
    # exactly the final row for its bucket.
    final_by_bucket = {}
    for row in final.rows:
        final_by_bucket.setdefault(row["bucket"], []).append(row)
    for bucket, rows in emitted.items():
        assert final_by_bucket[bucket] == rows, (name, bucket)
    # The final rows equal a batch run, so early-sealed rows were
    # byte-identical to what post-hoc analysis reports.
    assert final.rows == batch_rows(writer.path, windowed_query)


@pytest.mark.parametrize("prune", (False, True), ids=("scan", "prune"))
def test_sealing_requires_quiesced_cores(tmp_path, prune):
    """While any declared SPE still has records in flight (fewer than
    two syncs seen), no bucket seals — results are withheld, not
    guessed from a drifting clock fit."""
    source = workload_source("matmul", VERSION_COMPRESSED)
    writer = StepWriter(source, str(tmp_path / "live.pdt"), chunk_records=8)
    follow = FollowQuery(windowed_query(None), writer.path, prune=prune)
    n_spes = writer.header.n_spes
    saw_unquiesced = saw_sealed_early = False
    while not writer.exhausted:
        writer.write_chunks(1)
        snapshot = follow.poll()
        quiesced = all(
            follow._sync_counts.get(core, 0) >= 2 for core in range(n_spes)
        )
        if not quiesced:
            saw_unquiesced = True
            assert snapshot.watermark is None
            assert snapshot.sealed_buckets == set()
        elif snapshot.sealed_buckets and not snapshot.complete:
            saw_sealed_early = True
    assert saw_unquiesced, "matrix never exercised the withheld phase"
    assert saw_sealed_early, "matrix never sealed a bucket before close"
    writer.close()
    assert follow.poll().sealed_rows == follow.poll().rows


@pytest.mark.parametrize("prune", (False, True), ids=("scan", "prune"))
def test_sealing_with_filtered_plan(tmp_path, prune):
    """Seal immutability holds for a plan with predicates and grouped
    payload aggregations, not just the plain windowed count."""
    source = workload_source("streaming", VERSION_COMPRESSED)
    writer = StepWriter(source, str(tmp_path / "live.pdt"), chunk_records=8)
    follow = FollowQuery(filtered_query(None), writer.path, prune=prune)
    emitted = {}
    while not writer.exhausted:
        writer.write_chunks(2)
        snapshot = follow.poll()
        for row in snapshot.sealed_rows:
            key = (row["spe"], row["bucket"])
            if key in emitted:
                assert emitted[key] == row
            else:
                emitted[key] = row
    writer.close()
    final = follow.poll()
    assert final.rows == batch_rows(writer.path, filtered_query)
    final_keys = {(row["spe"], row["bucket"]): row for row in final.rows}
    for key, row in emitted.items():
        assert final_keys[key] == row
