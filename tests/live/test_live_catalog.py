"""Live traces in the serving catalog: generations, refresh, no stale
prefixes.

The serving contract for a growing file: a registration is a snapshot
of one *prefix*, keyed by ``(name, generation)``.  ``refresh`` is the
only way forward — it bumps the generation, so every chunk or result
cached against the old prefix dies with it and a stale prefix can
never be served as if it were the complete trace.
"""

import json

import pytest

from repro.pdt import open_trace
from repro.pdt.format import VERSION_COMPRESSED
from repro.live import StepWriter
from repro.serve import (
    ServeClient,
    ServerConfig,
    TraceCatalog,
    TraceServer,
    canonical_json,
)
from repro.serve.catalog import CatalogError
from repro.serve.protocol import build_query
from tests.live.util import BUCKET_WIDTH, workload_source

#: The canned follow-style query the server matrix replays.
WINDOWED_SPEC = {
    "mode": "run",
    "groupby": ["bucket"],
    "time_bucket": BUCKET_WIDTH,
    "agg": {"n": "count", "t_sum": ["sum", "time"]},
}


@pytest.fixture()
def writer(tmp_path):
    source = workload_source("matmul", VERSION_COMPRESSED)
    writer = StepWriter(source, str(tmp_path / "live.pdt"), chunk_records=8)
    writer.write_chunks(2)
    return writer


def _direct_rows(path: str):
    # Non-strict, like a live registration: the file may still carry
    # its sentinel header and no trailer.
    with open_trace(path, strict=False) as source:
        return build_query(source, WINDOWED_SPEC).run()


# ----------------------------------------------------------------------
# catalog level
# ----------------------------------------------------------------------
def test_live_register_forces_non_strict(writer):
    with TraceCatalog() as catalog:
        info = catalog.register("hot", writer.path, live=True)
        assert info["live"] is True
        assert info["strict"] is False  # forced, regardless of default
        assert info["complete"] is False  # prefix is still growing
        assert info["records"] == writer.sealed_records
        assert info["salvaged"] is True


def test_plain_register_is_not_live(writer):
    writer.close()
    with TraceCatalog() as catalog:
        info = catalog.register("cold", writer.path)
        assert info["live"] is False
        assert info["complete"] is True
        with pytest.raises(CatalogError, match="not a live trace"):
            catalog.refresh("cold")
        with pytest.raises(CatalogError, match="no such trace"):
            catalog.refresh("never-registered")


def test_refresh_bumps_generation_while_growing(writer):
    with TraceCatalog() as catalog:
        first = catalog.register("hot", writer.path, live=True)
        writer.write_chunks(2)
        second = catalog.refresh("hot")
        assert second["refreshed"] is True
        assert second["generation"] > first["generation"]
        assert second["records"] == writer.sealed_records
        # An incomplete prefix always refreshes, even at the same byte
        # size: a torn tail may have healed to an equal-length frame.
        third = catalog.refresh("hot")
        assert third["refreshed"] is True
        assert third["generation"] > second["generation"]


def test_refresh_is_a_noop_once_complete(writer):
    with TraceCatalog() as catalog:
        catalog.register("hot", writer.path, live=True)
        writer.write_chunks(writer.n_chunks_total)
        writer.close()
        done = catalog.refresh("hot")
        assert done["refreshed"] is True
        assert done["complete"] is True
        again = catalog.refresh("hot")
        assert again["refreshed"] is False
        assert again["generation"] == done["generation"]
        assert again["records"] == done["records"]


def test_refresh_invalidates_old_generation_caches(writer):
    """Result-cache entries keyed to the old generation die with the
    refresh — nothing keyed ``(name, old_gen)`` survives."""
    with TraceCatalog() as catalog:
        first = catalog.register("hot", writer.path, live=True)
        old_identity = ("hot", first["generation"])
        catalog.result_cache.put(("result", old_identity, "x"), "stale", 5)
        writer.write_chunks(1)
        catalog.refresh("hot")
        assert catalog.result_cache.get(("result", old_identity, "x")) is None


# ----------------------------------------------------------------------
# server level: the wire protocol end of the same contract
# ----------------------------------------------------------------------
def test_served_results_track_refresh_not_stale_cache(writer):
    """The full loop: register live → query → grow → refresh → query.
    Each served result equals a direct run over the file's *current*
    prefix; after close the served rows equal the batch rows."""
    catalog = TraceCatalog(memory_budget=8 * 1024 * 1024)
    with TraceServer(catalog, ServerConfig(port=0)).start() as srv:
        with ServeClient(srv.address) as client:
            info = client.register("hot", writer.path, live=True)
            assert info["live"] is True and info["complete"] is False

            request = {"op": "query", "trace": "hot", "id": 0, **WINDOWED_SPEC}
            first = client.request(dict(request))
            assert first == _direct_rows(writer.path)

            writer.write_chunks(2)
            # Without a refresh the same request is answered from the
            # registered prefix — cached, consistent, and clearly
            # marked incomplete in the listing.
            assert client.request(dict(request)) == first
            listed = {row["name"]: row for row in client.list_traces()}
            assert listed["hot"]["complete"] is False

            refreshed = client.refresh("hot")
            assert refreshed["refreshed"] is True
            grown = client.request(dict(request))
            assert grown == _direct_rows(writer.path)
            assert grown != first  # the new chunks are visible

            writer.write_chunks(writer.n_chunks_total)
            writer.close()
            assert client.refresh("hot")["complete"] is True
            final = client.request(dict(request))
            assert final == _direct_rows(writer.path)
            # Byte-identical on the wire to a canonical direct encode.
            raw = client.request_raw({**request, "id": 9})
            want = canonical_json({"id": 9, "ok": True, "result": final})
            assert raw == want


def test_refresh_validation_over_the_wire(writer):
    catalog = TraceCatalog(memory_budget=4 * 1024 * 1024)
    with TraceServer(catalog, ServerConfig(port=0)).start() as srv:
        with ServeClient(srv.address) as client:
            with pytest.raises(Exception, match="no such trace"):
                client.refresh("nope")
            bad = json.loads(
                client.request_line('{"op": "refresh", "trace": 7, "id": 1}')
            )
            assert bad["ok"] is False
            assert "refresh" in bad["error"]
            assert client.ping() == "pong"  # connection survived
