"""The step-controlled differential matrix: live == batch, always.

Every workload replays through a :class:`StepWriter`; at each pause
point (k more sealed chunks, plus a mid-chunk torn tail) the follow
path's provisional rows must equal a batch ``tq`` run over a properly
closed snapshot of the same prefix — plain ``==`` on the exact row
dicts, never approximate.  The matrix covers v4 and v5, compressed and
``REPRO_NO_COMPRESS=1``, and jobs 1 and 2 on the batch side.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.pdt import open_trace
from repro.pdt.format import VERSION_COMPRESSED, VERSION_INDEXED
from repro.live import FollowQuery, StepWriter
from tests.live.util import (
    CHUNK_RECORDS,
    QUERIES,
    WORKLOAD_NAMES,
    batch_rows,
    windowed_query,
    workload_source,
)

#: Format axes: on-disk version plus the v5 compression escape hatch.
FORMATS = ("v4", "v5", "v5-nocompress")

_FORMAT_VERSIONS = {
    "v4": VERSION_INDEXED,
    "v5": VERSION_COMPRESSED,
    "v5-nocompress": VERSION_COMPRESSED,
}


def _step_writer(monkeypatch, tmp_path, name, fmt, chunk_records=CHUNK_RECORDS):
    if fmt == "v5-nocompress":
        monkeypatch.setenv("REPRO_NO_COMPRESS", "1")
    else:
        monkeypatch.delenv("REPRO_NO_COMPRESS", raising=False)
    source = workload_source(name, _FORMAT_VERSIONS[fmt])
    return StepWriter(
        source, str(tmp_path / f"{name}-{fmt}.pdt"), chunk_records
    )


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_follow_equals_batch_at_every_pause(monkeypatch, tmp_path, name, fmt):
    """write k chunks → live rows == batch rows over the prefix →
    repeat, with a torn tail at each pause, through to completion."""
    writer = _step_writer(monkeypatch, tmp_path, name, fmt)
    assert writer.n_chunks_total >= 2, "workload too small to step"
    follows = [
        (label, FollowQuery(build(None), writer.path, prune=(i % 2 == 1)))
        for i, (label, build) in enumerate(QUERIES)
    ]
    snap_path = str(tmp_path / "snapshot.pdt")
    pauses = 0
    while not writer.exhausted:
        writer.write_chunks(1)
        torn = 0
        if not writer.exhausted:
            torn = writer.tear(5)
        writer.snapshot(snap_path)
        for label, follow in follows:
            snapshot = follow.poll()
            expected = batch_rows(snap_path, dict(QUERIES)[label])
            assert snapshot.rows == expected, (name, fmt, label, pauses)
            assert snapshot.n_chunks == writer.n_sealed
        if torn:
            writer.heal()
        pauses += 1
    writer.close()
    for label, follow in follows:
        snapshot = follow.poll()
        assert snapshot.complete
        expected = batch_rows(writer.path, dict(QUERIES)[label])
        assert snapshot.rows == expected, (name, fmt, label, "complete")
        # jobs=2 batch agrees with both (the par engine's own identity).
        assert batch_rows(writer.path, dict(QUERIES)[label], jobs=2) == expected
        # Every bucket seals at completion, and every sealed row is a
        # final row.
        assert snapshot.sealed_rows == snapshot.rows
    assert pauses >= 2


@pytest.mark.parametrize("fmt", ("v4", "v5"))
def test_torn_tail_withholds_never_guesses(monkeypatch, tmp_path, fmt):
    """A mid-chunk cut changes nothing: same rows as before the cut,
    no chunk counted twice, and healing delivers exactly one chunk."""
    writer = _step_writer(monkeypatch, tmp_path, "matmul", fmt,
                          chunk_records=16)
    follow = FollowQuery(windowed_query(None), writer.path)
    writer.write_chunks(1)
    before = follow.poll()
    for fraction in (0.001, 0.1, 0.5, 0.99):
        frame_len = len(writer.frames[writer.n_sealed])
        torn = writer.tear(max(1, int(frame_len * fraction)))
        during = follow.poll()
        assert during.rows == before.rows
        assert during.n_chunks == before.n_chunks
        assert during.pending_bytes >= torn
        writer.heal()
        after = follow.poll()
        assert after.n_chunks == before.n_chunks + 1
        before = after
        if writer.exhausted:
            break


@pytest.mark.parametrize("jobs", (1, 2))
def test_completed_live_file_is_a_normal_trace(monkeypatch, tmp_path, jobs):
    """After close, the stepped file reads back like any batch-written
    trace, serial or parallel."""
    writer = _step_writer(monkeypatch, tmp_path, "streaming", "v5")
    follow = FollowQuery(windowed_query(None), writer.path)
    while not writer.exhausted:
        writer.write_chunks(2)
        follow.poll()
    writer.close()
    final = follow.poll()
    assert final.complete
    with open_trace(writer.path) as source:
        assert source.zone_maps() is not None  # trailer present and valid
    assert batch_rows(writer.path, windowed_query, jobs=jobs) == final.rows


# ----------------------------------------------------------------------
# hypothesis: arbitrary byte-boundary cuts never yield a wrong bucket —
# only a withheld one
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def closed_trace(tmp_path_factory):
    """One fully written v5 live file, its bytes, and the batch rows
    for every possible sealed-prefix length (precomputed once)."""
    tmp = tmp_path_factory.mktemp("live-cuts")
    source = workload_source("matmul", VERSION_COMPRESSED)
    writer = StepWriter(source, str(tmp / "full.pdt"), chunk_records=16)
    prefix_rows = {}
    snap = str(tmp / "snap.pdt")
    for k in range(writer.n_chunks_total + 1):
        if k:
            writer.write_chunks(1)
        writer.snapshot(snap)
        prefix_rows[k] = batch_rows(snap, windowed_query)
    writer.close()
    with open(writer.path, "rb") as fh:
        blob = fh.read()
    return tmp, blob, prefix_rows


@settings(max_examples=40, deadline=None)
@given(cut=st.integers(min_value=0, max_value=1 << 20))
def test_arbitrary_cut_is_withheld_not_wrong(closed_trace, cut):
    tmp, blob, prefix_rows = closed_trace
    cut = cut % (len(blob) + 1)
    path = str(tmp / "cut.pdt")
    with open(path, "wb") as fh:
        fh.write(blob[:cut])
    follow = FollowQuery(windowed_query(None), path)
    snapshot = follow.poll()
    # Only whole sealed frames count, and the prefix rows equal a batch
    # run over a closed trace holding exactly those chunks.
    k = snapshot.n_chunks
    assert k in prefix_rows
    assert snapshot.rows == prefix_rows[k], cut
    # Sealed rows, when any, are *final*: identical to the full run's
    # rows for those buckets — a cut may withhold buckets, never
    # corrupt one.
    total = max(prefix_rows)
    final_by_bucket = {row["bucket"]: row for row in prefix_rows[total]}
    for row in snapshot.sealed_rows or ():
        assert row == final_by_bucket[row["bucket"]], cut
    # Polling the unchanged file again is a no-op (no double-count).
    again = follow.poll()
    assert again.n_chunks == k and again.rows == snapshot.rows
