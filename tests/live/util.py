"""Shared machinery for the live-path differential harness.

Everything here serves one comparison: at any writer pause point, what
a live consumer computes over the sealed prefix must be byte-identical
to what the batch pipeline computes over a properly closed trace
holding exactly that prefix.  :class:`repro.live.stepwriter.StepWriter`
provides the pause points and the closed-prefix snapshots; this module
provides the workload matrix and the query set both sides run.
"""

import typing

from repro.pdt import TraceConfig, open_trace
from repro.tq import Query
from repro.workloads import (
    FftWorkload,
    HistogramWorkload,
    MandelbrotWorkload,
    MatmulWorkload,
    MonteCarloWorkload,
    SpmvWorkload,
    StreamingPipelineWorkload,
    run_workload,
)

#: Every workload in repro.workloads, scaled down to harness-friendly
#: runtimes (same parameters as the tests/par differential matrix).
WORKLOADS = (
    ("matmul", lambda: MatmulWorkload(n=64, tile=32, n_spes=2)),
    ("streaming", lambda: StreamingPipelineWorkload(stages=2, blocks=6)),
    ("montecarlo", lambda: MonteCarloWorkload(samples_per_spe=1500, n_spes=2)),
    ("fft", lambda: FftWorkload(points=256, batch=8, n_spes=2)),
    ("histogram", lambda: HistogramWorkload(samples=8192, bins=32, n_spes=2)),
    (
        "mandelbrot",
        lambda: MandelbrotWorkload(
            width=64, height=16, max_iterations=16, n_spes=2
        ),
    ),
    (
        "spmv",
        lambda: SpmvWorkload(n=256, density=0.05, rows_per_block=64, n_spes=2),
    ),
)

WORKLOAD_NAMES = tuple(name for name, __ in WORKLOADS)

#: Small chunks so every workload (30–130 records at these scales)
#: yields several pause points.
CHUNK_RECORDS = 8

#: A bucket width that splits these scaled-down runs into several
#: windows (their corrected-time spans are ~1e5 units).
BUCKET_WIDTH = 20_000


def workload_source(name: str, version: int):
    """Run one catalog workload and return its trace source with the
    requested on-disk version."""
    factory = dict(WORKLOADS)[name]
    result = run_workload(factory(), TraceConfig(buffer_bytes=1024))
    source = result.trace_source()
    source.header.version = version
    return source


def windowed_query(source) -> Query:
    """The canonical follow-mode plan: per-bucket count + aggregates."""
    return (
        Query(source)
        .groupby("bucket", time_bucket=BUCKET_WIDTH)
        .agg(n="count", t_sum=("sum", "time"), t_max=("max", "time"))
    )


def filtered_query(source) -> Query:
    """A plan with pruning-relevant predicates and payload aggs."""
    return (
        Query(source)
        .where(event="mfc_get")
        .groupby("spe", "bucket", time_bucket=BUCKET_WIDTH)
        .agg(n="count", bytes=("sum", "size"), mid=("p50", "size"))
    )


QUERIES: typing.Tuple[typing.Tuple[str, typing.Callable], ...] = (
    ("windowed", windowed_query),
    ("filtered", filtered_query),
)


def batch_rows(path: str, build, jobs: int = 1):
    """The batch reference: the same plan over a closed trace file."""
    with open_trace(path) as source:
        query = build(source)
        if jobs > 1:
            from repro.par import parallel_rows

            return parallel_rows(query, jobs)
        return query.run()
