"""pdt-analyze --follow argument validation: one-line errors, exit 2.

Raw tracebacks out of the CLI are a regression (trace integrity PR);
follow-mode flags must be rejected before anything touches the file.
"""

import pytest

from repro.cli.analyze import main as analyze_main


@pytest.mark.parametrize(
    ("extra", "needle"),
    [
        (["--follow", "--bucket", "0"], "--bucket must be >= 1"),
        (["--follow", "--bucket", "-5"], "--bucket must be >= 1"),
        (["--follow", "--refresh", "-1"], "--refresh must be >= 0"),
        (["--follow", "--max-polls", "0"], "--max-polls must be >= 1"),
        (["--follow", "--max-polls", "-2"], "--max-polls must be >= 1"),
    ],
)
def test_bad_follow_args_exit_2_one_line(tmp_path, capsys, extra, needle):
    missing = str(tmp_path / "never-created.pdt")
    assert analyze_main([missing] + extra) == 2
    err = capsys.readouterr().err
    assert needle in err
    assert "Traceback" not in err


def test_zero_refresh_is_allowed(tmp_path, capsys):
    # --refresh 0 means "poll as fast as possible", not an error; with
    # a missing file the follower just reports it is still waiting.
    missing = str(tmp_path / "never-created.pdt")
    assert analyze_main(
        [missing, "--follow", "--refresh", "0", "--max-polls", "2"]
    ) == 3
    err = capsys.readouterr().err
    assert "still waiting" in err
