"""Replay the checked-in corruption corpus on every run.

``tests/pdt/corpus`` holds seeded damage cases exported by
``tools/corruption_fuzz.py --export-corpus`` — real workload traces
with deterministic truncations and bit flips, plus a manifest saying
how each was derived.  Each case replays through the exact invariant
checks the fuzzer applies (strict must detect, salvage must survive
and account), and every salvageable case additionally answers a query
serially and sharded — byte-identically.
"""

import json
import os
import sys

import pytest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "tools"),
)

import corruption_fuzz  # noqa: E402

from repro.pdt import TraceFormatError, open_trace  # noqa: E402
from repro.pdt.correlate import CorrelationError  # noqa: E402
from repro.par import parallel_records, parallel_rows  # noqa: E402
from repro.tq import Query  # noqa: E402

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def _load_manifest():
    with open(os.path.join(CORPUS_DIR, "manifest.json")) as handle:
        return json.load(handle)["cases"]


_CASES = _load_manifest()


def _read(filename: str) -> bytes:
    with open(os.path.join(CORPUS_DIR, filename), "rb") as handle:
        return handle.read()


def test_corpus_is_present_and_covers_all_modes():
    assert len(_CASES) >= 20
    assert {case["mode"] for case in _CASES} == {
        "general", "trailer", "live", "v6-sections",
    }
    versions = {case["version"] for case in _CASES}
    assert versions == {2, 3, 4, 5, 6}
    live_versions = {
        case["version"] for case in _CASES if case["mode"] == "live"
    }
    assert live_versions == {4, 5, 6}  # growth detection is gated to v4+
    # The v6-sections mode flips only payload-header/section-table
    # bytes — the metadata masked decodes trust to skip sections.
    assert {
        case["version"] for case in _CASES if case["mode"] == "v6-sections"
    } == {6}


@pytest.mark.parametrize(
    "case", _CASES, ids=[case["file"] for case in _CASES]
)
def test_replay_fuzzer_invariants(case):
    """Strict refuses / salvage survives, exactly as the fuzzer checks."""
    blob = _read(case["pristine"])
    mutated = _read(case["file"])
    assert mutated != blob, "corpus case is a no-op mutation"
    if case["mode"] == "trailer":
        failures = corruption_fuzz.check_trailer_case(
            case["workload"], blob, mutated
        )
    elif case["mode"] == "live":
        failures = corruption_fuzz.check_live_case(
            case["workload"],
            case["version"],
            blob,
            mutated,
            {"cut": case["cut"], "flips": case["flips"]},
        )
    else:
        failures = corruption_fuzz.check_one(
            case["workload"],
            case["version"],
            blob,
            mutated,
            case["truncated"],
        )
    assert failures == [], case["file"]


@pytest.mark.parametrize(
    "case", _CASES, ids=[case["file"] for case in _CASES]
)
def test_replay_salvage_serial_vs_parallel(case, tmp_path):
    """A salvage read of each damaged case answers queries identically
    whether the scan runs serially or sharded over workers."""
    mutated = _read(case["file"])
    path = str(tmp_path / case["file"])
    with open(path, "wb") as handle:
        handle.write(mutated)
    try:
        probe = open_trace(path, strict=False)
    except TraceFormatError:
        pytest.skip("header unusable; nothing to salvage")
    probe.close()
    with open_trace(path, strict=False) as source:
        query = (
            Query(source)
            .groupby("side", "core", "kind")
            .agg(n="count", t_min=("min", "time"), t_max=("max", "time"))
        )
        try:
            expected_rows = query.run()
        except CorrelationError:
            # Salvage can surface a bit-flipped core id with no sync
            # records; placement then fails.  The differential
            # contract still holds: sharded scans fail the same way.
            for jobs in (2, 4):
                with open_trace(path, strict=False) as sharded:
                    retry = (
                        Query(sharded)
                        .groupby("side", "core", "kind")
                        .agg(n="count", t_min=("min", "time"),
                             t_max=("max", "time"))
                    )
                    with pytest.raises(CorrelationError):
                        parallel_rows(retry, jobs)
            return
    with open_trace(path, strict=False) as source:
        expected_records = list(Query(source).where(spe=1).records())
    for jobs in (2, 4):
        with open_trace(path, strict=False) as source:
            query = (
                Query(source)
                .groupby("side", "core", "kind")
                .agg(n="count", t_min=("min", "time"), t_max=("max", "time"))
            )
            assert parallel_rows(query, jobs) == expected_rows, case["file"]
        with open_trace(path, strict=False) as source:
            query = Query(source).where(spe=1)
            assert (
                parallel_records(query, jobs) == expected_records
            ), case["file"]


@pytest.mark.parametrize(
    "pristine",
    sorted({case["pristine"] for case in _CASES}),
)
def test_pristine_corpus_traces_read_clean(pristine):
    """The undamaged corpus members must parse as intended — a guard
    that the corpus itself (not the reader) is what each damage case
    tests.  Closed traces parse strictly; live-form members (sentinel
    header, no trailer) salvage as *growing*, with zero loss."""
    blob = _read(pristine)
    if pristine.endswith("-live.pdt"):
        salvaged = open_trace(blob, strict=False)
        assert salvaged.salvage is not None
        assert salvaged.salvage.growing and not salvaged.salvage.damaged
        assert salvaged.n_records > 0
        salvaged.close()
        return
    with open_trace(blob) as source:
        assert source.n_records > 0
        list(source.iter_chunks())
    salvaged = open_trace(blob, strict=False)
    assert salvaged.salvage is not None and not salvaged.salvage.damaged
    salvaged.close()
