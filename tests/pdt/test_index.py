"""Zone-map index tests: trailer round trips, corruption, sidecars.

The v4 index trailer and the ``.pdtx`` sidecar share one byte layout;
these tests pin its encode/decode bijection, the writer's streaming
zone maps against the exact per-record builder, and the degradation
contract: a damaged index must never produce wrong pruning — strict
reads fail loudly, salvage reads drop the index and full-scan.
"""

import io

import pytest

from repro.pdt import (
    ClockCorrelator,
    TraceConfig,
    open_trace,
    write_trace,
)
from repro.pdt.format import (
    TraceFormatError,
    VERSION_CRC,
    VERSION_INDEXED,
)
from repro.pdt.index import (
    ZoneMap,
    build_zone_maps,
    decode_index,
    encode_index,
    index_size,
    read_sidecar,
    sidecar_path,
)
from repro.pdt.writer import ChunkWriter
from repro.tq import build_sidecar

from tests.pdt.util import dma_loop_program, run_workload, traced_machine


def _traced_source(iterations=8, n_spes=2, buffer_bytes=1024):
    machine, rt, hooks = traced_machine(TraceConfig(buffer_bytes=buffer_bytes))
    run_workload(
        machine, rt, dma_loop_program(iterations=iterations), n_spes=n_spes
    )
    return hooks.event_source()


def _write_version(source, version, tmp_path, name):
    import dataclasses

    path = str(tmp_path / name)
    header = dataclasses.replace(source.header, version=version)
    source.header = header
    write_trace(source, path)
    return path


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
SAMPLE_ZONES = [
    ZoneMap(n_records=0),
    ZoneMap(
        n_records=7, has_time=True, t_min=-5, t_max=12_000_000_000,
        spe_bitmap=0b1010, spe_codes=(1 << 0x40) | 1, ppe_codes=0,
    ),
    ZoneMap(
        n_records=3, has_ppe=True, spe_overflow=True, code_overflow=True,
        ppe_codes=(1 << 127) | (1 << 3),
    ),
]


def test_encode_decode_round_trip():
    blob = encode_index(SAMPLE_ZONES, total_records=10)
    assert len(blob) == index_size(len(SAMPLE_ZONES))
    zones, total, consumed = decode_index(blob)
    assert consumed == len(blob)
    assert total == 10
    assert zones == SAMPLE_ZONES


def test_decode_rejects_damage():
    blob = encode_index(SAMPLE_ZONES, total_records=10)
    with pytest.raises(TraceFormatError, match="bad index magic"):
        decode_index(b"NOPE" + blob[4:])
    with pytest.raises(TraceFormatError, match="truncated index"):
        decode_index(blob[:-6])
    flipped = bytearray(blob)
    flipped[len(blob) // 2] ^= 0xFF
    with pytest.raises(TraceFormatError, match="CRC mismatch"):
        decode_index(bytes(flipped))
    bad_version = bytearray(blob)
    bad_version[4] = 99
    # CRC covers the version field, so either error is fine; the read
    # must fail, not mis-parse.
    with pytest.raises(TraceFormatError):
        decode_index(bytes(bad_version))


def test_sidecar_round_trip(tmp_path):
    trace = str(tmp_path / "t.pdt")
    from repro.pdt.index import write_sidecar

    path = write_sidecar(trace, SAMPLE_ZONES, total_records=10)
    assert path == sidecar_path(trace)
    loaded = read_sidecar(trace)
    assert loaded is not None
    zones, total = loaded
    assert zones == SAMPLE_ZONES and total == 10
    # Damaged or missing sidecars read as None, never raise.
    with open(path, "r+b") as handle:
        handle.seek(8)
        handle.write(b"\xff")
    assert read_sidecar(trace) is None
    assert read_sidecar(str(tmp_path / "absent.pdt")) is None


# ----------------------------------------------------------------------
# the v4 trailer through the writers
# ----------------------------------------------------------------------
def test_v4_file_carries_zone_maps(tmp_path):
    source = _traced_source()
    path = _write_version(source, VERSION_INDEXED, tmp_path, "v4.pdt")
    loaded = open_trace(path)
    zones = loaded.zone_maps()
    assert zones is not None and len(zones) == loaded.n_chunks
    assert sum(z.n_records for z in zones) == loaded.n_records
    # Per-SPE presence must be reflected somewhere, and every chunk of
    # a well-formed trace gets time bounds.
    assert all(z.has_time for z in zones)
    for spe_id in (0, 1):
        assert any(z.may_contain_spe(spe_id) for z in zones)


def test_streaming_zones_match_exact_builder(tmp_path):
    """The writer's accumulator (fit extremes, no records kept) must
    agree exactly with the per-record builder on the same chunks."""
    source = _traced_source()
    path = _write_version(source, VERSION_INDEXED, tmp_path, "v4.pdt")
    loaded = open_trace(path)
    stored = loaded.zone_maps()
    exact = build_zone_maps(loaded.iter_chunks(), ClockCorrelator(loaded))
    assert stored == exact


def test_zone_bounds_cover_every_placed_record(tmp_path):
    source = _traced_source()
    path = _write_version(source, VERSION_INDEXED, tmp_path, "v4.pdt")
    loaded = open_trace(path)
    zones = loaded.zone_maps()
    correlator = ClockCorrelator(loaded)
    for zone, chunk in zip(zones, loaded.iter_chunks()):
        for i in range(len(chunk)):
            time = correlator.place_value(
                chunk.side[i], chunk.core[i], chunk.raw_ts[i]
            )
            assert zone.t_min <= time <= zone.t_max


def test_chunk_writer_appends_trailer(tmp_path):
    """The incremental ChunkWriter path indexes too, not just
    write_trace."""
    source = _traced_source()
    path = str(tmp_path / "incremental.pdt")
    with open(path, "wb") as handle:
        writer = ChunkWriter(handle, source.header)
        for chunk in source.iter_chunks():
            for i in range(len(chunk)):
                writer.append(
                    chunk.side[i], chunk.code[i], chunk.core[i],
                    chunk.seq[i], chunk.raw_ts[i],
                    chunk.values[chunk.val_off[i]:chunk.val_off[i + 1]],
                )
        writer.close()
    loaded = open_trace(path)
    zones = loaded.zone_maps()
    assert zones is not None
    assert sum(z.n_records for z in zones) == source.n_records


class _NonSeekable(io.RawIOBase):
    def __init__(self):
        self.buffer = io.BytesIO()

    def write(self, data):
        return self.buffer.write(data)

    def seekable(self):
        return False


def test_sentinel_v4_stream_round_trips():
    """Piped v4 output (sentinel chunk count) still ends with a
    readable trailer: chunks run until the index magic."""
    source = _traced_source()
    out = _NonSeekable()
    write_trace(source, out)
    loaded = open_trace(out.buffer.getvalue())
    assert loaded.n_records == source.n_records
    zones = loaded.zone_maps()
    assert zones is not None and len(zones) == loaded.n_chunks


def test_empty_v4_trace(tmp_path):
    from repro.pdt.store import ColumnStore, StoreSource
    from repro.pdt.trace import TraceHeader

    header = TraceHeader(
        n_spes=2, timebase_divider=120, spu_clock_hz=3.2e9,
        groups_bitmap=0b111111, buffer_bytes=16384,
    )
    path = str(tmp_path / "empty.pdt")
    write_trace(StoreSource(header, ColumnStore()), path)
    loaded = open_trace(path)
    assert loaded.n_records == 0
    assert loaded.zone_maps() == []


# ----------------------------------------------------------------------
# degradation: corrupt trailers must never mis-prune
# ----------------------------------------------------------------------
def _flip_trailer_byte(path):
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    magic_at = blob.rfind(b"PDTX")
    assert magic_at > 0
    blob[magic_at + 12] ^= 0xFF  # inside the header, breaks the CRC
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    return magic_at


def test_corrupt_trailer_fails_strict_read(tmp_path):
    source = _traced_source()
    path = _write_version(source, VERSION_INDEXED, tmp_path, "v4.pdt")
    _flip_trailer_byte(path)
    with pytest.raises(TraceFormatError):
        open_trace(path)


def test_corrupt_trailer_salvages_to_full_scan(tmp_path):
    source = _traced_source()
    path = _write_version(source, VERSION_INDEXED, tmp_path, "v4.pdt")
    _flip_trailer_byte(path)
    loaded = open_trace(path, strict=False)
    # Every record survives — only the index is lost.
    assert loaded.n_records == source.n_records
    assert loaded.zone_maps() is None
    assert loaded.salvage is not None
    assert any("index trailer" in note for note in loaded.salvage.notes)


def test_truncated_trailer_fails_strict_read(tmp_path):
    source = _traced_source()
    path = _write_version(source, VERSION_INDEXED, tmp_path, "v4.pdt")
    with open(path, "rb") as handle:
        blob = handle.read()
    with pytest.raises(TraceFormatError):
        open_trace(blob[:-3])


# ----------------------------------------------------------------------
# sidecar backfill for pre-v4 files
# ----------------------------------------------------------------------
def test_sidecar_backfills_v3_file(tmp_path):
    source = _traced_source()
    path = _write_version(source, VERSION_CRC, tmp_path, "v3.pdt")
    loaded = open_trace(path)
    assert loaded.zone_maps() is None
    build_sidecar(path)
    again = open_trace(path)
    assert again.attach_sidecar()
    zones = again.zone_maps()
    assert zones is not None and len(zones) == again.n_chunks
    # And the sidecar zones are the exact ones.
    assert zones == build_zone_maps(again.iter_chunks(), ClockCorrelator(again))


def test_mismatched_sidecar_is_refused(tmp_path):
    """A sidecar left over from a different trace must not attach."""
    source = _traced_source()
    path = _write_version(source, VERSION_CRC, tmp_path, "v3.pdt")
    from repro.pdt.index import write_sidecar

    write_sidecar(path, SAMPLE_ZONES, total_records=10)
    loaded = open_trace(path)
    assert not loaded.attach_sidecar()
    assert loaded.zone_maps() is None
