"""Codec tests: fixed layouts plus property-based round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.pdt.codec import (
    decode_fields,
    decode_record,
    decode_stream,
    encode_fields,
    encode_record,
    iter_prefixes,
    record_size,
)
from repro.pdt.events import (
    EVENT_SPECS,
    SIDE_PPE,
    SIDE_SPE,
    TraceRecord,
    code_for_kind,
    spec_for_code,
)


def test_record_size_is_16_byte_multiple():
    for n in range(8):
        assert record_size(n) % 16 == 0
        assert record_size(n) >= 16 + 8 * n


def test_encode_length_matches_record_size():
    spec = code_for_kind(SIDE_SPE, "mfc_get")
    record = TraceRecord.from_values(
        SIDE_SPE, spec.code, 3, 17, 12345, [1, 4096, 0, 1 << 20, 0, 0]
    )
    assert len(encode_record(record)) == record_size(len(spec.fields))


def test_round_trip_preserves_everything():
    spec = code_for_kind(SIDE_PPE, "out_mbox_read_end")
    record = TraceRecord.from_values(SIDE_PPE, spec.code, 0, 9, 777, [2, -1])
    decoded, offset = decode_record(encode_record(record), 0)
    assert decoded.side == record.side
    assert decoded.code == record.code
    assert decoded.core == record.core
    assert decoded.seq == record.seq
    assert decoded.raw_ts == record.raw_ts
    assert decoded.fields == {"spe": 2, "value": -1}
    assert offset == record_size(2)


def test_truth_time_not_serialized():
    spec = code_for_kind(SIDE_SPE, "spe_exit")
    record = TraceRecord.from_values(SIDE_SPE, spec.code, 0, 0, 1, [])
    record.truth_time = 4242
    decoded, __ = decode_record(encode_record(record), 0)
    assert decoded.truth_time == -1


def test_decode_truncated_prefix_raises():
    with pytest.raises(ValueError, match="truncated"):
        decode_record(b"\x01\x01\x00", 0)


def test_decode_truncated_body_raises():
    spec = code_for_kind(SIDE_SPE, "mfc_get")
    blob = encode_record(
        TraceRecord.from_values(SIDE_SPE, spec.code, 0, 0, 0, [0] * 6)
    )
    with pytest.raises(ValueError, match="truncated"):
        decode_record(blob[:20], 0)


def test_decode_unknown_code_raises():
    blob = bytes([1, 0xEE]) + bytes(14)
    with pytest.raises(KeyError, match="unknown trace record"):
        decode_record(blob, 0)


def test_decode_stream_walks_heterogeneous_records():
    records = [
        TraceRecord.from_values(SIDE_SPE, code_for_kind(SIDE_SPE, "spe_entry").code,
                                1, 0, 100, [64, 0]),
        TraceRecord.from_values(SIDE_SPE, code_for_kind(SIDE_SPE, "wait_tag_begin").code,
                                1, 1, 99, [0b10, 0]),
        TraceRecord.from_values(SIDE_SPE, code_for_kind(SIDE_SPE, "spe_exit").code,
                                1, 2, 98, []),
    ]
    blob = b"".join(encode_record(r) for r in records)
    decoded, end = decode_stream(blob, 3)
    assert end == len(blob)
    assert [r.kind for r in decoded] == ["spe_entry", "wait_tag_begin", "spe_exit"]


def test_max_width_payload_round_trips():
    """Field values at the signed 64-bit extremes survive the wire."""
    spec = code_for_kind(SIDE_SPE, "mfc_get")
    extremes = [
        (1 << 63) - 1, -(1 << 63), -1, 0,
        (1 << 63) - 1, -(1 << 63),
    ]
    blob = encode_fields(SIDE_SPE, spec.code, 0xFFFF, 0xFFFF_FFFF,
                         (1 << 64) - 1, extremes)
    assert len(blob) == record_size(6)
    side, code, core, seq, raw_ts, values, end = decode_fields(blob, 0)
    assert (side, code, core, seq) == (SIDE_SPE, spec.code, 0xFFFF, 0xFFFF_FFFF)
    assert raw_ts == (1 << 64) - 1
    assert list(values) == extremes
    assert end == len(blob)


def test_encode_fields_matches_encode_record():
    """The tuple-level and object-level encoders are byte-identical."""
    spec = code_for_kind(SIDE_SPE, "mfc_put")
    values = [7, 2048, 0x800, 0x40000, 1, 0]
    record = TraceRecord.from_values(SIDE_SPE, spec.code, 2, 5, 999, values)
    assert encode_record(record) == encode_fields(
        SIDE_SPE, spec.code, 2, 5, 999, values
    )


def test_decode_fields_matches_decode_record():
    spec = code_for_kind(SIDE_PPE, "context_run_end")
    record = TraceRecord.from_values(SIDE_PPE, spec.code, 1, 3, 555, [4, 1300])
    blob = encode_record(record)
    side, code, core, seq, raw_ts, values, end = decode_fields(blob, 0)
    decoded, end_obj = decode_record(blob, 0)
    assert end == end_obj
    assert (side, code, core, seq, raw_ts) == (
        decoded.side, decoded.code, decoded.core, decoded.seq, decoded.raw_ts
    )
    assert dict(zip(spec.fields, values)) == decoded.fields


def test_iter_prefixes_skips_payloads():
    specs = [
        code_for_kind(SIDE_SPE, "spe_entry"),
        code_for_kind(SIDE_SPE, "mfc_get"),
        code_for_kind(SIDE_SPE, "spe_exit"),
    ]
    blob = b"".join(
        encode_fields(SIDE_SPE, s.code, 4, i, i * 7, [0] * len(s.fields))
        for i, s in enumerate(specs)
    )
    walked = list(iter_prefixes(blob, 0, 3))
    assert [(w[0], w[1], w[2], w[3], w[4]) for w in walked] == [
        (SIDE_SPE, s.code, 4, i, i * 7) for i, s in enumerate(specs)
    ]
    # The payload offset of each record points just past its prefix.
    assert walked[0][5] == 16
    assert walked[1][5] == record_size(2) + 16


def test_iter_prefixes_truncated_raises():
    spec = code_for_kind(SIDE_SPE, "mfc_get")
    blob = encode_fields(SIDE_SPE, spec.code, 0, 0, 0, [0] * 6)
    with pytest.raises(ValueError, match="truncated record body"):
        list(iter_prefixes(blob[:24], 0, 1))
    with pytest.raises(ValueError, match="truncated record prefix"):
        list(iter_prefixes(blob[:8], 0, 1))


# ----------------------------------------------------------------------
# property-based round-trip over the whole taxonomy
# ----------------------------------------------------------------------
_ALL_SPECS = sorted(EVENT_SPECS.values(), key=lambda s: (s.side, s.code))

u32 = st.integers(min_value=0, max_value=0xFFFF_FFFF)
u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
i64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


@given(
    spec_index=st.integers(min_value=0, max_value=len(_ALL_SPECS) - 1),
    core=st.integers(min_value=0, max_value=15),
    seq=u32,
    raw_ts=u64,
    data=st.data(),
)
def test_property_round_trip_any_record(spec_index, core, seq, raw_ts, data):
    spec = _ALL_SPECS[spec_index]
    values = [data.draw(i64) for __ in spec.fields]
    record = TraceRecord.from_values(spec.side, spec.code, core, seq, raw_ts, values)
    decoded, offset = decode_record(encode_record(record), 0)
    assert decoded == TraceRecord(
        side=spec.side, code=spec.code, core=core, seq=seq, raw_ts=raw_ts,
        fields=dict(zip(spec.fields, values)),
    )
    assert offset % 16 == 0


@given(st.lists(st.integers(min_value=0, max_value=len(_ALL_SPECS) - 1),
                min_size=0, max_size=30))
def test_property_stream_concatenation(spec_indices):
    records = [
        TraceRecord.from_values(
            _ALL_SPECS[i].side, _ALL_SPECS[i].code, 0, seq, seq * 10,
            [seq] * len(_ALL_SPECS[i].fields),
        )
        for seq, i in enumerate(spec_indices)
    ]
    blob = b"".join(encode_record(r) for r in records)
    decoded, end = decode_stream(blob, len(records))
    assert end == len(blob)
    assert [(r.side, r.code, r.seq) for r in decoded] == [
        (r.side, r.code, r.seq) for r in records
    ]


def test_spec_table_has_no_code_collisions():
    seen = set()
    for spec in _ALL_SPECS:
        key = (spec.side, spec.code)
        assert key not in seen
        seen.add(key)
    # And lookups agree both ways.
    for spec in _ALL_SPECS:
        assert spec_for_code(spec.side, spec.code) is spec
        assert code_for_kind(spec.side, spec.kind) is spec


def test_from_values_field_count_mismatch():
    spec = code_for_kind(SIDE_SPE, "mfc_get")
    with pytest.raises(ValueError, match="expected 6 fields"):
        TraceRecord.from_values(SIDE_SPE, spec.code, 0, 0, 0, [1, 2])
