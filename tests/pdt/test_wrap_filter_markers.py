"""PDT feature tests: wrap mode, SPE filtering, payload markers."""

import pytest

from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime, SpeProgram
from repro.pdt import PdtHooks, TraceConfig

from tests.pdt.util import dma_loop_program, run_workload, traced_machine


# ----------------------------------------------------------------------
# wrap mode
# ----------------------------------------------------------------------
def test_wrap_mode_keeps_newest_records():
    config = TraceConfig(buffer_bytes=512, trace_region_bytes=2048, wrap=True)
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=50), n_spes=1)
    stats = hooks.stats.spe(0)
    assert stats.dropped_records == 0
    assert stats.wraps >= 1
    assert stats.overwritten_records > 0
    retained = hooks.spu_context(0).retained_records()
    # The newest records survive: the stream ends with exit + sync,
    # then the loss summary appended at trace close.
    assert retained[-3].kind == "spe_exit"
    assert retained[-2].kind == "sync"
    assert retained[-1].kind == "trace_loss"
    assert retained[-1].fields["overwritten"] == stats.overwritten_records
    assert retained[-1].fields["wraps"] == stats.wraps
    # Retention honours capacity (the loss summary is stream metadata
    # with no region bytes).
    from repro.pdt.codec import record_size

    total = sum(
        record_size(len(r.spec.fields))
        for r in retained
        if r.kind != "trace_loss"
    )
    assert total <= config.trace_region_bytes


def test_wrap_mode_trace_contains_only_retained():
    config = TraceConfig(buffer_bytes=512, trace_region_bytes=2048, wrap=True)
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=50), n_spes=1)
    trace = hooks.to_trace()
    stats = hooks.stats.spe(0)
    # retained + the trace_loss summary (not counted in stats.records).
    assert (
        len(trace.records_for_spe(0))
        == stats.records - stats.overwritten_records + 1
    )
    # Stream still in strict sequence order (validated by to_trace).
    seqs = [r.seq for r in trace.records_for_spe(0)]
    assert seqs == sorted(seqs)


def test_wrap_mode_retained_records_physically_in_region():
    """Every retained record's bytes must still be in main storage.

    Regression: the write pointer wraps *early* when a record would
    straddle the region end, so a lap's usable capacity is less than
    ``trace_region_bytes``.  Retention used to trim against the full
    region size and claimed records whose bytes were already
    overwritten.  Use a region size the record sizes do not divide so
    every lap ends with tail slack.
    """
    config = TraceConfig(buffer_bytes=512, trace_region_bytes=2000, wrap=True)
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=60), n_spes=1)
    stats = hooks.stats.spe(0)
    assert stats.wraps >= 2 and stats.overwritten_records > 0
    assert _check_retained_physically_present(machine, hooks.spu_context(0)) > 0


def _check_retained_physically_present(machine, ctx):
    """Assert every retained record's bytes are in main storage at the
    offset the tracer recorded for it; return how many were checked."""
    from repro.pdt.codec import encode_fields

    checked = 0
    for i in range(ctx._trim_from, len(ctx.sink)):
        record = ctx.sink.record_at(i)
        if record.kind == "trace_loss":
            continue  # stream metadata: never had region bytes
        values = tuple(record.fields[name] for name in record.spec.fields)
        expected = encode_fields(
            record.side, record.code, record.core, record.seq,
            record.raw_ts, values,
        )
        actual = machine.memory.read(
            ctx.region_ea + ctx._rec_off[i], len(expected)
        )
        assert bytes(actual) == bytes(expected), (
            f"retained record {i} ({record.kind}) not present at its "
            f"region offset {ctx._rec_off[i]}"
        )
        checked += 1
    return checked


def test_wrap_mode_region_smaller_than_buffer_half():
    """Region smaller than the LS half-buffer: the wrap must drain the
    buffer and stay inside the region.

    Regression: with no half-full flush ever firing, the old wrap path
    rewound the (never-advanced) write pointer by zero bytes on every
    append, counted one bogus wrap per record with nothing overwritten,
    and the final flush DMA'd the whole LS fill past the region end
    into adjacent main storage.
    """
    config = TraceConfig(buffer_bytes=16384, trace_region_bytes=2048, wrap=True)
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=60), n_spes=1)
    stats = hooks.stats.spe(0)
    ctx = hooks.spu_context(0)
    region_end = ctx.region_ea + config.trace_region_bytes
    assert ctx.write_ea <= region_end
    # Real laps, not one wrap per record.
    assert 1 <= stats.wraps < stats.records // 4
    assert stats.overwritten_records > 0
    assert _check_retained_physically_present(machine, ctx) > 0


def test_wrap_mode_read_back_rejected():
    config = TraceConfig(buffer_bytes=512, trace_region_bytes=2048, wrap=True)
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=50), n_spes=1)
    with pytest.raises(ValueError, match="wrap-mode"):
        hooks.read_back_trace()


def test_stop_mode_unchanged_by_default():
    config = TraceConfig(buffer_bytes=512, trace_region_bytes=2048)
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=50), n_spes=1)
    stats = hooks.stats.spe(0)
    assert stats.dropped_records > 0
    assert stats.wraps == 0


# ----------------------------------------------------------------------
# SPE filtering
# ----------------------------------------------------------------------
def test_spe_filter_only_traces_listed_spes():
    config = TraceConfig(spe_filter=frozenset({1}))
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=4), n_spes=2)
    trace = hooks.to_trace()
    assert trace.records_for_spe(1)
    assert not trace.records_for_spe(0)
    # The untraced SPE paid no cycles and lost no local store.
    assert 0 not in hooks.stats.per_spe
    assert machine.spe(0).ls.free_bytes > machine.spe(1).ls.free_bytes


def test_spe_filter_untraced_run_still_correct():
    config = TraceConfig(spe_filter=frozenset({0}))
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=4), n_spes=2)
    # PPE records still cover both contexts.
    ppe_spes = {
        r.fields["spe"] for r in hooks.to_trace().ppe_records if "spe" in r.fields
    }
    assert ppe_spes == {0, 1}


def test_spe_filter_validation():
    with pytest.raises(ValueError, match="invalid SPE ids"):
        TraceConfig(spe_filter=frozenset({99}))


def test_traces_spe_helper():
    assert TraceConfig().traces_spe(7)
    config = TraceConfig(spe_filter=frozenset({2, 3}))
    assert config.traces_spe(2)
    assert not config.traces_spe(0)


# ----------------------------------------------------------------------
# payload markers
# ----------------------------------------------------------------------
def test_marker_data_records_payload():
    machine, rt, hooks = traced_machine()

    def entry(spu, argp, envp):
        yield from spu.marker_data(7, [10, 20, 30])
        yield from spu.write_out_mbox(0)
        return 0

    run_workload(machine, rt, SpeProgram("md", entry), n_spes=1)
    data_records = [
        r for r in hooks.to_trace().records_for_spe(0) if r.kind == "user_data"
    ]
    assert len(data_records) == 1
    fields = data_records[0].fields
    assert fields["value"] == 7
    assert (fields["d0"], fields["d1"], fields["d2"], fields["d3"]) == (10, 20, 30, 0)


def test_marker_data_word_limit():
    machine, rt, hooks = traced_machine()
    codes = {}

    def entry(spu, argp, envp):
        try:
            yield from spu.marker_data(1, [1, 2, 3, 4, 5])
        except ValueError:
            yield from spu.write_out_mbox(0)
            return 1
        yield from spu.write_out_mbox(0)
        return 0

    run_workload(machine, rt, SpeProgram("md", entry), n_spes=1)
    # The program returned 1 via the ValueError branch — check the
    # context stop code through the PPE records.
    run_ends = [
        r for r in hooks.to_trace().ppe_records if r.kind == "context_run_end"
    ]
    assert run_ends[0].fields["stop_code"] == 1


def test_marker_data_round_trips_through_file(tmp_path):
    from repro.pdt import read_trace, write_trace

    machine, rt, hooks = traced_machine()

    def entry(spu, argp, envp):
        yield from spu.marker_data(99, [2**40, 1])
        yield from spu.write_out_mbox(0)
        return 0

    run_workload(machine, rt, SpeProgram("md", entry), n_spes=1)
    path = str(tmp_path / "md.pdt")
    write_trace(hooks.to_trace(), path)
    restored = read_trace(path)
    record = [r for r in restored.records_for_spe(0) if r.kind == "user_data"][0]
    assert record.fields["d0"] == 2**40
