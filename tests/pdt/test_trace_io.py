"""Trace file round-trip tests, including property-based ones."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.pdt import Trace, TraceHeader, read_trace, write_trace
from repro.pdt.events import SIDE_PPE, SIDE_SPE, TraceRecord, code_for_kind
from repro.pdt.reader import TraceFormatError
from repro.pdt.writer import trace_to_bytes

from tests.pdt.util import dma_loop_program, run_workload, traced_machine


def small_trace():
    header = TraceHeader(
        n_spes=2, timebase_divider=120, spu_clock_hz=3.2e9,
        groups_bitmap=0b111111, buffer_bytes=16384,
    )
    trace = Trace(header=header)
    ppe_spec = code_for_kind(SIDE_PPE, "context_create")
    trace.add(TraceRecord.from_values(SIDE_PPE, ppe_spec.code, 0, 0, 5, [1]))
    spu_spec = code_for_kind(SIDE_SPE, "mfc_get")
    trace.add(TraceRecord.from_values(
        SIDE_SPE, spu_spec.code, 1, 0, 0xFFFF_0000, [2, 4096, 0, 128, 0, 0]
    ))
    return trace


def test_round_trip_in_memory():
    trace = small_trace()
    restored = read_trace(trace_to_bytes(trace))
    assert restored.header == trace.header
    assert restored.n_records == trace.n_records
    assert restored.ppe_records[0].fields == {"spe": 1}
    assert restored.records_for_spe(1)[0].fields["size"] == 4096


def test_round_trip_via_file(tmp_path):
    trace = small_trace()
    path = str(tmp_path / "run.pdt")
    n = write_trace(trace, path)
    assert n > 0
    restored = read_trace(path)
    assert restored.n_records == trace.n_records


def test_real_workload_trace_round_trips(tmp_path):
    machine, rt, hooks = traced_machine()
    run_workload(machine, rt, dma_loop_program(iterations=6), n_spes=2)
    trace = hooks.to_trace()
    path = str(tmp_path / "workload.pdt")
    write_trace(trace, path)
    restored = read_trace(path)
    assert restored.n_records == trace.n_records
    for spe_id in (0, 1):
        original = trace.records_for_spe(spe_id)
        loaded = restored.records_for_spe(spe_id)
        assert [r.kind for r in original] == [r.kind for r in loaded]
        assert [r.raw_ts for r in original] == [r.raw_ts for r in loaded]
        assert [r.fields for r in original] == [r.fields for r in loaded]


def test_bad_magic_rejected():
    blob = bytearray(trace_to_bytes(small_trace()))
    blob[:4] = b"NOPE"
    with pytest.raises(TraceFormatError, match="bad magic"):
        read_trace(bytes(blob))


def test_truncated_file_rejected():
    blob = trace_to_bytes(small_trace())
    with pytest.raises(TraceFormatError):
        read_trace(blob[: len(blob) - 8])
    with pytest.raises(TraceFormatError):
        read_trace(blob[:10])


def test_unsupported_version_rejected():
    trace = small_trace()
    trace.header.version = 9
    with pytest.raises(TraceFormatError, match="version"):
        read_trace(trace_to_bytes(trace))


def test_reader_accepts_file_object():
    blob = trace_to_bytes(small_trace())
    restored = read_trace(io.BytesIO(blob))
    assert restored.n_records == 2


def test_empty_trace_round_trips():
    header = TraceHeader(
        n_spes=8, timebase_divider=120, spu_clock_hz=3.2e9,
        groups_bitmap=0, buffer_bytes=16384,
    )
    restored = read_trace(trace_to_bytes(Trace(header=header)))
    assert restored.n_records == 0
    assert restored.header.n_spes == 8


@settings(max_examples=30)
@given(
    n_ppe=st.integers(min_value=0, max_value=20),
    spe_sizes=st.dictionaries(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=1, max_value=20),
        max_size=4,
    ),
)
def test_property_synthetic_traces_round_trip(n_ppe, spe_sizes):
    header = TraceHeader(
        n_spes=8, timebase_divider=120, spu_clock_hz=3.2e9,
        groups_bitmap=0b111111, buffer_bytes=16384,
    )
    trace = Trace(header=header)
    ppe_spec = code_for_kind(SIDE_PPE, "in_mbox_write")
    for seq in range(n_ppe):
        trace.add(TraceRecord.from_values(
            SIDE_PPE, ppe_spec.code, 0, seq, seq * 100, [seq % 8, seq]
        ))
    marker = code_for_kind(SIDE_SPE, "user_marker")
    for spe_id, count in spe_sizes.items():
        for seq in range(count):
            trace.add(TraceRecord.from_values(
                SIDE_SPE, marker.code, spe_id, seq, 10**9 - seq, [seq]
            ))
    restored = read_trace(trace_to_bytes(trace))
    assert restored.n_records == trace.n_records
    assert sorted(restored.spe_records) == sorted(trace.spe_records)
    for spe_id in trace.spe_records:
        assert [r.seq for r in restored.records_for_spe(spe_id)] == [
            r.seq for r in trace.records_for_spe(spe_id)
        ]
