"""Trace integrity and salvage tests.

Property-style coverage of the damage model the version-3 layout was
built for: strict reads must *detect* every single corrupted byte and
every truncation (never a silent wrong read), and salvage reads must
recover exactly the undamaged chunks with an accurate accounting of
what was lost.
"""

import io

import pytest

from repro.pdt.events import KIND_SYNC, SIDE_PPE, SIDE_SPE, code_for_kind
from repro.pdt.format import (
    _HEADER,
    _U32,
    CHUNKS_UNTIL_EOF,
    VERSION_CHUNKED,
    VERSION_COMPRESSED,
    VERSION_CRC,
    VERSION_INDEXED,
    VERSION_LEGACY,
    VERSION_SECTIONED,
    TraceFormatError,
    chunk_frame_struct,
    data_offset,
)
from repro.pdt.reader import SalvageReport, open_trace, read_trace
from repro.pdt.store import ColumnStore, StoreSource
from repro.pdt.trace import TraceHeader
from repro.pdt.writer import ChunkWriter, trace_to_bytes, write_trace

MARKER = code_for_kind(SIDE_SPE, "user_marker")
SYNC = code_for_kind(SIDE_SPE, KIND_SYNC)
MBOX = code_for_kind(SIDE_PPE, "in_mbox_write")

N_RECORDS = 50
CHUNK_RECORDS = 8
#: Every sample record encodes to 32 bytes (16-byte prefix + fields,
#: padded to a 16-byte multiple).
REC = 32


def header(version=VERSION_CRC):
    return TraceHeader(
        n_spes=8, timebase_divider=120, spu_clock_hz=3.2e9,
        groups_bitmap=0b111111, buffer_bytes=16384, version=version,
    )


def sample_store(n=N_RECORDS):
    """A mixed stream: PPE mailbox records plus SPE markers and syncs."""
    store = ColumnStore()
    for i in range(n):
        if i % 10 == 0:
            store.append(SIDE_SPE, SYNC.code, 1, i, 10_000_000 - i * 10, [i * 7])
        elif i % 10 == 5:
            store.append(SIDE_PPE, MBOX.code, 0, i, i * 12, [1, i])
        else:
            store.append(SIDE_SPE, MARKER.code, 1, i, 10_000_000 - i * 10, [i])
    return store


def sample_blob(version=VERSION_CRC, n=N_RECORDS):
    out = io.BytesIO()
    store = sample_store(n)
    with ChunkWriter(out, header(version), chunk_records=CHUNK_RECORDS) as w:
        for chunk in store.iter_chunks():
            for i in range(len(chunk)):
                w.append(
                    chunk.side[i], chunk.code[i], chunk.core[i],
                    chunk.seq[i], chunk.raw_ts[i], list(chunk.record_values(i)),
                )
    return out.getvalue()


def record_tuples(source):
    return [
        (r.side, r.code, r.core, r.seq, r.raw_ts, r.fields)
        for r in source.iter_records()
    ]


# ----------------------------------------------------------------------
# version-3 round trip
# ----------------------------------------------------------------------
def test_v3_round_trips_and_v6_is_default():
    blob = sample_blob()
    # The default header version moved to the per-section compressed
    # columnar layout (v6), a superset of the v3 integrity checks, the
    # v4 zone-map index and the v5 compressed columns.
    assert TraceHeader(
        n_spes=1, timebase_divider=1, spu_clock_hz=1.0,
        groups_bitmap=0, buffer_bytes=0,
    ).version == VERSION_SECTIONED
    trace = read_trace(blob)
    assert trace.header.version == VERSION_CRC
    assert trace.n_records == N_RECORDS
    assert record_tuples(trace.as_source()) == record_tuples(
        StoreSource(header(), sample_store())
    )
    # v3 files carry the header CRC trailer before the first chunk.
    assert data_offset(VERSION_CRC) == _HEADER.size + _U32.size


def test_v3_salvage_on_intact_file_reports_clean():
    blob = sample_blob()
    trace = read_trace(blob, strict=False)
    assert isinstance(trace.salvage, SalvageReport)
    assert not trace.salvage.damaged
    assert trace.salvage.records_recovered == N_RECORDS
    assert trace.n_records == N_RECORDS
    assert "intact" in trace.salvage.summary()


# ----------------------------------------------------------------------
# strict v3 detects every single-byte corruption
# ----------------------------------------------------------------------
@pytest.mark.parametrize("flip", [0x01, 0x80, 0xFF])
def test_v3_strict_detects_every_single_byte_flip(flip):
    """The acceptance property: one flipped byte anywhere in a v3 file
    — header, chunk prefix, or payload — always raises, for both the
    materializing and the streaming reader."""
    blob = sample_blob()
    for offset in range(len(blob)):
        damaged = bytearray(blob)
        damaged[offset] ^= flip
        damaged = bytes(damaged)
        with pytest.raises(TraceFormatError):
            read_trace(damaged)
        with pytest.raises(TraceFormatError):
            source = open_trace(damaged)
            list(source.iter_chunks())
            source.scan_sync()


def test_v3_strict_detects_flips_during_streaming_scan_sync():
    blob = sample_blob()
    frame = chunk_frame_struct(VERSION_CRC)
    # Flip one payload byte in the middle chunk; the index builds fine
    # (prefixes untouched) but the payload read must fail its CRC.
    offset = data_offset(VERSION_CRC) + 3 * (
        frame.size + CHUNK_RECORDS * REC
    ) + frame.size + 17
    damaged = bytearray(blob)
    damaged[offset] ^= 0x10
    source = open_trace(bytes(damaged))
    with pytest.raises(TraceFormatError, match="CRC mismatch"):
        source.scan_sync()


# ----------------------------------------------------------------------
# strict truncation detection (v2 and v3): never a silent wrong read
# ----------------------------------------------------------------------
@pytest.mark.parametrize("version", [VERSION_CHUNKED, VERSION_CRC])
def test_strict_raises_on_truncation_at_every_offset(version):
    blob = sample_blob(version)
    for cut in range(len(blob)):
        with pytest.raises(TraceFormatError):
            read_trace(blob[:cut])
        with pytest.raises(TraceFormatError):
            source = open_trace(blob[:cut])
            list(source.iter_chunks())


# ----------------------------------------------------------------------
# salvage: truncation at every offset
# ----------------------------------------------------------------------
@pytest.mark.parametrize("version", [VERSION_CHUNKED, VERSION_CRC])
def test_salvage_recovers_valid_prefix_at_every_truncation(version):
    """Cut the file at every byte: salvage never raises (past the
    unparseable bare header), keeps exactly a prefix of the original
    records, and the report accounts for every declared record."""
    blob = sample_blob(version)
    original = record_tuples(StoreSource(header(version), sample_store()))
    for cut in range(_HEADER.size, data_offset(version)):
        # v3 only: the cut lands inside the header CRC trailer — the
        # declared counts are unverifiable, but salvage must not raise.
        trace = read_trace(blob[:cut], strict=False)
        assert trace.salvage.damaged
        assert trace.n_records == 0
    for cut in range(data_offset(version), len(blob)):
        trace = read_trace(blob[:cut], strict=False)
        report = trace.salvage
        assert isinstance(report, SalvageReport)
        recovered = record_tuples(trace.as_source())
        # Exactly the undamaged leading records, in order.
        assert recovered == original[: len(recovered)]
        if cut < len(blob):
            assert report.truncated or report.records_missing
        # Loss accounting is exact: every declared record is either
        # recovered, dropped from a damaged chunk, or missing.
        assert report.records_recovered == len(recovered)
        assert report.records_recovered + report.records_lost == N_RECORDS


def test_salvage_mid_payload_truncation_recovers_tail_records():
    """Cut inside the final chunk's payload: the complete leading
    chunks survive whole and the valid record prefix of the torn chunk
    is recovered too."""
    blob = sample_blob()
    frame = chunk_frame_struct(VERSION_CRC)
    # REC-byte records, CHUNK_RECORDS per chunk: cut 3 records into
    # the payload of the 4th chunk (plus one byte, mid-record).
    chunk_bytes = frame.size + CHUNK_RECORDS * REC
    cut = data_offset(VERSION_CRC) + 3 * chunk_bytes + frame.size + 3 * REC + 1
    trace = read_trace(blob[:cut], strict=False)
    report = trace.salvage
    assert report.truncated
    assert trace.n_records == 3 * CHUNK_RECORDS + 3
    assert report.tail_records_recovered == 3
    assert report.records_recovered + report.records_lost == N_RECORDS


# ----------------------------------------------------------------------
# salvage: corruption, skip and resynchronize
# ----------------------------------------------------------------------
def test_salvage_skips_corrupt_chunk_and_resyncs():
    blob = sample_blob()
    frame = chunk_frame_struct(VERSION_CRC)
    chunk_bytes = frame.size + CHUNK_RECORDS * REC
    # Corrupt one payload byte in the 3rd chunk.
    offset = data_offset(VERSION_CRC) + 2 * chunk_bytes + frame.size + 40
    damaged = bytearray(blob)
    damaged[offset] ^= 0xFF
    trace = read_trace(bytes(damaged), strict=False)
    report = trace.salvage
    assert report.chunks_dropped == 1
    assert report.records_dropped == CHUNK_RECORDS
    assert report.resyncs == 1
    assert trace.n_records == N_RECORDS - CHUNK_RECORDS
    # The survivors are exactly the original stream minus chunk 3.
    original = record_tuples(StoreSource(header(), sample_store()))
    expected = (
        original[: 2 * CHUNK_RECORDS] + original[3 * CHUNK_RECORDS:]
    )
    assert record_tuples(trace.as_source()) == expected
    # The skipped byte range covers the damaged chunk.
    assert report.bytes_skipped == chunk_bytes
    assert "lost" in report.summary()


def test_salvage_resyncs_after_corrupt_chunk_prefix():
    """Damage the chunk *frame* (length field): the scan must find the
    next well-formed chunk by byte scanning, not die or misframe."""
    blob = sample_blob()
    frame = chunk_frame_struct(VERSION_CRC)
    chunk_bytes = frame.size + CHUNK_RECORDS * REC
    offset = data_offset(VERSION_CRC) + 2 * chunk_bytes + 4  # payload_bytes field
    damaged = bytearray(blob)
    damaged[offset] ^= 0x55
    trace = read_trace(bytes(damaged), strict=False)
    assert trace.salvage.resyncs >= 1
    assert trace.n_records == N_RECORDS - CHUNK_RECORDS
    assert trace.salvage.records_recovered + trace.salvage.records_lost == N_RECORDS


def test_salvage_header_flip_flags_header_damage():
    blob = sample_blob()
    damaged = bytearray(blob)
    damaged[8] ^= 0x01  # inside the header, after magic/version
    trace = read_trace(bytes(damaged), strict=False)
    assert trace.salvage.header_damaged
    assert trace.salvage.damaged
    # Chunk payloads are individually checksummed, so the records
    # themselves still salvage.
    assert trace.n_records == N_RECORDS


def test_salvage_open_trace_matches_read_trace():
    blob = sample_blob()
    damaged = bytearray(blob)
    frame = chunk_frame_struct(VERSION_CRC)
    damaged[data_offset(VERSION_CRC) + frame.size + 20] ^= 0x04
    damaged = bytes(damaged)
    source = open_trace(damaged, strict=False)
    trace = read_trace(damaged, strict=False)
    assert source.salvage is not None
    assert source.n_records == trace.n_records
    assert record_tuples(source) == record_tuples(trace.as_source())
    # The streaming source still serves sync scans after salvage.
    spe_ids, syncs = source.scan_sync()
    assert 1 in spe_ids


# ----------------------------------------------------------------------
# version-2 compatibility and legacy salvage
# ----------------------------------------------------------------------
def test_v2_files_still_read_without_crcs():
    blob = sample_blob(VERSION_CHUNKED)
    trace = read_trace(blob)
    assert trace.header.version == VERSION_CHUNKED
    assert trace.n_records == N_RECORDS


def test_v2_salvage_drops_undecodable_chunk():
    blob = sample_blob(VERSION_CHUNKED)
    frame = chunk_frame_struct(VERSION_CHUNKED)
    chunk_bytes = frame.size + CHUNK_RECORDS * REC
    # Clobber an event-code byte in the 2nd chunk so decode fails
    # (v2 has no CRC: only undecodable damage is detectable).
    offset = data_offset(VERSION_CHUNKED) + chunk_bytes + frame.size + 1
    damaged = bytearray(blob)
    damaged[offset] = 0xEE
    trace = read_trace(bytes(damaged), strict=False)
    assert trace.salvage.chunks_dropped == 1
    assert trace.n_records == N_RECORDS - CHUNK_RECORDS


def test_legacy_salvage_keeps_leading_records():
    source = StoreSource(header(VERSION_LEGACY), sample_store())
    blob = trace_to_bytes(source)
    cut = len(blob) - 30  # tear off the last record and then some
    trace = read_trace(blob[:cut], strict=False)
    report = trace.salvage
    assert report.version == VERSION_LEGACY
    assert report.damaged
    assert 0 < trace.n_records < N_RECORDS
    assert report.records_recovered + report.records_dropped == N_RECORDS


# ----------------------------------------------------------------------
# non-seekable outputs (the write_trace pipe bug)
# ----------------------------------------------------------------------
class _PipeSink(io.RawIOBase):
    """A write-only stream that, like a pipe, cannot seek."""

    def __init__(self):
        super().__init__()
        self.chunks = []

    def writable(self):
        return True

    def seekable(self):
        return False

    def write(self, data):
        self.chunks.append(bytes(data))
        return len(data)

    def getvalue(self):
        return b"".join(self.chunks)


@pytest.mark.parametrize("version", [VERSION_CHUNKED, VERSION_CRC])
def test_write_trace_to_non_seekable_stream(version):
    """write_trace used to assume it could seek back to patch the
    header; on a pipe it must write the chunks-until-EOF sentinel
    instead, and the result must read back identically."""
    sink = _PipeSink()
    source = StoreSource(header(version), sample_store())
    write_trace(source, sink)
    blob = sink.getvalue()
    declared_chunks = _HEADER.unpack_from(blob, 0)[7]
    assert declared_chunks == CHUNKS_UNTIL_EOF
    trace = read_trace(blob)
    assert trace.n_records == N_RECORDS
    assert record_tuples(trace.as_source()) == record_tuples(source)


def test_non_seekable_sentinel_trace_salvages_after_truncation():
    sink = _PipeSink()
    write_trace(StoreSource(header(), sample_store()), sink)
    blob = sink.getvalue()
    trace = read_trace(blob[: len(blob) - 17], strict=False)
    assert trace.salvage.truncated
    assert 0 < trace.n_records < N_RECORDS


# ----------------------------------------------------------------------
# version-5 (compressed columnar) integrity and salvage
# ----------------------------------------------------------------------
def v5_frames(blob):
    """(payload_offset, n_records, payload_bytes, crc) per v5 chunk."""
    from repro.pdt.reader import _iter_chunk_frames

    declared = _HEADER.unpack_from(blob, 0)[7]
    return list(_iter_chunk_frames(blob, VERSION_COMPRESSED, declared))


@pytest.mark.parametrize("flip", [0x01, 0x80])
def test_v5_strict_detects_every_single_byte_flip(flip):
    """The v3 acceptance property holds for compressed chunks too: the
    CRC covers the *stored* bytes, so damage is detected before any
    decompression is attempted."""
    blob = sample_blob(VERSION_COMPRESSED)
    for offset in range(len(blob)):
        damaged = bytearray(blob)
        damaged[offset] ^= flip
        damaged = bytes(damaged)
        with pytest.raises(TraceFormatError):
            read_trace(damaged)
        with pytest.raises(TraceFormatError):
            source = open_trace(damaged)
            list(source.iter_chunks())
            source.scan_sync()


def test_v5_round_trips_and_matches_uncompressed_records():
    blob = sample_blob(VERSION_COMPRESSED)
    trace = read_trace(blob)
    assert trace.header.version == VERSION_COMPRESSED
    assert trace.n_records == N_RECORDS
    assert record_tuples(trace.as_source()) == record_tuples(
        StoreSource(header(VERSION_COMPRESSED), sample_store())
    )


def test_v5_salvage_skips_corrupt_chunk_and_resyncs():
    """Payload damage drops exactly the damaged chunk; the resync scan
    finds the next genuine frame and never invents records out of
    compressed bytes."""
    blob = sample_blob(VERSION_COMPRESSED)
    frames = v5_frames(blob)
    assert len(frames) >= 4
    __, n_damaged, payload_bytes, __crc = frames[2]
    damaged = bytearray(blob)
    damaged[frames[2][0] + payload_bytes // 2] ^= 0xFF
    trace = read_trace(bytes(damaged), strict=False)
    report = trace.salvage
    assert report.chunks_dropped == 1
    assert report.records_dropped == n_damaged
    assert report.resyncs == 1
    assert trace.n_records == N_RECORDS - n_damaged
    original = record_tuples(
        StoreSource(header(VERSION_COMPRESSED), sample_store())
    )
    before = sum(f[1] for f in frames[:2])
    expected = original[:before] + original[before + n_damaged :]
    assert record_tuples(trace.as_source()) == expected


def test_v5_plausibility_is_version_aware():
    """Regression: the pre-v5 plausibility rule (16-byte-aligned
    payload, 16 bytes per record) rejects genuine compressed frames, so
    a version-blind resync could never find the next real v5 chunk.
    The version-aware check accepts every real v5 frame while the old
    rule keeps applying to pre-v5 files."""
    from repro.pdt.handle import _plausible_frame

    blob = sample_blob(VERSION_COMPRESSED)
    frames = v5_frames(blob)
    odd = [f for f in frames if f[2] % 16 or 16 * f[1] > f[2]]
    assert odd, "compressed chunks should not look like v4 record runs"
    for __, n_records, payload_bytes, __crc in frames:
        assert _plausible_frame(n_records, payload_bytes, VERSION_COMPRESSED)
    for __, n_records, payload_bytes, __crc in odd:
        assert not _plausible_frame(n_records, payload_bytes)


def test_v5_resync_requires_a_decodable_payload():
    """A CRC-consistent frame whose payload is not a valid v5 payload
    (the shape a compressed block can embed by chance) must not be a
    resync target — v5 resync demands CRC *and* a trial decode, where
    v4 accepted the CRC alone."""
    from repro.pdt.format import chunk_crc32
    from repro.pdt.handle import _resync_offset

    blob = sample_blob(VERSION_COMPRESSED)
    frames = v5_frames(blob)
    frame_struct = chunk_frame_struct(VERSION_COMPRESSED)
    tail = blob[frames[1][0] - frame_struct.size :]
    # 48 payload bytes that satisfy the *v4* stride rule for 3 records
    # and carry a correct CRC, but cannot decode as a v5 payload
    # (nonzero reserved field).
    fake_payload = bytes(range(48))
    fake = (
        frame_struct.pack(3, 48, chunk_crc32(3, fake_payload)) + fake_payload
    )
    buf = b"\xaa" * 7 + fake + tail
    assert _resync_offset(buf, 0, VERSION_INDEXED) == 7  # v4 trusts the CRC
    assert _resync_offset(buf, 0, VERSION_COMPRESSED) == 7 + len(fake)


def test_v5_truncated_compressed_tail_recovers_no_partial_records(
    monkeypatch,
):
    """A cut-off compressed payload cannot be partially inflated: the
    torn chunk is lost whole, with exact accounting — never a crash,
    never invented records."""
    monkeypatch.delenv("REPRO_NO_COMPRESS", raising=False)
    blob = sample_blob(VERSION_COMPRESSED)
    frames = v5_frames(blob)
    cut = frames[3][0] + frames[3][2] // 2
    trace = read_trace(blob[:cut], strict=False)
    report = trace.salvage
    assert report.truncated
    assert report.tail_records_recovered == 0
    assert trace.n_records == sum(f[1] for f in frames[:3])
    assert report.records_recovered + report.records_lost == N_RECORDS


def test_v5_uncompressed_tail_still_recovers_record_prefix(monkeypatch):
    """Under REPRO_NO_COMPRESS=1 a v5 payload is a walkable record
    stream, so mid-payload truncation keeps the valid leading records
    exactly like v3/v4."""
    monkeypatch.setenv("REPRO_NO_COMPRESS", "1")
    blob = sample_blob(VERSION_COMPRESSED)
    frames = v5_frames(blob)
    # Cut 3 records (plus one byte) into the 4th chunk's record stream,
    # past the 8-byte v5 payload header.
    cut = frames[3][0] + 8 + 3 * REC + 1
    trace = read_trace(blob[:cut], strict=False)
    report = trace.salvage
    assert report.truncated
    assert report.tail_records_recovered == 3
    assert trace.n_records == 3 * CHUNK_RECORDS + 3
    assert report.records_recovered + report.records_lost == N_RECORDS
