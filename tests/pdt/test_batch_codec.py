"""Equivalence suite: the batch codec against the scalar reference.

The batch layer in :mod:`repro.pdt.codec` (and the ingest/read paths
built on it) claims *byte identity* with the per-record interpreter
loop it replaces — not "close enough", identical.  This suite holds it
to that over hypothesis-generated record mixes (including the
run-length-1 mixes tracer-native traces actually produce), extreme
field values, chunk-boundary splits, truncated and corrupt buffers
(identical exceptions, message for message), and a replay of every
checked-in corruption-corpus file in both strict and salvage modes
with ``REPRO_SCALAR_CODEC`` flipped both ways.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.pdt import TraceFormatError, open_trace
from repro.pdt.codec import (
    decode_batch,
    decode_fields,
    encode_batch,
    encode_chunk_scalar,
    encode_fields,
)
from repro.pdt.events import EVENT_SPECS
from repro.pdt.store import ColumnStore

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

_ALL_SPECS = sorted(EVENT_SPECS.values(), key=lambda s: (s.side, s.code))
_MAX_FIELDS_SPEC = max(_ALL_SPECS, key=lambda s: len(s.fields))

i64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)

record_components = st.builds(
    lambda spec, core, seq, raw_ts, data: (
        spec.side,
        spec.code,
        core,
        seq,
        raw_ts,
        tuple(data.draw(i64) for __ in spec.fields),
    ),
    spec=st.sampled_from(_ALL_SPECS),
    core=st.integers(min_value=0, max_value=0xFFFF),
    seq=st.integers(min_value=0, max_value=0xFFFF_FFFF),
    raw_ts=st.integers(min_value=0, max_value=(1 << 64) - 1),
    data=st.data(),
)


# Equivalence tests that *compare* modes flip the env var themselves;
# tests that need a live batch path skip when the whole process runs
# with the escape hatch engaged (the scalar-differential CI job).
requires_batch = pytest.mark.skipif(
    bool(os.environ.get("REPRO_SCALAR_CODEC")),
    reason="batch codec disabled by REPRO_SCALAR_CODEC",
)


class scalar_mode:
    """Force the scalar reference paths within the ``with`` block."""

    def __enter__(self):
        self._prior = os.environ.get("REPRO_SCALAR_CODEC")
        os.environ["REPRO_SCALAR_CODEC"] = "1"

    def __exit__(self, *exc_info):
        if self._prior is None:
            del os.environ["REPRO_SCALAR_CODEC"]
        else:
            os.environ["REPRO_SCALAR_CODEC"] = self._prior


def _encode_all(components):
    return b"".join(encode_fields(*parts) for parts in components)


def _scalar_rows(buffer, offset=0):
    rows, end = [], len(buffer)
    while offset < end:
        side, code, core, seq, raw_ts, values, offset = decode_fields(
            buffer, offset
        )
        rows.append((side, code, core, seq, raw_ts, tuple(values)))
    return rows


def _batch_rows(batch):
    rows = []
    off = batch.val_off.tolist()
    values = batch.values.tolist()
    sides = batch.sides.tolist()
    codes = batch.codes.tolist()
    cores = batch.cores.tolist()
    seqs = batch.seqs.tolist()
    raws = batch.raws.tolist()
    for i in range(batch.count):
        rows.append(
            (
                sides[i], codes[i], cores[i], seqs[i], raws[i],
                tuple(values[off[i] : off[i + 1]]),
            )
        )
    return rows


def _store_columns(store):
    columns = []
    for chunk in store.iter_chunks():
        columns.append(
            (
                bytes(chunk.side), bytes(chunk.code), bytes(chunk.core),
                bytes(chunk.seq), bytes(chunk.raw_ts), bytes(chunk.values),
                bytes(chunk.val_off), bytes(chunk.truth),
            )
        )
    return columns


def _fill_store(components, chunk_records=None):
    store = (
        ColumnStore() if chunk_records is None
        else ColumnStore(chunk_records=chunk_records)
    )
    for side, code, core, seq, raw_ts, values in components:
        store.append(side, code, core, seq, raw_ts, values)
    return store


# ----------------------------------------------------------------------
# decode_batch vs the per-record loop
# ----------------------------------------------------------------------
@requires_batch
@settings(max_examples=60, deadline=None)
@given(st.lists(record_components, min_size=0, max_size=60))
def test_decode_batch_matches_scalar(components):
    buffer = _encode_all(components)
    batch = decode_batch(buffer)
    if not components:
        assert batch is None
        return
    assert batch is not None
    assert batch.count == len(components)
    assert batch.next_offset == len(buffer)
    assert _batch_rows(batch) == _scalar_rows(buffer)


@requires_batch
@settings(max_examples=30, deadline=None)
@given(
    st.lists(record_components, min_size=1, max_size=20),
    st.lists(record_components, min_size=1, max_size=20),
)
def test_decode_batch_honours_offset_and_count(prefix, components):
    """Decoding from a mid-buffer offset with an explicit record count
    consumes exactly those records."""
    head = _encode_all(prefix)
    buffer = head + _encode_all(components)
    batch = decode_batch(buffer, len(head), len(components))
    assert batch is not None
    assert batch.next_offset == len(buffer)
    assert _batch_rows(batch) == _scalar_rows(buffer, len(head))


@requires_batch
def test_decode_batch_single_record_runs():
    """Alternating record types — run length 1 everywhere, the shape
    tracer-native traces actually have."""
    components = []
    for seq in range(3 * len(_ALL_SPECS)):
        spec = _ALL_SPECS[seq % len(_ALL_SPECS)]
        values = tuple(range(len(spec.fields)))
        components.append((spec.side, spec.code, seq % 7, seq, seq * 40, values))
    buffer = _encode_all(components)
    batch = decode_batch(buffer)
    assert batch is not None
    assert _batch_rows(batch) == _scalar_rows(buffer)


@requires_batch
def test_decode_batch_extreme_field_values():
    """The widest record type, loaded with int64/uint boundary values."""
    spec = _MAX_FIELDS_SPEC
    lim = 1 << 63
    picks = (lim - 1, -lim, -1, 0, 1, lim - 1, -lim, -1)
    components = [
        (
            spec.side, spec.code, 0xFFFF, 0xFFFF_FFFF, (1 << 64) - 1,
            tuple(picks[i % len(picks)] for i in range(len(spec.fields))),
        ),
        (spec.side, spec.code, 0, 0, 0, tuple([0] * len(spec.fields))),
    ]
    buffer = _encode_all(components)
    batch = decode_batch(buffer)
    assert batch is not None
    assert _batch_rows(batch) == _scalar_rows(buffer)


@requires_batch
def test_decode_batch_refuses_dirty_buffers():
    """Truncation or an unknown record type anywhere in the buffer must
    return None (the callers then re-run the scalar loop for the exact
    scalar exception) — never a partial or wrong batch."""
    spec = _ALL_SPECS[0]
    good = encode_fields(
        spec.side, spec.code, 1, 2, 3, tuple(range(len(spec.fields)))
    )
    assert decode_batch(good[:-1]) is None          # truncated tail
    assert decode_batch(good[:8]) is None           # truncated prefix
    bad_type = bytes([good[0], 0xEE]) + good[2:]    # unknown code
    assert decode_batch(bad_type) is None
    assert decode_batch(good + good[:-4]) is None   # damage mid-buffer
    assert decode_batch(b"") is None


@requires_batch
@settings(max_examples=40, deadline=None)
@given(st.lists(record_components, min_size=1, max_size=40))
def test_decode_batch_disabled_by_escape_hatch(components):
    buffer = _encode_all(components)
    with scalar_mode():
        assert decode_batch(buffer) is None
    assert decode_batch(buffer) is not None


# ----------------------------------------------------------------------
# encode_batch vs the per-record join
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.lists(record_components, min_size=0, max_size=60))
def test_encode_batch_matches_scalar(components):
    store = _fill_store(components)
    for chunk in store.iter_chunks():
        assert encode_batch(chunk) == encode_chunk_scalar(chunk)


def test_encode_batch_seq_overflow_parity():
    """A seq that no longer fits the u32 wire slot must raise the same
    struct.error from the batch path as from the per-record loop."""
    import struct

    spec = _ALL_SPECS[0]
    store = ColumnStore()
    store.append(spec.side, spec.code, 0, 1 << 32, 5, range(len(spec.fields)))
    (chunk,) = store.iter_chunks()
    with pytest.raises(struct.error) as batch_err:
        encode_batch(chunk)
    with pytest.raises(struct.error) as scalar_err:
        encode_chunk_scalar(chunk)
    assert str(batch_err.value) == str(scalar_err.value)


# ----------------------------------------------------------------------
# store ingest: append_encoded in both modes
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    st.lists(record_components, min_size=0, max_size=60),
    st.integers(min_value=1, max_value=9),
)
def test_append_encoded_equivalence_across_chunk_splits(components, chunk_records):
    """Bulk ingest must build the same chunks — including the splits at
    chunk_records boundaries — and the same per-core counts as the
    scalar per-record path."""
    buffer = _encode_all(components)
    batch_store = ColumnStore(chunk_records=chunk_records)
    end = batch_store.append_encoded(buffer)
    with scalar_mode():
        scalar_store = ColumnStore(chunk_records=chunk_records)
        scalar_end = scalar_store.append_encoded(buffer)
    assert end == scalar_end == len(buffer)
    assert len(batch_store) == len(scalar_store) == len(components)
    assert _store_columns(batch_store) == _store_columns(scalar_store)
    assert batch_store.cores() == scalar_store.cores()
    assert batch_store.spe_ids() == scalar_store.spe_ids()
    assert batch_store.has_ppe() == scalar_store.has_ppe()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(record_components, min_size=1, max_size=20),
    st.integers(min_value=1, max_value=200),
)
def test_append_encoded_error_parity_on_damage(components, chop):
    """Truncating the buffer anywhere must produce the identical
    exception (type and message) whether the batch path bails to the
    scalar loop or the scalar loop runs outright."""
    buffer = _encode_all(components)
    damaged = buffer[: max(1, len(buffer) - (chop % len(buffer)))]
    if decode_batch(damaged) is not None:
        # chop landed on a record boundary: both modes must succeed
        # identically (covered above); nothing to compare here.
        return
    outcomes = []
    for mode in ("batch", "scalar"):
        store = ColumnStore(chunk_records=7)
        try:
            if mode == "batch":
                store.append_encoded(damaged)
            else:
                with scalar_mode():
                    store.append_encoded(damaged)
            outcomes.append(("ok", _store_columns(store)))
        except Exception as exc:  # noqa: BLE001 — parity is the point
            outcomes.append((type(exc).__name__, str(exc), _store_columns(store)))
    assert outcomes[0] == outcomes[1]


# ----------------------------------------------------------------------
# corpus replay: every damaged file, both modes, strict and salvage
# ----------------------------------------------------------------------
def _corpus_files():
    with open(os.path.join(CORPUS_DIR, "manifest.json")) as handle:
        cases = json.load(handle)["cases"]
    names = sorted(
        {case["file"] for case in cases} | {case["pristine"] for case in cases}
    )
    return names


def _read_outcome(path, strict):
    """Everything observable from one read: per-chunk columns, record
    count, salvage accounting — or the exact failure."""
    try:
        with open_trace(path, strict=strict) as source:
            columns = []
            for chunk in source.iter_chunks():
                columns.append(
                    (
                        bytes(chunk.side), bytes(chunk.code),
                        bytes(chunk.core), bytes(chunk.seq),
                        bytes(chunk.raw_ts), bytes(chunk.values),
                        bytes(chunk.val_off),
                    )
                )
            salvage = source.salvage
            accounting = None
            if salvage is not None:
                accounting = (
                    salvage.chunks_recovered,
                    salvage.records_lost,
                    salvage.bytes_skipped,
                    salvage.summary(),
                )
            return ("ok", source.n_records, columns, accounting)
    except TraceFormatError as exc:
        return ("TraceFormatError", str(exc))


@pytest.mark.parametrize("filename", _corpus_files())
@pytest.mark.parametrize("strict", (True, False), ids=("strict", "salvage"))
def test_corpus_replay_identical_across_modes(filename, strict):
    path = os.path.join(CORPUS_DIR, filename)
    batch_outcome = _read_outcome(path, strict)
    with scalar_mode():
        scalar_outcome = _read_outcome(path, strict)
    assert batch_outcome == scalar_outcome, filename
