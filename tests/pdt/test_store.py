"""Columnar chunk store and chunked-file layer tests.

Covers the EventSink/EventSource spine directly: ColumnChunk column
invariants, ColumnStore chunk sealing and random access, the in-memory
sources (StoreSource / ConcatSource), the streaming ChunkWriter
(seekable and unseekable outputs), version round-trip/rejection, and
open_trace / read_trace parity on multi-chunk files.
"""

import io

import pytest

from repro.pdt.events import (
    KIND_SYNC,
    SIDE_PPE,
    SIDE_SPE,
    code_for_kind,
)
from repro.pdt.format import (
    CHUNKS_UNTIL_EOF,
    VERSION_CHUNKED,
    VERSION_COMPRESSED,
    VERSION_CRC,
    VERSION_LEGACY,
    TraceFormatError,
)
from repro.pdt.reader import open_trace, read_trace
from repro.pdt.store import (
    ColumnChunk,
    ColumnStore,
    ConcatSource,
    StoreSource,
)
from repro.pdt.trace import Trace, TraceHeader
from repro.pdt.writer import ChunkWriter, trace_to_bytes, write_trace

MARKER = code_for_kind(SIDE_SPE, "user_marker")
SYNC = code_for_kind(SIDE_SPE, KIND_SYNC)
MBOX = code_for_kind(SIDE_PPE, "in_mbox_write")


def header(version=VERSION_CHUNKED):
    return TraceHeader(
        n_spes=8, timebase_divider=120, spu_clock_hz=3.2e9,
        groups_bitmap=0b111111, buffer_bytes=16384, version=version,
    )


def fill_store(store, n=10, core=1):
    """n marker records on one SPE core, seq/raw_ts/value = i."""
    for i in range(n):
        store.append(SIDE_SPE, MARKER.code, core, i, i * 10, [i])
    return store


# ----------------------------------------------------------------------
# ColumnChunk
# ----------------------------------------------------------------------
def test_chunk_columns_stay_parallel():
    chunk = ColumnChunk()
    chunk.append(SIDE_SPE, MARKER.code, 2, 0, 100, [7])
    chunk.append(SIDE_PPE, MBOX.code, 0, 0, 200, [1, 42], truth=999)
    assert len(chunk) == 2
    assert list(chunk.val_off) == [0, 1, 3]
    assert chunk.n_fields(0) == 1 and chunk.n_fields(1) == 2
    assert list(chunk.record_values(1)) == [1, 42]
    assert chunk.truth[0] == -1 and chunk.truth[1] == 999


def test_chunk_record_materializes_fields():
    chunk = ColumnChunk()
    chunk.append(SIDE_PPE, MBOX.code, 0, 3, 55, [4, -17])
    record = chunk.record(0)
    assert record.fields == {"spe": 4, "value": -17}
    assert (record.core, record.seq, record.raw_ts) == (0, 3, 55)


def test_chunk_slice_rebases_offsets():
    chunk = ColumnChunk()
    for i in range(5):
        chunk.append(SIDE_SPE, MARKER.code, 1, i, i, [i * 11])
    piece = chunk.slice(2, 4)
    assert len(piece) == 2
    assert list(piece.seq) == [2, 3]
    assert list(piece.val_off) == [0, 1, 2]
    assert [list(piece.record_values(i)) for i in range(2)] == [[22], [33]]


# ----------------------------------------------------------------------
# ColumnStore
# ----------------------------------------------------------------------
def test_store_seals_chunks_at_capacity():
    store = fill_store(ColumnStore(chunk_records=3), n=8)
    sizes = [len(c) for c in store.iter_chunks()]
    assert sizes == [3, 3, 2]
    assert len(store) == store.n_records == 8


def test_store_single_record_chunks():
    store = fill_store(ColumnStore(chunk_records=1), n=4)
    assert [len(c) for c in store.iter_chunks()] == [1, 1, 1, 1]
    assert [store.record_at(i).seq for i in range(4)] == [0, 1, 2, 3]


def test_store_rejects_bad_chunk_records():
    with pytest.raises(ValueError, match="chunk_records"):
        ColumnStore(chunk_records=0)


def test_store_random_access_across_chunks():
    store = fill_store(ColumnStore(chunk_records=4), n=10)
    for i in range(10):
        record = store.record_at(i)
        assert record.seq == i and record.fields == {"value": i}
    assert store.n_fields_at(9) == 1
    with pytest.raises(IndexError, match="out of range"):
        store.record_at(10)
    with pytest.raises(IndexError):
        store.record_at(-1)


def test_store_core_bookkeeping():
    store = ColumnStore()
    store.append(SIDE_SPE, MARKER.code, 3, 0, 1, [0])
    store.append(SIDE_SPE, MARKER.code, 1, 0, 2, [0])
    store.append(SIDE_PPE, MBOX.code, 0, 0, 3, [1, 5])
    assert store.cores() == [(SIDE_PPE, 0), (SIDE_SPE, 1), (SIDE_SPE, 3)]
    assert store.spe_ids() == [1, 3]
    assert store.has_ppe()
    assert not fill_store(ColumnStore()).has_ppe()


def test_iter_chunks_start_slices_first_chunk():
    store = fill_store(ColumnStore(chunk_records=4), n=10)
    # start inside the second chunk: its head rows must be sliced off.
    seqs = [
        seq for chunk in store.iter_chunks(start=5) for seq in chunk.seq
    ]
    assert seqs == [5, 6, 7, 8, 9]
    # start on a chunk boundary: no slicing, the chunk is yielded as-is.
    boundary = list(store.iter_chunks(start=8))
    assert [list(c.seq) for c in boundary] == [[8, 9]]
    assert list(store.iter_chunks(start=10)) == []


def test_extend_from_copies_rows():
    src = fill_store(ColumnStore(chunk_records=3), n=7)
    dst = ColumnStore(chunk_records=2)
    dst.extend_from(src, start=2)
    assert len(dst) == 5
    assert [dst.record_at(i).seq for i in range(5)] == [2, 3, 4, 5, 6]
    assert dst.spe_ids() == [1]


def test_adopt_chunk_takes_ownership():
    chunk = ColumnChunk()
    for i in range(3):
        chunk.append(SIDE_SPE, MARKER.code, 2, i, i, [i])
    store = ColumnStore()
    store.adopt_chunk(chunk)
    assert len(store) == 3
    assert store.spe_ids() == [2]
    # An empty open tail is replaced, not kept as a zero-length chunk.
    assert [len(c) for c in store.iter_chunks()] == [3]
    # Adopting onto a non-empty tail appends a second chunk.
    other = ColumnChunk()
    other.append(SIDE_PPE, MBOX.code, 0, 0, 9, [1, 2])
    store.adopt_chunk(other)
    assert [len(c) for c in store.iter_chunks()] == [3, 1]
    assert store.has_ppe()
    # Adopting an empty chunk is a no-op.
    store.adopt_chunk(ColumnChunk())
    assert len(store) == 4


# ----------------------------------------------------------------------
# in-memory sources
# ----------------------------------------------------------------------
def test_store_source_supports_repeated_iteration():
    source = StoreSource(header(), fill_store(ColumnStore(chunk_records=4), n=9))
    assert source.n_records == 9
    first = [seq for c in source.iter_chunks() for seq in c.seq]
    second = [seq for c in source.iter_chunks() for seq in c.seq]
    assert first == second == list(range(9))


def test_concat_source_splices_segments():
    a = fill_store(ColumnStore(chunk_records=3), n=6, core=1)
    b = fill_store(ColumnStore(chunk_records=3), n=4, core=2)
    source = ConcatSource(header(), [(a, 2), (b, 0)])
    assert source.n_records == 8
    rows = [(c.core[i], c.seq[i]) for c in source.iter_chunks()
            for i in range(len(c))]
    assert rows == [(1, s) for s in range(2, 6)] + [(2, s) for s in range(4)]
    # Repeated iteration works here too (multi-pass consumers rely on it).
    assert source.n_records == sum(len(c) for c in source.iter_chunks())


def test_iter_records_materializes_compat_objects():
    source = StoreSource(header(), fill_store(ColumnStore(chunk_records=2), n=5))
    records = list(source.iter_records())
    assert [r.seq for r in records] == list(range(5))
    assert all(r.kind == "user_marker" for r in records)


# ----------------------------------------------------------------------
# scan_sync: default chunk scan vs file prefix walk
# ----------------------------------------------------------------------
def sync_heavy_store():
    store = ColumnStore(chunk_records=4)
    seq = {1: 0, 5: 0}
    for core in (1, 5):
        for i in range(3):
            store.append(SIDE_SPE, SYNC.code, core, seq[core], 1000 * i + core,
                         [5000 * i + core])
            seq[core] += 1
            store.append(SIDE_SPE, MARKER.code, core, seq[core], 1000 * i + core + 1,
                         [i])
            seq[core] += 1
    store.append(SIDE_PPE, MBOX.code, 0, 0, 7, [1, 9])
    return store


def test_scan_sync_default_collects_pairs():
    source = StoreSource(header(), sync_heavy_store())
    spe_ids, syncs = source.scan_sync()
    assert spe_ids == {1, 5}
    # raw_ts = 1000*i + core, tb_raw = 5000*i + core, in recording order.
    for core in (1, 5):
        assert syncs[core] == [(1000 * i + core, 5000 * i + core)
                               for i in range(3)]


def test_scan_sync_file_walk_matches_default():
    source = StoreSource(header(), sync_heavy_store())
    blob = trace_to_bytes(source)
    assert open_trace(blob).scan_sync() == source.scan_sync()


def test_scan_sync_on_legacy_file_falls_back():
    source = StoreSource(header(version=VERSION_LEGACY), sync_heavy_store())
    blob = trace_to_bytes(source)
    file_source = open_trace(blob)
    assert file_source.scan_sync() == source.scan_sync()


# ----------------------------------------------------------------------
# ChunkWriter
# ----------------------------------------------------------------------
def drain(source, writer):
    for record in source.iter_records():
        writer.add_record(record)


def test_chunk_writer_round_trips_multi_chunk(tmp_path):
    source = StoreSource(header(), sync_heavy_store())
    path = str(tmp_path / "chunked.pdt")
    with ChunkWriter(path, source.header, chunk_records=3) as writer:
        drain(source, writer)
    assert writer.n_records == source.n_records
    assert writer.n_chunks == 5  # 13 records / 3 per chunk
    reopened = open_trace(path)
    assert reopened.n_chunks == 5
    assert reopened.n_records == source.n_records
    assert [r.seq for r in reopened.iter_records()] == [
        r.seq for r in source.iter_records()
    ]


def test_chunk_writer_unseekable_writes_eof_sentinel():
    class Unseekable(io.BytesIO):
        def seekable(self):
            return False

    source = StoreSource(header(), fill_store(ColumnStore(), n=7))
    out = Unseekable()
    with ChunkWriter(out, source.header, chunk_records=2) as writer:
        drain(source, writer)
    blob = out.getvalue()
    # The up-front sentinel header stands: n_chunks == CHUNKS_UNTIL_EOF.
    from repro.pdt.format import _HEADER
    assert _HEADER.unpack_from(blob, 0)[7] == CHUNKS_UNTIL_EOF
    # Readers consume chunks until end of file regardless.
    assert open_trace(blob).n_records == 7
    assert read_trace(blob).n_records == 7


def test_chunk_writer_patches_header_when_seekable():
    source = StoreSource(header(), fill_store(ColumnStore(), n=5))
    out = io.BytesIO()
    with ChunkWriter(out, source.header, chunk_records=2) as writer:
        drain(source, writer)
    from repro.pdt.format import _HEADER
    fields = _HEADER.unpack_from(out.getvalue(), 0)
    assert (fields[7], fields[8]) == (3, 5)  # (n_chunks, n_records)


def test_chunk_writer_rejects_legacy_header():
    with pytest.raises(ValueError, match="version"):
        ChunkWriter(io.BytesIO(), header(version=VERSION_LEGACY))


def test_chunk_writer_rejects_unknown_header_version():
    with pytest.raises(TraceFormatError, match="unsupported trace version"):
        ChunkWriter(io.BytesIO(), header(version=7))


def test_chunk_writer_rejects_bad_chunk_records():
    with pytest.raises(ValueError, match="chunk_records"):
        ChunkWriter(io.BytesIO(), header(), chunk_records=0)


def test_chunk_writer_append_after_close_raises():
    writer = ChunkWriter(io.BytesIO(), header())
    writer.close()
    writer.close()  # idempotent
    with pytest.raises(ValueError, match="closed"):
        writer.append(SIDE_SPE, MARKER.code, 0, 0, 0, [0])


def test_empty_chunk_writer_output_is_a_valid_empty_trace():
    out = io.BytesIO()
    ChunkWriter(out, header()).close()
    source = open_trace(out.getvalue())
    assert source.n_records == 0 and source.n_chunks == 0
    assert list(source.iter_chunks()) == []
    assert source.scan_sync() == (set(), {})


# ----------------------------------------------------------------------
# version round-trip and rejection; open_trace / read_trace parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "version",
    [VERSION_LEGACY, VERSION_CHUNKED, VERSION_CRC, VERSION_COMPRESSED],
)
def test_header_version_round_trips(version):
    source = StoreSource(header(version=version), sync_heavy_store())
    blob = trace_to_bytes(source)
    assert read_trace(blob).header.version == version
    assert open_trace(blob).header.version == version


def test_writer_rejects_unknown_version():
    source = StoreSource(header(version=9), fill_store(ColumnStore(), n=1))
    with pytest.raises(TraceFormatError, match="unsupported trace version 9"):
        trace_to_bytes(source)


def test_open_trace_matches_read_trace_on_both_versions():
    for version in (
        VERSION_LEGACY, VERSION_CHUNKED, VERSION_CRC, VERSION_COMPRESSED,
    ):
        source = StoreSource(header(version=version), sync_heavy_store())
        blob = trace_to_bytes(source)
        streamed = open_trace(blob)
        materialized = read_trace(blob)
        assert streamed.n_records == materialized.n_records
        assert [
            (r.side, r.code, r.core, r.seq, r.raw_ts, r.fields)
            for r in streamed.iter_records()
        ] == [
            (r.side, r.code, r.core, r.seq, r.raw_ts, r.fields)
            for r in materialized.as_source().iter_records()
        ]


def test_open_trace_iterates_repeatedly(tmp_path):
    path = str(tmp_path / "multi.pdt")
    with ChunkWriter(path, header(), chunk_records=4) as writer:
        drain(StoreSource(header(), sync_heavy_store()), writer)
    source = open_trace(path)
    first = [seq for c in source.iter_chunks() for seq in c.seq]
    second = [seq for c in source.iter_chunks() for seq in c.seq]
    assert first == second and len(first) == source.n_records


def test_empty_trace_streams():
    blob = trace_to_bytes(Trace(header=header()))
    source = open_trace(blob)
    assert source.n_records == 0
    assert list(source.iter_chunks()) == []
