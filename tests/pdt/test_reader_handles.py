"""File-handle hygiene: every handle the reader opens gets closed —
on clean exits, on error paths, and for abandoned iterators.

A tracking fake file stands in for the real ``open``: it records every
handle issued for the trace path so each test can assert none survive
``close()`` / context-manager exit, whatever route the reader took.
"""

import builtins
import io

import pytest

from repro.pdt import TraceConfig, TraceFormatError, open_trace, write_trace
from repro.pdt.format import VERSION_CRC, VERSION_INDEXED
from repro.tq import IndexedSource, Predicate, open_indexed
from repro.workloads import MatmulWorkload, run_workload


class TrackingFile(io.BytesIO):
    """An in-memory stand-in for one opened file, with close tracking."""

    def __init__(self, data: bytes, registry: list):
        super().__init__(data)
        registry.append(self)


@pytest.fixture()
def tracked(tmp_path, monkeypatch):
    """(trace_path, issued_handles): real trace, fake open."""
    result = run_workload(
        MatmulWorkload(n=64, tile=32, n_spes=2), TraceConfig(buffer_bytes=1024)
    )
    source = result.trace_source()
    source.header.version = VERSION_INDEXED
    path = str(tmp_path / "tracked.pdt")
    write_trace(source, path)
    data = open(path, "rb").read()

    issued: list = []
    real_open = builtins.open

    def fake_open(file, mode="r", *args, **kwargs):
        if file == path and "b" in mode:
            return TrackingFile(data, issued)
        return real_open(file, mode, *args, **kwargs)

    monkeypatch.setattr(builtins, "open", fake_open)
    return path, issued, data


def _assert_all_closed(issued):
    assert issued, "the fake open was never exercised"
    assert all(handle.closed for handle in issued)


def test_close_after_full_iteration(tracked):
    path, issued, __ = tracked
    source = open_trace(path)
    list(source.iter_chunks())
    source.scan_sync()
    source.close()
    _assert_all_closed(issued)


def test_context_manager_closes(tracked):
    path, issued, __ = tracked
    with open_trace(path) as source:
        assert source.n_records > 0
    _assert_all_closed(issued)


def test_abandoned_generator_handle_is_drained_by_close(tracked):
    """A half-consumed iter_chunks generator holds a live handle;
    close() must drain it anyway."""
    path, issued, __ = tracked
    source = open_trace(path)
    iterator = source.iter_chunks()
    next(iterator)
    assert any(not handle.closed for handle in issued)
    source.close()
    _assert_all_closed(issued)
    source.close()  # idempotent


def test_generator_error_path_releases_handle(tracked, tmp_path,
                                              monkeypatch):
    """A CRC failure mid-iteration propagates, and the generator's
    cleanup still releases its handle."""
    path, issued, data = tracked
    bad = bytearray(data)
    bad[len(bad) // 2] ^= 0xFF
    bad_path = str(tmp_path / "bad.pdt")

    real_open = builtins.open
    with monkeypatch.context() as patch:
        patch.setattr(builtins, "open", real_open)
        open(bad_path, "wb").write(bytes(bad))

    def fake_open(file, mode="r", *args, **kwargs):
        if file == bad_path and "b" in mode:
            return TrackingFile(bytes(bad), issued)
        return real_open(file, mode, *args, **kwargs)

    monkeypatch.setattr(builtins, "open", fake_open)
    issued.clear()
    # Strict construction of a v4 file with a damaged chunk fails while
    # verifying the trailer or scanning frames — and must not leak.
    try:
        source = open_trace(bad_path)
    except TraceFormatError:
        _assert_all_closed(issued)
        return
    with pytest.raises(TraceFormatError):
        for __chunk in source.iter_chunks():
            pass
    source.close()
    _assert_all_closed(issued)


def test_constructor_error_closes_handles(tracked, monkeypatch):
    """A failure inside __init__ (after handles were opened) must not
    leak them: truncate the blob so the index build raises."""
    path, issued, data = tracked

    real_open = builtins.open
    truncated = data[: len(data) - 7]

    def fake_open(file, mode="r", *args, **kwargs):
        if file == path and "b" in mode:
            return TrackingFile(truncated, issued)
        return real_open(file, mode, *args, **kwargs)

    monkeypatch.setattr(builtins, "open", fake_open)
    issued.clear()
    with pytest.raises(TraceFormatError):
        open_trace(path)
    _assert_all_closed(issued)


def test_range_view_and_indexed_source_close_base(tracked):
    path, issued, __ = tracked
    with open_trace(path) as base:
        with base.range_view(0, 2) as view:
            list(view.iter_chunks())
    _assert_all_closed(issued)
    issued.clear()
    with open_indexed(path) as source:
        pruned = IndexedSource(source, Predicate().refine(spe=1))
        list(pruned.iter_chunks())
    _assert_all_closed(issued)


def test_salvage_read_closes_handles(tracked):
    path, issued, __ = tracked
    with open_trace(path, strict=False) as source:
        list(source.iter_chunks())
    _assert_all_closed(issued)


def test_open_trace_pool_caps_descriptors(tracked):
    """open_trace is now a TraceHandle in disguise: concurrent chunk
    iterations multiplex a bounded descriptor pool, and closing the
    source drains every descriptor the pool ever issued."""
    import threading

    path, issued, __ = tracked
    source = open_trace(path)
    handle = source.handle
    assert handle.pool_cap >= 1

    threads = [
        threading.Thread(target=lambda: list(source.iter_chunks()))
        for __i in range(2 * handle.pool_cap)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(issued) <= handle.pool_cap
    source.close()
    _assert_all_closed(issued)
    source.close()  # idempotent, still no survivors
    _assert_all_closed(issued)
