"""Tests for the tracing configuration."""

import pytest

from repro.pdt import TraceConfig
from repro.pdt import events as ev


def test_default_traces_all_user_groups():
    config = TraceConfig()
    for group in (ev.GROUP_LIFECYCLE, ev.GROUP_DMA, ev.GROUP_MAILBOX,
                  ev.GROUP_SIGNAL, ev.GROUP_USER):
        assert config.enabled(group)


def test_sync_always_enabled():
    config = TraceConfig.lifecycle_only()
    assert config.enabled(ev.GROUP_SYNC)


def test_dma_only_preset():
    config = TraceConfig.dma_only()
    assert config.enabled(ev.GROUP_DMA)
    assert config.enabled(ev.GROUP_LIFECYCLE)
    assert not config.enabled(ev.GROUP_MAILBOX)
    assert not config.enabled(ev.GROUP_USER)


def test_unknown_group_rejected():
    with pytest.raises(ValueError, match="unknown event groups"):
        TraceConfig(groups=frozenset({"telepathy"}))


def test_buffer_size_validation():
    with pytest.raises(ValueError):
        TraceConfig(buffer_bytes=100)
    with pytest.raises(ValueError):
        TraceConfig(buffer_bytes=1000)  # not a multiple of 32
    TraceConfig(buffer_bytes=1024)  # fine


def test_flush_tag_validation():
    with pytest.raises(ValueError):
        TraceConfig(flush_tag=32)


def test_groups_bitmap_round_trip():
    config = TraceConfig.dma_only()
    bitmap = config.groups_bitmap()
    assert TraceConfig.groups_from_bitmap(bitmap) == config.groups


def test_presets_accept_overrides():
    config = TraceConfig.dma_only(buffer_bytes=4096, double_buffered=False)
    assert config.buffer_bytes == 4096
    assert not config.double_buffered
