"""End-to-end tracer tests: records, buffers, flushes, overhead."""

import pytest

from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime, SpeProgram
from repro.libspe.hooks import SpuEventKind
from repro.pdt import PdtHooks, TraceConfig
from repro.pdt import events as ev

from tests.pdt.util import dma_loop_program, run_workload, traced_machine


def test_trace_contains_expected_spe_event_sequence():
    machine, rt, hooks = traced_machine()
    run_workload(machine, rt, dma_loop_program(iterations=2), n_spes=1)
    trace = hooks.to_trace()
    kinds = [r.kind for r in trace.records_for_spe(0)]
    assert kinds[0] == "sync"  # entry sync anchor
    assert kinds[1] == SpuEventKind.SPE_ENTRY
    assert kinds[-2] == SpuEventKind.SPE_EXIT
    assert kinds[-1] == "sync"  # exit sync anchor
    # 2 iterations x (get, wait-begin, wait-end, put, wait-begin, wait-end)
    dma_kinds = [k for k in kinds if k.startswith(("mfc_", "wait_tag"))]
    assert dma_kinds == [
        "mfc_get", "wait_tag_begin", "wait_tag_end",
        "mfc_put", "wait_tag_begin", "wait_tag_end",
    ] * 2


def test_trace_contains_ppe_lifecycle_records():
    machine, rt, hooks = traced_machine()
    run_workload(machine, rt, dma_loop_program(iterations=1), n_spes=2)
    trace = hooks.to_trace()
    kinds = [r.kind for r in trace.ppe_records]
    assert kinds.count("context_create") == 2
    assert kinds.count("context_run_begin") == 2
    assert kinds.count("context_run_end") == 2


def test_records_preserve_sequential_order_per_core():
    machine, rt, hooks = traced_machine()
    run_workload(machine, rt, dma_loop_program(iterations=5), n_spes=2)
    trace = hooks.to_trace()
    trace.validate()  # raises on any seq disorder
    for spe_id in (0, 1):
        seqs = [r.seq for r in trace.records_for_spe(spe_id)]
        assert seqs == list(range(len(seqs)))


def test_spe_records_carry_decrementer_timestamps():
    machine, rt, hooks = traced_machine()
    run_workload(machine, rt, dma_loop_program(iterations=3), n_spes=1)
    records = hooks.to_trace().records_for_spe(0)
    raw = [r.raw_ts for r in records]
    # Decrementer counts DOWN: non-increasing raw timestamps.
    assert all(a >= b for a, b in zip(raw, raw[1:]))


def test_tracing_charges_spu_cycles():
    config = TraceConfig(spu_record_cycles=150)
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=4), n_spes=1)
    stats = hooks.stats.spe(0)
    assert stats.records > 0
    # Every record (incl. syncs) charged exactly the configured cost.
    assert stats.record_cycles == 150 * (stats.records + stats.dropped_records)


def test_disabled_groups_cost_nothing_and_record_nothing():
    config = TraceConfig.lifecycle_only()
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=4), n_spes=1)
    trace = hooks.to_trace()
    groups = {r.group for r in trace.records_for_spe(0)}
    assert groups == {ev.GROUP_LIFECYCLE, ev.GROUP_SYNC}


def test_dma_only_cheaper_than_all_events():
    def overhead(config):
        machine, rt, hooks = traced_machine(config)
        run_workload(machine, rt, dma_loop_program(iterations=16), n_spes=1)
        return machine.sim.now, hooks.stats.spe(0).records

    time_all, records_all = overhead(TraceConfig.all_events())
    time_dma, records_dma = overhead(TraceConfig.dma_only())
    assert records_dma < records_all
    assert time_dma < time_all


def test_buffer_flush_issues_real_dma():
    # Tiny buffer forces flushes mid-run.
    config = TraceConfig(buffer_bytes=1024)
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=20), n_spes=1)
    stats = hooks.stats.spe(0)
    assert stats.flushes >= 2
    trace_dmas = [
        c for c in machine.spe(0).mfc.completed_commands
        if c.issuer.startswith("pdt-trace")
    ]
    assert len(trace_dmas) == stats.flushes
    assert all(c.tag == config.flush_tag for c in trace_dmas)
    assert sum(c.size for c in trace_dmas) == stats.flush_bytes


def test_read_back_trace_matches_recorded_stream():
    """The LS -> DMA -> main-storage path carries the trace intact."""
    config = TraceConfig(buffer_bytes=1024)
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=12), n_spes=2)
    recorded = hooks.to_trace()
    read_back = hooks.read_back_trace()
    for spe_id in (0, 1):
        a = recorded.records_for_spe(spe_id)
        b = read_back.records_for_spe(spe_id)
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            assert (ra.side, ra.code, ra.seq, ra.raw_ts) == (
                rb.side, rb.code, rb.seq, rb.raw_ts
            )
            assert ra.fields == rb.fields


def test_single_buffered_mode_stalls_more():
    def flush_waits(double_buffered):
        config = TraceConfig(buffer_bytes=1024, double_buffered=double_buffered)
        machine, rt, hooks = traced_machine(config)
        run_workload(machine, rt, dma_loop_program(iterations=30), n_spes=1)
        return hooks.stats.spe(0).flush_wait_cycles, machine.sim.now

    waits_single, time_single = flush_waits(False)
    waits_double, time_double = flush_waits(True)
    assert waits_single > waits_double
    assert time_single >= time_double


def test_trace_buffer_occupies_local_store():
    config = TraceConfig(buffer_bytes=32 * 1024)
    machine, rt, hooks = traced_machine(config)
    free_before = machine.spe(0).ls.free_bytes

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(dma_loop_program(iterations=0))

    machine.spawn(main())
    machine.run()
    consumed = free_before - machine.spe(0).ls.free_bytes
    program_footprint = dma_loop_program().ls_footprint
    assert consumed >= 32 * 1024 + program_footprint


def test_trace_region_exhaustion_drops_records():
    config = TraceConfig(buffer_bytes=512, trace_region_bytes=2048)
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=50), n_spes=1)
    stats = hooks.stats.spe(0)
    assert stats.dropped_records > 0
    # What made it to memory still decodes cleanly.
    read_back = hooks.read_back_trace()
    assert read_back.records_for_spe(0)


def test_untraced_run_has_zero_tracing_artifacts():
    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 26))
    runtime = Runtime(machine)  # default no-op hooks
    run_workload(machine, runtime, dma_loop_program(iterations=4), n_spes=1)
    trace_dmas = [
        c for c in machine.spe(0).mfc.completed_commands
        if c.issuer.startswith("pdt-trace")
    ]
    assert trace_dmas == []


def test_tracing_overhead_is_bounded_for_compute_heavy_code():
    """Compute-bound workloads see small relative slowdown (paper claim)."""

    def total_time(hooks_enabled):
        machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 26))
        hooks = PdtHooks(TraceConfig()) if hooks_enabled else None
        rt = Runtime(machine, hooks=hooks)
        run_workload(
            machine, rt, dma_loop_program(iterations=8, compute=200_000), n_spes=1
        )
        return machine.sim.now

    untraced = total_time(False)
    traced = total_time(True)
    assert traced > untraced
    overhead = (traced - untraced) / untraced
    assert overhead < 0.05  # single-digit-percent territory


def test_two_spes_get_independent_buffers_and_streams():
    config = TraceConfig(buffer_bytes=1024)
    machine, rt, hooks = traced_machine(config)
    run_workload(machine, rt, dma_loop_program(iterations=6), n_spes=2)
    ctx0 = hooks.spu_context(0)
    ctx1 = hooks.spu_context(1)
    assert ctx0.region_ea != ctx1.region_ea
    trace = hooks.to_trace()
    assert {r.core for r in trace.records_for_spe(0)} == {0}
    assert {r.core for r in trace.records_for_spe(1)} == {1}
