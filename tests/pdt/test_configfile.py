"""XML configuration file tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pdt import TraceConfig
from repro.pdt import events as ev
from repro.pdt.configfile import (
    ConfigFileError,
    config_from_xml,
    config_to_xml,
    load_config,
    save_config,
)


def test_round_trip_default_config():
    config = TraceConfig()
    assert config_from_xml(config_to_xml(config)) == config


def test_round_trip_exotic_config():
    config = TraceConfig.dma_only(
        buffer_bytes=2048,
        double_buffered=False,
        wrap=True,
        spu_record_cycles=99,
        ppe_record_cycles=555,
        trace_region_bytes=1 << 16,
        flush_tag=29,
        spe_filter=frozenset({0, 3, 5}),
    )
    assert config_from_xml(config_to_xml(config)) == config


def test_file_round_trip(tmp_path):
    path = str(tmp_path / "pdt.xml")
    config = TraceConfig.lifecycle_only(buffer_bytes=4096)
    save_config(config, path)
    assert load_config(path) == config


def test_partial_document_uses_defaults():
    config = config_from_xml('<pdt version="1"><buffer bytes="2048"/></pdt>')
    assert config.buffer_bytes == 2048
    assert config.double_buffered is True  # default preserved
    assert config.groups == TraceConfig().groups


def test_malformed_xml_rejected():
    with pytest.raises(ConfigFileError, match="not valid XML"):
        config_from_xml("<pdt><groups")


def test_wrong_root_rejected():
    with pytest.raises(ConfigFileError, match="root element"):
        config_from_xml("<tracer/>")


def test_unknown_group_rejected():
    with pytest.raises(ConfigFileError, match="unknown event group"):
        config_from_xml('<pdt><groups telepathy="true"/></pdt>')


def test_bad_bool_rejected():
    with pytest.raises(ConfigFileError, match="'true' or 'false'"):
        config_from_xml('<pdt><groups dma="yes"/></pdt>')


def test_bad_int_rejected():
    with pytest.raises(ConfigFileError, match="must be an integer"):
        config_from_xml('<pdt><buffer bytes="lots"/></pdt>')


def test_invalid_values_surface_as_config_errors():
    with pytest.raises(ConfigFileError, match="buffer_bytes"):
        config_from_xml('<pdt><buffer bytes="100"/></pdt>')


user_groups = sorted(g for g in ev.ALL_GROUPS if g != ev.GROUP_SYNC)


@settings(max_examples=50)
@given(
    groups=st.sets(st.sampled_from(user_groups)),
    buffer_kib=st.sampled_from([1, 2, 4, 16, 64]),
    double=st.booleans(),
    wrap=st.booleans(),
    spu_cost=st.integers(min_value=1, max_value=10_000),
)
def test_property_any_config_round_trips(groups, buffer_kib, double, wrap, spu_cost):
    config = TraceConfig(
        groups=frozenset(groups),
        buffer_bytes=buffer_kib * 1024,
        double_buffered=double,
        wrap=wrap,
        spu_record_cycles=spu_cost,
    )
    assert config_from_xml(config_to_xml(config)) == config
