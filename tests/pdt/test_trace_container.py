"""Trace container edge cases."""

import pytest

from repro.pdt import Trace, TraceHeader
from repro.pdt.events import SIDE_PPE, SIDE_SPE, TraceRecord, code_for_kind
from repro.ta import analyze
from repro.ta.stats import TraceStatistics


def make_trace():
    return Trace(header=TraceHeader(
        n_spes=2, timebase_divider=120, spu_clock_hz=3.2e9,
        groups_bitmap=0b111111, buffer_bytes=16384,
    ))


def marker(core, seq, raw_ts=100):
    spec = code_for_kind(SIDE_SPE, "user_marker")
    return TraceRecord.from_values(SIDE_SPE, spec.code, core, seq, raw_ts, [seq])


def test_add_routes_by_side():
    trace = make_trace()
    trace.add(marker(1, 0))
    ppe_spec = code_for_kind(SIDE_PPE, "context_create")
    trace.add(TraceRecord.from_values(SIDE_PPE, ppe_spec.code, 0, 0, 1, [1]))
    assert len(trace.records_for_spe(1)) == 1
    assert len(trace.ppe_records) == 1
    assert trace.n_records == 2


def test_add_invalid_side_rejected():
    trace = make_trace()
    record = marker(0, 0)
    record.side = 7
    with pytest.raises(ValueError, match="invalid side"):
        trace.add(record)


def test_validate_rejects_out_of_order_seq():
    trace = make_trace()
    trace.add(marker(0, 5))
    trace.add(marker(0, 3))
    with pytest.raises(ValueError, match="sequence order"):
        trace.validate()


def test_validate_rejects_duplicate_seq():
    trace = make_trace()
    trace.add(marker(0, 2))
    trace.add(marker(0, 2))
    with pytest.raises(ValueError, match="sequence order"):
        trace.validate()


def test_all_records_ppe_first_then_spes_by_id():
    trace = make_trace()
    trace.add(marker(1, 0))
    trace.add(marker(0, 0))
    ppe_spec = code_for_kind(SIDE_PPE, "context_create")
    trace.add(TraceRecord.from_values(SIDE_PPE, ppe_spec.code, 0, 0, 1, [0]))
    order = [(r.side, r.core) for r in trace.all_records()]
    assert order == [(SIDE_PPE, 0), (SIDE_SPE, 0), (SIDE_SPE, 1)]


def test_empty_trace_analyzes_to_empty_model():
    model = analyze(make_trace())
    assert model.cores == {}
    assert model.ppe_runs == []
    assert model.t_start == 0 and model.t_end == 0
    stats = TraceStatistics.from_model(model)
    assert stats.n_spes == 0
    assert stats.imbalance_factor == 1.0
    assert stats.summary_rows() == []
