"""Clock-correlation tests: recovering one timeline from raw clocks."""

import pytest

from repro.cell import CellConfig
from repro.pdt import ClockCorrelator, CorrelatedTrace, TraceConfig
from repro.pdt.correlate import CorrelationError, correlation_errors
from repro.pdt.events import SIDE_PPE, SIDE_SPE

from tests.pdt.util import dma_loop_program, run_workload, traced_machine


def traced_run(cell_config=None, iterations=10, n_spes=2, trace_config=None,
               compute=2000):
    machine, rt, hooks = traced_machine(
        trace_config or TraceConfig(buffer_bytes=1024), cell_config=cell_config
    )
    run_workload(
        machine, rt,
        dma_loop_program(iterations=iterations, compute=compute),
        n_spes=n_spes,
    )
    return machine, hooks.to_trace()


def skewed_config(n_spes=2):
    return CellConfig(
        n_spes=n_spes, main_memory_size=1 << 26
    ).with_skewed_clocks(
        offsets=[1_000 * (i + 1) for i in range(n_spes)],
        drifts_ppm=[50.0 * i for i in range(n_spes)],
    )


def test_fit_exists_per_spe_with_sync_counts():
    __, trace = traced_run()
    correlator = ClockCorrelator(trace)
    assert sorted(correlator.fits) == [0, 1]
    for fit in correlator.fits.values():
        assert fit.n_sync >= 2  # entry + flushes + exit


def test_fit_recovers_nominal_period_without_drift():
    __, trace = traced_run()
    correlator = ClockCorrelator(trace)
    for fit in correlator.fits.values():
        assert fit.cycles_per_tick == pytest.approx(120, rel=0.01)


def test_fit_recovers_drifting_period():
    # Drift is tiny per tick, so give the fit a long horizon (~100M
    # cycles) over which the accumulated skew dwarfs clock quantization.
    config = CellConfig(n_spes=2, main_memory_size=1 << 26).with_skewed_clocks(
        offsets=[0, 1000], drifts_ppm=[0.0, 500.0]
    )
    __, trace = traced_run(cell_config=config, iterations=50, compute=2_000_000)
    correlator = ClockCorrelator(trace)
    # SPE 1 has +500 ppm drift -> period ~120.06 cycles/tick.
    fit = correlator.fits[1]
    assert fit.cycles_per_tick == pytest.approx(120 * 1.0005, rel=1e-4)
    assert correlator.fits[0].cycles_per_tick == pytest.approx(120, rel=1e-4)


def test_placement_error_bounded_by_clock_granularity():
    machine, trace = traced_run(cell_config=skewed_config(), iterations=20)
    placed = CorrelatedTrace.build(trace).placed
    errors = correlation_errors(placed)
    assert errors, "expected ground-truth annotations in-memory"
    divider = machine.config.timebase_divider
    # Placement error stays within a few clock ticks.
    assert max(errors) <= 4 * divider


def test_per_core_streams_stay_monotone_after_placement():
    __, trace = traced_run(cell_config=skewed_config())
    corr = CorrelatedTrace.build(trace)
    for spe_id in (0, 1):
        times = [p.time for p in corr.spe_stream(spe_id)]
        assert times == sorted(times)
    ppe_times = [p.time for p in corr.ppe_stream]
    assert ppe_times == sorted(ppe_times)


def test_cross_core_ordering_mostly_preserved():
    """Mailbox causality: SPE exit records precede PPE run_end records."""
    __, trace = traced_run()
    corr = CorrelatedTrace.build(trace)
    exits = [p.time for p in corr.placed if p.kind == "spe_exit"]
    run_ends = [p.time for p in corr.placed if p.kind == "context_run_end"]
    assert len(exits) == len(run_ends) == 2
    # Every run_end happens at-or-after the earliest exit (loose but
    # meaningful given clock quantization).
    assert min(run_ends) >= min(exits) - 120


def test_ppe_records_placed_at_timebase_resolution():
    __, trace = traced_run()
    correlator = ClockCorrelator(trace)
    for record in trace.ppe_records:
        assert correlator.place(record) == record.raw_ts * 120


def test_missing_sync_records_raise():
    __, trace = traced_run()
    # Strip all sync records from SPE 0.
    trace.spe_records[0] = [r for r in trace.spe_records[0] if r.kind != "sync"]
    with pytest.raises(CorrelationError, match="no sync records"):
        ClockCorrelator(trace)


def test_single_sync_record_falls_back_to_nominal_period():
    __, trace = traced_run()
    syncs = [r for r in trace.spe_records[0] if r.kind == "sync"]
    trace.spe_records[0] = [
        r for r in trace.spe_records[0] if r.kind != "sync" or r is syncs[0]
    ]
    correlator = ClockCorrelator(trace)
    assert correlator.fits[0].cycles_per_tick == 120
    assert correlator.fits[0].n_sync == 1


def test_correlation_survives_file_round_trip(tmp_path):
    from repro.pdt import read_trace, write_trace

    __, trace = traced_run(cell_config=skewed_config())
    path = str(tmp_path / "t.pdt")
    write_trace(trace, path)
    restored = read_trace(path)
    a = ClockCorrelator(trace)
    b = ClockCorrelator(restored)
    for spe_id in a.fits:
        assert b.fits[spe_id].cycles_per_tick == pytest.approx(
            a.fits[spe_id].cycles_per_tick
        )
        assert b.fits[spe_id].intercept == pytest.approx(a.fits[spe_id].intercept)


def test_placed_records_sorted_and_stable():
    __, trace = traced_run(n_spes=2)
    corr = CorrelatedTrace.build(trace)
    keys = [
        (p.time, p.record.side, p.record.core, p.record.seq) for p in corr.placed
    ]
    assert keys == sorted(keys)
    assert len(corr.placed) == trace.n_records
