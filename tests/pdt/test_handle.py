"""TraceHandle: the shareable open-trace core.

Three contracts under test:

* **equivalence** — a handle-backed source yields exactly the chunks,
  sync scan, and query results that ``open_trace`` does, for every
  on-disk version;
* **sharing** — one handle serves many concurrent ``.source()`` views
  through a bounded descriptor pool (cap respected, no leaks, one
  clock fit shared by every consumer);
* **lifecycle** — ``close()`` is idempotent, poisons the pool, and a
  constructor failure never leaks descriptors.
"""

import builtins
import io
import threading
import time

import pytest

from repro.pdt import TraceConfig, TraceFormatError, open_trace, write_trace
from repro.pdt.format import (
    VERSION_CHUNKED,
    VERSION_COMPRESSED,
    VERSION_CRC,
    VERSION_INDEXED,
    VERSION_LEGACY,
)
from repro.pdt.handle import DEFAULT_POOL_CAP, FdPool, TraceHandle, open_handle
from repro.tq import Query, build_sidecar
from repro.workloads import MatmulWorkload, run_workload

VERSIONS = {
    "v1": VERSION_LEGACY,
    "v2": VERSION_CHUNKED,
    "v3": VERSION_CRC,
    "v4": VERSION_INDEXED,
    "v5": VERSION_COMPRESSED,
}


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    """version label -> path, one matmul trace written at each version."""
    tmp = tmp_path_factory.mktemp("handle")
    result = run_workload(
        MatmulWorkload(n=64, tile=32, n_spes=2), TraceConfig(buffer_bytes=1024)
    )
    source = result.trace_source()
    paths = {}
    for label, code in VERSIONS.items():
        source.header.version = code
        path = str(tmp / f"{label}.pdt")
        write_trace(source, path)
        paths[label] = path
    return paths


# -- equivalence -------------------------------------------------------


def _chunk_tuples(source):
    return [
        (
            bytes(chunk.side), bytes(chunk.code), bytes(chunk.core),
            bytes(chunk.seq), bytes(chunk.raw_ts), bytes(chunk.values),
        )
        for chunk in source.iter_chunks()
    ]


@pytest.mark.parametrize("label", sorted(VERSIONS))
def test_handle_source_matches_open_trace(traces, label):
    path = traces[label]
    with open_trace(path) as reference:
        want_chunks = _chunk_tuples(reference)
        want_counts = reference.chunk_record_counts()
        want_sync = reference.scan_sync()
    with TraceHandle(path) as handle:
        view = handle.source()
        assert view.n_records == sum(want_counts)
        assert view.chunk_record_counts() == want_counts
        assert _chunk_tuples(view) == want_chunks
        assert view.scan_sync() == want_sync


@pytest.mark.parametrize("label", sorted(VERSIONS))
def test_query_on_handle_matches_query_on_open_trace(traces, label):
    path = traces[label]

    def shape(source):
        return (
            Query(source)
            .where(t0=0, spe=1)
            .groupby("spe", "kind")
            .agg(n="count", bytes=("sum", "size"))
        )

    with open_trace(path) as reference:
        want = shape(reference).run()
    with TraceHandle(path) as handle:
        # Query accepts the handle itself (creates a borrowed view).
        assert shape(handle).run() == want
        assert shape(handle.source()).run() == want


def test_chunk_range_view_matches_full_decode(traces):
    with TraceHandle(traces["v4"]) as handle:
        everything = _chunk_tuples(handle.source())
        lo, hi = 1, handle.n_chunks
        ranged = _chunk_tuples(handle.source(chunk_range=(lo, hi)))
        assert ranged == everything[lo:hi]


def test_sidecar_attach_is_shared(traces, tmp_path):
    path = traces["v3"]
    build_sidecar(path)
    with open_handle(path) as handle:
        assert handle.zone_maps() is not None
        # Every view sees the attached index.
        assert handle.source().zone_maps() is not None


# -- sharing: pool cap, concurrency, one clock fit ---------------------


def test_correlator_is_shared_and_cached(traces):
    with TraceHandle(traces["v4"]) as handle:
        first = handle.correlator()
        assert handle.correlator() is first
        queries = [Query(handle.source()).where(t0=0) for __ in range(3)]
        for query in queries:
            query.count()
            assert query._correlator is first


def test_concurrent_sources_share_one_handle(traces):
    """N threads each run a full decode through their own view of one
    handle; results agree and the pool never exceeds its cap."""
    path = traces["v4"]
    n_threads = 12
    with TraceHandle(path, pool_cap=3) as handle:
        want = _chunk_tuples(handle.source())
        results = [None] * n_threads
        errors = []

        def worker(i):
            try:
                results[i] = _chunk_tuples(handle.source())
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(result == want for result in results)
        assert handle.open_descriptors <= 3
    assert handle.open_descriptors == 0


def test_pool_cap_blocks_and_releases():
    pool = FdPool(None, b"x" * 64, cap=2)
    a = pool.checkout()
    b = pool.checkout()
    assert pool.n_open == 2
    with pytest.raises(TimeoutError):
        pool.checkout(timeout=0.05)
    pool.release(a)
    c = pool.checkout(timeout=1.0)
    assert c is a  # recycled, not reopened
    pool.release(b)
    pool.release(c)
    assert pool.n_open == 2  # idle handles stay open for reuse
    pool.close()
    assert pool.n_open == 0


def test_pool_checkout_timeout_is_a_deadline_not_per_wakeup():
    """Regression: checkout(timeout=...) restarted the full timeout on
    every Condition wakeup, so a caller at a contended cap could block
    far past its requested timeout as long as wakeups kept arriving.
    The timeout must behave as a total monotonic deadline."""
    pool = FdPool(None, b"x" * 64, cap=1)
    held = pool.checkout()
    stop = threading.Event()

    def nuisance():
        # Spurious-style wakeups, each arriving well inside the
        # requested timeout, for much longer than the timeout itself.
        while not stop.is_set():
            with pool._cond:
                pool._cond.notify_all()
            time.sleep(0.05)

    noisemaker = threading.Thread(target=nuisance)
    noisemaker.start()
    try:
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            pool.checkout(timeout=0.3)
        elapsed = time.monotonic() - start
        assert elapsed < 1.2, (
            f"checkout blocked {elapsed:.2f}s past a 0.3s timeout: "
            "wakeups are restarting the clock"
        )
    finally:
        stop.set()
        noisemaker.join()
        pool.release(held)
        pool.close()


def test_pool_close_poisons_checkout():
    pool = FdPool(None, b"x" * 64, cap=2)
    handle = pool.checkout()
    pool.close()
    with pytest.raises(ValueError):
        pool.checkout()
    # Releasing after close must not resurrect the descriptor.
    pool.release(handle)
    assert pool.n_open == 0
    pool.close()  # idempotent


# -- lifecycle: leaks, idempotent close --------------------------------


class TrackingFile(io.BytesIO):
    def __init__(self, data, registry):
        super().__init__(data)
        registry.append(self)


@pytest.fixture()
def tracked(traces, monkeypatch):
    path = traces["v4"]
    data = open(path, "rb").read()
    issued = []
    real_open = builtins.open

    def fake_open(file, mode="r", *args, **kwargs):
        if file == path and "b" in mode:
            return TrackingFile(data, issued)
        return real_open(file, mode, *args, **kwargs)

    monkeypatch.setattr(builtins, "open", fake_open)
    return path, issued, data


def test_no_leak_after_concurrent_source_iterations(tracked):
    path, issued, __ = tracked
    with TraceHandle(path, pool_cap=4) as handle:
        threads = [
            threading.Thread(
                target=lambda: list(handle.source().iter_chunks())
            )
            for __i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(issued) <= 4  # cap bounds descriptors ever opened
    assert issued and all(handle_.closed for handle_ in issued)


def test_close_is_idempotent_and_closes_checked_out(tracked):
    path, issued, __ = tracked
    handle = TraceHandle(path, pool_cap=2)
    iterator = handle.source().iter_chunks()
    next(iterator)  # generator holds a checked-out descriptor
    assert any(not f.closed for f in issued)
    handle.close()
    assert all(f.closed for f in issued)
    handle.close()  # idempotent
    assert handle.closed
    with pytest.raises(ValueError):
        list(handle.source().iter_chunks())


def test_constructor_failure_leaks_nothing(tracked, monkeypatch):
    path, issued, data = tracked
    truncated = data[: len(data) - 7]
    real_open = builtins.open

    def fake_open(file, mode="r", *args, **kwargs):
        if file == path and "b" in mode:
            return TrackingFile(truncated, issued)
        return real_open(file, mode, *args, **kwargs)

    monkeypatch.setattr(builtins, "open", fake_open)
    issued.clear()
    with pytest.raises(TraceFormatError):
        TraceHandle(path)
    assert issued and all(f.closed for f in issued)


def test_borrowed_view_close_is_noop(tracked):
    """HandleSource views borrow: closing one must not close the
    shared handle behind everyone else's back."""
    path, issued, __ = tracked
    with TraceHandle(path) as handle:
        view = handle.source()
        view.close()
        assert not handle.closed
        assert _chunk_tuples(handle.source())  # still usable
    assert all(f.closed for f in issued)


def test_default_pool_cap_sanity():
    assert DEFAULT_POOL_CAP >= 2
