"""Shared helpers for PDT tests: tiny traced workloads."""

from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime, SpeProgram
from repro.pdt import PdtHooks, TraceConfig


def traced_machine(config=None, n_spes=2, cell_config=None):
    """A machine + runtime with PDT installed."""
    machine = CellMachine(
        cell_config or CellConfig(n_spes=n_spes, main_memory_size=1 << 26)
    )
    hooks = PdtHooks(config or TraceConfig())
    runtime = Runtime(machine, hooks=hooks)
    return machine, runtime, hooks


def dma_loop_program(iterations=8, size=1024, compute=2000):
    """A standard traced kernel: GET, compute, PUT, repeat."""

    def entry(spu, argp, envp):
        ls = spu.ls_alloc(size)
        for i in range(iterations):
            yield from spu.mfc_get(ls, argp, size, tag=1)
            yield from spu.mfc_wait_tag(1 << 1)
            yield from spu.compute(compute)
            yield from spu.mfc_put(ls, argp, size, tag=2)
            yield from spu.mfc_wait_tag(1 << 2)
        yield from spu.write_out_mbox(iterations)
        return 0

    return SpeProgram("dma-loop", entry)


def run_workload(machine, runtime, program, n_spes=1):
    """Launch ``program`` on ``n_spes`` SPEs from a PPE main thread."""
    buffers = [machine.memory.allocate(64 * 1024) for __ in range(n_spes)]

    def main():
        procs = []
        contexts = []
        for i in range(n_spes):
            ctx = yield from runtime.context_create()
            yield from ctx.load(program)
            contexts.append(ctx)
        for i, ctx in enumerate(contexts):
            procs.append(ctx.run_async(argp=buffers[i]))
        for ctx in contexts:
            yield from ctx.out_mbox_read()
        for proc in procs:
            yield proc
        runtime.finalize()

    machine.spawn(main())
    machine.run()
