"""PPE records carry the producing thread id (PDT feature)."""

from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime, SpeProgram
from repro.pdt import PdtHooks, TraceConfig


def test_ppe_records_tag_producing_thread():
    machine = CellMachine(CellConfig(n_spes=2, main_memory_size=1 << 26))
    hooks = PdtHooks(TraceConfig())
    rt = Runtime(machine, hooks=hooks)

    def entry(spu, argp, envp):
        yield from spu.compute(100)
        yield from spu.write_out_mbox(0)
        return 0

    def main():
        contexts = []
        for __ in range(2):
            ctx = yield from rt.context_create()
            yield from ctx.load(SpeProgram("t", entry))
            contexts.append(ctx)
        # run_async spawns a distinct PPE thread per context; each
        # thread produces its own run_begin/run_end records.
        procs = [ctx.run_async() for ctx in contexts]
        for ctx in contexts:
            yield from ctx.out_mbox_read()
        for proc in procs:
            yield proc

    machine.spawn(main())
    machine.run()
    records = hooks.to_trace().ppe_records
    # Creation/load happened on the main thread; the run begin/end
    # pairs happened on two distinct spawned threads.
    run_threads = {
        r.core for r in records if r.kind in ("context_run_begin", "context_run_end")
    }
    main_threads = {r.core for r in records if r.kind == "context_create"}
    assert len(run_threads) == 2
    assert len(main_threads) == 1
    assert run_threads.isdisjoint(main_threads)
    # Per-run pairing: begin and end of the same SPE share a thread.
    by_spe = {}
    for r in records:
        if r.kind in ("context_run_begin", "context_run_end"):
            by_spe.setdefault(r.fields["spe"], set()).add(r.core)
    assert all(len(threads) == 1 for threads in by_spe.values())


def test_thread_ids_survive_file_round_trip(tmp_path):
    from repro.pdt import read_trace, write_trace

    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 26))
    hooks = PdtHooks(TraceConfig())
    rt = Runtime(machine, hooks=hooks)

    def entry(spu, argp, envp):
        yield from spu.compute(10)
        return 0

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("t", entry))
        yield from ctx.run()

    machine.spawn(main())
    machine.run()
    path = str(tmp_path / "t.pdt")
    write_trace(hooks.to_trace(), path)
    restored = read_trace(path)
    original_cores = [r.core for r in hooks.to_trace().ppe_records]
    assert [r.core for r in restored.ppe_records] == original_cores
    assert any(core != 0 for core in original_cores)
