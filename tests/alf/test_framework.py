"""Mini-ALF framework tests."""

import numpy as np
import pytest

from repro.alf import AlfError, AlfKernel, AlfTask, WorkBlock
from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime
from repro.pdt import PdtHooks, TraceConfig
from repro.ta import analyze, analyze_buffering


def make_machine(n_spes=2, hooks=None):
    machine = CellMachine(CellConfig(n_spes=n_spes, main_memory_size=1 << 26))
    return machine, Runtime(machine, hooks=hooks)


def scale_kernel(factor=2.0, cycles=4000):
    def run(params, inputs):
        data = np.frombuffer(inputs[0], dtype=np.float32)
        return (data * factor).tobytes()

    return AlfKernel("scale", run, cycles, max_input_bytes=4096,
                     max_output_bytes=4096)


def add_kernel(cycles=3000):
    def run(params, inputs):
        a = np.frombuffer(inputs[0], dtype=np.float32)
        b = np.frombuffer(inputs[1], dtype=np.float32)
        return (a + b).tobytes()

    return AlfKernel("add", run, cycles, max_input_bytes=4096,
                     max_output_bytes=4096)


def run_task(machine, runtime, task):
    out = {}

    def main():
        out["total"] = yield from task.execute(machine, runtime)
        runtime.finalize()

    machine.spawn(main())
    machine.run()
    return out["total"]


def setup_scale_data(machine, n_blocks, block_floats=512):
    rng = np.random.default_rng(5)
    block_bytes = block_floats * 4
    data = rng.standard_normal(n_blocks * block_floats).astype(np.float32)
    ea_in = machine.memory.allocate(n_blocks * block_bytes)
    ea_out = machine.memory.allocate(n_blocks * block_bytes)
    machine.memory.write(ea_in, data.tobytes())
    return data, ea_in, ea_out, block_bytes


# ----------------------------------------------------------------------
# descriptors
# ----------------------------------------------------------------------
def test_work_block_encode_decode_round_trip():
    block = WorkBlock(
        inputs=((4096, 1024), (8192, 512)),
        output=(16384, 1024),
        params=(1, 2, 3, 4),
    )
    assert WorkBlock.decode(block.encode()) == block
    assert len(block.encode()) == 128


def test_work_block_validation():
    kernel = scale_kernel()
    with pytest.raises(AlfError, match="1..2 inputs"):
        WorkBlock(inputs=(), output=(0, 16)).validate(kernel)
    with pytest.raises(AlfError, match="alignment"):
        WorkBlock(inputs=((8, 100),), output=(0, 16)).validate(kernel)
    with pytest.raises(AlfError, match="exceeds kernel limit"):
        WorkBlock(inputs=((0, 8192),), output=(0, 16)).validate(kernel)


def test_kernel_validation():
    with pytest.raises(AlfError, match="callable"):
        AlfKernel("bad", run="no", cycles=1)
    with pytest.raises(AlfError, match="16 KB"):
        AlfKernel("big", run=lambda p, i: b"", cycles=1,
                  max_input_bytes=32 * 1024)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def test_single_input_task_computes_all_blocks():
    machine, rt = make_machine(n_spes=2)
    data, ea_in, ea_out, block_bytes = setup_scale_data(machine, n_blocks=8)
    task = AlfTask(scale_kernel(factor=3.0), n_spes=2)
    for i in range(8):
        task.enqueue(WorkBlock(
            inputs=((ea_in + i * block_bytes, block_bytes),),
            output=(ea_out + i * block_bytes, block_bytes),
        ))
    assert run_task(machine, rt, task) == 8
    result = np.frombuffer(
        machine.memory.read(ea_out, 8 * block_bytes), dtype=np.float32
    )
    assert np.allclose(result, data * 3.0)


def test_two_input_kernel():
    machine, rt = make_machine(n_spes=2)
    rng = np.random.default_rng(9)
    n, block_bytes = 6, 2048
    floats = block_bytes // 4
    a = rng.standard_normal(n * floats).astype(np.float32)
    b = rng.standard_normal(n * floats).astype(np.float32)
    ea_a = machine.memory.allocate(n * block_bytes)
    ea_b = machine.memory.allocate(n * block_bytes)
    ea_out = machine.memory.allocate(n * block_bytes)
    machine.memory.write(ea_a, a.tobytes())
    machine.memory.write(ea_b, b.tobytes())
    task = AlfTask(add_kernel(), n_spes=2)
    for i in range(n):
        task.enqueue(WorkBlock(
            inputs=(
                (ea_a + i * block_bytes, block_bytes),
                (ea_b + i * block_bytes, block_bytes),
            ),
            output=(ea_out + i * block_bytes, block_bytes),
        ))
    run_task(machine, rt, task)
    result = np.frombuffer(
        machine.memory.read(ea_out, n * block_bytes), dtype=np.float32
    )
    assert np.allclose(result, a + b)


def test_work_spreads_across_spes():
    machine, rt = make_machine(n_spes=4)
    data, ea_in, ea_out, block_bytes = setup_scale_data(machine, n_blocks=16)
    task = AlfTask(scale_kernel(cycles=5000), n_spes=4)
    for i in range(16):
        task.enqueue(WorkBlock(
            inputs=((ea_in + i * block_bytes, block_bytes),),
            output=(ea_out + i * block_bytes, block_bytes),
        ))
    run_task(machine, rt, task)
    assert sum(task.blocks_done_by.values()) == 16
    assert all(done > 0 for done in task.blocks_done_by.values())


def test_empty_task_rejected():
    machine, rt = make_machine()
    task = AlfTask(scale_kernel(), n_spes=1)

    def main():
        try:
            yield from task.execute(machine, rt)
        except AlfError:
            return "empty"

    out = {}

    def wrap():
        out["r"] = yield from main()

    machine.spawn(wrap())
    machine.run()
    assert out["r"] == "empty"


def test_kernel_output_size_mismatch_detected():
    machine, rt = make_machine(n_spes=1)
    bad = AlfKernel("bad", lambda p, i: b"\x00" * 16, 100,
                    max_input_bytes=4096, max_output_bytes=4096)
    data, ea_in, ea_out, block_bytes = setup_scale_data(machine, n_blocks=1)
    task = AlfTask(bad, n_spes=1)
    task.enqueue(WorkBlock(
        inputs=((ea_in, block_bytes),), output=(ea_out, block_bytes)
    ))

    def main():
        yield from task.execute(machine, rt)

    machine.spawn(main())
    with pytest.raises(AlfError, match="produced 16 B"):
        machine.run()


def test_framework_double_buffering_overlaps_transfers():
    """The framework's prefetch hides input DMA under compute."""
    hooks = PdtHooks(TraceConfig.dma_only())
    machine, rt = make_machine(n_spes=1, hooks=hooks)
    data, ea_in, ea_out, block_bytes = setup_scale_data(machine, n_blocks=12)
    task = AlfTask(scale_kernel(cycles=20_000), n_spes=1)
    for i in range(12):
        task.enqueue(WorkBlock(
            inputs=((ea_in + i * block_bytes, block_bytes),),
            output=(ea_out + i * block_bytes, block_bytes),
        ))
    run_task(machine, rt, task)
    model = analyze(hooks.to_trace())
    report = analyze_buffering(model, 0)
    assert report.wait_dma_fraction < 0.2
    assert report.overlap_fraction > 0.3


def test_alf_traced_run_verifies():
    hooks = PdtHooks(TraceConfig())
    machine, rt = make_machine(n_spes=2, hooks=hooks)
    data, ea_in, ea_out, block_bytes = setup_scale_data(machine, n_blocks=6)
    task = AlfTask(scale_kernel(factor=2.0), n_spes=2)
    for i in range(6):
        task.enqueue(WorkBlock(
            inputs=((ea_in + i * block_bytes, block_bytes),),
            output=(ea_out + i * block_bytes, block_bytes),
        ))
    run_task(machine, rt, task)
    result = np.frombuffer(
        machine.memory.read(ea_out, 6 * block_bytes), dtype=np.float32
    )
    assert np.allclose(result, data * 2.0)
    assert hooks.to_trace().n_records > 0
