"""Virtual SPE contexts: more contexts than physical SPEs."""

import pytest

from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime, SpeContextError, SpeProgram
from repro.libspe.runtime import ContextState
from repro.pdt import PdtHooks, TraceConfig


def make(n_spes=2, hooks=None):
    machine = CellMachine(CellConfig(n_spes=n_spes, main_memory_size=1 << 26))
    return machine, Runtime(machine, hooks=hooks)


def job_program(tag, cycles=1000):
    def entry(spu, argp, envp):
        yield from spu.compute(cycles)
        return tag

    return SpeProgram(f"job{tag}", entry)


def run_virtual_jobs(machine, rt, n_jobs, cycles=1000):
    """Create n virtual contexts, run them all, return stop codes."""
    out = {}

    def main():
        contexts = []
        for i in range(n_jobs):
            ctx = yield from rt.context_create(virtual=True)
            yield from ctx.load(job_program(i, cycles))
            contexts.append(ctx)
        procs = [ctx.run_async() for ctx in contexts]
        codes = []
        for proc in procs:
            codes.append((yield proc))
        out["codes"] = codes
        out["contexts"] = contexts

    machine.spawn(main())
    machine.run()
    return out


def test_more_virtual_contexts_than_spes_all_complete():
    machine, rt = make(n_spes=2)
    out = run_virtual_jobs(machine, rt, n_jobs=6)
    assert sorted(out["codes"]) == list(range(6))


def test_virtual_contexts_time_multiplex_physical_spes():
    machine, rt = make(n_spes=2)
    out = run_virtual_jobs(machine, rt, n_jobs=6, cycles=10_000)
    # With 2 SPEs and 6 jobs of 10k cycles, total time ~ 3 rounds.
    assert machine.sim.now >= 3 * 10_000
    # Each physical SPE ran several programs.
    starts = [len(spe.program_starts) for spe in machine.spes]
    assert sum(starts) == 6
    assert all(count >= 1 for count in starts)


def test_virtual_context_unbinds_after_run():
    machine, rt = make(n_spes=1)
    out = run_virtual_jobs(machine, rt, n_jobs=2)
    for ctx in out["contexts"]:
        assert not ctx.bound
        assert ctx.spe_id is None
        assert ctx.last_spe_id == 0
        assert ctx.state is ContextState.STOPPED
    assert rt._pool.free_count == 1


def test_virtual_cannot_pin_spe_id():
    machine, rt = make()

    def main():
        try:
            yield from rt.context_create(spe_id=1, virtual=True)
        except SpeContextError:
            return "rejected"

    out = {}

    def wrap():
        out["r"] = yield from main()

    machine.spawn(wrap())
    machine.run()
    assert out["r"] == "rejected"


def test_static_and_virtual_coexist():
    machine, rt = make(n_spes=2)
    out = {}

    def main():
        static = yield from rt.context_create(spe_id=0)
        yield from static.load(job_program(100, cycles=50_000))
        static_proc = static.run_async()
        # Two virtual jobs share the one remaining SPE.
        virtuals = []
        for i in range(2):
            ctx = yield from rt.context_create(virtual=True)
            yield from ctx.load(job_program(i, cycles=5000))
            virtuals.append(ctx)
        procs = [ctx.run_async() for ctx in virtuals]
        codes = []
        for proc in procs:
            codes.append((yield proc))
        codes.append((yield static_proc))
        out["codes"] = codes
        out["virtual_spes"] = [ctx.last_spe_id for ctx in virtuals]

    machine.spawn(main())
    machine.run()
    assert sorted(out["codes"]) == [0, 1, 100]
    # Virtual jobs never touched the statically claimed SPE 0.
    assert out["virtual_spes"] == [1, 1]


def test_virtual_context_destroy_before_run():
    machine, rt = make()

    def main():
        ctx = yield from rt.context_create(virtual=True)
        yield from ctx.destroy()
        return ctx.state

    out = {}

    def wrap():
        out["state"] = yield from main()

    machine.spawn(wrap())
    machine.run()
    assert out["state"] is ContextState.DESTROYED


def test_virtual_contexts_traced_with_ls_rebinding():
    """Tracing survives SPE re-provisioning between virtual runs."""
    hooks = PdtHooks(TraceConfig())
    machine, rt = make(n_spes=1, hooks=hooks)
    out = run_virtual_jobs(machine, rt, n_jobs=3)
    assert sorted(out["codes"]) == [0, 1, 2]
    trace = hooks.to_trace()
    stream = trace.records_for_spe(0)
    # One stream for the physical SPE: 3 entry/exit pairs in order.
    entries = [r for r in stream if r.kind == "spe_entry"]
    exits = [r for r in stream if r.kind == "spe_exit"]
    assert len(entries) == len(exits) == 3
    trace.validate()  # sequence numbers stayed monotone across rebinds
    # PPE lifecycle shows the virtual creations (-1) then bound runs.
    creates = [r for r in trace.ppe_records if r.kind == "context_create"]
    assert all(r.fields["spe"] == -1 for r in creates)
    run_begins = [r for r in trace.ppe_records if r.kind == "context_run_begin"]
    assert all(r.fields["spe"] == 0 for r in run_begins)


def test_virtual_run_reuses_ls_after_reset():
    """The second virtual job gets a full LS despite the first one's
    allocations (reset reclaims everything)."""
    machine, rt = make(n_spes=1)

    def hungry(tag):
        def entry(spu, argp, envp):
            spu.ls_alloc(180 * 1024)  # most of the LS
            yield from spu.compute(100)
            return tag

        return SpeProgram(f"hungry{tag}", entry, ls_code_bytes=16 * 1024)

    out = {}

    def main():
        codes = []
        for i in range(2):
            ctx = yield from rt.context_create(virtual=True)
            yield from ctx.load(hungry(i))
            codes.append((yield from ctx.run()))
        out["codes"] = codes

    machine.spawn(main())
    machine.run()
    assert out["codes"] == [0, 1]
