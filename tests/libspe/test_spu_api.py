"""Tests for the SPU-side API: DMA, tag waits, hooks firing order."""

import pytest

from repro.cell import CellConfig, CellMachine, SpuState
from repro.libspe import Runtime, RuntimeHooks, SpeProgram
from repro.libspe.hooks import SpuEventKind


def make(n_spes=1, hooks=None, **config_kw):
    machine = CellMachine(
        CellConfig(n_spes=n_spes, main_memory_size=1 << 20, **config_kw)
    )
    return machine, Runtime(machine, hooks=hooks)


def run_program(machine, rt, entry, argp=0):
    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("t", entry))
        code = yield from ctx.run(argp=argp)
        return code

    out = {}

    def wrapper():
        out["code"] = yield from main()

    machine.spawn(wrapper())
    machine.run()
    return out["code"]


def test_mfc_get_then_wait_moves_data():
    machine, rt = make()
    ea = machine.memory.allocate(256)
    machine.memory.write(ea, bytes(range(256)))

    def entry(spu, argp, envp):
        yield from spu.mfc_get(ls_addr=0, ea=argp, size=256, tag=4)
        yield from spu.mfc_wait_tag(1 << 4)
        data = spu.ls_read(0, 256)
        return 1 if data == bytes(range(256)) else 0

    assert run_program(machine, rt, entry, argp=ea) == 1


def test_mfc_put_writes_back():
    machine, rt = make()
    ea = machine.memory.allocate(128)

    def entry(spu, argp, envp):
        spu.ls_write(0, b"\x42" * 128)
        yield from spu.mfc_put(ls_addr=0, ea=argp, size=128, tag=0)
        yield from spu.mfc_wait_tag(1)
        return 0

    run_program(machine, rt, entry, argp=ea)
    assert machine.memory.read(ea, 128) == b"\x42" * 128


def test_tag_mask_channel_style_wait():
    machine, rt = make()
    ea = machine.memory.allocate(1024)

    def entry(spu, argp, envp):
        yield from spu.mfc_get(0, argp, 512, tag=2)
        yield from spu.mfc_write_tag_mask(1 << 2)
        status = yield from spu.mfc_read_tag_status_all()
        return 1 if status & (1 << 2) else 0

    assert run_program(machine, rt, entry, argp=ea) == 1


def test_list_dma_via_api():
    machine, rt = make()
    eas = [machine.memory.allocate(64) for _ in range(3)]
    for i, ea in enumerate(eas):
        machine.memory.write(ea, bytes([0x10 + i]) * 64)

    def entry(spu, argp, envp):
        yield from spu.mfc_getl(0, [(ea, 64) for ea in eas], tag=1)
        yield from spu.mfc_wait_tag(1 << 1)
        blob = spu.ls_read(0, 192)
        ok = all(blob[i * 64] == 0x10 + i for i in range(3))
        return 1 if ok else 0

    assert run_program(machine, rt, entry) == 1


def test_fenced_and_barrier_variants_issue():
    machine, rt = make()
    ea = machine.memory.allocate(4096)

    def entry(spu, argp, envp):
        yield from spu.mfc_get(0, argp, 1024, tag=0)
        yield from spu.mfc_getf(1024, argp, 1024, tag=0)
        yield from spu.mfc_putb(0, argp, 1024, tag=1)
        yield from spu.mfc_wait_tag(0b11)
        return 0

    run_program(machine, rt, entry, argp=ea)
    kinds = [c.kind for c in machine.spe(0).mfc.completed_commands]
    assert kinds == ["GET", "GETF", "PUTB"]


def test_compute_advances_time_exactly():
    machine, rt = make()

    def entry(spu, argp, envp):
        start = spu.now
        yield from spu.compute(12345)
        return spu.now - start

    assert run_program(machine, rt, entry) == 12345


def test_compute_rejects_negative():
    machine, rt = make()

    def entry(spu, argp, envp):
        try:
            yield from spu.compute(-1)
        except ValueError:
            return 99
        return 0

    assert run_program(machine, rt, entry) == 99


def test_wait_dma_state_tracked():
    machine, rt = make()
    ea = machine.memory.allocate(16 * 1024)

    def entry(spu, argp, envp):
        yield from spu.mfc_get(0, argp, 16 * 1024, tag=0)
        yield from spu.mfc_wait_tag(1)
        return 0

    run_program(machine, rt, entry, argp=ea)
    assert machine.spe(0).track.totals[SpuState.WAIT_DMA] > 0


class RecordingHooks(RuntimeHooks):
    """Test double: records every hook invocation."""

    def __init__(self):
        self.spu_events = []
        self.ppe_events = []
        self.loaded = []
        self.finalized = False

    def spe_program_loaded(self, spu, program):
        self.loaded.append((spu.spe_id, program.name))

    def spu_event(self, spu, kind, fields):
        self.spu_events.append((spu.sim.now, spu.spe_id, kind, dict(fields)))
        return
        yield

    def ppe_event(self, kind, fields):
        self.ppe_events.append((kind, dict(fields)))
        return
        yield

    def finalize(self):
        self.finalized = True


def test_hooks_fire_in_program_order():
    hooks = RecordingHooks()
    machine, rt = make(hooks=hooks)
    ea = machine.memory.allocate(1024)

    def entry(spu, argp, envp):
        yield from spu.mfc_get(0, argp, 512, tag=3)
        yield from spu.mfc_wait_tag(1 << 3)
        yield from spu.write_out_mbox(1)
        return 0

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("hooked", entry))
        proc = ctx.run_async()
        value = yield from ctx.out_mbox_read()
        yield proc
        rt.finalize()
        return value

    out = {}

    def wrapper():
        out["v"] = yield from main()

    machine.spawn(wrapper())
    machine.run()
    assert out["v"] == 1

    kinds = [kind for (_, _, kind, _) in hooks.spu_events]
    assert kinds == [
        SpuEventKind.SPE_ENTRY,
        SpuEventKind.MFC_GET,
        SpuEventKind.WAIT_TAG_BEGIN,
        SpuEventKind.WAIT_TAG_END,
        SpuEventKind.WRITE_MBOX_BEGIN,
        SpuEventKind.WRITE_MBOX_END,
        SpuEventKind.SPE_EXIT,
    ]
    # Timestamps are non-decreasing.
    times = [t for (t, _, _, _) in hooks.spu_events]
    assert times == sorted(times)
    # The MFC_GET record carries its parameters.
    __, __, __, fields = hooks.spu_events[1]
    assert fields["tag"] == 3
    assert fields["size"] == 512
    assert hooks.loaded == [(0, "hooked")]
    assert hooks.finalized


def test_ppe_hooks_capture_context_lifecycle():
    hooks = RecordingHooks()
    machine, rt = make(hooks=hooks)

    def entry(spu, argp, envp):
        yield from spu.compute(10)
        return 5

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("life", entry))
        yield from ctx.run()
        yield from ctx.destroy()

    machine.spawn(main())
    machine.run()
    kinds = [kind for (kind, _) in hooks.ppe_events]
    assert kinds == [
        "context_create",
        "program_load",
        "context_run_begin",
        "context_run_end",
        "context_destroy",
    ]
    run_end = dict(hooks.ppe_events)[("context_run_end")]
    assert run_end["stop_code"] == 5


def test_user_marker_reaches_hooks():
    hooks = RecordingHooks()
    machine, rt = make(hooks=hooks)

    def entry(spu, argp, envp):
        yield from spu.marker(0xBEEF)
        return 0

    run_program(machine, rt, entry)
    markers = [f for (_, _, k, f) in hooks.spu_events if k == SpuEventKind.USER_MARKER]
    assert markers == [{"value": 0xBEEF}]


def test_read_decrementer_via_api():
    machine, rt = make()

    def entry(spu, argp, envp):
        first = yield from spu.read_decrementer()
        yield from spu.compute(machine.config.timebase_divider * 10)
        second = yield from spu.read_decrementer()
        return first - second

    assert run_program(machine, rt, entry) == 10


def test_signal_validation_in_api():
    machine, rt = make()

    def entry(spu, argp, envp):
        try:
            yield from spu.read_signal(3)
        except ValueError:
            return 1
        return 0

    assert run_program(machine, rt, entry) == 1


def test_in_mbox_count_probe():
    machine, rt = make()

    def entry(spu, argp, envp):
        count = yield from spu.in_mbox_count()
        return count

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("probe", entry))
        yield from ctx.in_mbox_write(1)
        yield from ctx.in_mbox_write(2)
        code = yield from ctx.run()
        return code

    out = {}

    def wrapper():
        out["code"] = yield from main()

    machine.spawn(wrapper())
    machine.run()
    assert out["code"] == 2
