"""Tests for the libsync-style atomic helpers and SPU atomic API."""

import struct

import pytest

from repro.cell import CellConfig, CellMachine
from repro.cell.atomic import LOCK_LINE
from repro.libspe import Runtime, SpeProgram
from repro.libspe.sync import (
    atomic_add,
    atomic_increment_bounded,
    atomic_modify,
    atomic_read,
)
from repro.pdt import PdtHooks, TraceConfig


def run_programs(machine, rt, entries):
    """entries: list of SPE entry functions; returns list of stop codes."""

    def main():
        contexts = []
        for i, entry in enumerate(entries):
            ctx = yield from rt.context_create()
            yield from ctx.load(SpeProgram(f"p{i}", entry))
            contexts.append(ctx)
        procs = [ctx.run_async() for ctx in contexts]
        codes = []
        for proc in procs:
            codes.append((yield proc))
        return codes

    out = {}

    def wrap():
        out["codes"] = yield from main()

    machine.spawn(wrap())
    machine.run()
    return out["codes"]


def test_atomic_read_and_add_single_spe():
    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 20))
    rt = Runtime(machine)
    line = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)
    machine.memory.write(line, struct.pack("<I", 41) + bytes(LOCK_LINE - 4))

    def entry(spu, argp, envp):
        scratch = spu.ls_alloc(LOCK_LINE, align=LOCK_LINE)
        old = yield from atomic_add(spu, scratch, line, 0, 1)
        value = yield from atomic_read(spu, scratch, line, 0)
        return old * 1000 + value

    codes = run_programs(machine, rt, [entry])
    assert codes == [41 * 1000 + 42]


def test_atomic_add_contended_counts_exactly():
    machine = CellMachine(CellConfig(n_spes=4, main_memory_size=1 << 20))
    rt = Runtime(machine)
    line = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)
    increments_per_spe = 25

    def make_entry():
        def entry(spu, argp, envp):
            scratch = spu.ls_alloc(LOCK_LINE, align=LOCK_LINE)
            for __ in range(increments_per_spe):
                yield from atomic_add(spu, scratch, line, 0, 1)
                yield from spu.compute(50)
            return 0

        return entry

    run_programs(machine, rt, [make_entry() for __ in range(4)])
    (total,) = struct.unpack("<I", machine.memory.read(line, 4))
    assert total == 4 * increments_per_spe
    # Contention really happened (some PUTLLCs failed and retried).
    station = machine.reservations
    assert station.putllc_attempts >= 4 * increments_per_spe


def test_atomic_increment_bounded_distributes_all_items_once():
    machine = CellMachine(CellConfig(n_spes=3, main_memory_size=1 << 20))
    rt = Runtime(machine)
    line = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)
    bound = 30
    claimed = {i: [] for i in range(3)}

    def make_entry(spe_id):
        def entry(spu, argp, envp):
            scratch = spu.ls_alloc(LOCK_LINE, align=LOCK_LINE)
            while True:
                item = yield from atomic_increment_bounded(
                    spu, scratch, line, 0, bound
                )
                if item >= bound:
                    return 0
                claimed[spe_id].append(item)
                yield from spu.compute(500)

        return entry

    run_programs(machine, rt, [make_entry(i) for i in range(3)])
    all_items = sorted(item for items in claimed.values() for item in items)
    assert all_items == list(range(bound))  # each item exactly once
    assert all(claimed[i] for i in range(3))  # everyone got work


def test_atomic_modify_returns_old_value():
    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 20))
    rt = Runtime(machine)
    line = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)
    machine.memory.write(line + 8, struct.pack("<I", 7))

    def entry(spu, argp, envp):
        scratch = spu.ls_alloc(LOCK_LINE, align=LOCK_LINE)
        old = yield from atomic_modify(spu, scratch, line, 8, lambda v: v * 3)
        return old

    assert run_programs(machine, rt, [entry]) == [7]
    (value,) = struct.unpack("<I", machine.memory.read(line + 8, 4))
    assert value == 21


def test_sync_offset_validation():
    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 20))
    rt = Runtime(machine)
    line = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)

    def entry(spu, argp, envp):
        scratch = spu.ls_alloc(LOCK_LINE, align=LOCK_LINE)
        try:
            yield from atomic_read(spu, scratch, line, 3)
        except ValueError:
            return 1
        return 0

    assert run_programs(machine, rt, [entry]) == [1]


def test_atomic_ops_are_traced():
    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 26))
    hooks = PdtHooks(TraceConfig())
    rt = Runtime(machine, hooks=hooks)
    line = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)

    def entry(spu, argp, envp):
        scratch = spu.ls_alloc(LOCK_LINE, align=LOCK_LINE)
        yield from atomic_add(spu, scratch, line, 0, 5)
        return 0

    run_programs(machine, rt, [entry])
    kinds = [r.kind for r in hooks.to_trace().records_for_spe(0)]
    assert "atomic_getllar" in kinds
    putllcs = [
        r for r in hooks.to_trace().records_for_spe(0)
        if r.kind == "atomic_putllc"
    ]
    assert putllcs and putllcs[-1].fields["success"] == 1


def test_spe_to_spe_dma_via_spu_api():
    machine = CellMachine(CellConfig(n_spes=2, main_memory_size=1 << 20))
    rt = Runtime(machine)

    def sender(spu, argp, envp):
        ls = spu.ls_alloc(256)
        spu.ls_write(ls, b"\xEE" * 256)
        # PUT straight into SPE 1's LS window at offset 8192.
        target = spu.ls_base_ea(1) + 8192
        yield from spu.mfc_put(ls, target, 256, tag=0)
        yield from spu.mfc_wait_tag(1 << 0)
        return 0

    def idle(spu, argp, envp):
        value = yield from spu.read_in_mbox()
        return value

    def main():
        tx = yield from rt.context_create(spe_id=0)
        rx = yield from rt.context_create(spe_id=1)
        yield from tx.load(SpeProgram("tx", sender))
        yield from rx.load(SpeProgram("rx", idle))
        rx_proc = rx.run_async()
        yield from tx.run()
        yield from rx.in_mbox_write(1)
        yield rx_proc

    machine.spawn(main())
    machine.run()
    assert machine.spe(1).ls.read(8192, 256) == b"\xEE" * 256
