"""Interrupt-mailbox event path tests."""

import pytest

from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime, SpeProgram
from repro.pdt import PdtHooks, TraceConfig


def make(hooks=None):
    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 26))
    return machine, Runtime(machine, hooks=hooks)


def test_wait_interrupt_delivers_value_after_mmio_latency():
    machine, rt = make()
    got = []

    def entry(spu, argp, envp):
        yield from spu.compute(500)
        yield from spu.write_out_intr_mbox(0x77)
        return 0

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("intr", entry))
        proc = ctx.run_async()
        value = yield from ctx.wait_interrupt()
        got.append((value, machine.sim.now))
        yield proc

    machine.spawn(main())
    machine.run()
    value, t = got[0]
    assert value == 0x77
    assert t >= 500 + machine.config.mmio_latency


def test_on_interrupt_handler_services_stream():
    machine, rt = make()
    handled = []

    def entry(spu, argp, envp):
        for i in range(4):
            yield from spu.compute(200)
            yield from spu.write_out_intr_mbox(i)
        return 0

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("intr", entry))
        proc = ctx.run_async()

        def handler(value):
            handled.append((value, machine.sim.now))
            return
            yield

        service = ctx.on_interrupt(handler, count=4)
        yield service
        yield proc

    machine.spawn(main())
    machine.run()
    assert [v for (v, _) in handled] == [0, 1, 2, 3]
    times = [t for (_, t) in handled]
    assert times == sorted(times)


def test_interrupt_traced_on_both_sides():
    hooks = PdtHooks(TraceConfig())
    machine, rt = make(hooks=hooks)

    def entry(spu, argp, envp):
        yield from spu.write_out_intr_mbox(9)
        return 0

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("intr", entry))
        proc = ctx.run_async()
        yield from ctx.wait_interrupt()
        yield proc

    machine.spawn(main())
    machine.run()
    trace = hooks.to_trace()
    spe_writes = [
        r for r in trace.records_for_spe(0)
        if r.kind == "write_mbox_end" and r.fields.get("intr")
    ]
    assert len(spe_writes) == 1
    received = [r for r in trace.ppe_records if r.kind == "intr_received"]
    assert len(received) == 1
    assert received[0].fields == {"spe": 0, "value": 9}


def test_interrupt_handler_can_reply_via_mailbox():
    """A request/response loop: SPE raises interrupt, PPE answers."""
    machine, rt = make()

    def entry(spu, argp, envp):
        total = 0
        for i in range(3):
            yield from spu.write_out_intr_mbox(i)
            total += yield from spu.read_in_mbox()
        return total

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("rpc", entry))
        proc = ctx.run_async()

        def handler(value):
            yield from ctx.in_mbox_write(value * 10)

        service = ctx.on_interrupt(handler, count=3)
        yield service
        code = yield proc
        return code

    out = {}

    def wrap():
        out["code"] = yield from main()

    machine.spawn(wrap())
    machine.run()
    assert out["code"] == 0 + 10 + 20
