"""Tests for the PPE-side runtime: contexts, load, run, mailboxes."""

import pytest

from repro.cell import CellConfig, CellMachine, SpuState
from repro.libspe import Runtime, SpeContextError, SpeProgram, SpeProgramError
from repro.libspe.runtime import ContextState


def make(n_spes=2):
    machine = CellMachine(CellConfig(n_spes=n_spes, main_memory_size=1 << 20))
    return machine, Runtime(machine)


def drive(machine, gen):
    out = {}

    def main():
        out["result"] = yield from gen
    machine.spawn(main())
    machine.run()
    return out.get("result")


def noop_program():
    def entry(spu, argp, envp):
        yield from spu.compute(100)
        return 7
    return SpeProgram("noop", entry)


def test_context_create_assigns_free_spes_in_order():
    machine, rt = make(n_spes=2)

    def main():
        a = yield from rt.context_create()
        b = yield from rt.context_create()
        return (a.spe_id, b.spe_id)

    assert drive(machine, main()) == (0, 1)


def test_context_create_exhaustion():
    machine, rt = make(n_spes=1)

    def main():
        yield from rt.context_create()
        try:
            yield from rt.context_create()
        except SpeContextError:
            return "exhausted"

    assert drive(machine, main()) == "exhausted"


def test_context_create_explicit_spe_conflict():
    machine, rt = make(n_spes=2)

    def main():
        yield from rt.context_create(spe_id=1)
        try:
            yield from rt.context_create(spe_id=1)
        except SpeContextError:
            return "conflict"

    assert drive(machine, main()) == "conflict"


def test_run_returns_stop_code_and_sets_state():
    machine, rt = make()

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(noop_program())
        code = yield from ctx.run()
        return (code, ctx.state)

    code, state = drive(machine, main())
    assert code == 7
    assert state is ContextState.STOPPED


def test_run_without_load_rejected():
    machine, rt = make()

    def main():
        ctx = yield from rt.context_create()
        try:
            yield from ctx.run()
        except SpeContextError:
            return "rejected"

    assert drive(machine, main()) == "rejected"


def test_program_too_big_for_ls_rejected():
    machine, rt = make()
    big = SpeProgram("big", lambda spu, a, e: iter(()), ls_code_bytes=300 * 1024)

    def main():
        ctx = yield from rt.context_create()
        try:
            yield from ctx.load(big)
        except SpeProgramError:
            return "too big"

    assert drive(machine, main()) == "too big"


def test_run_async_models_thread_per_spe():
    machine, rt = make(n_spes=2)

    def entry(spu, argp, envp):
        yield from spu.compute(1000)
        return spu.spe_id

    def main():
        procs = []
        for __ in range(2):
            ctx = yield from rt.context_create()
            yield from ctx.load(SpeProgram("w", entry))
            procs.append(ctx.run_async())
        codes = []
        for proc in procs:
            codes.append((yield proc))
        return codes

    assert drive(machine, main()) == [0, 1]
    # Both SPEs ran concurrently: total time ~ one program, not two.
    assert machine.sim.now < 2500


def test_destroy_releases_spe():
    machine, rt = make(n_spes=1)

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.destroy()
        ctx2 = yield from rt.context_create()
        return ctx2.spe_id

    assert drive(machine, main()) == 0


def test_destroy_running_context_rejected():
    machine, rt = make()

    def entry(spu, argp, envp):
        value = yield from spu.read_in_mbox()
        return value

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("w", entry))
        proc = ctx.run_async()
        try:
            yield from ctx.destroy()
        except SpeContextError:
            yield from ctx.in_mbox_write(3)
            code = yield proc
            return ("rejected", code)

    assert drive(machine, main()) == ("rejected", 3)


def test_mailbox_round_trip_ppe_to_spe_and_back():
    machine, rt = make()

    def entry(spu, argp, envp):
        value = yield from spu.read_in_mbox()
        yield from spu.compute(100)
        yield from spu.write_out_mbox(value * 2)
        return 0

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("echo", entry))
        proc = ctx.run_async()
        yield from ctx.in_mbox_write(21)
        reply = yield from ctx.out_mbox_read()
        yield proc
        return reply

    assert drive(machine, main()) == 42


def test_out_mbox_read_nonblocking_returns_none():
    machine, rt = make()

    def main():
        ctx = yield from rt.context_create()
        value = yield from ctx.out_mbox_read(blocking=False)
        return value

    assert drive(machine, main()) is None


def test_out_mbox_status_charges_mmio():
    machine, rt = make()

    def main():
        ctx = yield from rt.context_create()
        count = yield from ctx.out_mbox_status()
        return count

    assert drive(machine, main()) == 0
    assert machine.ppe.mmio_accesses == 1


def test_signal_write_reaches_spu():
    machine, rt = make()

    def entry(spu, argp, envp):
        value = yield from spu.read_signal(1)
        return value

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("sig", entry))
        proc = ctx.run_async()
        yield from ctx.signal_write(1, 0b101)
        code = yield proc
        return code

    assert drive(machine, main()) == 0b101


def test_signal_register_validation():
    machine, rt = make()

    def main():
        ctx = yield from rt.context_create()
        try:
            yield from ctx.signal_write(3, 1)
        except SpeContextError:
            return "bad register"

    assert drive(machine, main()) == "bad register"


def test_spu_state_ground_truth_during_mailbox_wait():
    machine, rt = make()

    def entry(spu, argp, envp):
        yield from spu.compute(50)
        value = yield from spu.read_in_mbox()  # blocks ~1000 cycles
        return value

    def main():
        from repro.kernel import Delay

        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("waity", entry))
        proc = ctx.run_async()
        yield Delay(1000)
        yield from ctx.in_mbox_write(1)
        yield proc

    drive(machine, main())
    spe = machine.spe(0)
    assert spe.track.totals[SpuState.WAIT_MBOX] > 800
    assert spe.track.totals[SpuState.RUN] >= 50
