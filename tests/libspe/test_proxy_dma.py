"""PPE-initiated (proxy) DMA through the context API."""

from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime, SpeProgram
from repro.pdt import PdtHooks, TraceConfig


def make(hooks=None):
    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 26))
    return machine, Runtime(machine, hooks=hooks)


def test_mfcio_get_loads_spe_ls_from_ppe():
    machine, rt = make()
    ea = machine.memory.allocate(256)
    machine.memory.write(ea, b"\x5A" * 256)

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.mfcio_get(8192, ea, 256, tag=4)
        return machine.spe(0).ls.read(8192, 256)

    out = {}

    def wrap():
        out["data"] = yield from main()

    machine.spawn(wrap())
    machine.run()
    assert out["data"] == b"\x5A" * 256


def test_mfcio_put_reads_spe_ls_from_ppe():
    machine, rt = make()
    ea = machine.memory.allocate(128)
    machine.spe(0).ls.write(0, b"\x21" * 128)

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.mfcio_put(0, ea, 128, tag=0)

    machine.spawn(main())
    machine.run()
    assert machine.memory.read(ea, 128) == b"\x21" * 128


def test_proxy_uses_proxy_queue_not_spu_queue():
    machine, rt = make()
    ea = machine.memory.allocate(256)

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.mfcio_get(0, ea, 256, tag=0)

    machine.spawn(main())
    machine.run()
    mfc = machine.spe(0).mfc
    assert mfc.stats.commands == 1
    proxied = [c for c in mfc.completed_commands if "proxy" in c.issuer]
    assert len(proxied) == 1


def test_proxy_dma_traced_on_ppe_side():
    hooks = PdtHooks(TraceConfig())
    machine, rt = make(hooks=hooks)
    ea = machine.memory.allocate(512)

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.mfcio_get(0, ea, 512, tag=7)
        rt.finalize()

    machine.spawn(main())
    machine.run()
    records = [r for r in hooks.to_trace().ppe_records if r.kind == "proxy_dma"]
    assert len(records) == 1
    assert records[0].fields == {"spe": 0, "direction": 0, "size": 512, "tag": 7}


def test_proxy_dma_while_spe_program_runs():
    """The proxy queue is independent of the SPU's own traffic."""
    machine, rt = make()
    ea_app = machine.memory.allocate(4096)
    ea_ppe = machine.memory.allocate(256)
    machine.memory.write(ea_ppe, b"\x33" * 256)

    def entry(spu, argp, envp):
        ls = spu.ls_alloc(4096)
        for __ in range(4):
            yield from spu.mfc_get(ls, argp, 4096, tag=0)
            yield from spu.mfc_wait_tag(1 << 0)
            yield from spu.compute(2000)
        return 0

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("busy", entry))
        proc = ctx.run_async(argp=ea_app)
        # Inject data into high LS while the program runs.
        yield from ctx.mfcio_get(200 * 1024, ea_ppe, 256, tag=9)
        yield proc

    machine.spawn(main())
    machine.run()
    assert machine.spe(0).ls.read(200 * 1024, 256) == b"\x33" * 256
