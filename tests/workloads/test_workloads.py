"""Workload correctness: every kernel verifies against NumPy."""

import numpy as np
import pytest

from repro.pdt import TraceConfig
from repro.workloads import (
    FftWorkload,
    MatmulWorkload,
    MonteCarloWorkload,
    StreamingPipelineWorkload,
    WorkloadError,
    run_workload,
)


# ----------------------------------------------------------------------
# matmul
# ----------------------------------------------------------------------
def test_matmul_computes_correct_product():
    result = run_workload(MatmulWorkload(n=128, tile=32, n_spes=2))
    assert result.verified
    assert result.elapsed_cycles > 0


def test_matmul_double_buffered_same_answer_faster():
    single = run_workload(MatmulWorkload(n=128, tile=64, n_spes=2))
    double = run_workload(
        MatmulWorkload(n=128, tile=64, n_spes=2, double_buffered=True)
    )
    assert single.verified and double.verified
    assert double.elapsed_cycles < single.elapsed_cycles


def test_matmul_tile_assignment_balanced():
    workload = MatmulWorkload(n=256, tile=64, n_spes=4)
    assignments = workload.tile_assignments()
    sizes = [len(a) for a in assignments]
    assert sum(sizes) == 16
    assert max(sizes) - min(sizes) <= 1


def test_matmul_tile_assignment_skewed():
    workload = MatmulWorkload(n=256, tile=64, n_spes=4, skew=3)
    sizes = [len(a) for a in workload.tile_assignments()]
    assert sum(sizes) == 16
    assert sizes[0] > max(sizes[1:])


def test_matmul_validation():
    with pytest.raises(WorkloadError, match="not divisible"):
        MatmulWorkload(n=100, tile=64)
    with pytest.raises(WorkloadError, match="16 KB"):
        MatmulWorkload(n=256, tile=128)
    with pytest.raises(WorkloadError, match="skew"):
        MatmulWorkload(skew=0)


def test_matmul_traced_still_correct():
    result = run_workload(
        MatmulWorkload(n=128, tile=64, n_spes=2), TraceConfig()
    )
    assert result.verified
    assert result.trace().n_records > 0


# ----------------------------------------------------------------------
# fft
# ----------------------------------------------------------------------
def test_fft_matches_numpy():
    result = run_workload(FftWorkload(points=256, batch=8, n_spes=2))
    assert result.verified


def test_fft_single_buffered_variant():
    result = run_workload(
        FftWorkload(points=256, batch=8, n_spes=2, double_buffered=False)
    )
    assert result.verified
    assert result.workload.name == "fft-sb"


def test_fft_frame_assignment_covers_batch():
    workload = FftWorkload(points=256, batch=10, n_spes=3)
    assignments = workload.frame_assignments()
    flat = sorted(f for frames in assignments for f in frames)
    assert flat == list(range(10))


def test_fft_validation():
    with pytest.raises(WorkloadError, match="power of two"):
        FftWorkload(points=100)
    with pytest.raises(WorkloadError, match="16 KB"):
        FftWorkload(points=4096)


# ----------------------------------------------------------------------
# streaming pipeline
# ----------------------------------------------------------------------
def test_streaming_pipeline_transforms_all_blocks():
    result = run_workload(
        StreamingPipelineWorkload(stages=3, blocks=8, block_bytes=1024)
    )
    assert result.verified


def test_streaming_backpressure_bounds_lead():
    # depth=1 forces strict lockstep; still correct.
    result = run_workload(
        StreamingPipelineWorkload(stages=2, blocks=6, block_bytes=1024, depth=1)
    )
    assert result.verified


def test_streaming_validation():
    with pytest.raises(WorkloadError, match="16-aligned"):
        StreamingPipelineWorkload(block_bytes=1000)
    with pytest.raises(WorkloadError, match="depth"):
        StreamingPipelineWorkload(depth=32)


def test_streaming_traced_still_correct():
    result = run_workload(
        StreamingPipelineWorkload(stages=2, blocks=6, block_bytes=1024),
        TraceConfig(buffer_bytes=1024),
    )
    assert result.verified


# ----------------------------------------------------------------------
# monte carlo
# ----------------------------------------------------------------------
def test_montecarlo_hits_match_host_reference():
    result = run_workload(MonteCarloWorkload(samples_per_spe=2000, n_spes=2))
    assert result.verified
    assert result.workload.pi_estimate == pytest.approx(np.pi, abs=0.15)


def test_montecarlo_deterministic_across_runs():
    a = run_workload(MonteCarloWorkload(samples_per_spe=1000, n_spes=2))
    b = run_workload(MonteCarloWorkload(samples_per_spe=1000, n_spes=2))
    assert a.workload.total_hits == b.workload.total_hits
    assert a.elapsed_cycles == b.elapsed_cycles


def test_montecarlo_validation():
    with pytest.raises(WorkloadError):
        MonteCarloWorkload(samples_per_spe=0)
