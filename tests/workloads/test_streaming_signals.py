"""SPE-to-SPE signalling and pipeline bottleneck features."""

import pytest

from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime, SpeProgram
from repro.pdt import PdtHooks, TraceConfig
from repro.ta import analyze
from repro.ta.stats import TraceStatistics
from repro.workloads import StreamingPipelineWorkload, WorkloadError, run_workload


def test_signal_spe_delivers_bits():
    machine = CellMachine(CellConfig(n_spes=2, main_memory_size=1 << 22))
    rt = Runtime(machine)

    def sender(spu, argp, envp):
        yield from spu.signal_spe(1, 0b110, which=1)
        return 0

    def receiver(spu, argp, envp):
        value = yield from spu.read_signal(1)
        return value

    def main():
        a = yield from rt.context_create(spe_id=0)
        b = yield from rt.context_create(spe_id=1)
        yield from a.load(SpeProgram("tx", sender))
        yield from b.load(SpeProgram("rx", receiver))
        rx_proc = b.run_async()
        yield from a.run()
        code = yield rx_proc
        return code

    out = {}

    def wrap():
        out["code"] = yield from main()

    machine.spawn(wrap())
    machine.run()
    assert out["code"] == 0b110


def test_signal_spe_validates_register():
    machine = CellMachine(CellConfig(n_spes=1, main_memory_size=1 << 22))
    rt = Runtime(machine)

    def prog(spu, argp, envp):
        try:
            yield from spu.signal_spe(0, 1, which=5)
        except ValueError:
            return 1
        return 0

    def main():
        ctx = yield from rt.context_create()
        yield from ctx.load(SpeProgram("bad", prog))
        return (yield from ctx.run())

    out = {}

    def wrap():
        out["code"] = yield from main()

    machine.spawn(wrap())
    machine.run()
    assert out["code"] == 1


def test_signal_send_traced():
    machine = CellMachine(CellConfig(n_spes=2, main_memory_size=1 << 26))
    hooks = PdtHooks(TraceConfig())
    rt = Runtime(machine, hooks=hooks)

    def sender(spu, argp, envp):
        yield from spu.signal_spe(1, 1)
        return 0

    def receiver(spu, argp, envp):
        yield from spu.read_signal(1)
        return 0

    def main():
        a = yield from rt.context_create(spe_id=0)
        b = yield from rt.context_create(spe_id=1)
        yield from a.load(SpeProgram("tx", sender))
        yield from b.load(SpeProgram("rx", receiver))
        rx = b.run_async()
        yield from a.run()
        yield rx

    machine.spawn(main())
    machine.run()
    trace = hooks.to_trace()
    sends = [r for r in trace.records_for_spe(0) if r.kind == "signal_send"]
    assert len(sends) == 1
    assert sends[0].fields == {"target": 1, "which": 1, "bits": 1}


def test_bottleneck_stage_param():
    workload = StreamingPipelineWorkload(
        stages=3, blocks=6, block_bytes=1024, compute_per_block=1000,
        bottleneck_stage=1, bottleneck_factor=4,
    )
    assert workload.stage_compute_cycles(0) == 1000
    assert workload.stage_compute_cycles(1) == 4000
    assert "bottleneck1" in workload.name
    result = run_workload(workload, TraceConfig())
    assert result.verified
    stats = TraceStatistics.from_model(analyze(result.trace()))
    busiest = max(stats.per_spe, key=lambda s: stats.per_spe[s].utilization)
    assert busiest == 1


def test_bottleneck_stage_validation():
    with pytest.raises(WorkloadError, match="bottleneck_stage"):
        StreamingPipelineWorkload(stages=3, bottleneck_stage=3)
