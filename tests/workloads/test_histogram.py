"""Histogram reduction workload tests."""

import pytest

from repro.pdt import TraceConfig
from repro.workloads import HistogramWorkload, WorkloadError, run_workload


def test_atomic_merge_produces_exact_histogram():
    result = run_workload(
        HistogramWorkload(samples=16 * 1024, bins=64, n_spes=4, merge="atomic")
    )
    assert result.verified


def test_ppe_merge_produces_exact_histogram():
    result = run_workload(
        HistogramWorkload(samples=16 * 1024, bins=64, n_spes=4, merge="ppe")
    )
    assert result.verified


def test_atomic_merge_contends_on_lock_lines():
    workload = HistogramWorkload(samples=16 * 1024, bins=32, n_spes=4)
    result = run_workload(workload)
    assert result.verified
    station = result.machine.reservations
    # 4 SPEs each merge 1 line: at least 4 attempts; contention shows
    # as extra retries on a single shared line.
    assert station.putllc_attempts >= 4
    assert station.getllar_count >= 4


def test_ppe_merge_uses_no_atomics():
    result = run_workload(
        HistogramWorkload(samples=16 * 1024, bins=64, n_spes=2, merge="ppe")
    )
    assert result.machine.reservations.putllc_attempts == 0


def test_histogram_traced_still_exact():
    result = run_workload(
        HistogramWorkload(samples=16 * 1024, bins=64, n_spes=2),
        TraceConfig(),
    )
    assert result.verified
    kinds = {r.kind for r in result.trace().records_for_spe(0)}
    assert "atomic_getllar" in kinds
    assert "atomic_putllc" in kinds


def test_histogram_single_spe():
    result = run_workload(HistogramWorkload(samples=8192, bins=32, n_spes=1))
    assert result.verified


def test_histogram_validation():
    with pytest.raises(WorkloadError, match="merge"):
        HistogramWorkload(merge="psychic")
    with pytest.raises(WorkloadError, match="bins"):
        HistogramWorkload(bins=33)
    with pytest.raises(WorkloadError, match="multiple of block_bytes"):
        HistogramWorkload(samples=5000)
    with pytest.raises(WorkloadError, match="divide evenly"):
        HistogramWorkload(samples=12 * 1024, block_bytes=4096, n_spes=2)


def test_histogram_deterministic():
    a = run_workload(HistogramWorkload(samples=8192, bins=32, n_spes=2))
    b = run_workload(HistogramWorkload(samples=8192, bins=32, n_spes=2))
    assert a.elapsed_cycles == b.elapsed_cycles
