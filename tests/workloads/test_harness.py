"""Harness and overhead-measurement tests."""

import pytest

from repro.cell import CellConfig
from repro.pdt import TraceConfig
from repro.workloads import (
    EventCostMicrobench,
    MatmulWorkload,
    MonteCarloWorkload,
    SpmvWorkload,
    WorkloadError,
    measure_overhead,
    run_stats_row,
    run_workload,
)
from repro.workloads.micro import RECORDS_PER_OP


def test_run_result_reports_mode():
    untraced = run_workload(MonteCarloWorkload(samples_per_spe=500, n_spes=1))
    traced = run_workload(
        MonteCarloWorkload(samples_per_spe=500, n_spes=1), TraceConfig()
    )
    assert not untraced.traced
    assert traced.traced
    with pytest.raises(WorkloadError):
        untraced.trace()
    assert traced.trace().n_records > 0
    assert "ok" in repr(traced)


def test_harness_rejects_too_small_machine():
    with pytest.raises(WorkloadError, match="needs 4 SPEs"):
        run_workload(
            MonteCarloWorkload(n_spes=4),
            cell_config=CellConfig(n_spes=2, main_memory_size=1 << 26),
        )


def test_measure_overhead_basic_shape():
    result = measure_overhead(
        lambda: MonteCarloWorkload(samples_per_spe=2000, n_spes=2)
    )
    assert result.traced_cycles > result.untraced_cycles
    assert 0 < result.overhead_percent < 20
    assert result.records > 0
    row = result.row()
    assert row["workload"] == "montecarlo"
    assert row["overhead_percent"] == pytest.approx(result.overhead_percent, abs=0.01)


def test_overhead_scales_with_event_rate():
    """More traced events per unit work -> more overhead (paper claim)."""
    light = measure_overhead(
        lambda: EventCostMicrobench(op="compute", repetitions=100,
                                    filler_cycles=2000)
    )
    heavy = measure_overhead(
        lambda: EventCostMicrobench(op="marker", repetitions=100,
                                    filler_cycles=2000)
    )
    assert heavy.overhead_fraction > light.overhead_fraction


def test_micro_records_per_op_accurate():
    for op, per_rep in RECORDS_PER_OP.items():
        if op == "compute":
            continue
        reps = 50
        result = run_workload(
            EventCostMicrobench(op=op, repetitions=reps), TraceConfig()
        )
        assert result.verified
        trace = result.trace()
        op_records = [
            r for r in trace.records_for_spe(0)
            if r.kind not in ("sync", "spe_entry", "spe_exit")
        ]
        if op == "mailbox":
            # +2 for the final done-mailbox write
            expected = per_rep * reps + 2
        elif op in ("dma", "signal", "marker"):
            expected = per_rep * reps + 2  # + done mailbox begin/end
        assert len(op_records) == expected, op


def test_micro_unknown_op_rejected():
    with pytest.raises(WorkloadError, match="unknown op"):
        EventCostMicrobench(op="teleport")


def test_overhead_result_zero_baseline_guard():
    from repro.workloads.harness import OverheadResult

    result = OverheadResult("x", 0, 10, 1, 1, 1)
    assert result.overhead_fraction == 0.0


# ----------------------------------------------------------------------
# seed plumbing
# ----------------------------------------------------------------------
def test_seed_reaches_workload_and_result():
    workload = SpmvWorkload(n=256, density=0.05, n_spes=1)
    result = run_workload(workload, seed=1234)
    assert workload.seed == 1234
    assert result.seed == 1234
    # Without an explicit seed the workload's own default is recorded.
    default = SpmvWorkload(n=256, density=0.05, n_spes=1)
    assert run_workload(default).seed == default.seed


def test_same_seed_reproduces_different_seed_diverges():
    def run(seed):
        workload = SpmvWorkload(n=512, density=0.05, n_spes=1)
        result = run_workload(workload, TraceConfig(), seed=seed)
        assert result.verified
        # The matrix fingerprint proves the harness-passed seed (set
        # after construction) actually drove setup's rng.
        fingerprint = workload.matrix.indices.tobytes()
        return result.elapsed_cycles, result.trace().n_records, fingerprint

    assert run(7) == run(7)
    # Different seeds sample different sparsity patterns (this is the
    # corpus noise model's substrate).
    assert run(7)[2] != run(8)[2]


def test_run_stats_row_shapes():
    traced = run_workload(
        MonteCarloWorkload(samples_per_spe=500, n_spes=1),
        TraceConfig(),
        seed=5,
    )
    row = run_stats_row(traced, trace_bytes=123)
    assert row["seed"] == 5
    assert row["verified"] is True
    assert row["trace_bytes"] == 123
    assert row["records"] > 0 and row["flushes"] >= 0
    untraced = run_workload(MonteCarloWorkload(samples_per_spe=500, n_spes=1))
    row = run_stats_row(untraced)
    assert "records" not in row and row["trace_bytes"] == 0


def test_measure_overhead_records_seed():
    result = measure_overhead(
        lambda: MonteCarloWorkload(samples_per_spe=500, n_spes=1), seed=99
    )
    assert result.seed == 99
    assert result.row()["seed"] == 99
