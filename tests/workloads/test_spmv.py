"""SpMV workload tests."""

import numpy as np
import pytest

from repro.pdt import TraceConfig
from repro.ta import analyze
from repro.ta.stats import TraceStatistics
from repro.workloads import SpmvWorkload, WorkloadError, run_workload


def test_spmv_matches_scipy():
    result = run_workload(
        SpmvWorkload(n=1024, density=0.02, rows_per_block=128, n_spes=2)
    )
    assert result.verified


def test_spmv_denser_matrix_still_exact():
    result = run_workload(
        SpmvWorkload(n=512, density=0.2, rows_per_block=128, n_spes=2)
    )
    assert result.verified


def test_spmv_single_spe():
    result = run_workload(
        SpmvWorkload(n=512, density=0.05, rows_per_block=256, n_spes=1)
    )
    assert result.verified


def test_spmv_block_assignment_covers_all():
    workload = SpmvWorkload(n=2048, rows_per_block=256, n_spes=3)
    flat = sorted(
        b for blocks in workload.block_assignments() for b in blocks
    )
    assert flat == list(range(8))


def test_spmv_validation():
    with pytest.raises(WorkloadError, match="not divisible"):
        SpmvWorkload(n=1000, rows_per_block=256)
    with pytest.raises(WorkloadError, match="density"):
        SpmvWorkload(density=0.9)
    with pytest.raises(WorkloadError, match="LS budget"):
        SpmvWorkload(n=32768, rows_per_block=1024)


def test_spmv_traced_shows_variable_dma_sizes():
    """Irregular nonzero counts -> per-block DMA sizes vary."""
    result = run_workload(
        SpmvWorkload(n=1024, density=0.02, rows_per_block=128, n_spes=2),
        TraceConfig(),
    )
    assert result.verified
    sizes = {
        r.fields["size"]
        for r in result.trace().records_for_spe(0)
        if r.kind == "mfc_get" and r.fields["tag"] == 0
    }
    assert len(sizes) > 2  # genuinely irregular transfers


def test_spmv_deterministic():
    a = run_workload(SpmvWorkload(n=512, rows_per_block=128, n_spes=2))
    b = run_workload(SpmvWorkload(n=512, rows_per_block=128, n_spes=2))
    assert a.elapsed_cycles == b.elapsed_cycles
