"""Mandelbrot scheduling and LS-to-LS pipeline tests."""

import pytest

from repro.pdt import TraceConfig
from repro.ta import analyze, analyze_load_balance
from repro.ta.stats import TraceStatistics
from repro.workloads import (
    MandelbrotWorkload,
    StreamingPipelineWorkload,
    WorkloadError,
    run_workload,
)


# ----------------------------------------------------------------------
# mandelbrot
# ----------------------------------------------------------------------
def test_mandelbrot_static_renders_exactly():
    result = run_workload(
        MandelbrotWorkload(width=64, height=16, max_iterations=32,
                           n_spes=2, schedule="static")
    )
    assert result.verified


def test_mandelbrot_dynamic_renders_exactly():
    result = run_workload(
        MandelbrotWorkload(width=64, height=16, max_iterations=32,
                           n_spes=2, schedule="dynamic")
    )
    assert result.verified


def test_mandelbrot_every_row_rendered_once_dynamic():
    workload = MandelbrotWorkload(width=64, height=20, max_iterations=32,
                                  n_spes=3, schedule="dynamic")
    run_workload(workload)
    assert sum(workload.rows_done_by.values()) == 20
    # Dynamic queue gives everyone work.
    assert all(done > 0 for done in workload.rows_done_by.values())


def test_mandelbrot_dynamic_beats_static_makespan():
    """The fractal's row costs are skewed; the queue fixes the split."""

    def run(schedule):
        workload = MandelbrotWorkload(
            width=128, height=32, max_iterations=96, n_spes=4, schedule=schedule
        )
        result = run_workload(workload)
        assert result.verified
        return result.elapsed_cycles

    static = run("static")
    dynamic = run("dynamic")
    assert dynamic < static * 0.9


def test_mandelbrot_traced_load_balance_diagnosis():
    def stats_for(schedule):
        workload = MandelbrotWorkload(
            width=128, height=32, max_iterations=96, n_spes=4, schedule=schedule
        )
        result = run_workload(workload, TraceConfig.dma_only())
        assert result.verified
        return TraceStatistics.from_model(analyze(result.trace()))

    static_report = analyze_load_balance(stats_for("static"))
    dynamic_report = analyze_load_balance(stats_for("dynamic"))
    assert static_report.imbalance_factor > dynamic_report.imbalance_factor
    assert dynamic_report.imbalance_factor < 1.25


def test_mandelbrot_validation():
    with pytest.raises(WorkloadError, match="schedule"):
        MandelbrotWorkload(schedule="psychic")
    with pytest.raises(WorkloadError, match="16-aligned"):
        MandelbrotWorkload(width=30)


def test_static_ranges_cover_all_rows():
    workload = MandelbrotWorkload(width=64, height=50, n_spes=4)
    ranges = workload.static_ranges()
    covered = []
    for start, end in ranges:
        covered.extend(range(start, end))
    assert covered == list(range(50))


# ----------------------------------------------------------------------
# LS-to-LS pipeline
# ----------------------------------------------------------------------
def test_ls_pipeline_transforms_correctly():
    result = run_workload(
        StreamingPipelineWorkload(
            stages=3, blocks=8, block_bytes=1024, via_ls=True
        )
    )
    assert result.verified


def test_ls_pipeline_faster_than_through_memory():
    def run(via_ls):
        result = run_workload(
            StreamingPipelineWorkload(
                stages=4, blocks=16, block_bytes=4096,
                compute_per_block=1000, via_ls=via_ls,
            )
        )
        assert result.verified
        return result.elapsed_cycles

    through_memory = run(False)
    direct = run(True)
    assert direct < through_memory


def test_ls_pipeline_moves_less_main_memory_traffic():
    def eib_trace(via_ls):
        result = run_workload(
            StreamingPipelineWorkload(
                stages=3, blocks=8, block_bytes=4096, via_ls=via_ls
            )
        )
        machine = result.machine
        # Count app DMA commands that touched main storage.
        touched_dram = 0
        for spe in machine.spes:
            for cmd in spe.mfc.completed_commands:
                if not machine.address_map.is_local_store(cmd.effective_addr):
                    touched_dram += 1
        return touched_dram

    assert eib_trace(True) < eib_trace(False)


def test_ls_pipeline_inbox_fit_validation():
    with pytest.raises(WorkloadError, match="inbox ring"):
        StreamingPipelineWorkload(
            stages=2, block_bytes=16 * 1024, depth=8, via_ls=True
        )


def test_ls_pipeline_traced_still_correct():
    result = run_workload(
        StreamingPipelineWorkload(
            stages=3, blocks=8, block_bytes=1024, via_ls=True
        ),
        TraceConfig(),
    )
    assert result.verified
