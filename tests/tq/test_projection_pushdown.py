"""Projection pushdown at the query layer: results never change,
work does.

The plan's required-column set must (a) be derived correctly per
terminal, (b) leave every differential pairing byte-identical —
masked vs ``REPRO_FULL_DECODE=1``, vectorized vs
``REPRO_SCALAR_CODEC=1``, v6 vs a ``REPRO_TRACE_VERSION=5`` rewrite —
and (c) actually avoid materializing the columns a narrow query never
reads, which is the whole point of the optimization and what the T13
benchmark measures end to end.
"""

import os

import pytest

from repro.pdt import TraceConfig, open_trace, write_trace
from repro.pdt.store import EventSource, LazyChunk
from repro.tq import Query
from repro.workloads import MatmulWorkload, run_workload


class env:
    """Set environment switches for the ``with`` block."""

    def __init__(self, **values):
        self._values = values
        self._prior = {}

    def __enter__(self):
        for name, value in self._values.items():
            self._prior[name] = os.environ.get(name)
            os.environ[name] = value

    def __exit__(self, *exc_info):
        for name, prior in self._prior.items():
            if prior is None:
                del os.environ[name]
            else:
                os.environ[name] = prior


@pytest.fixture(scope="module")
def trace_paths(tmp_path_factory):
    """The same workload written as v6 (default) and as v5."""
    result = run_workload(
        MatmulWorkload(n=96, tile=32, n_spes=3),
        TraceConfig(buffer_bytes=2048),
    )
    tmp = tmp_path_factory.mktemp("pushdown")
    v6 = str(tmp / "m-v6.pdt")
    write_trace(result.trace_source(), v6)
    v5 = str(tmp / "m-v5.pdt")
    with env(REPRO_TRACE_VERSION="5"):
        write_trace(result.trace_source(), v5)
    return v6, v5


# ----------------------------------------------------------------------
# required-column derivation
# ----------------------------------------------------------------------
def _plan(query):
    return query.plan()


def test_count_needs_only_side_and_code():
    plan = _plan(Query(None).where(event="mfc_getl"))
    assert plan.required_columns("count") == frozenset({"side", "code"})


def test_spe_clause_pulls_core():
    plan = _plan(Query(None).where(spe=1))
    assert plan.required_columns("count") == frozenset(
        {"side", "code", "core"}
    )


def test_time_placement_pulls_core():
    # Clock correlation is per-core: any placed time needs the core
    # column, whether the time came from a window or a bucket key.
    windowed = _plan(Query(None).where(t0=0, t1=10))
    assert "core" in windowed.required_columns("count")
    bucketed = _plan(
        Query(None).groupby("bucket", time_bucket=1000).agg(n="count")
    )
    assert "core" in bucketed.required_columns("fold")


def test_time_window_pulls_raw_ts():
    plan = _plan(Query(None).where(t0=0, t1=10))
    assert "raw_ts" in plan.required_columns("count")
    assert "values" not in plan.required_columns("count")


def test_field_clause_pulls_values():
    plan = _plan(Query(None).where_field("size", lo=1024))
    assert "values" in plan.required_columns("count")
    assert "raw_ts" not in plan.required_columns("count")


def test_fold_terminal_adds_group_and_agg_columns():
    plan = _plan(
        Query(None)
        .groupby("kind")
        .agg(n="count", total=("sum", "size"))
    )
    needed = plan.required_columns("fold")
    assert "values" in needed  # the "size" aggregation column
    assert "raw_ts" not in needed and "seq" not in needed
    assert "core" not in needed  # "kind" groups on (side, code) alone
    bucketed = _plan(
        Query(None).groupby("bucket", time_bucket=1000).agg(n="count")
    )
    assert "raw_ts" in bucketed.required_columns("fold")


def test_records_terminal_uses_the_projection():
    narrow = _plan(Query(None).project("side", "core", "kind"))
    assert narrow.required_columns("records") == frozenset(
        {"side", "code", "core"}
    )
    wide = _plan(Query(None).project("time", "seq", "size"))
    needed = wide.required_columns("records")
    assert {"raw_ts", "seq", "values"} <= needed
    # The default projection includes time and seq but no payload.
    default = _plan(Query(None)).required_columns("records")
    assert "raw_ts" in default and "seq" in default
    assert "values" not in default


# ----------------------------------------------------------------------
# differential matrix over real files
# ----------------------------------------------------------------------
def _answers(path):
    with open_trace(path) as source:
        n = Query(source).where(event="mfc_getl").count()
    with open_trace(path) as source:
        by_kind = (
            Query(source)
            .where(side=1)
            .groupby("kind")
            .agg(n="count", bytes=("sum", "size"))
            .run()
        )
    with open_trace(path) as source:
        bucketed = (
            Query(source)
            .groupby("bucket", time_bucket=100_000)
            .agg(n="count", t_max=("max", "time"))
            .run()
        )
    with open_trace(path) as source:
        records = list(
            Query(source).where(event="mfc_putl").records()
        )
    return n, by_kind, bucketed, records


MATRIX = [
    {},
    {"REPRO_FULL_DECODE": "1"},
    {"REPRO_SCALAR_CODEC": "1"},
    {"REPRO_SCALAR_CODEC": "1", "REPRO_FULL_DECODE": "1"},
]


def test_pushdown_differential_matrix(trace_paths):
    v6, v5 = trace_paths
    baseline = _answers(v6)
    assert baseline[0] > 0 and baseline[1]
    for switches in MATRIX:
        with env(**switches):
            assert _answers(v6) == baseline, switches
            assert _answers(v5) == baseline, switches


# ----------------------------------------------------------------------
# the decode actually narrows
# ----------------------------------------------------------------------
class SpySource(EventSource):
    """Pass-through source that records every chunk it serves."""

    def __init__(self, base):
        self.base = base
        self.header = base.header
        self.seen = []

    def _record(self, chunks):
        for chunk in chunks:
            self.seen.append(chunk)
            yield chunk

    def iter_chunks(self):
        return self._record(self.base.iter_chunks())

    def iter_chunks_selected(self, keep):
        return self._record(self.base.iter_chunks_selected(keep))

    def iter_chunks_projected(self, keep, columns):
        return self._record(
            self.base.iter_chunks_projected(keep, columns)
        )

    def zone_maps(self, correlator=None):
        return self.base.zone_maps(correlator)

    def scan_sync(self):
        return self.base.scan_sync()

    @property
    def n_records(self):
        return self.base.n_records


#: The spy tests below assert that columns stay *deferred*, which is
#: exactly what the differential hatch disables — the rest of this
#: file (and the whole suite) still runs under REPRO_FULL_DECODE=1.
_needs_deferral = pytest.mark.skipif(
    bool(os.environ.get("REPRO_FULL_DECODE")),
    reason="asserts columns stay deferred; the hatch decodes everything",
)


@_needs_deferral
def test_narrow_count_never_materializes_payload_columns(trace_paths):
    v6, __ = trace_paths
    with open_trace(v6) as source:
        spy = SpySource(source)
        assert Query(spy).where(event="mfc_getl").count() > 0
        assert spy.seen, "the scan served no chunks"
        for chunk in spy.seen:
            assert isinstance(chunk, LazyChunk)
            for name in ("core", "seq", "raw_ts", "values"):
                assert not chunk.materialized(name), name


@_needs_deferral
def test_field_sum_materializes_values_but_not_seq(trace_paths):
    v6, __ = trace_paths
    with open_trace(v6) as source:
        spy = SpySource(source)
        rows = (
            Query(spy)
            .where(event="mfc_getl")
            .groupby("kind")
            .agg(bytes=("sum", "size"))
            .run()
        )
        assert rows and rows[0]["bytes"] > 0
        assert spy.seen
        for chunk in spy.seen:
            assert isinstance(chunk, LazyChunk)
            assert not chunk.materialized("seq")
            assert not chunk.materialized("raw_ts")
            assert not chunk.materialized("core")


def test_full_decode_hatch_disables_narrowing(trace_paths):
    v6, __ = trace_paths
    with env(REPRO_FULL_DECODE="1"):
        with open_trace(v6) as source:
            spy = SpySource(source)
            assert Query(spy).where(event="mfc_getl").count() > 0
            assert spy.seen
            assert not any(
                isinstance(chunk, LazyChunk) for chunk in spy.seen
            )
