"""Predicate tests: selector resolution, refinement, both granularities."""

import pytest

from repro.pdt.events import SIDE_PPE, SIDE_SPE, code_for_kind
from repro.pdt.index import ZoneMap
from repro.tq import Predicate, events_matching

MFC_GET = code_for_kind(SIDE_SPE, "mfc_get").code
SYNC = code_for_kind(SIDE_SPE, "sync").code


def test_events_matching_by_name_and_code():
    by_name = events_matching("mfc_get")
    assert by_name == frozenset({(SIDE_SPE, MFC_GET)})
    assert events_matching(MFC_GET) >= by_name
    # Kind names that exist on both sides resolve to both specs.
    markers = events_matching("user_marker")
    assert len(markers) >= 1


def test_events_matching_rejects_nonsense():
    with pytest.raises(ValueError, match="unknown event kind"):
        events_matching("warp_drive")
    with pytest.raises(ValueError, match="no event has code"):
        events_matching(0x7FFF)
    with pytest.raises(ValueError, match="not an event selector"):
        events_matching(True)


def test_refine_intersects_not_widens():
    p = Predicate().refine(t0=100, t1=900, spe=[1, 2])
    q = p.refine(t0=50, t1=500, spe=2)
    assert (q.t_min, q.t_max) == (100, 500)
    assert q.spes == frozenset({2})
    e = Predicate().refine(event=["mfc_get", "mfc_put"]).refine(event="mfc_get")
    assert e.events == frozenset({(SIDE_SPE, MFC_GET)})


def test_contradictory_sides_select_nothing():
    p = Predicate().refine(side=SIDE_SPE).refine(side=SIDE_PPE)
    assert p.events == frozenset()
    assert not p.matches_static(SIDE_SPE, MFC_GET, 0)
    assert not p.matches_static(SIDE_PPE, 0x01, 0)
    # And no zone admits it (empty event set matches no code).
    zone = ZoneMap(n_records=5, spe_bitmap=1, has_ppe=True,
                   spe_codes=1 << MFC_GET, ppe_codes=0b10)
    assert not p.admits(zone)


def test_matches_static():
    p = Predicate().refine(spe=1)
    assert p.matches_static(SIDE_SPE, MFC_GET, 1)
    assert not p.matches_static(SIDE_SPE, MFC_GET, 0)
    assert not p.matches_static(SIDE_PPE, MFC_GET, 1)  # spe implies SPE side
    e = Predicate().refine(event="mfc_get")
    assert e.matches_static(SIDE_SPE, MFC_GET, 3)
    assert not e.matches_static(SIDE_SPE, SYNC, 3)


def test_matches_time_inclusive_bounds():
    p = Predicate().refine(t0=10, t1=20)
    assert p.matches_time(10) and p.matches_time(20)
    assert not p.matches_time(9) and not p.matches_time(21)
    assert Predicate().matches_time(-(10**18))


def test_matches_fields():
    p = Predicate().refine_field("size", lo=1024)
    get_values = (2, 4096, 0, 128, 0, 0)  # mfc_get: tag first, size second
    assert p.matches_fields(SIDE_SPE, MFC_GET, get_values)
    assert not p.matches_fields(SIDE_SPE, MFC_GET, (2, 512, 0, 128, 0, 0))
    # A record type without the field never matches.
    assert not p.matches_fields(SIDE_SPE, SYNC, (12345,))
    eq = Predicate().refine_field("tag", eq=2)
    assert eq.matches_fields(SIDE_SPE, MFC_GET, get_values)
    assert not eq.matches_fields(SIDE_SPE, MFC_GET, (3,) + get_values[1:])


# ----------------------------------------------------------------------
# chunk granularity
# ----------------------------------------------------------------------
def zone(**kw):
    base = dict(n_records=10, has_time=True, t_min=1000, t_max=2000,
                spe_bitmap=0b0110, has_ppe=False,
                spe_codes=(1 << MFC_GET) | (1 << SYNC), ppe_codes=0)
    base.update(kw)
    return ZoneMap(**base)


def test_admits_time_windows():
    p = Predicate()
    assert p.refine(t0=1500).admits(zone())
    assert p.refine(t1=1500).admits(zone())
    assert not p.refine(t0=2001).admits(zone())
    assert not p.refine(t1=999).admits(zone())
    # Zones without time bounds always admit time windows.
    assert p.refine(t0=10**12).admits(zone(has_time=False))


def test_admits_spe_and_side():
    assert Predicate().refine(spe=1).admits(zone())
    assert not Predicate().refine(spe=0).admits(zone())
    assert not Predicate().refine(spe=40).admits(zone())  # beyond bitmap
    assert Predicate().refine(spe=40).admits(zone(spe_overflow=True))
    assert not Predicate().refine(side=SIDE_PPE).admits(zone())
    assert Predicate().refine(side=SIDE_PPE).admits(zone(has_ppe=True))
    assert not Predicate().refine(side=SIDE_SPE).admits(
        zone(spe_bitmap=0, has_ppe=True)
    )


def test_admits_events():
    assert Predicate().refine(event="mfc_get").admits(zone())
    assert not Predicate().refine(event="mfc_put").admits(zone())
    assert Predicate().refine(event="mfc_put").admits(zone(code_overflow=True))
    # Any member of the selector set is enough.
    assert Predicate().refine(event=["mfc_put", "sync"]).admits(zone())


def test_empty_zone_admits_nothing():
    assert not Predicate().admits(zone(n_records=0))
