"""Query pipeline tests over real traced workloads.

One traced run serves every test: the same trace as an in-memory
ConcatSource, a v4 file (zone maps in the trailer), and a v3 file
(no index, full scan).  The pipeline must answer identically over all
three — the file-backed v4 path just reads less.
"""

import dataclasses

import pytest

from repro.pdt import ClockCorrelator, TraceConfig, open_trace, write_trace
from repro.pdt.events import SIDE_PPE, SIDE_SPE, spec_for_code
from repro.pdt.format import VERSION_CRC, VERSION_INDEXED
from repro.tq import (
    IndexedSource,
    PPE_GROUP,
    Predicate,
    Query,
    nearest_rank,
    open_indexed,
)

from tests.pdt.util import dma_loop_program, run_workload, traced_machine


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    machine, rt, hooks = traced_machine(TraceConfig(buffer_bytes=1024))
    run_workload(machine, rt, dma_loop_program(iterations=10), n_spes=2)
    source = hooks.event_source()
    tmp = tmp_path_factory.mktemp("tq")
    v4 = str(tmp / "t4.pdt")
    source.header = dataclasses.replace(source.header, version=VERSION_INDEXED)
    write_trace(source, v4)
    v3 = str(tmp / "t3.pdt")
    source.header = dataclasses.replace(source.header, version=VERSION_CRC)
    write_trace(source, v3)
    source.header = dataclasses.replace(source.header, version=VERSION_INDEXED)
    return source, v4, v3


def all_sources(traced):
    memory, v4, v3 = traced
    return {
        "memory": memory,
        "v4": open_trace(v4),
        "v3": open_trace(v3),
    }


def brute_records(source, keep, projection):
    """Reference: full scan + explicit filtering, no tq machinery."""
    correlator = ClockCorrelator(source)
    out = []
    for chunk in source.iter_chunks():
        for i in range(len(chunk)):
            side, code, core = chunk.side[i], chunk.code[i], chunk.core[i]
            time = correlator.place_value(side, core, chunk.raw_ts[i])
            values = chunk.values[chunk.val_off[i]:chunk.val_off[i + 1]]
            if not keep(time, side, code, core, values):
                continue
            spec = spec_for_code(side, code)
            row = {
                "time": time, "side": side, "code": code, "core": core,
                "seq": chunk.seq[i], "raw_ts": chunk.raw_ts[i],
                "kind": str(spec.kind),
                "spe": core if side == SIDE_SPE else PPE_GROUP,
            }
            for name, value in zip(spec.fields, values):
                row.setdefault(name, value)
            out.append(tuple(row.get(c) for c in projection))
    return out


def test_count_matches_brute_force_on_every_source(traced):
    for name, source in all_sources(traced).items():
        expected = len(brute_records(source, lambda *a: True, ("seq",)))
        assert Query(source).count() == expected, name


def test_spe_filter_identical_across_sources(traced):
    projection = ("time", "side", "core", "code", "seq")
    results = {}
    for name, source in all_sources(traced).items():
        query = Query(source).where(spe=1).project(*projection)
        results[name] = list(query.records())
        assert results[name] == brute_records(
            source,
            lambda t, side, code, core, v: side == SIDE_SPE and core == 1,
            projection,
        ), name
    assert results["memory"] == results["v4"] == results["v3"]


def test_time_window_identical_across_sources(traced):
    memory = traced[0]
    correlator = ClockCorrelator(memory)
    times = [
        correlator.place_value(c.side[i], c.core[i], c.raw_ts[i])
        for c in memory.iter_chunks() for i in range(len(c))
    ]
    lo = sorted(times)[len(times) // 4]
    hi = sorted(times)[3 * len(times) // 4]
    projection = ("time", "side", "core", "code", "seq")
    results = {}
    for name, source in all_sources(traced).items():
        results[name] = list(
            Query(source).where(t0=lo, t1=hi).project(*projection).records()
        )
        assert results[name] == brute_records(
            source, lambda t, *a: lo <= t <= hi, projection
        ), name
    assert results["memory"] == results["v4"] == results["v3"]


def test_event_and_field_filters(traced):
    source = traced[0]
    sizes = [
        row[0]
        for row in Query(source).where(event="mfc_get").project("size").records()
    ]
    assert sizes and all(s == 1024 for s in sizes)
    assert (
        Query(source).where(event="mfc_get").where_field("size", lo=2048).count()
        == 0
    )
    assert (
        Query(source)
        .where(event="mfc_get")
        .where_field("size", eq=1024)
        .count()
        == len(sizes)
    )
    # Payload filters on a field the record type lacks match nothing.
    assert Query(source).where(event="sync").where_field("size", lo=0).count() == 0


def test_projection_defaults_and_missing_fields(traced):
    source = traced[0]
    rows = list(Query(source).where(event="spe_entry").records())
    assert rows and all(len(row) == 5 for row in rows)  # default projection
    assert all(row[3] == "spe_entry" for row in rows)
    # Unknown payload columns project as None rather than failing.
    rows = list(Query(source).where(event="sync").project("tb_raw", "size").records())
    assert rows and all(row[1] is None and row[0] is not None for row in rows)


def test_groupby_and_reductions(traced):
    source = traced[0]
    rows = (
        Query(source)
        .where(event="mfc_get")
        .groupby("spe")
        .agg(
            n="count", total=("sum", "size"), lo=("min", "size"),
            hi=("max", "size"), mid=("p50", "size"), tail=("p99", "size"),
            avg=("mean", "size"),
        )
        .run()
    )
    assert [row["spe"] for row in rows] == [0, 1]
    for row in rows:
        assert row["total"] == row["n"] * 1024
        assert row["lo"] == row["hi"] == row["mid"] == row["tail"] == 1024
        assert row["avg"] == pytest.approx(1024.0)


def test_groupby_side_and_kind_covers_everything(traced):
    source = traced[0]
    rows = Query(source).groupby("side", "kind").agg(n="count").run()
    assert sum(row["n"] for row in rows) == source.n_records
    assert rows == sorted(rows, key=lambda r: (r["side"], r["kind"]))
    assert any(row["side"] == SIDE_PPE for row in rows)


def test_time_bucket_grouping(traced):
    source = traced[0]
    bucket = 100_000
    rows = (
        Query(source)
        .groupby("bucket", time_bucket=bucket)
        .agg(n="count", t_min=("min", "time"), t_max=("max", "time"))
        .run()
    )
    assert sum(row["n"] for row in rows) == source.n_records
    for row in rows:
        assert row["t_min"] // bucket == row["bucket"]
        assert row["t_max"] // bucket == row["bucket"]
    assert [row["bucket"] for row in rows] == sorted(r["bucket"] for r in rows)


def test_empty_selection(traced):
    source = traced[0]
    none = Query(source).where(spe=7)  # no such SPE in a 2-SPE run
    assert none.count() == 0
    assert list(none.records()) == []
    rows = none.agg(n="count", hi=("max", "size")).run()
    assert rows == [{"n": 0, "hi": None}]
    assert none.groupby("spe").agg(n="count").run() == []


def test_builder_validation(traced):
    source = traced[0]
    with pytest.raises(ValueError, match="unknown group key"):
        Query(source).groupby("colour")
    with pytest.raises(ValueError, match="requires time_bucket"):
        Query(source).groupby("bucket")
    with pytest.raises(ValueError, match="unknown aggregation op"):
        Query(source).agg(x=("median", "size"))
    with pytest.raises(ValueError, match="must be 'count'"):
        Query(source).agg(x=42)
    with pytest.raises(ValueError, match="unknown event kind"):
        Query(source).where(event="warp_drive")


def test_nearest_rank():
    assert nearest_rank([1, 2, 3, 4], 50) == 2
    assert nearest_rank([1, 2, 3, 4], 99) == 4
    assert nearest_rank([1, 2, 3, 4], 100) == 4
    assert nearest_rank([7], 50) == 7
    with pytest.raises(ValueError):
        nearest_rank([], 50)


# ----------------------------------------------------------------------
# pruning behaviour
# ----------------------------------------------------------------------
def test_v4_query_prunes_chunks(traced):
    __, v4, __v3 = traced
    source = open_trace(v4)
    assert source.n_chunks > 1
    query = Query(source).where(spe=1)
    query.count()
    assert query.stats is not None and query.stats.indexed
    assert query.stats.total_chunks == source.n_chunks
    assert query.stats.scanned_chunks < query.stats.total_chunks
    assert "pruned" in query.stats.note()


def test_unindexed_query_reports_full_scan(traced):
    __, __v4, v3 = traced
    source = open_trace(v3)
    query = Query(source).where(spe=1)
    query.count()
    assert query.stats is not None and not query.stats.indexed
    assert query.stats.scanned_chunks == query.stats.total_chunks == source.n_chunks
    assert "full scan" in query.stats.note()


def test_in_memory_sources_prune_too(traced):
    memory = traced[0]
    pruned = IndexedSource(memory, Predicate().refine(spe=1))
    stats = pruned.stats
    assert stats.indexed and stats.scanned_chunks < stats.total_chunks
    # Served records are a superset of the exact matches, chunk-aligned.
    assert pruned.n_records == sum(len(c) for c in pruned.iter_chunks())
    assert pruned.n_records <= memory.n_records


def test_indexed_source_sync_scan_is_unpruned(traced):
    """Clock correlation must see every sync record even when the
    predicate would prune the chunks holding them."""
    memory = traced[0]
    pruned = IndexedSource(memory, Predicate().refine(event="mfc_put"))
    assert list(pruned.scan_sync()) == list(memory.scan_sync())
    fits = ClockCorrelator(pruned).fits
    expected = ClockCorrelator(memory).fits
    assert sorted(fits) == sorted(expected)
    for spe_id in fits:
        assert fits[spe_id].n_sync == expected[spe_id].n_sync


def test_open_indexed_attaches_sidecar(traced):
    from repro.tq import build_sidecar

    __, __v4, v3 = traced
    assert open_indexed(v3).zone_maps() is None
    build_sidecar(v3)
    attached = open_indexed(v3)
    zones = attached.zone_maps()
    assert zones is not None and len(zones) == attached.n_chunks
    query = Query(attached).where(spe=1)
    result = list(query.records())
    assert query.stats.indexed and query.stats.scanned_chunks < query.stats.total_chunks
    plain = Query(open_trace(v3)).where(spe=1)
    assert result == list(plain.records())


def test_stale_short_mask_scans_rather_than_drops(traced):
    """iter_chunks_selected with a short mask serves the unmasked tail
    (degrading to a scan), never silently dropping chunks."""
    memory = traced[0]
    chunks = list(memory.iter_chunks())
    served = list(memory.iter_chunks_selected([False]))
    assert len(served) == len(chunks) - 1
    served_all = list(memory.iter_chunks_selected([]))
    assert len(served_all) == len(chunks)
