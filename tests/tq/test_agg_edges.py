"""Aggregation edge cases: empty and single-record populations,
all-empty partial merges, and the serial/sharded byte-identity the
corpus metrics build on.

These are the degenerate shapes corpus fan-out hits constantly — a
stall family a workload never exercises (empty selection), a
lifecycle kind that fires exactly once per SPE (single-record
groups), shards whose chunk ranges select nothing (all-empty
partials) — so their semantics are pinned here explicitly.
"""

import pytest

from repro.pdt import TraceConfig, open_trace, write_trace
from repro.serve.protocol import canonical_json
from repro.tq import Query
from repro.tq.pipeline import AggState, PartialAggregation

from tests.pdt.util import dma_loop_program, run_workload, traced_machine


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    machine, rt, hooks = traced_machine(TraceConfig(buffer_bytes=2048))
    run_workload(machine, rt, dma_loop_program(iterations=6), n_spes=2)
    path = str(tmp_path_factory.mktemp("agg") / "t.pdt")
    write_trace(hooks.event_source(), path)
    return path


AGGS = dict(
    n="count",
    total=("sum", "time"),
    avg=("mean", "time"),
    med=("p50", "time"),
    tail=("p99", "time"),
    lo=("min", "time"),
    hi=("max", "time"),
)


def test_empty_ungrouped_selection_yields_one_all_empty_row(trace_path):
    """No grouping + nothing selected: one row, count 0, every other
    reduction None — never a division by zero or an empty list."""
    with open_trace(trace_path) as trace:
        (row,) = Query(trace).where(spe=31).agg(**AGGS).run()
    assert row["n"] == 0
    for name in ("total", "avg", "med", "tail", "lo", "hi"):
        assert row[name] is None, name


def test_empty_grouped_selection_yields_no_rows(trace_path):
    with open_trace(trace_path) as trace:
        rows = Query(trace).where(spe=31).groupby("spe").agg(**AGGS).run()
    assert rows == []


def test_single_record_groups_collapse_all_ops(trace_path):
    """Each SPE enters exactly once: in a 1-element population mean,
    p50, p99, min, max, and sum all equal the single value."""
    with open_trace(trace_path) as trace:
        rows = (
            Query(trace)
            .where(event="spe_entry")
            .groupby("spe")
            .agg(**AGGS)
            .run()
        )
    assert [row["spe"] for row in rows] == [0, 1]
    for row in rows:
        assert row["n"] == 1
        value = row["total"]
        assert value is not None
        for name in ("avg", "med", "tail", "lo", "hi"):
            assert row[name] == value, name


def test_merge_of_all_empty_partials_equals_serial_empty(trace_path):
    """Shards that each selected nothing must merge and finalize to
    exactly the serial empty answer (ungrouped: the all-empty row)."""
    with open_trace(trace_path) as trace:
        query = Query(trace).where(spe=31).agg(**AGGS)
        serial = query.run()
        merged = query.run_partial()
        for __ in range(3):
            with open_trace(trace_path) as again:
                empty = Query(again).where(spe=31).agg(**AGGS).run_partial()
            merged = merged.merge(empty)
    assert merged.finalize() == serial


def test_merged_empty_aggstate_stays_empty():
    state = AggState.create("p99", "time")
    other = AggState.create("p99", "time")
    assert state.merge(other).finalize() is None
    with pytest.raises(ValueError, match="cannot merge"):
        state.merge(AggState.create("sum", "time"))


def test_partial_merge_rejects_shape_mismatch():
    a = PartialAggregation.create(("spe",), (("n", "count", None),))
    b = PartialAggregation.create(("kind",), (("n", "count", None),))
    with pytest.raises(ValueError, match="different shapes"):
        a.merge(b)


def test_sharded_percentiles_byte_identical_to_serial(trace_path):
    """jobs=2 over a real file must reproduce serial rows exactly,
    including order-sensitive percentile populations."""
    from repro.par import parallel_rows

    with open_trace(trace_path) as trace:
        query = Query(trace).groupby("spe", "kind").agg(**AGGS)
        serial = query.run()
        sharded = parallel_rows(query, 2)
    assert canonical_json(serial) == canonical_json(sharded)
    # And for an empty selection, sharded == serial == the empty shape.
    with open_trace(trace_path) as trace:
        query = Query(trace).where(spe=31).agg(**AGGS)
        assert parallel_rows(query, 2) == query.run()
