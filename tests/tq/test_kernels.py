"""Equivalence suite: columnar query kernels against the scalar scan.

:mod:`repro.tq.kernels` claims bit identity with the per-record
reference loop that stays in :mod:`repro.tq.pipeline` — same rows,
same counts, same record tuples in the same order, same prune
accounting, same exceptions.  This suite flips ``REPRO_SCALAR_CODEC``
both ways over randomized traces and randomized predicates (time
windows, SPE sets, event filters, payload-field clauses, every group
key, bucketed grouping, all aggregation ops including percentiles) and
demands equality, and unit-tests the fallback seams: garbage
timestamps that overflow int64, records with no clock fit, unknown
record types.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.pdt.correlate import CorrelationError
from repro.pdt.events import SIDE_PPE, SIDE_SPE, code_for_kind
from repro.pdt.store import ColumnStore, StoreSource
from repro.pdt.trace import TraceHeader
from repro.tq import Query
from repro.tq.kernels import (
    KernelFallback,
    kernels_enabled,
    select_chunk,
    try_select,
)

DIVIDER = 120
DEC_START = 0xF000_0000  # decrementers count DOWN from here
SYNC = code_for_kind(SIDE_SPE, "sync")
SPE_KINDS = [
    code_for_kind(SIDE_SPE, name)
    for name in ("mfc_get", "mfc_put", "wait_tag_begin", "wait_tag_end",
                 "user_marker")
]
PPE_KINDS = [
    code_for_kind(SIDE_PPE, name)
    for name in ("context_create", "context_run_begin", "context_run_end")
]
QUERY_KINDS = ("mfc_get", "mfc_put", "user_marker", "context_create")
GROUP_KEYS = ("spe", "core", "side", "code", "kind")


# Tests needing a live batch path skip under the scalar-differential
# CI job (REPRO_SCALAR_CODEC=1 for the whole process).
requires_batch = pytest.mark.skipif(
    bool(os.environ.get("REPRO_SCALAR_CODEC")),
    reason="kernels disabled by REPRO_SCALAR_CODEC",
)


class scalar_mode:
    """Force the scalar reference paths within the ``with`` block."""

    def __enter__(self):
        self._prior = os.environ.get("REPRO_SCALAR_CODEC")
        os.environ["REPRO_SCALAR_CODEC"] = "1"

    def __exit__(self, *exc_info):
        if self._prior is None:
            del os.environ["REPRO_SCALAR_CODEC"]
        else:
            os.environ["REPRO_SCALAR_CODEC"] = self._prior


# One drawn event: producing core (0 = PPE), kind selector, timebase
# ticks since the previous event, payload seed.
event = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=1 << 20),
)


def build_store(draws, with_sync=True):
    """Materialize drawn events as a valid multi-chunk column store."""
    recs = []
    tick = 1
    spe_cores = set()
    for core_sel, kind_sel, dt, seed in draws:
        tick += dt
        if core_sel == 0:
            spec = PPE_KINDS[kind_sel % len(PPE_KINDS)]
            side, core = SIDE_PPE, 0
        else:
            spec = SPE_KINDS[kind_sel % len(SPE_KINDS)]
            side, core = SIDE_SPE, core_sel - 1
            spe_cores.add(core)
        values = tuple((seed + j) % 65536 for j in range(len(spec.fields)))
        recs.append((tick, side, spec.code, core, values))
    end = tick + 1
    if with_sync:
        for core in sorted(spe_cores):
            recs.insert(0, (0, SIDE_SPE, SYNC.code, core, (0,)))
            recs.append((end, SIDE_SPE, SYNC.code, core, (end,)))
    store = ColumnStore(chunk_records=5)
    seqs = {}
    for tick, side, code, core, values in recs:
        if side == SIDE_SPE:
            dec0 = DEC_START + core * 0x1_0001
            raw = (dec0 - tick) % (1 << 32)
        else:
            raw = tick
        seq = seqs.get((side, core), 0)
        seqs[(side, core)] = seq + 1
        store.append(side, code, core, seq, raw, values)
    return store


def make_source(store):
    header = TraceHeader(
        n_spes=4, timebase_divider=DIVIDER, spu_clock_hz=3.2e9,
        groups_bitmap=0b111111, buffer_bytes=16384,
    )
    return StoreSource(header, store)


# A drawn query: optional time window (tick bounds), SPE set, side,
# kind filter, payload-field clause, group keys, bucketing.
query_spec = st.tuples(
    st.one_of(st.none(), st.tuples(st.integers(0, 2200), st.integers(0, 2200))),
    st.one_of(
        st.none(),
        st.integers(min_value=0, max_value=3),
        st.lists(st.integers(0, 4), min_size=1, max_size=3),
    ),
    st.one_of(st.none(), st.sampled_from((SIDE_PPE, SIDE_SPE))),
    st.one_of(st.none(), st.sampled_from(QUERY_KINDS)),
    st.one_of(
        st.none(),
        st.tuples(st.sampled_from(("size", "tag")), st.integers(0, 40000)),
    ),
    st.lists(st.sampled_from(GROUP_KEYS), min_size=0, max_size=2, unique=True),
    st.one_of(st.none(), st.integers(min_value=50, max_value=5000)),
)

PROJECTION = ("time", "side", "core", "code", "seq", "raw_ts", "kind", "spe",
              "size")


def apply_spec(source, spec):
    window, spe, side, kind, field, keys, bucket = spec
    query = Query(source)
    if window is not None:
        t0, t1 = min(window), max(window)
        query = query.where(t0=t0 * DIVIDER, t1=t1 * DIVIDER)
    if spe is not None:
        query = query.where(spe=spe)
    if side is not None:
        query = query.where(side=side)
    if kind is not None:
        query = query.where(event=kind)
    if field is not None:
        name, lo = field
        query = query.where_field(name, lo=lo)
    group = tuple(keys)
    time_bucket = None
    if bucket is not None:
        group = group + ("bucket",)
        time_bucket = bucket * DIVIDER
    aggregated = query.groupby(*group, time_bucket=time_bucket).agg(
        n="count", total=("sum", "raw_ts"), lo=("min", "time"),
        hi=("max", "time"), avg=("mean", "seq"), p50=("p50", "raw_ts"),
        p99=("p99", "raw_ts"), sz=("sum", "size"),
    )
    return query, aggregated


def run_everything(store, spec):
    """Every observable query surface for one (trace, query) draw."""
    source = make_source(store)
    query, aggregated = apply_spec(source, spec)
    rows = aggregated.run()
    stats = aggregated.stats
    records = list(query.project(*PROJECTION).records())
    count = query.count()
    return rows, (stats.total_chunks, stats.scanned_chunks, stats.indexed), \
        records, count


@requires_batch
@settings(max_examples=50, deadline=None)
@given(st.lists(event, min_size=0, max_size=60), query_spec)
def test_kernel_results_match_scalar(draws, spec):
    store = build_store(draws)
    assert kernels_enabled()
    batch = run_everything(store, spec)
    with scalar_mode():
        assert not kernels_enabled()
        scalar = run_everything(store, spec)
    assert batch == scalar


@settings(max_examples=25, deadline=None)
@given(st.lists(event, min_size=1, max_size=40), query_spec)
def test_missing_clock_fit_parity(draws, spec):
    """Without sync records no SPE has a clock fit: any query that
    needs time must raise the same CorrelationError in both modes, and
    any query that doesn't must return identical results."""
    store = build_store(draws, with_sync=False)

    def outcome():
        try:
            return ("ok",) + run_everything(store, spec)
        except CorrelationError as exc:
            return ("CorrelationError", str(exc))

    batch = outcome()
    with scalar_mode():
        scalar = outcome()
    assert batch == scalar


def test_overflow_timestamps_fall_back_and_match():
    """Raw timestamps large enough to overflow int64 inside the PPE
    product must not crash or wrap — the kernels bail to the scalar
    loop, whose Python ints are exact, and both modes agree."""
    store = ColumnStore(chunk_records=4)
    spec = PPE_KINDS[0]
    for seq in range(8):
        raw = (1 << 62) + seq  # * DIVIDER leaves int64 range
        store.append(SIDE_PPE, spec.code, 0, seq, raw, (0, 0))
    source = make_source(store)
    rows = Query(source).groupby("code").agg(hi=("max", "time")).run()
    with scalar_mode():
        scalar_rows = (
            Query(make_source(store)).groupby("code").agg(hi=("max", "time")).run()
        )
    assert rows == scalar_rows
    assert rows[0]["hi"] == ((1 << 62) + 7) * DIVIDER  # exact, unwrapped

    chunk = next(iter(store.iter_chunks()))
    predicate = Query(make_source(store)).predicate
    from repro.pdt.correlate import ClockCorrelator

    correlator = ClockCorrelator(make_source(store))
    with pytest.raises(KernelFallback):
        select_chunk(chunk, predicate, correlator, needs_time=True)
    assert try_select(chunk, predicate, correlator, needs_time=True) is None
    # Without time placement the same chunk vectorizes fine.
    assert select_chunk(chunk, predicate, correlator, needs_time=False) is not None


def test_unknown_record_type_falls_back():
    """A chunk holding a record type outside EVENT_SPECS (possible via
    hand-built stores) must fall back, not misclassify."""
    store = ColumnStore()
    spec = SPE_KINDS[0]
    store.append(SIDE_SPE, spec.code, 0, 0, 100, range(len(spec.fields)))
    chunk = next(iter(store.iter_chunks()))
    chunk.side.append(SIDE_SPE)
    chunk.code.append(0xEE)  # no such spec
    chunk.core.append(0)
    chunk.seq.append(1)
    chunk.raw_ts.append(101)
    chunk.truth.append(0xFF)
    chunk.val_off.append(chunk.val_off[-1])
    predicate = Query(make_source(store)).predicate
    with pytest.raises(KernelFallback):
        select_chunk(chunk, predicate, None, needs_time=False)
    assert try_select(chunk, predicate, None, needs_time=False) is None


@requires_batch
def test_escape_hatch_disables_kernels():
    with scalar_mode():
        assert not kernels_enabled()
    assert kernels_enabled()
