"""Robustness sweeps: the stack works across machine configurations."""

import dataclasses

import pytest

from repro.cell import CellConfig
from repro.cell.config import DmaTimings
from repro.pdt import TraceConfig
from repro.ta import analyze
from repro.ta.stats import TraceStatistics
from repro.workloads import MonteCarloWorkload, StreamingPipelineWorkload, run_workload


@pytest.mark.parametrize("n_spes", [1, 2, 8, 16])
def test_machine_sizes(n_spes):
    result = run_workload(
        MonteCarloWorkload(samples_per_spe=1000, n_spes=n_spes),
        TraceConfig(),
        cell_config=CellConfig(n_spes=n_spes, main_memory_size=1 << 27),
    )
    assert result.verified
    stats = TraceStatistics.from_model(analyze(result.trace()))
    assert len(stats.per_spe) == n_spes


@pytest.mark.parametrize("divider", [1, 13, 120, 997])
def test_timebase_dividers(divider):
    """Coarse or fine clocks: correlation and analysis still work."""
    config = CellConfig(
        n_spes=2, main_memory_size=1 << 27, timebase_divider=divider
    )
    result = run_workload(
        StreamingPipelineWorkload(stages=2, blocks=4, block_bytes=1024),
        TraceConfig(buffer_bytes=1024),
        cell_config=config,
    )
    assert result.verified
    model = analyze(result.trace())
    for core in model.cores.values():
        assert core.window > 0


def test_zero_channel_latency():
    config = CellConfig(n_spes=2, main_memory_size=1 << 27, channel_latency=0)
    result = run_workload(
        StreamingPipelineWorkload(stages=2, blocks=4, block_bytes=1024),
        TraceConfig(),
        cell_config=config,
    )
    assert result.verified


def test_single_eib_ring_heavy_contention():
    dma = dataclasses.replace(DmaTimings(), eib_rings=1, mfc_parallel=1)
    config = CellConfig(n_spes=4, main_memory_size=1 << 27, dma=dma)
    result = run_workload(
        StreamingPipelineWorkload(stages=4, blocks=8, block_bytes=4096),
        TraceConfig(),
        cell_config=config,
    )
    assert result.verified
    # Contention showed up on the bus.
    assert result.machine.eib.stats.wait_cycles > 0


def test_tiny_mfc_queue():
    dma = dataclasses.replace(DmaTimings(), queue_depth=1)
    config = CellConfig(n_spes=2, main_memory_size=1 << 27, dma=dma)
    result = run_workload(
        StreamingPipelineWorkload(stages=2, blocks=6, block_bytes=4096),
        TraceConfig(),
        cell_config=config,
    )
    assert result.verified


def test_free_tracing_costs():
    """Zero-cost tracing: traced time == untraced time."""
    from repro.workloads import measure_overhead

    config = TraceConfig(spu_record_cycles=0, ppe_record_cycles=0,
                         buffer_bytes=64 * 1024)
    result = measure_overhead(
        lambda: MonteCarloWorkload(samples_per_spe=2000, n_spes=2), config
    )
    # Only the flush DMAs remain, and the *final* flush at SPE exit is
    # synchronous (the program must not end before its trace is safe),
    # so a small residual survives even with free records.
    assert result.overhead_percent < 1.5
