#!/usr/bin/env python
"""Mini-ALF: an image convolution without writing any DMA code.

The Accelerated Library Framework pattern: the application supplies a
compute kernel (here a 1D 5-tap blur over row segments) and a list of
work blocks; the framework distributes blocks over SPEs with an atomic
work queue and double-buffers the transfers automatically.  The trace
proves it: the buffering analysis reports the overlap the application
never had to program.

Run:  python examples/alf_convolution.py
"""

import numpy as np

from repro.alf import AlfKernel, AlfTask, WorkBlock
from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime
from repro.pdt import PdtHooks, TraceConfig
from repro.ta import analyze, analyze_buffering
from repro.ta.report import format_table

TAPS = np.array([0.1, 0.2, 0.4, 0.2, 0.1], dtype=np.float32)
SEGMENT = 2048  # floats per work block
HALO = 2  # taps reach 2 samples either side
N_SEGMENTS = 24


def blur_kernel():
    def run(params, inputs):
        data = np.frombuffer(inputs[0], dtype=np.float32)
        out = np.convolve(data, TAPS, mode="same")[HALO:-HALO]
        return out.astype(np.float32).tobytes()

    # ~5 multiply-adds per sample at 8 flops/cycle.
    cycles = (SEGMENT + 2 * HALO) * 5 * 2 // 8
    return AlfKernel(
        "blur5", run, cycles,
        max_input_bytes=(SEGMENT + 2 * HALO) * 4,
        max_output_bytes=SEGMENT * 4,
    )


def main():
    machine = CellMachine(CellConfig(n_spes=4, main_memory_size=1 << 26))
    hooks = PdtHooks(TraceConfig.dma_only())
    runtime = Runtime(machine, hooks=hooks)

    rng = np.random.default_rng(1)
    total = N_SEGMENTS * SEGMENT
    signal = rng.standard_normal(total + 2 * HALO).astype(np.float32)
    ea_in = machine.memory.allocate(signal.nbytes)
    ea_out = machine.memory.allocate(total * 4)
    machine.memory.write(ea_in, signal.tobytes())

    task = AlfTask(blur_kernel(), n_spes=4)
    for i in range(N_SEGMENTS):
        # Each block reads its segment plus the halo on both sides.
        task.enqueue(WorkBlock(
            inputs=((ea_in + i * SEGMENT * 4, (SEGMENT + 2 * HALO) * 4),),
            output=(ea_out + i * SEGMENT * 4, SEGMENT * 4),
        ))

    def ppe_main():
        yield from task.execute(machine, runtime)
        runtime.finalize()

    machine.spawn(ppe_main())
    elapsed = machine.run()

    # Verify against the host reference.
    result = np.frombuffer(machine.memory.read(ea_out, total * 4), dtype=np.float32)
    reference = np.concatenate([
        np.convolve(
            signal[i * SEGMENT : (i + 1) * SEGMENT + 2 * HALO], TAPS, mode="same"
        )[HALO:-HALO]
        for i in range(N_SEGMENTS)
    ]).astype(np.float32)
    ok = np.allclose(result, reference, rtol=1e-5)

    print(f"{N_SEGMENTS} blur blocks on 4 SPEs: {elapsed} cycles "
          f"({elapsed / 3.2e9 * 1e6:.1f} us), verified: {ok}")
    print(format_table([
        {"spe": spe, "blocks": done}
        for spe, done in sorted(task.blocks_done_by.items())
    ]))
    model = analyze(hooks.to_trace())
    rows = []
    for spe_id in sorted(model.cores):
        report = analyze_buffering(model, spe_id)
        rows.append({
            "spe": spe_id,
            "overlap": round(report.overlap_fraction, 2),
            "wait_dma": round(report.wait_dma_fraction, 2),
        })
    print("framework-managed buffering, as the TA sees it:")
    print(format_table(rows))
    assert ok


if __name__ == "__main__":
    main()
