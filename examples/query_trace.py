#!/usr/bin/env python
"""Targeted stall investigation with the indexed query engine.

The full analyzer answers "what happened?"; `repro.tq` answers "what
was SPE N doing right *there*?" without decoding the rest of the
trace.  This example traces a streaming pipeline, finds the SPE that
blocks on DMA completion the most, zooms into a 5% time slice around
its median activity, and lists the DMA traffic inside it — showing
the zone-map prune accounting at each step.

Run:  python examples/query_trace.py
"""

from repro.pdt import TraceConfig, open_trace
from repro.ta.report import format_table
from repro.tq import Query
from repro.workloads import StreamingPipelineWorkload, run_and_write_trace


def main():
    path = "query_trace.pdt"
    workload = StreamingPipelineWorkload(stages=3, blocks=32)
    result, n_bytes = run_and_write_trace(
        workload, path, TraceConfig(buffer_bytes=2048)
    )
    assert result.verified
    source = open_trace(path)  # version 4: the zone-map index rides along
    print(
        f"traced {source.n_records} records into {path} "
        f"({n_bytes} bytes, {source.n_chunks} chunks, "
        f"{len(source.zone_maps())} zone maps)"
    )

    # Q1 — who blocks on DMA completion the most?  One grouped count
    # over the wait-bracket records; the code bitmaps prune chunks
    # that hold no waits at all.
    waits = (
        Query(source)
        .where(event="wait_tag_end")
        .groupby("spe")
        .agg(waits="count")
    )
    rows = waits.run()
    print("\nDMA-completion waits per SPE:")
    print(format_table(rows))
    print(f"  [{waits.stats.note()}]")
    worst = max(rows, key=lambda row: row["waits"])["spe"]
    print(f"most-blocked SPE: {worst}")

    # Q2 — bracket that SPE's activity and cut a 5% window around its
    # median event time.  Aggregations stream; nothing is materialized.
    (extent,) = (
        Query(source)
        .where(spe=worst)
        .agg(lo=("min", "time"), mid=("p50", "time"), hi=("max", "time"))
        .run()
    )
    width = max(1, (extent["hi"] - extent["lo"]) // 20)
    t0 = extent["mid"] - width // 2
    t1 = t0 + width
    print(
        f"\nzooming into [{t0}, {t1}] "
        f"(5% of SPE {worst}'s active span, centered on its median)"
    )

    # Q3 — the DMA traffic inside the window, record by record.  The
    # SPE bitmap prunes the other cores' chunks before any decode;
    # projections pull payload fields (None where a kind lacks one).
    zoom = (
        Query(source)
        .where(t0=t0, t1=t1, spe=worst)
        .where_field("size", lo=1)
        .project("time", "kind", "seq", "tag", "size")
    )
    records = list(zoom.records())
    print(f"{len(records)} sized DMA transfers in the window:")
    for time, kind, seq, tag, size in records[:10]:
        print(f"  t={time:<12} {kind:<10} seq={seq:<5} tag={tag} size={size}")
    if len(records) > 10:
        print(f"  ... and {len(records) - 10} more")
    print(f"  [{zoom.stats.note()}]")


if __name__ == "__main__":
    main()
