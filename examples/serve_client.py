#!/usr/bin/env python
"""Register once, query many times: the analysis daemon end to end.

An analysis session usually asks one trace many questions — from a
notebook, a dashboard, several terminal windows.  Paying the open cost
(header scan, frame index, zone maps, clock fit) per question is
waste; `repro.serve` pays it once.  This example traces a streaming
pipeline, embeds a `TraceServer`, and then acts as three different
clients asking overlapping questions — demonstrating the result
cache, the shared chunk cache, and the daemon's headline contract:
every served answer is byte-identical to direct library execution.

Run:  python examples/serve_client.py
"""

from repro.pdt import TraceConfig, open_trace
from repro.serve import (
    ServeClient,
    ServerConfig,
    TraceCatalog,
    TraceServer,
    canonical_json,
)
from repro.ta.report import format_table
from repro.tq import Query
from repro.workloads import StreamingPipelineWorkload, run_and_write_trace


def main():
    path = "serve_client.pdt"
    result, n_bytes = run_and_write_trace(
        StreamingPipelineWorkload(stages=3, blocks=32), path,
        TraceConfig(buffer_bytes=2048),
    )
    assert result.verified

    # The daemon: a catalog of open traces behind a JSON-line socket.
    # port=0 lets the OS pick; start() serves from a daemon thread.
    catalog = TraceCatalog(memory_budget=32 * 1024 * 1024)
    server = TraceServer(catalog, ServerConfig(port=0)).start()
    host, port = server.address
    print(f"daemon up on {host}:{port}")

    with ServeClient(server.address) as client:
        info = client.register("pipeline", path)
        print(
            f"registered: {info['records']} records, {info['chunks']} "
            f"chunks, indexed={info['indexed']} ({n_bytes} bytes on disk)"
        )

        # Client 1 — the dashboard: per-SPE DMA-wait counts.
        rows = client.query(
            "pipeline",
            where={"event": "wait_tag_end"},
            groupby=["spe"],
            agg={"waits": "count"},
        )
        print("\nDMA-completion waits per SPE (served):")
        print(format_table(rows))

        # Client 2 — the notebook: same question again.  The daemon
        # answers from the result cache; the bytes are identical.
        again = client.query(
            "pipeline",
            where={"event": "wait_tag_end"},
            groupby=["spe"],
            agg={"waits": "count"},
        )
        assert again == rows
        hits = client.stats()["catalog"]["result_cache"]["hits"]
        print(f"asked again: result cache answered (hits={hits})")

        # Client 3 — the skeptic: is the served answer really what the
        # library computes?  Run the same query directly and compare
        # canonical encodings.
        with open_trace(path) as source:
            direct = (
                Query(source)
                .where(event="wait_tag_end")
                .groupby("spe")
                .agg(waits="count")
                .run()
            )
        assert canonical_json(rows) == canonical_json(direct)
        print("served bytes == direct execution bytes: verified")

        # Housekeeping ops: list, stats, evict.
        names = [row["name"] for row in client.list_traces()]
        budget = client.stats()["catalog"]["memory_budget"]
        print(f"\ncatalog: {names}, budget {budget >> 20} MiB")
        print(f"evict: {client.evict('pipeline')}")

    server.stop()
    print("daemon stopped")


if __name__ == "__main__":
    main()
