#!/usr/bin/env python
"""Measuring the probe effect: what tracing costs (paper T2/F4).

The paper's final discussion is about overhead: tracing steals SPU
cycles, local store, and DMA bandwidth from the application.  Here we
measure it the only honest way — run every workload twice, identical
except for the PDT hooks — across event-group presets and trace-buffer
sizes.

Run:  python examples/tracing_overhead.py
"""

from repro.pdt import TraceConfig
from repro.ta.report import format_table
from repro.workloads import (
    FftWorkload,
    MatmulWorkload,
    MonteCarloWorkload,
    StreamingPipelineWorkload,
    measure_overhead,
)

WORKLOADS = [
    ("matmul", lambda: MatmulWorkload(n=256, tile=64, n_spes=4)),
    ("fft", lambda: FftWorkload(points=1024, batch=32, n_spes=4)),
    ("streaming", lambda: StreamingPipelineWorkload(stages=4, blocks=16)),
    ("montecarlo", lambda: MonteCarloWorkload(samples_per_spe=20_000, n_spes=4)),
]


def main():
    print("--- overhead by workload and event-group preset ---")
    rows = []
    for name, factory in WORKLOADS:
        for preset_name, preset in (
            ("all", TraceConfig.all_events()),
            ("dma-only", TraceConfig.dma_only()),
        ):
            result = measure_overhead(factory, preset)
            row = result.row()
            row["config"] = preset_name
            rows.append(row)
    print(format_table(rows))

    print("--- overhead vs trace-buffer size x flush discipline ---")
    print("(event-dense streaming workload; PDT's double buffering makes")
    print("overhead insensitive to buffer size, synchronous flushing does not)")
    rows = []
    for kib in (1, 2, 4, 8, 16):
        for double, label in ((True, "double"), (False, "single")):
            config = TraceConfig(buffer_bytes=kib * 1024, double_buffered=double)
            result = measure_overhead(
                lambda: StreamingPipelineWorkload(stages=4, blocks=16), config
            )
            rows.append(
                {
                    "buffer_kib": kib,
                    "flush_mode": label,
                    "overhead_percent": round(result.overhead_percent, 2),
                    "flushes": result.flushes,
                }
            )
    print(format_table(rows))
    print(
        "small buffers mean frequent flush DMAs; double buffering hides\n"
        "them, synchronous flushing stalls the SPU on every one. The cost\n"
        "of a big buffer is local store the application cannot use."
    )


if __name__ == "__main__":
    main()
