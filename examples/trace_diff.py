#!/usr/bin/env python
"""Comparing two runs: the before/after workflow as a diff report.

The paper's use cases are all "trace it, fix it, trace it again".
This example runs the static- and dynamic-scheduled Mandelbrot
renderers, diffs the two traces, and prints the communication-channel
summary showing where the atomic work queue's traffic went.

Run:  python examples/trace_diff.py
"""

from repro.pdt import TraceConfig
from repro.ta import (
    analyze,
    communication_edges,
    diff_stats,
    summarize_channels,
    top_event_kinds,
)
from repro.ta.report import format_table
from repro.ta.stats import TraceStatistics
from repro.workloads import MandelbrotWorkload, run_workload


def profile(schedule):
    workload = MandelbrotWorkload(
        width=128, height=32, max_iterations=96, n_spes=4, schedule=schedule
    )
    result = run_workload(workload, trace_config=TraceConfig())
    assert result.verified
    model = analyze(result.trace())
    return result, model, TraceStatistics.from_model(model)


def main():
    print("rendering the Mandelbrot set twice: static split vs atomic queue")
    baseline_result, baseline_model, baseline_stats = profile("static")
    candidate_result, candidate_model, candidate_stats = profile("dynamic")

    diff = diff_stats(baseline_stats, candidate_stats)
    print(f"\nverdict: {diff.verdict}")
    print(format_table(diff.rows()))

    print("top event kinds in the dynamic trace:")
    for kind, count in top_event_kinds(candidate_result.trace(), n=5):
        print(f"  {kind:<18} {count}")

    print("\ncommunication channels (dynamic run):")
    summaries = summarize_channels(communication_edges(candidate_model))
    print(
        format_table(
            [
                {
                    "channel": s.channel,
                    "edges": s.count,
                    "mean_latency_cycles": round(s.mean_latency, 1),
                }
                for s in summaries
            ]
        )
    )


if __name__ == "__main__":
    main()
