#!/usr/bin/env python
"""Virtual contexts: a 12-job farm on a 4-SPE machine.

libspe lets applications create more SPE contexts than the machine has
SPEs; the runtime time-multiplexes them.  This example runs a dozen
FFT jobs of wildly different sizes as virtual contexts on 4 physical
SPEs, then reads the resulting PDT trace: one stream per *physical*
SPE, with each SPE's lane showing back-to-back program entry/exit
pairs as contexts rotate through it.

Run:  python examples/job_farm.py
"""

from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime, SpeProgram
from repro.pdt import PdtHooks, TraceConfig
from repro.ta import analyze, render_ascii
from repro.ta.report import format_table

N_SPES = 4
N_JOBS = 12


def job_program(job_id, compute_cycles):
    def entry(spu, argp, envp):
        yield from spu.marker(job_id)
        yield from spu.compute(compute_cycles)
        return job_id

    return SpeProgram(f"job{job_id}", entry, ls_code_bytes=8 * 1024)


def main():
    machine = CellMachine(CellConfig(n_spes=N_SPES, main_memory_size=1 << 26))
    hooks = PdtHooks(TraceConfig())
    runtime = Runtime(machine, hooks=hooks)
    finished = []

    def ppe_main():
        contexts = []
        for job_id in range(N_JOBS):
            ctx = yield from runtime.context_create(virtual=True)
            # Job sizes vary 7x — the pool balances them automatically.
            yield from ctx.load(job_program(job_id, 20_000 * (1 + job_id % 7)))
            contexts.append(ctx)
        procs = [ctx.run_async() for ctx in contexts]
        for ctx, proc in zip(contexts, procs):
            code = yield proc
            finished.append((code, ctx.last_spe_id))
        runtime.finalize()

    machine.spawn(ppe_main())
    machine.run()

    print(f"{N_JOBS} virtual jobs completed on {N_SPES} physical SPEs "
          f"in {machine.sim.now} cycles\n")
    rows = [
        {"job": code, "ran_on_spe": spe_id}
        for code, spe_id in sorted(finished)
    ]
    print(format_table(rows))

    model = analyze(hooks.to_trace())
    print(render_ascii(model, width=72))
    per_spe = {}
    for __, spe_id in finished:
        per_spe[spe_id] = per_spe.get(spe_id, 0) + 1
    print("jobs per physical SPE:", dict(sorted(per_spe.items())))


if __name__ == "__main__":
    main()
