#!/usr/bin/env python
"""Quickstart: trace a workload, analyze it, render the timeline.

This is the whole tool chain in ~30 lines:

1. pick a workload (a blocked matrix multiply on 4 SPEs),
2. run it on the simulated Cell BE with PDT recording events,
3. write the trace to disk exactly like the real tool,
4. read it back and let the Trace Analyzer report on it.

Run:  python examples/quickstart.py
"""

from repro.pdt import TraceConfig, read_trace, write_trace
from repro.ta.report import full_report
from repro.workloads import MatmulWorkload, run_workload


def main():
    workload = MatmulWorkload(n=256, tile=64, n_spes=4, double_buffered=True)
    print(f"running {workload.describe()} under PDT...")
    result = run_workload(workload, trace_config=TraceConfig())
    print(
        f"done in {result.elapsed_cycles} cycles ({result.elapsed_us:.1f} us "
        f"at 3.2 GHz); results verified: {result.verified}"
    )

    write_trace(result.trace(), "quickstart.pdt")
    trace = read_trace("quickstart.pdt")
    print(f"trace file: quickstart.pdt ({trace.n_records} records)\n")
    print(full_report(trace))


if __name__ == "__main__":
    main()
