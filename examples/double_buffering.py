#!/usr/bin/env python
"""Use case: finding and fixing DMA stalls with PDT + TA (paper F2).

The classic Cell optimization story, replayed with traces:

1. Run a single-buffered matmul.  The TA timeline shows the SPUs
   spending a large share of their windows in wait-dma, and the
   buffering analysis calls it out.
2. Apply the fix — double buffering — rerun, and the waits vanish.

The point of the paper's tooling is exactly that step 1 tells you what
to do without guessing.  Run:  python examples/double_buffering.py
"""

from repro.pdt import TraceConfig
from repro.ta import analyze, analyze_buffering, render_ascii, render_svg
from repro.ta.stats import TraceStatistics
from repro.workloads import MatmulWorkload, run_workload


def profile(double_buffered: bool):
    workload = MatmulWorkload(
        n=256, tile=64, n_spes=4, double_buffered=double_buffered
    )
    result = run_workload(workload, trace_config=TraceConfig.dma_only())
    model = analyze(result.trace())
    stats = TraceStatistics.from_model(model)
    return workload, result, model, stats


def main():
    print("=" * 72)
    print("BEFORE: single-buffered matmul")
    print("=" * 72)
    workload, result, model, stats = profile(double_buffered=False)
    before_cycles = result.elapsed_cycles
    print(render_ascii(model, width=72))
    for spe_id in sorted(model.cores):
        report = analyze_buffering(model, spe_id)
        print(
            f"spe{spe_id}: utilization={stats.per_spe[spe_id].utilization:.2f} "
            f"wait_dma={report.wait_dma_fraction:.2f} -> {report.verdict}"
        )
    with open("matmul_before.svg", "w") as handle:
        handle.write(render_svg(model))

    print()
    print("=" * 72)
    print("AFTER: double-buffered matmul (prefetch next tiles while computing)")
    print("=" * 72)
    workload, result, model, stats = profile(double_buffered=True)
    print(render_ascii(model, width=72))
    for spe_id in sorted(model.cores):
        report = analyze_buffering(model, spe_id)
        print(
            f"spe{spe_id}: utilization={stats.per_spe[spe_id].utilization:.2f} "
            f"overlap={report.overlap_fraction:.2f} -> {report.verdict}"
        )
    with open("matmul_after.svg", "w") as handle:
        handle.write(render_svg(model))

    speedup = before_cycles / result.elapsed_cycles
    print()
    print(f"speedup from the fix: {speedup:.2f}x "
          f"({before_cycles} -> {result.elapsed_cycles} cycles)")
    print("timelines written to matmul_before.svg / matmul_after.svg")


if __name__ == "__main__":
    main()
