#!/usr/bin/env python
"""Use case: locating a pipeline bottleneck from stall signatures (F5).

A 4-stage SPE pipeline where stage 2 does 8x the computation of its
neighbours.  Nobody told the analyzer that — but the trace gives it
away: stages *before* the bottleneck pile up wait-signal time waiting
for space credits, stages *after* it wait for data, and the bottleneck
stage itself is the one that is busy.  That asymmetric stall signature
is how one reads pipeline traces in practice.

Run:  python examples/pipeline_bottleneck.py
"""

from repro.pdt import TraceConfig
from repro.ta import analyze, render_ascii
from repro.ta.stats import TraceStatistics
from repro.workloads import StreamingPipelineWorkload, run_workload


def main():
    workload = StreamingPipelineWorkload(
        stages=4, blocks=24, block_bytes=4096, compute_per_block=4000, depth=2,
        bottleneck_stage=2, bottleneck_factor=8,
    )
    print(f"running {workload.describe()} (stage 2 is secretly 8x slower)...")
    result = run_workload(workload, trace_config=TraceConfig())
    model = analyze(result.trace())
    stats = TraceStatistics.from_model(model)

    print(render_ascii(model, width=72))
    print("stage  busy%  wait_dma%  wait_signal%  diagnosis")
    busiest = max(stats.per_spe, key=lambda s: stats.per_spe[s].utilization)
    for spe_id in sorted(stats.per_spe):
        s = stats.per_spe[spe_id]
        signal_frac = s.stall_fraction("wait_signal")
        if spe_id == busiest:
            diagnosis = "<-- BOTTLENECK (busy while neighbours wait)"
        elif spe_id < busiest:
            diagnosis = "starved of space credits (upstream of bottleneck)"
        else:
            diagnosis = "starved of data credits (downstream of bottleneck)"
        print(
            f"  {spe_id}    {s.utilization * 100:5.1f}  "
            f"{s.stall_fraction('wait_dma') * 100:8.1f}  "
            f"{signal_frac * 100:11.1f}  {diagnosis}"
        )

    print(
        f"\nthe analyzer fingers stage {busiest} as the bottleneck "
        f"(ground truth: stage {workload.bottleneck_stage})"
    )
    assert busiest == workload.bottleneck_stage


if __name__ == "__main__":
    main()
