#!/usr/bin/env python
"""Use case: diagnosing load imbalance across SPEs (paper F3).

A matmul whose tile schedule hands SPE 0 four shares of work for every
one share the others get.  The TA's per-SPE busy-time view makes the
skew obvious: three SPEs idle at the tail while SPE 0 grinds on.  The
balanced schedule fixes it.

Run:  python examples/load_balance.py
"""

from repro.pdt import TraceConfig
from repro.ta import analyze, analyze_load_balance
from repro.ta.stats import TraceStatistics
from repro.workloads import MatmulWorkload, run_workload


def busy_bar_chart(stats: TraceStatistics, width: int = 50) -> str:
    """ASCII horizontal bars of per-SPE busy cycles."""
    busy = {spe: s.run_cycles for spe, s in stats.per_spe.items()}
    peak = max(busy.values()) or 1
    lines = []
    for spe_id in sorted(busy):
        bar = "#" * round(busy[spe_id] / peak * width)
        lines.append(f"spe{spe_id} |{bar:<{width}}| {busy[spe_id]} cycles")
    return "\n".join(lines)


def profile(skew: int):
    workload = MatmulWorkload(n=256, tile=64, n_spes=4, skew=skew)
    result = run_workload(workload, trace_config=TraceConfig.dma_only())
    stats = TraceStatistics.from_model(analyze(result.trace()))
    return result, stats


def main():
    print("=" * 64)
    print("SKEWED schedule: SPE 0 gets 4 tiles per round, others get 1")
    print("=" * 64)
    result, stats = profile(skew=4)
    skewed_cycles = result.elapsed_cycles
    print(busy_bar_chart(stats))
    report = analyze_load_balance(stats)
    print(f"\nimbalance factor: {report.imbalance_factor:.2f}")
    print(f"verdict: {report.verdict}\n")

    print("=" * 64)
    print("BALANCED schedule: round-robin tiles")
    print("=" * 64)
    result, stats = profile(skew=1)
    print(busy_bar_chart(stats))
    report = analyze_load_balance(stats)
    print(f"\nimbalance factor: {report.imbalance_factor:.2f}")
    print(f"verdict: {report.verdict}")

    print(
        f"\nmakespan: skewed {skewed_cycles} cycles vs balanced "
        f"{result.elapsed_cycles} cycles "
        f"({skewed_cycles / result.elapsed_cycles:.2f}x longer when skewed)"
    )


if __name__ == "__main__":
    main()
