#!/usr/bin/env python
"""Corpus analytics end to end: matrix -> diff -> regression verdict.

Comparative performance work asks "what changed between these runs,
and is it real?".  This example answers both halves with
`repro.corpus`: (1) run the F2 pair — single- vs double-buffered
matmul — as matrix cells and ask `diff_runs` for the ranked report;
(2) run a seeded repeat matrix of one workload under two labels (pure
run-to-run noise) and show the robust detector staying quiet on the
clean pair while catching an injected stall regression.

Run:  python examples/corpus_diff.py
"""

from repro.corpus import (
    CellSpec,
    collect_cell_metrics,
    compare_cells,
    diff_runs,
    inject_regression,
    open_corpus,
    run_matrix,
)


def main():
    # ------------------------------------------------------------------
    # 1. The F2 use case as corpus queries: one matrix, two cells.
    # ------------------------------------------------------------------
    cells = [
        CellSpec(workload="matmul", n_spes=4, label="single"),
        CellSpec(workload="matmul-db", n_spes=4, label="double"),
    ]
    manifest = run_matrix(cells, "corpus_f2", repeats=1, base_seed=0)
    single, double = (record.run_id for record in manifest.runs)
    with open_corpus(manifest) as catalog:
        diff = diff_runs(catalog, single, double, jobs=1)
    print(diff.format_report())

    span = next(d for d in diff.metrics if d.name == "span_cycles")
    stall = next(d for d in diff.metrics if d.name == "stall_dma_cycles")
    print(f"double buffering: {span.baseline / span.candidate:.2f}x faster, "
          f"{-stall.delta} fewer DMA-stall cycles, "
          f"top-ranked change: {diff.metrics[0].name}")

    # ------------------------------------------------------------------
    # 2. Noise-aware regression detection: identical configuration
    #    under two labels, 3 seeded repeats per cell.  The only
    #    difference between the labels is run-to-run noise.
    # ------------------------------------------------------------------
    noisy = [
        CellSpec(workload="spmv", n_spes=2, label="base"),
        CellSpec(workload="spmv", n_spes=2, label="cand"),
    ]
    noise_manifest = run_matrix(noisy, "corpus_noise", repeats=3, base_seed=0)
    with open_corpus(noise_manifest) as catalog:
        cell_metrics = collect_cell_metrics(noise_manifest, catalog)

    clean = compare_cells(cell_metrics, "base", "cand", repeats=3)
    print(f"\nclean pair: {len(clean.flagged)} of "
          f"{len(clean.comparisons)} metrics flagged "
          f"(medians within k*spread of each other)")
    assert not clean.flagged, "run-to-run noise must not flag"

    # Inject a synthetic +25% stall regression into the candidate's
    # measured populations — the detector must catch exactly that.
    injected = compare_cells(
        inject_regression(cell_metrics, "cand", "stall_", 1.25),
        "base", "cand", repeats=3,
    )
    for comparison in injected.regressions:
        print(f"injected x1.25 caught: {comparison.metric} "
              f"(delta {comparison.delta:.0f} > "
              f"threshold {comparison.threshold:.0f})")
    assert injected.regressions, "the detector must catch the injection"


if __name__ == "__main__":
    main()
