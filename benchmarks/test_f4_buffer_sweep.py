"""F4 — tracing overhead vs trace-buffer size x flush discipline.

The buffer-sizing trade-off the paper discusses: a smaller LS trace
buffer leaves more local store to the application but flushes more
often.  With PDT's double buffering the flush DMAs hide under
execution and overhead is nearly flat across sizes; with synchronous
(single-buffered) flushing every flush stalls the SPU, so small
buffers visibly hurt.  Event-dense streaming workload.
"""

from repro.pdt import TraceConfig
from repro.ta.report import format_table
from repro.workloads import StreamingPipelineWorkload, measure_overhead

BUFFER_KIB = (1, 2, 4, 8, 16)


def make_workload():
    return StreamingPipelineWorkload(stages=4, blocks=16, compute_per_block=3000)


def sweep():
    rows = []
    for kib in BUFFER_KIB:
        for double, label in ((True, "double"), (False, "single")):
            config = TraceConfig(buffer_bytes=kib * 1024, double_buffered=double)
            result = measure_overhead(make_workload, config)
            rows.append(
                {
                    "buffer_kib": kib,
                    "flush_mode": label,
                    "overhead_percent": round(result.overhead_percent, 2),
                    "flushes": result.flushes,
                }
            )
    return rows


def test_f4_buffer_sweep(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("f4_buffer_sweep.txt", format_table(rows))

    overhead = {
        (row["buffer_kib"], row["flush_mode"]): row["overhead_percent"]
        for row in rows
    }
    flushes = {
        (row["buffer_kib"], row["flush_mode"]): row["flushes"] for row in rows
    }
    # Smaller buffers flush more.
    assert flushes[(1, "double")] > flushes[(16, "double")]
    # Synchronous flushing: overhead falls as the buffer grows.
    assert overhead[(1, "single")] > overhead[(16, "single")]
    # Double buffering beats synchronous flushing at the smallest size...
    assert overhead[(1, "double")] < overhead[(1, "single")]
    # ...and is insensitive to buffer size (flat within 2 points).
    double_values = [overhead[(k, "double")] for k in BUFFER_KIB]
    assert max(double_values) - min(double_values) < 2.0
