"""T4 (extension) — trace-region policies: stop vs wrap.

What happens when a long run outgrows its trace region: the default
policy stops recording (keeps the oldest window of the run), wrap mode
keeps the *newest* window — the mode used to catch a failure's final
moments.  Same workload, same tiny region, both policies.
"""

from repro.pdt import TraceConfig
from repro.ta.report import format_table
from repro.workloads import StreamingPipelineWorkload, run_workload


def profile(wrap):
    config = TraceConfig(
        buffer_bytes=512, trace_region_bytes=4096, wrap=wrap
    )
    workload = StreamingPipelineWorkload(stages=2, blocks=40, block_bytes=1024)
    result = run_workload(workload, config)
    assert result.verified
    stats = result.hooks.stats.spe(0)
    trace = result.trace()
    kept = trace.records_for_spe(0)
    return {
        "policy": "wrap" if wrap else "stop",
        "recorded": stats.records,
        "dropped": stats.dropped_records,
        "overwritten": stats.overwritten_records,
        "kept": len(kept),
        "first_kept_kind": kept[0].kind,
        "last_kept_kind": kept[-1].kind,
    }


def measure_both():
    return [profile(False), profile(True)]


def test_t4_wrap_mode(benchmark, save_result):
    rows = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    stop, wrap = rows
    save_result("t4_wrap_mode.txt", format_table(rows))

    # Stop mode: keeps the beginning, drops the rest.
    assert stop["dropped"] > 0
    assert stop["overwritten"] == 0
    assert stop["first_kept_kind"] == "sync"  # the entry anchor survives
    # Wrap mode: drops nothing at record time, overwrites the oldest.
    assert wrap["dropped"] == 0
    assert wrap["overwritten"] > 0
    # Lossy runs end with the in-band loss summary appended at close.
    assert stop["last_kept_kind"] == "trace_loss"
    assert wrap["last_kept_kind"] == "trace_loss"
    # Both keep roughly a region's worth of records.
    assert abs(stop["kept"] - wrap["kept"]) < max(stop["kept"], wrap["kept"])
