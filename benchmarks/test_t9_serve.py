"""T9 — warm-catalog serving vs cold per-query library use.

The serving daemon's economic claim: a client that asks the daemon
pays the trace's open cost (header scan, frame index, zone-map
trailer, clock fit) **once per registration**, and repeat queries are
answered from the catalog's result/chunk caches — so a warm catalog
must answer the canned query set at least 5x faster than a cold
client that calls ``open_trace`` per query, which is exactly what
every pre-daemon consumer did.

Correctness is asserted in the same run as the timing: every served
response line must be byte-identical to the canonical encoding of the
same query executed directly through a serial :class:`repro.tq.Query`.
A fast wrong answer fails here, not in production.
"""

import json
import os
import time

from repro.pdt import TraceConfig, open_trace
from repro.serve import (
    ServeClient,
    ServerConfig,
    TraceCatalog,
    TraceServer,
    canonical_json,
)
from repro.serve.protocol import build_query
from repro.workloads import StreamingPipelineWorkload, run_and_write_trace

MIN_SPEEDUP = 5.0
ROUNDS = 3

QUERY_SPECS = (
    {
        "mode": "run",
        "where": {"side": 1},
        "groupby": ["core", "kind"],
        "agg": {"n": "count", "bytes": ["sum", "size"]},
    },
    {"mode": "count", "where": {"spe": 1}},
    {
        "mode": "run",
        "where_fields": [{"name": "size", "lo": 1}],
        "groupby": ["spe"],
        "agg": {"n": "count", "hi": ["max", "size"], "mid": ["p50", "size"]},
    },
    {
        "mode": "records",
        "where": {"t0": 0, "spe": 0},
        "project": ["time", "kind", "seq"],
    },
)


def _best_of(fn, rounds=ROUNDS):
    best_s = None
    for __ in range(rounds):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best_s = elapsed if best_s is None else min(best_s, elapsed)
    return best_s


def _direct_lines(path):
    """The oracle: every query executed serially per fresh open, each
    response canonically encoded.  This is also the *cold* workload."""
    lines = []
    for i, spec in enumerate(QUERY_SPECS):
        mode = spec.get("mode", "run")
        with open_trace(path) as source:
            query = build_query(source, spec)
            if mode == "run":
                result = query.run()
            elif mode == "records":
                result = [list(row) for row in query.records()]
            else:
                result = query.count()
        lines.append(
            canonical_json({"id": i, "ok": True, "result": result})
        )
    return lines


def measure(tmp_dir):
    path = os.path.join(tmp_dir, "t9.pdt")
    result, n_bytes = run_and_write_trace(
        StreamingPipelineWorkload(stages=4, blocks=3072), path,
        TraceConfig(buffer_bytes=4096),
    )
    assert result.verified

    want_lines = _direct_lines(path)

    def cold_pass():
        return _direct_lines(path)

    cold_s = _best_of(cold_pass)

    catalog = TraceCatalog(memory_budget=64 * 1024 * 1024)
    with TraceServer(catalog, ServerConfig(port=0)).start() as server:
        with ServeClient(server.address) as client:
            info = client.register("t9", path)
            assert info["records"] > 0

            def requests():
                return [
                    client.request_raw(
                        {"op": "query", "trace": "t9", "id": i, **spec}
                    )
                    for i, spec in enumerate(QUERY_SPECS)
                ]

            # First pass fills the caches and is checked for identity.
            assert requests() == want_lines, "served bytes diverged"
            warm_s = _best_of(requests)
            # Warm responses are still the same bytes.
            assert requests() == want_lines, "warm bytes diverged"
            stats = client.stats()

    assert stats["catalog"]["result_cache"]["hits"] >= len(QUERY_SPECS)
    assert stats["catalog"]["cached_bytes"] <= 64 * 1024 * 1024

    return {
        "trace_bytes": n_bytes,
        "records": info["records"],
        "chunks": info["chunks"],
        "queries": len(QUERY_SPECS),
        "cold_pass_ms": round(cold_s * 1e3, 2),
        "warm_pass_ms": round(warm_s * 1e3, 2),
        "speedup": round(cold_s / warm_s, 2),
        "result_cache_hits": stats["catalog"]["result_cache"]["hits"],
    }


def test_t9_warm_catalog_speedup(benchmark, save_result, tmp_path):
    row = benchmark.pedantic(measure, (str(tmp_path),), rounds=1, iterations=1)
    save_result(
        "BENCH_serve.json",
        json.dumps({"row": row, "min_speedup": MIN_SPEEDUP}, indent=2) + "\n",
    )
    assert row["speedup"] >= MIN_SPEEDUP, row
