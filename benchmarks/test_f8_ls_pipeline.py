"""F8 (extension) — SPE-to-SPE pipeline: through memory vs LS-to-LS.

Every LS is aliased into the effective-address space, so a pipeline
can hand blocks straight into the next SPE's local store — one EIB
hop, no DRAM latency — instead of PUT-to-memory + GET-from-memory.
This experiment measures what the direct path buys and shows the
trace-visible difference (fewer DMA commands touching main storage).
"""

from repro.pdt import TraceConfig
from repro.ta import analyze
from repro.ta.report import format_table
from repro.ta.stats import TraceStatistics
from repro.workloads import StreamingPipelineWorkload, run_workload


def profile(via_ls):
    workload = StreamingPipelineWorkload(
        stages=4, blocks=24, block_bytes=4096, compute_per_block=1500,
        via_ls=via_ls,
    )
    result = run_workload(workload, TraceConfig.dma_only())
    assert result.verified
    machine = result.machine
    dram_cmds = sum(
        1
        for spe in machine.spes
        for cmd in spe.mfc.completed_commands
        if not cmd.issuer.startswith("pdt-trace")
        and not machine.address_map.is_local_store(cmd.effective_addr)
    )
    ls_cmds = sum(
        1
        for spe in machine.spes
        for cmd in spe.mfc.completed_commands
        if machine.address_map.is_local_store(cmd.effective_addr)
    )
    stats = TraceStatistics.from_model(analyze(result.trace()))
    mean_wait_dma = sum(
        s.stall_fraction("wait_dma") for s in stats.per_spe.values()
    ) / len(stats.per_spe)
    return {
        "path": "ls-to-ls" if via_ls else "through-memory",
        "cycles": result.elapsed_cycles,
        "dram_dma_cmds": dram_cmds,
        "ls_dma_cmds": ls_cmds,
        "mean_wait_dma_frac": round(mean_wait_dma, 3),
    }


def measure_both():
    return [profile(False), profile(True)]


def test_f8_ls_pipeline(benchmark, save_result):
    rows = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    memory_path, ls_path = rows
    speedup = memory_path["cycles"] / ls_path["cycles"]
    text = format_table(rows) + f"\nspeedup from LS-to-LS handoff: {speedup:.2f}x\n"
    save_result("f8_ls_pipeline.txt", text)

    assert speedup > 1.02
    # The direct path replaces DRAM traffic with LS-window traffic.
    assert ls_path["dram_dma_cmds"] < memory_path["dram_dma_cmds"]
    assert ls_path["ls_dma_cmds"] > 0
    assert memory_path["ls_dma_cmds"] == 0
    # Less waiting on DRAM round trips.
    assert ls_path["mean_wait_dma_frac"] <= memory_path["mean_wait_dma_frac"]
