"""F1 — the TA's timeline view of a pipeline workload.

Regenerates the paper's signature figure: per-SPE execution-state
lanes with DMA-in-flight bars, for a 4-stage streaming pipeline.
Produces both the ASCII rendering (saved as text) and the SVG.
"""

from repro.pdt import TraceConfig
from repro.ta import analyze, render_ascii, render_svg
from repro.workloads import StreamingPipelineWorkload, run_workload


def build_timeline():
    workload = StreamingPipelineWorkload(
        stages=4, blocks=16, block_bytes=4096, compute_per_block=6000
    )
    result = run_workload(workload, TraceConfig())
    assert result.verified
    model = analyze(result.trace())
    return model


def test_f1_timeline(benchmark, save_result):
    model = benchmark.pedantic(build_timeline, rounds=1, iterations=1)
    ascii_art = render_ascii(model, width=100)
    save_result("f1_timeline.txt", ascii_art)
    svg = render_svg(model)
    save_result("f1_timeline.svg", svg)

    # One state lane + one DMA lane per SPE.
    assert ascii_art.count("dma |") == 4
    for spe_id in range(4):
        assert f"spe{spe_id}" in ascii_art
    # The pipeline shows all three activity classes somewhere.
    body = "\n".join(
        line for line in ascii_art.splitlines() if line.startswith("spe")
    )
    assert "#" in body  # computing
    assert "s" in body or "m" in body  # synchronization waits
    # SVG carries every interval of every core.
    total_intervals = sum(len(c.intervals) for c in model.cores.values())
    assert svg.count("<rect") >= total_intervals
