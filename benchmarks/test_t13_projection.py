"""T13 — projection pushdown: narrow queries over v6 vs v5 full decode.

The v6 format's economic claim: because each column section is
compressed independently and the query plan pushes its required-column
set down to the reader, a narrow query — the paper's per-event rate
table, the kind profile, time-bucketed stall counts — decompresses and
materializes only the small dictionary/varint sections it reads
instead of the whole chunk.  The gate is **≥2x end-to-end** on the
narrow-query suite over compressed traces, measured against the v5
full-decode baseline (``REPRO_FULL_DECODE=1`` over a v5 file — exactly
what every query paid before this optimization), with **identical
results asserted in the same run**.

Both sides run over a pre-opened :class:`TraceHandle` whose clock fit
is already cached — the analysis-session shape ``repro.serve`` and the
CLI use — so the race times the scans themselves, not a shared
correlator fit repeated per query.

The compression economics must survive the format change too: the v6
aggregate on-disk ratio against v4 stays ≥3x (T10's gate) and within
10% of the v5 ratio — per-section framing costs a few header bytes per
chunk, not the ratio.
"""

import json
import os
import time

from repro.pdt import TraceConfig, write_trace
from repro.pdt.format import (
    VERSION_COMPRESSED,
    VERSION_INDEXED,
    VERSION_SECTIONED,
)
from repro.pdt.handle import open_handle
from repro.tq import Query
from repro.workloads import (
    MatmulWorkload,
    StreamingPipelineWorkload,
    run_workload,
)

MIN_SPEEDUP = 2.0
MIN_AGGREGATE_RATIO = 3.0  # T10's gate, preserved on v6
MAX_RATIO_DRIFT = 0.10
REPEATS = 5

WORKLOADS = (
    ("streaming", lambda: StreamingPipelineWorkload(stages=4, blocks=2048)),
    (
        "streaming-large",
        lambda: StreamingPipelineWorkload(stages=4, blocks=4096),
    ),
    ("matmul", lambda: MatmulWorkload(n=512, tile=32, n_spes=4)),
)

#: The event-rate table: one count per DMA/stall/signal kind, the
#: paper's per-event activity summary.  Kinds a workload never emits
#: count zero on both sides — still a differential data point.
RATE_KINDS = (
    "mfc_get",
    "mfc_put",
    "mfc_getl",
    "mfc_putl",
    "wait_tag_begin",
    "signal_send",
    "read_signal_begin",
)


def _narrow_answers(handle):
    """The gated narrow-query suite: count-by-event for each kind in
    the rate table, the kind profile, and time-bucketed stall counts —
    the paper's "how many DMAs and waits, when" questions.  None of
    them reads the payload; the bucketed query is the only one that
    touches ``raw_ts``/``core`` (placement is per-core)."""
    rates = tuple(
        Query(handle).where(event=kind).count() for kind in RATE_KINDS
    )
    profile = tuple(
        tuple(sorted(row.items()))
        for row in Query(handle).groupby("kind").agg(n="count").run()
    )
    stalls = tuple(
        tuple(sorted(row.items()))
        for row in (
            Query(handle)
            .where(event=("wait_tag_begin", "wait_tag_end"))
            .groupby("bucket", time_bucket=1_000_000)
            .agg(n="count")
            .run()
        )
    )
    return rates, profile, stalls


def _wide_answers(handle):
    """A payload-reading control query, asserted identical but not
    gated: it must pull the values section either way."""
    rows = (
        Query(handle)
        .where(event=("mfc_get", "mfc_put", "mfc_getl", "mfc_putl"))
        .groupby("kind")
        .agg(n="count", bytes=("sum", "size"))
        .run()
    )
    return tuple(tuple(sorted(row.items())) for row in rows)


def _timed(fn, *args):
    best = None
    value = None
    for __ in range(REPEATS):
        started = time.perf_counter()
        value = fn(*args)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, value


def measure(tmp_dir):
    rows = []
    narrow_v6_s = narrow_v5full_s = 0.0
    total_v4 = total_v5 = total_v6 = 0
    for name, factory in WORKLOADS:
        result = run_workload(factory(), TraceConfig(buffer_bytes=4096))
        source = result.trace_source()
        paths = {}
        for label, version in (
            ("v4", VERSION_INDEXED),
            ("v5", VERSION_COMPRESSED),
            ("v6", VERSION_SECTIONED),
        ):
            source.header.version = version
            paths[label] = os.path.join(tmp_dir, f"{name}-{label}.pdt")
            write_trace(source, paths[label])
        total_v4 += os.path.getsize(paths["v4"])
        total_v5 += os.path.getsize(paths["v5"])
        total_v6 += os.path.getsize(paths["v6"])

        # One handle per side, clock fit cached up front: the race
        # times decode + scan, identically shaped on both sides.
        baseline = open_handle(paths["v5"])
        baseline.correlator()
        pushdown = open_handle(paths["v6"])
        pushdown.correlator()
        try:
            # --- the race: v6 masked vs v5 forced-full decode ---
            os.environ["REPRO_FULL_DECODE"] = "1"
            try:
                base_s, base_narrow = _timed(_narrow_answers, baseline)
                base_wide = _wide_answers(baseline)
            finally:
                del os.environ["REPRO_FULL_DECODE"]
            push_s, push_narrow = _timed(_narrow_answers, pushdown)
            push_wide = _wide_answers(pushdown)
        finally:
            baseline.close()
            pushdown.close()

        # --- in-run identity: the ratio of a wrong answer is noise ---
        assert push_narrow == base_narrow, (
            f"{name}: narrow answers diverged between v6 masked and v5 full"
        )
        assert push_wide == base_wide, (
            f"{name}: payload answers diverged between v6 masked and v5 full"
        )

        narrow_v6_s += push_s
        narrow_v5full_s += base_s
        rows.append(
            {
                "workload": name,
                "records": source.n_records,
                "v5_full_decode_ms": round(base_s * 1e3, 2),
                "v6_pushdown_ms": round(push_s * 1e3, 2),
                "speedup": round(base_s / push_s, 2),
            }
        )

    v5_ratio = total_v4 / total_v5
    v6_ratio = total_v4 / total_v6
    return {
        "rows": rows,
        "aggregate_speedup": round(narrow_v5full_s / narrow_v6_s, 2),
        "v5_aggregate_ratio": round(v5_ratio, 2),
        "v6_aggregate_ratio": round(v6_ratio, 2),
        "ratio_drift": round(abs(v6_ratio - v5_ratio) / v5_ratio, 4),
    }


def test_t13_projection_pushdown(benchmark, save_result, tmp_path):
    report = benchmark.pedantic(
        measure, (str(tmp_path),), rounds=1, iterations=1
    )
    save_result(
        "BENCH_projection.json",
        json.dumps(
            {
                **report,
                "min_speedup": MIN_SPEEDUP,
                "min_aggregate_ratio": MIN_AGGREGATE_RATIO,
                "max_ratio_drift": MAX_RATIO_DRIFT,
            },
            indent=2,
        ) + "\n",
    )
    assert report["aggregate_speedup"] >= MIN_SPEEDUP, report
    assert report["v6_aggregate_ratio"] >= MIN_AGGREGATE_RATIO, report
    assert report["ratio_drift"] <= MAX_RATIO_DRIFT, report
