"""T11 — the F2 use case re-expressed as corpus queries.

F2 compares a single- and a double-buffered matmul by building two
in-memory timeline models by hand.  The corpus layer makes that
comparison declarative: run the two variants as matrix cells, open the
corpus through a shared catalog, and ask ``diff`` — every number a
frozen :class:`~repro.tq.pipeline.QueryPlan` over shared handles, so
the same report is cache-keyable, shardable, and byte-stable.

Asserted in the same run as the timing:

* the corpus diff reproduces F2's findings — the double-buffered
  variant is faster (span) and stalls less on DMA, while moving the
  same data;
* the ranked report puts a stall/span metric on top — "what changed"
  is answered by the ranking, not by eyeballing;
* the whole diff is byte-identical computed serially and with
  ``jobs=4`` (the corpus determinism contract).
"""

import json

from repro.corpus import diff_runs, open_corpus, run_matrix
from repro.corpus.runner import CellSpec

MIN_SPEEDUP = 1.15


def build_and_diff(out_dir, jobs):
    cells = [
        CellSpec(workload="matmul", n_spes=4, label="single"),
        CellSpec(workload="matmul-db", n_spes=4, label="double"),
    ]
    manifest = run_matrix(cells, out_dir, repeats=1, base_seed=0)
    single_id = manifest.runs[0].run_id
    double_id = manifest.runs[1].run_id
    with open_corpus(manifest) as catalog:
        return diff_runs(catalog, single_id, double_id, jobs=jobs)


def test_t11_corpus_diff(benchmark, save_result, tmp_path):
    diff = benchmark.pedantic(
        build_and_diff, args=(str(tmp_path / "corpus"), 1),
        rounds=1, iterations=1,
    )
    metrics = {delta.name: delta for delta in diff.metrics}

    # F2's conclusions, via corpus queries alone.
    span = metrics["span_cycles"]
    stall = metrics["stall_dma_cycles"]
    speedup = span.baseline / span.candidate
    assert speedup > MIN_SPEEDUP, "double buffering must pay off"
    assert stall.delta < 0, "double buffering must cut DMA stalls"
    assert metrics["dma_bytes"].baseline == metrics["dma_bytes"].candidate, (
        "both variants move the same data"
    )
    # The ranking surfaces the regression story by itself: the top
    # changed metric is a stall/span movement, not a byte count.
    top = diff.metrics[0]
    assert top.name.startswith("stall_") or top.name == "span_cycles"

    # Determinism contract: jobs=4 reproduces the serial diff
    # byte-for-byte (same corpus, rebuilt fresh to stay independent).
    reference = build_and_diff(str(tmp_path / "corpus4"), 4)
    serial_again = build_and_diff(str(tmp_path / "corpus1"), 1)
    a = json.dumps(reference.to_json(), sort_keys=True)
    b = json.dumps(serial_again.to_json(), sort_keys=True)
    assert a == b, "jobs=4 diff must be byte-identical to serial"

    payload = {
        "bench": "t11_corpus",
        "speedup_from_double_buffering": round(speedup, 3),
        "stall_dma_delta": stall.delta,
        "top_metric": top.name,
        "rows": [delta.row() for delta in diff.metrics],
    }
    save_result("BENCH_t11_corpus.json", json.dumps(payload, indent=2) + "\n")
    save_result(
        "t11_corpus.txt",
        diff.format_report()
        + f"\nspeedup from double buffering: {speedup:.2f}x\n",
    )
