"""T7 — parallel sharded queries: wall-clock scaling of repro.par.

The parallel engine's whole claim is "same bytes, less wall clock":
a full-scan groupby sharded over 4 worker processes must return rows
identical to the serial run — asserted here on every execution — and,
given 4 real CPUs, complete at least 2x faster.

The measured trace is rewritten into >= 64 fixed-size chunks (the
layout a merge/convert step produces), because sharding granularity is
chunk ranges: a 5-chunk tracer-native file cannot balance 4 workers.
On machines with fewer than 4 CPUs the speedup gate is reported but
not enforced — a 1-CPU container cannot exhibit parallel speedup, and
pretending otherwise would just gate on scheduler noise.  The
correctness half (byte-identical rows) is enforced everywhere.
"""

import json
import os
import time

from repro.pdt import TraceConfig, open_trace
from repro.pdt.writer import ChunkWriter
from repro.par import parallel_rows
from repro.tq import Query
from repro.workloads import StreamingPipelineWorkload, run_and_write_trace

JOBS = 4
MIN_SPEEDUP = 2.0
MIN_CHUNKS = 64
ROUNDS = 3


def _build_query(source):
    return (
        Query(source)
        .groupby("side", "core", "kind")
        .agg(count="count", t_min=("min", "time"), t_max=("max", "time"))
    )


def _rewrite_chunked(src_path, dst_path, n_chunks):
    """Rewrite the trace into ~n_chunks fixed-size chunks, preserving
    record order (so results stay byte-identical to the native file)."""
    source = open_trace(src_path)
    chunk_records = max(1, source.n_records // n_chunks)
    writer = ChunkWriter(dst_path, source.header, chunk_records=chunk_records)
    for chunk in source.iter_chunks():
        for i in range(len(chunk)):
            writer.append(
                chunk.side[i], chunk.code[i], chunk.core[i], chunk.seq[i],
                chunk.raw_ts[i],
                chunk.values[chunk.val_off[i]:chunk.val_off[i + 1]],
            )
    writer.close()


def _best_of(fn, rounds=ROUNDS):
    best_s, result = None, None
    for __ in range(rounds):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best_s = elapsed if best_s is None else min(best_s, elapsed)
    return result, best_s


def measure(tmp_dir):
    native = os.path.join(tmp_dir, "t7-native.pdt")
    result, n_bytes = run_and_write_trace(
        StreamingPipelineWorkload(stages=4, blocks=1024), native,
        TraceConfig(buffer_bytes=4096),
    )
    assert result.verified
    sharded = os.path.join(tmp_dir, "t7-chunked.pdt")
    _rewrite_chunked(native, sharded, 128)

    probe = open_trace(sharded)
    n_chunks, n_records = probe.n_chunks, probe.n_records
    probe.close()
    assert n_chunks >= MIN_CHUNKS, f"only {n_chunks} chunks"

    def serial():
        with open_trace(sharded) as source:
            return _build_query(source).run()

    def parallel():
        with open_trace(sharded) as source:
            query = _build_query(source)
            rows = parallel_rows(query, JOBS)
            return rows, query.stats

    serial_rows, serial_s = _best_of(serial)
    (parallel_out, stats), parallel_s = _best_of(parallel)

    # The correctness half of the gate, in the same run as the timing:
    # identical rows, identical scan accounting.
    assert parallel_out == serial_rows, "parallel rows diverged from serial"
    assert stats is not None and stats.total_chunks == n_chunks

    cpus = os.cpu_count() or 1
    return {
        "trace_bytes": n_bytes,
        "records": n_records,
        "chunks": n_chunks,
        "jobs": JOBS,
        "cpu_count": cpus,
        "serial_ms": round(serial_s * 1e3, 2),
        "parallel_ms": round(parallel_s * 1e3, 2),
        "speedup": round(serial_s / parallel_s, 2),
        "rows": len(serial_rows),
        "gate_enforced": cpus >= JOBS,
    }


def test_t7_parallel_speedup(benchmark, save_result, tmp_path):
    row = benchmark.pedantic(measure, (str(tmp_path),), rounds=1, iterations=1)
    save_result(
        "BENCH_parallel.json",
        json.dumps({"row": row, "min_speedup": MIN_SPEEDUP}, indent=2) + "\n",
    )
    if row["gate_enforced"]:
        assert row["speedup"] >= MIN_SPEEDUP, row
