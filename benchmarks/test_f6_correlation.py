"""F6 — clock-correlation accuracy under decrementer offset and drift.

The trace carries per-core raw clocks only; the analyzer recovers the
global timeline from sync records.  This experiment dials in per-SPE
decrementer offsets and drift and measures the reconstruction error
against the simulator's ground truth (which is never visible to the
correlator).  Expected shape: error stays within a few timebase ticks
(the inherent quantization) regardless of drift.
"""

import numpy as np

from repro.cell import CellConfig
from repro.pdt import TraceConfig
from repro.pdt.correlate import CorrelatedTrace, correlation_errors
from repro.ta.report import format_table
from repro.workloads import FftWorkload, run_workload

DRIFTS_PPM = (0.0, 100.0, 500.0)
TIMEBASE_DIVIDER = 120


def run_with_drift(drift_ppm):
    # Offsets stay below SPE program start: software loads the
    # decrementer while the context is being created, so it is always
    # running by the time the first record is stamped (a clock that
    # starts *after* tracing begins is unrecoverable by construction).
    config = CellConfig(n_spes=4, main_memory_size=1 << 27).with_skewed_clocks(
        offsets=[0, 500, 1_000, 1_500],
        drifts_ppm=[0.0, drift_ppm / 2, drift_ppm, -drift_ppm],
    )
    workload = FftWorkload(points=1024, batch=24, n_spes=4)
    result = run_workload(workload, TraceConfig(buffer_bytes=2048),
                          cell_config=config)
    assert result.verified
    correlated = CorrelatedTrace.build(result.trace())
    errors = np.array(correlation_errors(correlated.placed))
    return {
        "drift_ppm": drift_ppm,
        "records": len(errors),
        "mean_error_cycles": round(float(errors.mean()), 1),
        "p95_error_cycles": round(float(np.percentile(errors, 95)), 1),
        "max_error_cycles": int(errors.max()),
        "max_error_ticks": round(errors.max() / TIMEBASE_DIVIDER, 2),
    }


def sweep():
    return [run_with_drift(d) for d in DRIFTS_PPM]


def test_f6_correlation_accuracy(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("f6_correlation.txt", format_table(rows))

    for row in rows:
        # Placement error bounded by a few clock ticks at any drift.
        assert row["max_error_cycles"] <= 5 * TIMEBASE_DIVIDER, row
        # Mean error well under one tick's worth of cycles.
        assert row["mean_error_cycles"] < 2 * TIMEBASE_DIVIDER
        assert row["records"] > 100
