"""F2 — use case: DMA stall analysis, single vs double buffering.

The before/after pair at the heart of the paper's first use case: the
TA shows a single-buffered matmul stalling on every tile fetch, the
double-buffered rewrite hides the transfers, and the trace-derived
metrics (wait-dma fraction, overlap fraction, utilization) quantify
the win alongside the raw speedup.
"""

from repro.pdt import TraceConfig
from repro.ta import analyze, analyze_buffering
from repro.ta.report import format_table
from repro.ta.stats import TraceStatistics
from repro.workloads import MatmulWorkload, run_workload


def profile(double_buffered):
    workload = MatmulWorkload(
        n=256, tile=64, n_spes=4, double_buffered=double_buffered
    )
    result = run_workload(workload, TraceConfig.dma_only())
    assert result.verified
    model = analyze(result.trace())
    stats = TraceStatistics.from_model(model)
    report = analyze_buffering(model, 0)
    return {
        "variant": "double" if double_buffered else "single",
        "cycles": result.elapsed_cycles,
        "utilization": round(stats.per_spe[0].utilization, 3),
        "wait_dma_frac": round(report.wait_dma_fraction, 3),
        "overlap_frac": round(report.overlap_fraction, 3),
        "verdict": report.verdict.split(":")[0],
    }


def measure_both():
    return [profile(False), profile(True)]


def test_f2_double_buffering(benchmark, save_result):
    rows = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    single, double = rows
    speedup = single["cycles"] / double["cycles"]
    text = format_table(rows) + f"\nspeedup from double buffering: {speedup:.2f}x\n"
    save_result("f2_double_buffering.txt", text)

    # The analyses identify each variant correctly...
    assert single["verdict"] == "single-buffered"
    assert double["verdict"] == "double-buffered"
    # ...the stall numbers move the right way...
    assert single["wait_dma_frac"] > 0.2
    assert double["wait_dma_frac"] < 0.2
    assert double["overlap_frac"] > single["overlap_frac"]
    assert double["utilization"] > single["utilization"]
    # ...and the fix actually pays off.
    assert speedup > 1.15
