"""A2 (extension) — reduction merge strategies and atomic contention.

The histogram workload's merge phase two ways: GETLLAR/PUTLLC atomic
read-modify-write of the shared bins versus staging private copies for
a PPE fold.  The table shows both scale with SPE count, and how the
atomic path's lock-line contention (failed PUTLLCs forcing retries)
grows as more SPEs finish their streaming phase together — the cost
one pays for keeping the reduction off the control core.
"""

from repro.ta.report import format_table
from repro.workloads import HistogramWorkload, run_workload

SPE_COUNTS = (2, 4, 8)


def profile(merge, n_spes):
    workload = HistogramWorkload(
        samples=32 * 1024, bins=256, block_bytes=4096,
        n_spes=n_spes, merge=merge,
    )
    result = run_workload(workload)
    assert result.verified
    station = result.machine.reservations
    return {
        "merge": merge,
        "spes": n_spes,
        "cycles": result.elapsed_cycles,
        "putllc_attempts": station.putllc_attempts,
        "putllc_failures": station.putllc_failures,
    }


def sweep():
    return [
        profile(merge, n) for merge in ("atomic", "ppe") for n in SPE_COUNTS
    ]


def test_a2_merge_strategies(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("a2_merge_strategies.txt", format_table(rows))

    by_key = {(r["merge"], r["spes"]): r for r in rows}
    # Both strategies scale: more SPEs, less wall-clock.
    for merge in ("atomic", "ppe"):
        cycles = [by_key[(merge, n)]["cycles"] for n in SPE_COUNTS]
        assert cycles == sorted(cycles, reverse=True)
    # Atomic contention grows with SPE count.
    failures = [by_key[("atomic", n)]["putllc_failures"] for n in SPE_COUNTS]
    assert failures == sorted(failures)
    assert failures[-1] > failures[0]
    # The PPE path uses no atomics at all.
    assert all(by_key[("ppe", n)]["putllc_attempts"] == 0 for n in SPE_COUNTS)
