"""F9 (extension) — DMA concurrency over time.

The time-series view behind the buffering use case: a single-buffered
kernel's in-flight DMA count saw-tooths between 0 and 1 (the SPU
serializes transfer and compute), while the double-buffered kernel
sustains ~1 transfer in flight throughout.  Matching the utilization
numbers of F2, but phase-resolved.
"""

from repro.pdt import TraceConfig
from repro.ta import analyze
from repro.ta.report import format_table
from repro.ta.series import dma_inflight_series
from repro.workloads import MatmulWorkload, run_workload


def profile(double_buffered):
    workload = MatmulWorkload(
        n=256, tile=64, n_spes=1, double_buffered=double_buffered
    )
    result = run_workload(workload, TraceConfig.dma_only())
    assert result.verified
    model = analyze(result.trace())
    __, inflight = dma_inflight_series(model, buckets=40, spe_id=0)
    return inflight


def measure_both():
    return {"single": profile(False), "double": profile(True)}


def test_f9_dma_concurrency(benchmark, save_result):
    series = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    single, double = series["single"], series["double"]
    rows = [
        {
            "bucket": i,
            "single_inflight": round(float(s), 2),
            "double_inflight": round(float(d), 2),
        }
        for i, (s, d) in enumerate(zip(single, double))
    ]
    text = format_table(rows) + (
        f"\nmean in-flight: single={single.mean():.2f} double={double.mean():.2f}\n"
    )
    save_result("f9_dma_concurrency.txt", text)

    # Double buffering sustains more overlap on average...
    assert double.mean() > single.mean() * 1.3
    # ...and keeps a transfer in flight through most of the run
    # (ignore the tail buckets where the kernel drains).
    steady = double[2:-4]
    assert (steady > 0.5).mean() > 0.8
