"""F11 (extension) — critical-path extraction finds the binding chain.

Walking the blocking chain backwards from the last finisher — compute
time stays local, communication waits jump to the late sender — turns
the bottleneck question into arithmetic.  Two runs of the same
pipeline: balanced (the path spreads across stages) and with a hidden
8x-slower stage 2 (the path collapses onto it).
"""

from repro.pdt import TraceConfig
from repro.ta import analyze, critical_path
from repro.ta.report import format_table
from repro.workloads import StreamingPipelineWorkload, run_workload


def profile(bottleneck_stage):
    workload = StreamingPipelineWorkload(
        stages=4, blocks=24, block_bytes=4096, compute_per_block=3000,
        depth=2, bottleneck_stage=bottleneck_stage, bottleneck_factor=8,
    )
    result = run_workload(workload, TraceConfig())
    assert result.verified
    path = critical_path(analyze(result.trace()))
    by_core = path.time_by_core()
    total = sum(by_core.values()) or 1
    return {
        "pipeline": "balanced" if bottleneck_stage is None else "bottlenecked",
        "path_steps": len(path.steps),
        "dominant_core": path.dominant_core(),
        "dominant_share": round(by_core[path.dominant_core()] / total, 3),
        "spe2_share": round(by_core.get("spe2", 0) / total, 3),
    }


def measure_both():
    return [profile(None), profile(2)]


def test_f11_critical_path(benchmark, save_result):
    rows = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    balanced, bottlenecked = rows
    save_result("f11_critical_path.txt", format_table(rows))

    # With the hidden bottleneck, the path collapses onto stage 2
    # almost entirely...
    assert bottlenecked["dominant_core"] == "spe2"
    assert bottlenecked["spe2_share"] > 0.9
    # ...while the balanced pipeline's path is visibly less
    # concentrated (in a credit-coupled uniform pipeline the walk still
    # favours one mutually-rate-limiting stage, so the contrast is a
    # gap, not a uniform spread).
    assert balanced["dominant_share"] < 0.9
    assert bottlenecked["dominant_share"] > balanced["dominant_share"] + 0.1
