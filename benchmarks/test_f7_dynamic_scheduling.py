"""F7 (extension) — static vs dynamic work distribution.

The load-balance use case, one step further: the Mandelbrot workload's
per-row cost is wildly uneven, so a static contiguous split is unfair
*even though every SPE gets the same number of rows*.  The dynamic
variant claims rows from a shared atomic work queue (GETLLAR/PUTLLC
fetch-and-increment).  The TA quantifies both: imbalance factor and
makespan.
"""

from repro.pdt import TraceConfig
from repro.ta import analyze, analyze_load_balance
from repro.ta.report import format_table
from repro.ta.stats import TraceStatistics
from repro.workloads import MandelbrotWorkload, run_workload


def profile(schedule):
    workload = MandelbrotWorkload(
        width=128, height=32, max_iterations=96, n_spes=4, schedule=schedule
    )
    result = run_workload(workload, TraceConfig.dma_only())
    assert result.verified
    stats = TraceStatistics.from_model(analyze(result.trace()))
    report = analyze_load_balance(stats)
    return {
        "schedule": schedule,
        "cycles": result.elapsed_cycles,
        "imbalance": round(report.imbalance_factor, 2),
        "rows_by_spe": str(
            [workload.rows_done_by[i] for i in range(workload.n_spes)]
        ),
        "atomic_ops": result.machine.reservations.putllc_attempts,
    }


def measure_both():
    return [profile("static"), profile("dynamic")]


def test_f7_dynamic_scheduling(benchmark, save_result):
    rows = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    static, dynamic = rows
    speedup = static["cycles"] / dynamic["cycles"]
    text = format_table(rows) + f"\nspeedup from dynamic scheduling: {speedup:.2f}x\n"
    save_result("f7_dynamic_scheduling.txt", text)

    # The fractal makes the static split imbalanced; the queue fixes it.
    assert static["imbalance"] > dynamic["imbalance"]
    assert dynamic["imbalance"] < 1.25
    assert speedup > 1.1
    # Dynamic really used the atomic unit.
    assert dynamic["atomic_ops"] > 30
    assert static["atomic_ops"] == 0
