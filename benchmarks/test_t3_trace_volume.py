"""T3 — trace volume: records, bytes, and flush DMAs per workload.

The storage side of the overhead discussion: how much trace data each
workload generates, how many buffer-flush DMAs carried it out of local
store, and the effective bytes-per-record of the format.
"""

from repro.pdt import TraceConfig
from repro.ta.report import format_table
from repro.workloads import (
    FftWorkload,
    MatmulWorkload,
    MonteCarloWorkload,
    SpmvWorkload,
    StreamingPipelineWorkload,
    run_workload,
)

WORKLOADS = (
    ("matmul", lambda: MatmulWorkload(n=256, tile=64, n_spes=4)),
    ("fft", lambda: FftWorkload(points=1024, batch=32, n_spes=4)),
    ("streaming", lambda: StreamingPipelineWorkload(stages=4, blocks=16)),
    ("montecarlo", lambda: MonteCarloWorkload(samples_per_spe=20_000, n_spes=4)),
    ("spmv", lambda: SpmvWorkload(n=2048, density=0.02, rows_per_block=256, n_spes=4)),
)


def measure_all():
    rows = []
    for name, factory in WORKLOADS:
        result = run_workload(factory(), TraceConfig(buffer_bytes=4096))
        stats = result.hooks.stats
        spe_records = sum(s.records for s in stats.per_spe.values())
        spe_bytes = sum(s.bytes_buffered for s in stats.per_spe.values())
        rows.append(
            {
                "workload": name,
                "spe_records": spe_records,
                "ppe_records": stats.ppe_records,
                "spe_bytes": spe_bytes,
                "flushes": stats.total_flushes,
                "flush_bytes": stats.total_flush_bytes,
                "bytes_per_record": round(spe_bytes / spe_records, 1),
                "records_per_us": round(
                    stats.total_records / result.elapsed_us, 1
                ),
            }
        )
    return rows


def test_t3_trace_volume(benchmark, save_result):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    save_result("t3_trace_volume.txt", format_table(rows))

    by_name = {row["workload"]: row for row in rows}
    for row in rows:
        # Everything buffered eventually flushed (final flush at exit).
        assert row["flush_bytes"] == row["spe_bytes"]
        # Record encoding is 16-byte padded, 16..80 bytes each.
        assert 16 <= row["bytes_per_record"] <= 80
        assert row["flushes"] >= 4  # at least the final flush per SPE
    # The chatty pipeline out-records the quiet Monte Carlo by far.
    assert by_name["streaming"]["spe_records"] > 5 * by_name["montecarlo"]["spe_records"]
