"""T8 — batch codec and columnar kernels vs the scalar reference.

PR 5's claim is that killing the per-record interpreter loop pays for
itself twice over: chunk decode must run at least 3x faster through
:func:`repro.pdt.codec.decode_batch` than through the per-record
``decode_fields`` loop, and a filtered group-and-reduce query must
finish at least 2x faster end to end through the columnar kernels in
:mod:`repro.tq.kernels` than through the scalar scan.

Both halves are measured in the same process by flipping the
``REPRO_SCALAR_CODEC`` escape hatch (checked dynamically on every
call), and *byte identity is asserted in the same run as the timing*:
the batch-decoded store must match the scalar-decoded store column for
column, ``encode_batch`` must emit exactly the bytes of the per-record
join, and the kernel query rows must equal the scalar rows.  A fast
wrong answer fails here, not in production.

The workload is tracer-native output from the streaming-pipeline
simulation — run-length-1 record mixes, i.e. the *worst* case for any
run-based batching, which is exactly why the codec batches whole
chunks instead.
"""

import json
import os
import time

from repro.pdt import TraceConfig, open_trace
from repro.pdt.codec import encode_batch, encode_chunk_scalar
from repro.pdt.events import SIDE_SPE
from repro.pdt.store import ColumnStore
from repro.tq import Query
from repro.workloads import StreamingPipelineWorkload, run_and_write_trace

MIN_DECODE_SPEEDUP = 3.0
MIN_QUERY_SPEEDUP = 2.0
ROUNDS = 3


class scalar_mode:
    """Force the scalar reference paths within the ``with`` block."""

    def __enter__(self):
        self._prior = os.environ.get("REPRO_SCALAR_CODEC")
        os.environ["REPRO_SCALAR_CODEC"] = "1"

    def __exit__(self, *exc_info):
        if self._prior is None:
            del os.environ["REPRO_SCALAR_CODEC"]
        else:
            os.environ["REPRO_SCALAR_CODEC"] = self._prior


def _best_of(fn, rounds=ROUNDS):
    best_s, result = None, None
    for __ in range(rounds):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best_s = elapsed if best_s is None else min(best_s, elapsed)
    return result, best_s


def _chunk_payloads(path):
    """The trace's chunk payloads, re-encoded through the scalar
    reference encoder so the decode measurement sees pure codec bytes
    (no file framing, no CRC)."""
    payloads = []
    with open_trace(path) as source:
        for chunk in source.iter_chunks():
            payloads.append(encode_chunk_scalar(chunk))
    return payloads


def _ingest(payloads):
    store = ColumnStore()
    for payload in payloads:
        store.append_encoded(payload)
    return store


def _store_columns(store):
    columns = []
    for chunk in store.iter_chunks():
        columns.append(
            (
                bytes(chunk.side), bytes(chunk.code), bytes(chunk.core),
                bytes(chunk.seq), bytes(chunk.raw_ts), bytes(chunk.values),
                bytes(chunk.val_off), bytes(chunk.truth),
            )
        )
    return columns


def _build_query(source):
    return (
        Query(source)
        .where(side=SIDE_SPE)
        .where_field("size", lo=1)
        .groupby("core", "kind")
        .agg(n="count", total=("sum", "size"), t_hi=("max", "time"))
    )


def measure(tmp_dir):
    path = os.path.join(tmp_dir, "t8.pdt")
    result, n_bytes = run_and_write_trace(
        StreamingPipelineWorkload(stages=4, blocks=3072), path,
        TraceConfig(buffer_bytes=4096),
    )
    assert result.verified

    # -- gate 1: chunk decode throughput -------------------------------
    payloads = _chunk_payloads(path)
    batch_store, batch_s = _best_of(lambda: _ingest(payloads))
    with scalar_mode():
        scalar_store, scalar_s = _best_of(lambda: _ingest(payloads))
    n_records = len(scalar_store)
    assert len(batch_store) == n_records
    assert _store_columns(batch_store) == _store_columns(scalar_store), (
        "batch decode diverged from the scalar reference"
    )

    # Byte identity of the batch encoder against the per-record join,
    # on every chunk of the store just decoded.
    for chunk in batch_store.iter_chunks():
        assert encode_batch(chunk) == encode_chunk_scalar(chunk)

    # -- gate 2: end-to-end filtered aggregation -----------------------
    def run_query():
        with open_trace(path) as source:
            return _build_query(source).run()

    kernel_rows, kernel_s = _best_of(run_query)
    with scalar_mode():
        scalar_rows, scalar_query_s = _best_of(run_query)
    assert kernel_rows == scalar_rows, "kernel rows diverged from scalar"
    assert kernel_rows, "query matched nothing — workload changed?"

    return {
        "trace_bytes": n_bytes,
        "records": n_records,
        "chunks": len(payloads),
        "decode_scalar_ms": round(scalar_s * 1e3, 2),
        "decode_batch_ms": round(batch_s * 1e3, 2),
        "decode_speedup": round(scalar_s / batch_s, 2),
        "decode_batch_mrec_per_s": round(n_records / batch_s / 1e6, 2),
        "query_scalar_ms": round(scalar_query_s * 1e3, 2),
        "query_kernel_ms": round(kernel_s * 1e3, 2),
        "query_speedup": round(scalar_query_s / kernel_s, 2),
        "rows": len(kernel_rows),
    }


def test_t8_batch_codec_speedup(benchmark, save_result, tmp_path):
    row = benchmark.pedantic(measure, (str(tmp_path),), rounds=1, iterations=1)
    save_result(
        "BENCH_batch.json",
        json.dumps(
            {
                "row": row,
                "min_decode_speedup": MIN_DECODE_SPEEDUP,
                "min_query_speedup": MIN_QUERY_SPEEDUP,
            },
            indent=2,
        )
        + "\n",
    )
    assert row["decode_speedup"] >= MIN_DECODE_SPEEDUP, row
    assert row["query_speedup"] >= MIN_QUERY_SPEEDUP, row
