"""A3 (extension) — framework-managed double buffering in mini-ALF.

ALF's pitch is that the framework's automatic input prefetching gives
applications double-buffered performance without hand-written DMA.
This ablation turns the prefetch off (stage-after-compute, the naive
pattern) and measures what the framework buys, plus the trace-level
evidence (wait-dma fraction as the TA reports it).
"""

import numpy as np

from repro.alf import AlfKernel, AlfTask, WorkBlock
from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime
from repro.pdt import PdtHooks, TraceConfig
from repro.ta import analyze, analyze_buffering

N_BLOCKS = 16
BLOCK_BYTES = 8192


def profile(prefetch):
    machine = CellMachine(CellConfig(n_spes=2, main_memory_size=1 << 26))
    hooks = PdtHooks(TraceConfig.dma_only())
    runtime = Runtime(machine, hooks=hooks)
    rng = np.random.default_rng(3)
    data = rng.standard_normal(N_BLOCKS * BLOCK_BYTES // 4).astype(np.float32)
    ea_in = machine.memory.allocate(N_BLOCKS * BLOCK_BYTES)
    ea_out = machine.memory.allocate(N_BLOCKS * BLOCK_BYTES)
    machine.memory.write(ea_in, data.tobytes())

    kernel = AlfKernel(
        "scale",
        lambda params, inputs: (
            np.frombuffer(inputs[0], dtype=np.float32) * 2.0
        ).tobytes(),
        cycles=6000,
        max_input_bytes=BLOCK_BYTES,
        max_output_bytes=BLOCK_BYTES,
    )
    task = AlfTask(kernel, n_spes=2, prefetch=prefetch)
    for i in range(N_BLOCKS):
        task.enqueue(WorkBlock(
            inputs=((ea_in + i * BLOCK_BYTES, BLOCK_BYTES),),
            output=(ea_out + i * BLOCK_BYTES, BLOCK_BYTES),
        ))

    def main():
        yield from task.execute(machine, runtime)
        runtime.finalize()

    machine.spawn(main())
    elapsed = machine.run()
    result = np.frombuffer(
        machine.memory.read(ea_out, N_BLOCKS * BLOCK_BYTES), dtype=np.float32
    )
    assert np.allclose(result, data * 2.0)
    model = analyze(hooks.to_trace())
    report = analyze_buffering(model, 0)
    return {
        "prefetch": "on" if prefetch else "off",
        "cycles": elapsed,
        "wait_dma_frac": round(report.wait_dma_fraction, 3),
        "overlap_frac": round(report.overlap_fraction, 3),
    }


def measure_both():
    return [profile(True), profile(False)]


def test_a3_alf_prefetch(benchmark, save_result):
    from repro.ta.report import format_table

    rows = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    on, off = rows
    speedup = off["cycles"] / on["cycles"]
    save_result(
        "a3_alf_prefetch.txt",
        format_table(rows) + f"\nspeedup from framework prefetch: {speedup:.2f}x\n",
    )

    assert speedup > 1.05
    assert on["wait_dma_frac"] < off["wait_dma_frac"]
    assert on["overlap_frac"] > off["overlap_frac"]
