"""F10 (extension) — SPE placement on the EIB ring.

The EIB is a ring: an LS-to-LS pipeline whose consecutive stages sit
on adjacent ring units travels one hop per handoff, while a scattered
placement pays several.  Same pipeline, two placements, hop latency
dialed up so the effect is visible above noise; the adjacent placement
must win and the per-hop cost must explain the gap.
"""

import dataclasses

from repro.cell import CellConfig
from repro.cell.config import DmaTimings
from repro.pdt import TraceConfig
from repro.ta.report import format_table
from repro.workloads import StreamingPipelineWorkload, run_workload

#: A placement that maximizes ring distance between consecutive stages
#: on an 8-SPE machine (stage i on spe_order[i]).
SCATTERED = [0, 4, 1, 5, 2, 6, 3, 7]
ADJACENT = list(range(8))

CELL = CellConfig(
    n_spes=8,
    main_memory_size=1 << 27,
    dma=dataclasses.replace(DmaTimings(), eib_hop_latency=30),
)


def profile(order, label):
    workload = StreamingPipelineWorkload(
        stages=8, blocks=24, block_bytes=4096, compute_per_block=500,
        via_ls=True, depth=2, spe_order=order,
    )
    result = run_workload(workload, TraceConfig.dma_only(), cell_config=CELL)
    assert result.verified
    eib = result.machine.eib
    hops_per_handoff = [
        eib.hops(f"spe{order[i]}", f"spe{order[i + 1]}")
        for i in range(len(order) - 1)
    ]
    return {
        "placement": label,
        "cycles": result.elapsed_cycles,
        "total_handoff_hops": sum(hops_per_handoff),
        "max_hop": max(hops_per_handoff),
    }


def measure_both():
    return [profile(ADJACENT, "adjacent"), profile(SCATTERED, "scattered")]


def test_f10_placement(benchmark, save_result):
    rows = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    adjacent, scattered = rows
    slowdown = scattered["cycles"] / adjacent["cycles"]
    text = format_table(rows) + (
        f"\nscattered placement slowdown: {slowdown:.3f}x "
        f"(hop latency {CELL.dma.eib_hop_latency} cycles)\n"
    )
    save_result("f10_placement.txt", text)

    assert adjacent["total_handoff_hops"] < scattered["total_handoff_hops"]
    assert adjacent["max_hop"] == 1
    assert scattered["cycles"] > adjacent["cycles"]
