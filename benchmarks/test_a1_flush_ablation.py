"""A1 — ablation: PDT's double-buffered trace flushing.

DESIGN.md calls out double buffering of the LS trace buffer as the
design choice that keeps tracing cheap.  This ablation removes it
(every flush becomes a synchronous DMA wait) and measures what the
choice buys on an event-dense workload with a deliberately small
buffer.
"""

from repro.pdt import TraceConfig
from repro.ta.report import format_table
from repro.workloads import StreamingPipelineWorkload, run_workload, measure_overhead


def make_workload():
    return StreamingPipelineWorkload(stages=4, blocks=24, compute_per_block=2000)


def measure(double_buffered):
    config = TraceConfig(buffer_bytes=1024, double_buffered=double_buffered)
    overhead = measure_overhead(make_workload, config)
    traced = run_workload(make_workload(), config)
    wait = sum(s.flush_wait_cycles for s in traced.hooks.stats.per_spe.values())
    return {
        "flush_mode": "double" if double_buffered else "single",
        "overhead_percent": round(overhead.overhead_percent, 2),
        "flushes": overhead.flushes,
        "flush_wait_cycles": wait,
    }


def measure_both():
    return [measure(True), measure(False)]


def test_a1_flush_ablation(benchmark, save_result):
    rows = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    save_result("a1_flush_ablation.txt", format_table(rows))

    double, single = rows
    # Same trace content either way...
    assert double["flushes"] == single["flushes"]
    # ...but synchronous flushing stalls the SPUs far more...
    assert single["flush_wait_cycles"] > 5 * max(double["flush_wait_cycles"], 1)
    # ...which shows up as extra overhead.
    assert single["overhead_percent"] > double["overhead_percent"]
