"""Shared fixtures for the experiment benchmarks.

Every benchmark regenerates one table or figure of the evaluation
(see DESIGN.md's experiment index) and writes its output under
``benchmarks/results/`` so EXPERIMENTS.md can cite the numbers.

Benchmarks use ``benchmark.pedantic(..., rounds=1)`` — the simulations
are deterministic, so repeated rounds would only re-measure Python
speed, not change any reported number.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write one experiment's output file and echo it to the log."""

    def _save(name: str, text: str) -> str:
        path = os.path.join(results_dir, name)
        with open(path, "w") as handle:
            handle.write(text)
        print(f"\n[{name}]\n{text}")
        return path

    return _save
