"""F5 — use case: synchronization-stall breakdown finds a bottleneck.

A 4-stage pipeline with a hidden 8x-slower stage 2.  The per-SPE stall
breakdown (compute / wait-dma / wait-mailbox / wait-signal shares)
exposes it: neighbours drown in wait-signal time while the bottleneck
stage is the busy one.
"""

from repro.pdt import TraceConfig
from repro.ta import analyze
from repro.ta.analysis import stall_attribution
from repro.ta.report import format_table
from repro.ta.stats import TraceStatistics
from repro.workloads import StreamingPipelineWorkload, run_workload

BOTTLENECK = 2


def profile():
    workload = StreamingPipelineWorkload(
        stages=4, blocks=24, block_bytes=4096, compute_per_block=4000,
        depth=2, bottleneck_stage=BOTTLENECK, bottleneck_factor=8,
    )
    result = run_workload(workload, TraceConfig())
    assert result.verified
    model = analyze(result.trace())
    return TraceStatistics.from_model(model)


def test_f5_stall_breakdown(benchmark, save_result):
    stats = benchmark.pedantic(profile, rounds=1, iterations=1)
    rows = []
    for spe_id, s in sorted(stats.per_spe.items()):
        rows.append(
            {
                "stage": spe_id,
                "busy_frac": round(s.utilization, 3),
                "wait_dma_frac": round(s.stall_fraction("wait_dma"), 3),
                "wait_mbox_frac": round(s.stall_fraction("wait_mbox"), 3),
                "wait_signal_frac": round(s.stall_fraction("wait_signal"), 3),
            }
        )
    attribution = stall_attribution(stats)
    text = format_table(rows) + (
        f"\naggregate: run={attribution['run']:.3f} "
        f"wait_signal={attribution['wait_signal']:.3f} "
        f"wait_dma={attribution['wait_dma']:.3f}\n"
    )
    save_result("f5_stall_breakdown.txt", text)

    busiest = max(stats.per_spe, key=lambda s: stats.per_spe[s].utilization)
    assert busiest == BOTTLENECK
    # The bottleneck computes most of its window; the others mostly wait.
    assert stats.per_spe[BOTTLENECK].utilization > 0.7
    for spe_id, s in stats.per_spe.items():
        if spe_id != BOTTLENECK:
            assert s.stall_fraction("wait_signal") > 0.4, spe_id
    # Aggregate stall cause is signal waits.
    state, __ = stats.dominant_stall()
    assert state == "wait_signal"
