"""T1 — per-event tracing cost, by event type.

Reconstructs the paper's per-event overhead discussion: how many SPU
cycles (and ns at 3.2 GHz) one recorded event costs, measured the
honest way — same microbenchmark traced and untraced, delta divided by
the number of records.  The "compute" row is the control (no events).
"""

from repro.pdt import TraceConfig
from repro.ta.report import format_table
from repro.workloads import EventCostMicrobench, measure_overhead

REPETITIONS = 300
FILLER = 500
OPS = ("marker", "signal", "mailbox", "dma", "compute")


def measure_all():
    rows = []
    for op in OPS:
        result = measure_overhead(
            lambda op=op: EventCostMicrobench(
                op=op, repetitions=REPETITIONS, filler_cycles=FILLER
            ),
            TraceConfig(),
        )
        delta = result.traced_cycles - result.untraced_cycles
        per_event = delta / result.records if result.records else 0.0
        rows.append(
            {
                "op": op,
                "records": result.records,
                "delta_cycles": delta,
                "cycles_per_event": round(per_event, 1),
                "ns_per_event": round(per_event / 3.2, 1),
                "overhead_percent": round(result.overhead_percent, 2),
            }
        )
    return rows


def test_t1_per_event_cost(benchmark, save_result):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    save_result("t1_event_cost.txt", format_table(rows))

    by_op = {row["op"]: row for row in rows}
    # The control produces (almost) no records and negligible delta.
    assert by_op["compute"]["delta_cycles"] < by_op["marker"]["delta_cycles"] / 5
    base = TraceConfig().spu_record_cycles
    # Ops adjacent to pure compute pay the full per-record price (plus
    # flush effects).
    for op in ("marker", "signal"):
        cost = by_op[op]["cycles_per_event"]
        assert base * 0.8 <= cost <= base * 4, (op, cost)
    # Ops that contain stalls (DMA tag waits, mailbox backpressure)
    # come out *cheaper* per event: part of the recording time hides
    # under latency the SPU would have waited out anyway.  This
    # sub-additivity is a finding, not a bug — assert it holds.
    for op in ("mailbox", "dma"):
        cost = by_op[op]["cycles_per_event"]
        assert 0 < cost <= base * 1.2, (op, cost)
    assert by_op["dma"]["cycles_per_event"] < by_op["marker"]["cycles_per_event"]
    # DMA ops produce 3 records per repetition, markers 1.
    assert by_op["dma"]["records"] > by_op["marker"]["records"] * 2
