"""T1 — per-event tracing cost, by event type.

Reconstructs the paper's per-event overhead discussion: how many SPU
cycles (and ns at 3.2 GHz) one recorded event costs, measured the
honest way — same microbenchmark traced and untraced, delta divided by
the number of records.  The "compute" row is the control (no events).
"""

import time
import tracemalloc

from repro.pdt import TraceConfig
from repro.pdt.codec import decode_batch, decode_fields, encode_fields, encode_record
from repro.pdt.events import SIDE_SPE, TraceRecord, code_for_kind
from repro.pdt.store import ColumnStore
from repro.ta.report import format_table
from repro.workloads import EventCostMicrobench, measure_overhead

REPETITIONS = 300
FILLER = 500
OPS = ("marker", "signal", "mailbox", "dma", "compute")


def measure_all():
    rows = []
    for op in OPS:
        result = measure_overhead(
            lambda op=op: EventCostMicrobench(
                op=op, repetitions=REPETITIONS, filler_cycles=FILLER
            ),
            TraceConfig(),
        )
        delta = result.traced_cycles - result.untraced_cycles
        per_event = delta / result.records if result.records else 0.0
        rows.append(
            {
                "op": op,
                "records": result.records,
                "delta_cycles": delta,
                "cycles_per_event": round(per_event, 1),
                "ns_per_event": round(per_event / 3.2, 1),
                "overhead_percent": round(result.overhead_percent, 2),
            }
        )
    return rows


def test_t1_per_event_cost(benchmark, save_result):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    save_result("t1_event_cost.txt", format_table(rows))

    by_op = {row["op"]: row for row in rows}
    # The control produces (almost) no records and negligible delta.
    assert by_op["compute"]["delta_cycles"] < by_op["marker"]["delta_cycles"] / 5
    base = TraceConfig().spu_record_cycles
    # Ops adjacent to pure compute pay the full per-record price (plus
    # flush effects).
    for op in ("marker", "signal"):
        cost = by_op[op]["cycles_per_event"]
        assert base * 0.8 <= cost <= base * 4, (op, cost)
    # Ops that contain stalls (DMA tag waits, mailbox backpressure)
    # come out *cheaper* per event: part of the recording time hides
    # under latency the SPU would have waited out anyway.  This
    # sub-additivity is a finding, not a bug — assert it holds.
    for op in ("mailbox", "dma"):
        cost = by_op[op]["cycles_per_event"]
        assert 0 < cost <= base * 1.2, (op, cost)
    assert by_op["dma"]["cycles_per_event"] < by_op["marker"]["cycles_per_event"]
    # DMA ops produce 3 records per repetition, markers 1.
    assert by_op["dma"]["records"] > by_op["marker"]["records"] * 2


# ----------------------------------------------------------------------
# host-side record cost: what one recorded event costs *the simulator*
# ----------------------------------------------------------------------
HOT_RECORDS = 20_000


def _measure_hot_path():
    """Host ns (and retained bytes) per record on the tracer hot path.

    ``seed`` — what every recorded event cost before the sink refactor:
    materialize a TraceRecord (fields dict included), encode it for the
    LS buffer, keep the object in a list.  ``sink`` — the EventSink
    path: encode straight from the raw components and append them to
    the ColumnStore's array columns; no record object ever exists.
    """
    spec = code_for_kind(SIDE_SPE, "mfc_get")
    values = (3, 16384, 0x1000, 0x20000, 0, 0)
    fields = dict(zip(spec.fields, values))

    def run_seed():
        records = []
        append = records.append
        for seq in range(HOT_RECORDS):
            record = TraceRecord(
                side=SIDE_SPE, code=spec.code, core=0, seq=seq,
                raw_ts=seq, fields=dict(fields),
            )
            encode_record(record)
            append(record)
        return records

    def run_sink():
        store = ColumnStore()
        append = store.append
        for seq in range(HOT_RECORDS):
            encode_fields(SIDE_SPE, spec.code, 0, seq, seq, values)
            append(SIDE_SPE, spec.code, 0, seq, seq, values)
        return store

    buffer = b"".join(
        encode_fields(SIDE_SPE, spec.code, 0, seq, seq, values)
        for seq in range(HOT_RECORDS)
    )

    def run_decode_scalar():
        offset, end = 0, len(buffer)
        while offset < end:
            decoded = decode_fields(buffer, offset)
            offset = decoded[-1]
        return offset

    def run_decode_batch():
        batch = decode_batch(buffer)
        assert batch is not None and batch.count == HOT_RECORDS
        return batch

    rows = []
    for name, fn in (
        ("seed", run_seed),
        ("sink", run_sink),
        ("decode-scalar", run_decode_scalar),
        ("decode-batch", run_decode_batch),
    ):
        best = None
        for __ in range(5):
            t0 = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        tracemalloc.start()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rows.append(
            {
                "path": name,
                "ns_per_record": round(best / HOT_RECORDS * 1e9, 1),
                "bytes_per_record": peak // HOT_RECORDS,
            }
        )
    return rows


def test_t1_record_hot_path(benchmark, save_result):
    rows = benchmark.pedantic(_measure_hot_path, rounds=1, iterations=1)
    save_result("t1_record_hot_path.txt", format_table(rows))

    by_path = {row["path"]: row for row in rows}
    # The sink path drops the record object and its dict, so it must
    # beat the seed on both retained memory (the headline: >= 3x) and
    # per-record time.
    assert by_path["seed"]["bytes_per_record"] >= 3 * by_path["sink"]["bytes_per_record"], rows
    assert by_path["sink"]["ns_per_record"] < by_path["seed"]["ns_per_record"], rows
    # Decoding the same buffer back: the batch decoder (one boundary
    # walk, then column gathers) must beat the per-record interpreter.
    assert (
        by_path["decode-batch"]["ns_per_record"]
        < by_path["decode-scalar"]["ns_per_record"]
    ), rows


# ----------------------------------------------------------------------
# masked chunk decode: cost per column count on a v6 payload
# ----------------------------------------------------------------------
MASK_RECORDS = 20_000

#: Masks in ascending column count — the shapes real terminals push
#: down: count-by-event, a grouped count over time buckets, a payload
#: aggregation, and the unmasked full decode.
DECODE_MASKS = (
    ("side+code", frozenset({"side", "code"})),
    ("trio+raw_ts", frozenset({"side", "code", "core", "raw_ts"})),
    ("trio+values", frozenset({"side", "code", "core", "values"})),
    ("full", None),
)


def _measure_masked_decode():
    """Host ns/record for one v6 chunk decode, by requested columns.

    Each decode call starts from the stored payload — compressed
    section bytes — so the row reflects exactly what a scan pays per
    admitted chunk: section inflation plus column decode for the
    requested set, and nothing for the rest."""
    from repro.pdt.colenc import decode_chunk_payload, encode_chunk_payload
    from repro.pdt.events import EVENT_SPECS
    from repro.pdt.format import VERSION_SECTIONED
    from repro.pdt.store import ColumnChunk

    specs = sorted(EVENT_SPECS.values(), key=lambda s: (s.side, s.code))[:6]
    chunk = ColumnChunk()
    for i in range(MASK_RECORDS):
        spec = specs[i % len(specs)]
        values = tuple((i + j) & 0xFFFF for j in range(len(spec.fields)))
        chunk.append(spec.side, spec.code, i % 4, i, 1_000 + 3 * i, values)
    payload = encode_chunk_payload(chunk, VERSION_SECTIONED)

    rows = []
    for label, mask in DECODE_MASKS:
        best = None
        for __ in range(5):
            t0 = time.perf_counter()
            decoded = decode_chunk_payload(
                payload, MASK_RECORDS, VERSION_SECTIONED, mask
            )
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        assert len(decoded) == MASK_RECORDS
        rows.append(
            {
                "columns": label,
                "n_columns": 6 if mask is None else len(mask),
                "ns_per_record": round(best / MASK_RECORDS * 1e9, 1),
            }
        )
    return rows


def test_t1_masked_decode_cost(benchmark, save_result):
    rows = benchmark.pedantic(_measure_masked_decode, rounds=1, iterations=1)
    save_result("t1_masked_decode.txt", format_table(rows))

    by_label = {row["columns"]: row for row in rows}
    full = by_label["full"]["ns_per_record"]
    # The count-by-event mask inflates two dictionary sections out of
    # six; it must cost well under the full decode.
    assert by_label["side+code"]["ns_per_record"] < 0.7 * full, rows
    # Every masked decode beats the full decode — decoding less is
    # never slower.
    for label, __ in DECODE_MASKS[:-1]:
        assert by_label[label]["ns_per_record"] < full, rows
