"""V1 — tracing's impact on the performance analysis itself.

The abstract's last claim: the paper discusses "the overhead of
tracing and its impact on the benchmark execution **and performance
analysis**."  Tracing perturbs the run it measures, so the question is
whether the analysis still tells the truth about the *untraced*
program.  For each workload we compare the TA's per-SPE utilization
(computed from a traced run) against the simulator's ground-truth
utilization of an **untraced** run of the same workload — numbers the
analyzer never sees.

Expected shape: the probe effect biases utilization by at most a few
points, with the error tracking the workload's event rate (heaviest
for the chatty pipeline, negligible for Monte Carlo).
"""

from repro.cell import SpuState
from repro.pdt import TraceConfig
from repro.ta import analyze
from repro.ta.report import format_table
from repro.ta.stats import TraceStatistics
from repro.workloads import (
    FftWorkload,
    MatmulWorkload,
    MonteCarloWorkload,
    StreamingPipelineWorkload,
    run_workload,
)

WORKLOADS = (
    ("matmul", lambda: MatmulWorkload(n=256, tile=64, n_spes=4)),
    ("fft", lambda: FftWorkload(points=1024, batch=32, n_spes=4)),
    ("streaming", lambda: StreamingPipelineWorkload(stages=4, blocks=16)),
    ("montecarlo", lambda: MonteCarloWorkload(samples_per_spe=20_000, n_spes=4)),
)


def truth_utilization(machine, spe_id):
    """Ground-truth busy fraction of one SPE over its program window."""
    spe = machine.spe(spe_id)
    window = spe.program_stops[-1] - spe.program_starts[0]
    return spe.track.totals[SpuState.RUN] / window if window else 0.0


def compare(name, factory):
    untraced = run_workload(factory())
    assert untraced.verified
    traced = run_workload(factory(), TraceConfig())
    assert traced.verified
    stats = TraceStatistics.from_model(analyze(traced.trace()))
    deltas = []
    for spe_id, s in stats.per_spe.items():
        deltas.append(abs(s.utilization - truth_utilization(untraced.machine, spe_id)))
    return {
        "workload": name,
        "ta_utilization": round(
            sum(s.utilization for s in stats.per_spe.values()) / len(stats.per_spe), 3
        ),
        "truth_utilization": round(
            sum(truth_utilization(untraced.machine, i) for i in stats.per_spe)
            / len(stats.per_spe),
            3,
        ),
        "mean_abs_error": round(sum(deltas) / len(deltas), 3),
        "max_abs_error": round(max(deltas), 3),
    }


def measure_all():
    return [compare(name, factory) for name, factory in WORKLOADS]


def test_v1_analysis_fidelity(benchmark, save_result):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    save_result("v1_analysis_fidelity.txt", format_table(rows))

    by_name = {row["workload"]: row for row in rows}
    # Analysis from a perturbed run stays close to the untraced truth.
    for row in rows:
        assert row["max_abs_error"] < 0.08, row
    # The error tracks the probe effect: the quiet workload's analysis
    # is essentially exact, the chatty pipeline's is the least exact.
    assert by_name["montecarlo"]["max_abs_error"] <= 0.01
    assert (
        by_name["montecarlo"]["mean_abs_error"]
        <= by_name["streaming"]["mean_abs_error"]
    )
