"""T12 — live follow-mode overhead vs the batch query path.

The live path's economic claim: following a trace must not make the
analysis meaningfully slower than reading it after the fact.  Measured
head to head over the workload corpus: a cold batch run (``open_trace``
+ windowed ``tq`` aggregation) against a cold :class:`FollowQuery`
poll that ingests the same, already-complete file in one go — same
chunks decoded, same plan, same rows.  The follow path must stay
within **10%** of batch wall-time in aggregate.

Correctness rides along: a timing for a follow path whose rows diverge
from batch would be meaningless, so identity is asserted in-run.  Also
reported (not gated): the ``prune=True`` variant, which additionally
maintains the incremental zone-map index record by record, and the
steady-state re-poll cost on an unchanged file — the price a live
dashboard pays per refresh tick.
"""

import json
import os
import time

from repro.pdt import TraceConfig, open_trace, write_trace
from repro.pdt.format import VERSION_COMPRESSED
from repro.live import FollowQuery
from repro.tq import Query
from repro.workloads import (
    MatmulWorkload,
    MonteCarloWorkload,
    StreamingPipelineWorkload,
    run_workload,
)

#: Follow-mode aggregate wall-time budget relative to batch.
MAX_OVERHEAD = 0.10

#: Best-of-N timing to shave scheduler noise off a ~ms-scale measure.
TIMING_ROUNDS = 3

BUCKET_WIDTH = 50_000

WORKLOADS = (
    ("matmul", lambda: MatmulWorkload(n=128, tile=32, n_spes=4)),
    ("streaming", lambda: StreamingPipelineWorkload(stages=4, blocks=512)),
    (
        "montecarlo",
        lambda: MonteCarloWorkload(samples_per_spe=20_000, n_spes=4),
    ),
)


def _plan(source):
    return (
        Query(source)
        .groupby("bucket", time_bucket=BUCKET_WIDTH)
        .agg(n="count", t_sum=("sum", "time"), t_max=("max", "time"))
    )


def _batch_run(path):
    with open_trace(path) as source:
        return _plan(source).run()


def _follow_run(path, prune):
    follow = FollowQuery(_plan(None), path, prune=prune)
    snapshot = follow.poll()
    assert snapshot.complete
    return follow, snapshot.rows


def _best_of(fn, *args):
    best, value = None, None
    for __ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        value = fn(*args)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def measure(tmp_dir):
    rows = []
    total_batch = total_follow = 0.0
    for name, factory in WORKLOADS:
        result = run_workload(factory(), TraceConfig(buffer_bytes=4096))
        source = result.trace_source()
        source.header.version = VERSION_COMPRESSED
        path = os.path.join(tmp_dir, f"{name}.pdt")
        write_trace(source, path)

        batch_s, want = _best_of(_batch_run, path)
        follow_s, (follow, got) = _best_of(_follow_run, path, False)
        assert got == want, f"{name}: follow rows diverged from batch"
        prune_s, (__, pruned) = _best_of(_follow_run, path, True)
        assert pruned == want, f"{name}: pruned follow rows diverged"

        # Steady state: the file has not changed; a re-poll only stats
        # the file and re-merges cached partials.
        repoll_started = time.perf_counter()
        assert follow.poll().rows == want
        repoll_s = time.perf_counter() - repoll_started

        with open_trace(path) as src:
            n_records = src.n_records
        total_batch += batch_s
        total_follow += follow_s
        rows.append(
            {
                "workload": name,
                "records": n_records,
                "batch_ms": round(batch_s * 1e3, 2),
                "follow_ms": round(follow_s * 1e3, 2),
                "follow_prune_ms": round(prune_s * 1e3, 2),
                "repoll_ms": round(repoll_s * 1e3, 2),
                "overhead": round(follow_s / batch_s - 1.0, 4),
            }
        )
    return {
        "rows": rows,
        "total_batch_ms": round(total_batch * 1e3, 2),
        "total_follow_ms": round(total_follow * 1e3, 2),
        "aggregate_overhead": round(total_follow / total_batch - 1.0, 4),
    }


def test_t12_live_overhead(benchmark, save_result, tmp_path):
    report = benchmark.pedantic(
        measure, (str(tmp_path),), rounds=1, iterations=1
    )
    save_result(
        "BENCH_live.json",
        json.dumps({**report, "max_overhead": MAX_OVERHEAD}, indent=2) + "\n",
    )
    assert report["aggregate_overhead"] <= MAX_OVERHEAD, report
