"""T10 — compressed columnar traces (v5) vs the indexed layout (v4).

The v5 format's economic claim: per-column encodings (delta+zigzag
varint timestamps and sequence numbers, dictionary+RLE side/code/core)
plus whole-chunk compression shrink a trace **at least 3x on disk**
across the workload corpus, while every consumer — the serial query
pipeline, the parallel engine, and the serving daemon — returns
**byte-identical answers** from the v5 file and the v4 file.

Correctness is asserted in the same run as the measurement: the size
ratio of a file whose queries diverge would be meaningless, so any
divergence fails here, not in production.  Decode wall-time for a full
scan of both layouts is reported alongside the sizes (the CRC is
checked on the stored bytes, so pruned or refused chunks are never
decompressed — but a full scan pays the whole decompress cost, making
it the honest worst case).
"""

import json
import os
import time

from repro.pdt import TraceConfig, open_trace, write_trace
from repro.pdt.format import VERSION_COMPRESSED, VERSION_INDEXED
from repro.par import parallel_rows
from repro.serve import (
    ServeClient,
    ServerConfig,
    TraceCatalog,
    TraceServer,
)
from repro.tq import Query
from repro.workloads import (
    MatmulWorkload,
    MonteCarloWorkload,
    StreamingPipelineWorkload,
    run_workload,
)

MIN_AGGREGATE_RATIO = 3.0

WORKLOADS = (
    ("matmul", lambda: MatmulWorkload(n=128, tile=32, n_spes=4)),
    ("streaming", lambda: StreamingPipelineWorkload(stages=4, blocks=512)),
    (
        "montecarlo",
        lambda: MonteCarloWorkload(samples_per_spe=20_000, n_spes=4),
    ),
)

QUERY_SPECS = (
    {
        "mode": "run",
        "where": {"side": 1},
        "groupby": ["core", "kind"],
        "agg": {"n": "count", "bytes": ["sum", "size"]},
    },
    {"mode": "count", "where": {"spe": 1}},
    {
        "mode": "records",
        "where": {"t0": 0, "spe": 0},
        "project": ["time", "kind", "seq"],
    },
)


def _serial_answers(path):
    """Every canned query through the serial pipeline, plus the full
    profile shape the CLI uses — the oracle for every other path."""
    with open_trace(path) as source:
        profile = (
            Query(source)
            .groupby("side", "core", "kind")
            .agg(n="count", t_min=("min", "time"), t_max=("max", "time"))
            .run()
        )
        records = list(
            Query(source).where(spe=1).project("time", "kind", "seq").records()
        )
        count = Query(source).where(side=1).count()
    return profile, records, count


def _parallel_answers(path, jobs):
    with open_trace(path) as source:
        query = (
            Query(source)
            .groupby("side", "core", "kind")
            .agg(n="count", t_min=("min", "time"), t_max=("max", "time"))
        )
        return parallel_rows(query, jobs)


def _served_lines(server_address, name):
    with ServeClient(server_address) as client:
        return [
            client.request_raw({"op": "query", "trace": name, "id": i, **spec})
            for i, spec in enumerate(QUERY_SPECS)
        ]


def _scan_seconds(path):
    started = time.perf_counter()
    with open_trace(path) as source:
        total = sum(len(chunk) for chunk in source.iter_chunks())
    return time.perf_counter() - started, total


def measure(tmp_dir):
    rows = []
    total_v4 = total_v5 = 0
    catalog = TraceCatalog(memory_budget=64 * 1024 * 1024)
    with TraceServer(catalog, ServerConfig(port=0)).start() as server:
        for name, factory in WORKLOADS:
            result = run_workload(factory(), TraceConfig(buffer_bytes=4096))
            source = result.trace_source()
            paths = {}
            for label, version in (("v4", VERSION_INDEXED),
                                   ("v5", VERSION_COMPRESSED)):
                source.header.version = version
                paths[label] = os.path.join(tmp_dir, f"{name}-{label}.pdt")
                write_trace(source, paths[label])
            v4_bytes = os.path.getsize(paths["v4"])
            v5_bytes = os.path.getsize(paths["v5"])
            total_v4 += v4_bytes
            total_v5 += v5_bytes

            # --- in-run identity: serial, parallel, served ---
            want = _serial_answers(paths["v4"])
            assert _serial_answers(paths["v5"]) == want, (
                f"{name}: serial answers diverged between v4 and v5"
            )
            for jobs in (2, 4):
                assert (
                    _parallel_answers(paths["v5"], jobs)
                    == _parallel_answers(paths["v4"], jobs)
                    == want[0]
                ), f"{name}: parallel answers diverged (jobs={jobs})"
            with ServeClient(server.address) as client:
                client.register(f"{name}-v4", paths["v4"])
                client.register(f"{name}-v5", paths["v5"])
            served_v4 = _served_lines(server.address, f"{name}-v4")
            served_v5 = _served_lines(server.address, f"{name}-v5")
            assert served_v4 == served_v5, (
                f"{name}: served bytes diverged between v4 and v5"
            )

            v4_scan_s, n_records = _scan_seconds(paths["v4"])
            v5_scan_s, v5_records = _scan_seconds(paths["v5"])
            assert n_records == v5_records
            rows.append(
                {
                    "workload": name,
                    "records": n_records,
                    "v4_bytes": v4_bytes,
                    "v5_bytes": v5_bytes,
                    "ratio": round(v4_bytes / v5_bytes, 2),
                    "bytes_per_record_v5": round(v5_bytes / n_records, 2),
                    "v4_scan_ms": round(v4_scan_s * 1e3, 2),
                    "v5_scan_ms": round(v5_scan_s * 1e3, 2),
                }
            )
    return {
        "rows": rows,
        "total_v4_bytes": total_v4,
        "total_v5_bytes": total_v5,
        "aggregate_ratio": round(total_v4 / total_v5, 2),
    }


def test_t10_compression_ratio(benchmark, save_result, tmp_path):
    report = benchmark.pedantic(
        measure, (str(tmp_path),), rounds=1, iterations=1
    )
    save_result(
        "BENCH_compress.json",
        json.dumps(
            {**report, "min_aggregate_ratio": MIN_AGGREGATE_RATIO}, indent=2
        ) + "\n",
    )
    assert report["aggregate_ratio"] >= MIN_AGGREGATE_RATIO, report
