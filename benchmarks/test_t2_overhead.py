"""T2 — tracing overhead on benchmark execution, per workload x config.

The paper's headline overhead table: each workload runs untraced, then
under the all-events and DMA-only configurations.  Expected shape:
overhead tracks event *rate*, so the communication-free Monte Carlo
sits near the floor, the chatty pipeline at the top, and DMA-only is
always at most the all-events cost.
"""

from repro.pdt import TraceConfig
from repro.ta.report import format_table
from repro.workloads import (
    FftWorkload,
    MatmulWorkload,
    MonteCarloWorkload,
    SpmvWorkload,
    StreamingPipelineWorkload,
    measure_overhead,
)

WORKLOADS = (
    ("matmul", lambda: MatmulWorkload(n=256, tile=64, n_spes=4)),
    ("fft", lambda: FftWorkload(points=1024, batch=32, n_spes=4)),
    ("streaming", lambda: StreamingPipelineWorkload(stages=4, blocks=16)),
    ("montecarlo", lambda: MonteCarloWorkload(samples_per_spe=20_000, n_spes=4)),
    ("spmv", lambda: SpmvWorkload(n=2048, density=0.02, rows_per_block=256, n_spes=4)),
)

CONFIGS = (
    ("all", TraceConfig.all_events),
    ("dma-only", TraceConfig.dma_only),
)


def measure_all():
    rows = []
    for name, factory in WORKLOADS:
        for config_name, make_config in CONFIGS:
            result = measure_overhead(factory, make_config())
            row = result.row()
            row["config"] = config_name
            rows.append(row)
    return rows


def test_t2_workload_overhead(benchmark, save_result):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    save_result("t2_overhead.txt", format_table(rows))

    overhead = {
        (row["workload"], row["config"]): row["overhead_percent"] for row in rows
    }
    # Every run slows down, none pathologically.
    for value in overhead.values():
        assert 0 < value < 50
    # DMA-only <= all-events for every workload.
    for name, __ in WORKLOADS:
        assert overhead[(name, "dma-only")] <= overhead[(name, "all")] + 0.01
    # Monte Carlo (fewest events per cycle) is the floor.
    mc = overhead[("montecarlo", "all")]
    for name in ("fft", "streaming"):
        assert mc < overhead[(name, "all")]
    # The compute-dense matmul stays in single digits.
    assert overhead[("matmul", "all")] < 10
