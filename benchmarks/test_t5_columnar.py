"""T5 — columnar streaming pipeline: peak memory and analysis speed.

The payoff of the EventSink/EventSource refactor: analyzing a trace
file through ``open_trace`` streams one ~64K-record chunk at a time,
so peak memory is O(chunk) instead of O(trace).  This benchmark pits
the two ends of the same file against each other on the largest t3
workload:

* legacy path — ``read_trace`` materializes every record as an object,
  then ``analyze_materialized`` walks the object lists (the seed
  data path, kept as the compatibility view);
* streaming path — ``open_trace`` + ``analyze`` iterate the chunked
  columns straight off disk.

Both must produce byte-identical statistics and buffering verdicts on
every t3 workload; the streaming path must hold peak memory at least
3x below the legacy path on the largest trace.
"""

import json
import os
import time
import tracemalloc

from repro.pdt import TraceConfig, open_trace
from repro.pdt.reader import read_trace
from repro.ta.analysis import analyze_buffering
from repro.ta.model import analyze, analyze_materialized
from repro.ta.stats import TraceStatistics
from repro.workloads import (
    FftWorkload,
    MatmulWorkload,
    MonteCarloWorkload,
    SpmvWorkload,
    StreamingPipelineWorkload,
    run_and_write_trace,
)

# Same roster and trace config as T3 (trace volume); "streaming" is
# the largest trace of the set by record count.
WORKLOADS = (
    ("matmul", lambda: MatmulWorkload(n=256, tile=64, n_spes=4)),
    ("fft", lambda: FftWorkload(points=1024, batch=32, n_spes=4)),
    ("streaming", lambda: StreamingPipelineWorkload(stages=4, blocks=16)),
    ("montecarlo", lambda: MonteCarloWorkload(samples_per_spe=20_000, n_spes=4)),
    ("spmv", lambda: SpmvWorkload(n=2048, density=0.02, rows_per_block=256, n_spes=4)),
)
LARGEST = "streaming"
MIN_MEMORY_RATIO = 3.0


def _model_fingerprint(model):
    """Everything the analyzer reports, as comparable plain data."""
    stats = TraceStatistics.from_model(model)
    buffering = {
        spe_id: analyze_buffering(model, spe_id)
        for spe_id in sorted(model.cores)
    }
    return {
        "summary_rows": stats.summary_rows(),
        "span": (model.t_start, model.t_end),
        "buffering": {
            spe_id: {
                "overlap_fraction": report.overlap_fraction,
                "wait_dma_fraction": report.wait_dma_fraction,
                "dma_inflight_cycles": report.dma_inflight_cycles,
                "verdict": report.verdict,
            }
            for spe_id, report in buffering.items()
        },
    }


def _measure(build_model):
    """(peak tracemalloc bytes, elapsed seconds, fingerprint).

    Times the read+model-build step — the data path the two ends
    differ in; statistics and diagnoses run over identical model
    objects afterwards.  Time and memory come from separate runs:
    tracemalloc intercepts every allocation, which would tax the two
    paths unevenly and skew the timing.  Timing is best-of-5."""
    elapsed = None
    for _ in range(5):
        t0 = time.perf_counter()
        model = build_model()
        round_s = time.perf_counter() - t0
        elapsed = round_s if elapsed is None else min(elapsed, round_s)
    fingerprint = _model_fingerprint(model)
    tracemalloc.start()
    build_model()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, elapsed, fingerprint


def _legacy(path):
    return _measure(lambda: analyze_materialized(read_trace(path)))


def _streaming(path):
    return _measure(lambda: analyze(open_trace(path)))


def measure_all(tmp_dir):
    rows = []
    for name, factory in WORKLOADS:
        path = os.path.join(tmp_dir, f"{name}.pdt")
        result, n_bytes = run_and_write_trace(
            factory(), path, TraceConfig(buffer_bytes=4096)
        )
        assert result.verified
        legacy_peak, legacy_s, legacy_fp = _legacy(path)
        stream_peak, stream_s, stream_fp = _streaming(path)
        assert legacy_fp == stream_fp, (
            f"{name}: streaming analysis diverged from the legacy path"
        )
        rows.append(
            {
                "workload": name,
                "records": result.hooks.stats.total_records,
                "trace_bytes": n_bytes,
                "legacy_peak_kb": legacy_peak // 1024,
                "stream_peak_kb": stream_peak // 1024,
                "memory_ratio": round(legacy_peak / stream_peak, 2),
                "legacy_ms": round(legacy_s * 1e3, 1),
                "stream_ms": round(stream_s * 1e3, 1),
                "speedup": round(legacy_s / stream_s, 2),
            }
        )
    return rows


def test_t5_columnar_pipeline(benchmark, save_result, tmp_path):
    rows = benchmark.pedantic(measure_all, (str(tmp_path),), rounds=1, iterations=1)
    save_result(
        "BENCH_trace_pipeline.json",
        json.dumps({"rows": rows, "min_memory_ratio": MIN_MEMORY_RATIO}, indent=2)
        + "\n",
    )

    by_name = {row["workload"]: row for row in rows}
    largest = by_name[LARGEST]
    assert largest["records"] == max(row["records"] for row in rows)
    # The headline claim: O(chunk) streaming beats O(trace)
    # materialization by at least 3x in peak memory on the largest
    # trace of the set.
    assert largest["memory_ratio"] >= MIN_MEMORY_RATIO, largest
    # And it is measurably faster: one demuxed decode pass plus a
    # prefix-only sync scan does less work than materializing and
    # sorting every record as an object.  Per-workload timings are a
    # few ms, so the aggregate carries the robust assertion.
    assert largest["speedup"] > 1.0, largest
    total_legacy = sum(row["legacy_ms"] for row in rows)
    total_stream = sum(row["stream_ms"] for row in rows)
    assert total_legacy > 1.05 * total_stream, rows
    # Every workload benefits, even the small ones.
    for row in rows:
        assert row["memory_ratio"] > 1.0, row
