"""F3 — use case: load-balance analysis across SPEs.

Per-SPE busy time under a skewed tile schedule (SPE 0 gets 4 shares)
versus the balanced round-robin schedule; the TA's imbalance factor
and the makespan penalty it predicts.
"""

from repro.pdt import TraceConfig
from repro.ta import analyze, analyze_load_balance
from repro.ta.report import format_table
from repro.ta.stats import TraceStatistics
from repro.workloads import MatmulWorkload, run_workload


def profile(skew):
    workload = MatmulWorkload(n=256, tile=64, n_spes=4, skew=skew)
    result = run_workload(workload, TraceConfig.dma_only())
    assert result.verified
    stats = TraceStatistics.from_model(analyze(result.trace()))
    report = analyze_load_balance(stats)
    return result.elapsed_cycles, stats, report


def measure_both():
    return {"skewed": profile(4), "balanced": profile(1)}


def test_f3_load_balance(benchmark, save_result):
    outcome = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    skewed_cycles, skewed_stats, skewed_report = outcome["skewed"]
    balanced_cycles, balanced_stats, balanced_report = outcome["balanced"]

    rows = []
    for label, stats in (("skewed", skewed_stats), ("balanced", balanced_stats)):
        for spe_id, s in sorted(stats.per_spe.items()):
            rows.append(
                {"schedule": label, "spe": spe_id, "busy_cycles": s.run_cycles,
                 "utilization": round(s.utilization, 3)}
            )
    text = format_table(rows) + (
        f"\nimbalance factor: skewed={skewed_report.imbalance_factor:.2f} "
        f"balanced={balanced_report.imbalance_factor:.2f}\n"
        f"makespan: skewed={skewed_cycles} balanced={balanced_cycles} "
        f"({skewed_cycles / balanced_cycles:.2f}x)\n"
        f"skewed verdict: {skewed_report.verdict}\n"
        f"balanced verdict: {balanced_report.verdict}\n"
    )
    save_result("f3_load_balance.txt", text)

    assert skewed_report.imbalance_factor > 1.5
    assert "imbalanced" in skewed_report.verdict
    assert skewed_report.slowest_spe == 0
    assert balanced_report.imbalance_factor < 1.1
    assert "balanced" in balanced_report.verdict
    # The imbalance costs real wall-clock.
    assert skewed_cycles / balanced_cycles > 1.3
