"""T6 — indexed queries: zone-map pruning on selective questions.

The payoff of the v4 index trailer: a targeted question ("what did
SPE 1 do in this 1% slice of the run?") should cost a handful of
chunk decodes, not a full-file scan.

Chunk layout decides which zone dimension can prune.  The tracer's
native file keeps one chunk per core stream, so a single-SPE query
prunes by the SPE bitmap but every chunk spans the whole run in time.
A time-ordered rewrite (the layout a merge/convert step produces —
records sorted by corrected time, fixed-size chunks) makes each chunk
cover a narrow time slice, which is where time-window pruning pays.
This benchmark measures both layouts over the same records:

* full-scan path — the identical query over identical chunks with the
  zone maps hidden, so every chunk is decoded;
* indexed path — zones prune chunks whose time bounds or SPE bitmap
  exclude the predicate before their payloads are read.

Both must return byte-identical records.  The gate: on the
time-ordered file, a 1%-window single-SPE query must scan at least 5x
fewer chunks than the full scan.  Latency is reported alongside (the
ratio, not the wall clock, is the robust number at these sizes).
"""

import json
import os
import time

from repro.pdt import ClockCorrelator, TraceConfig, open_trace
from repro.pdt.store import EventSource
from repro.pdt.writer import ChunkWriter
from repro.tq import Query
from repro.workloads import StreamingPipelineWorkload, run_and_write_trace

MIN_PRUNE_RATIO = 5.0
WINDOW_FRACTION = 0.01
TARGET_SPE = 1
REWRITE_CHUNK_RECORDS = 64
PROJECTION = ("time", "side", "core", "code", "seq")


class _FullScan(EventSource):
    """The same source with its index hidden: the honest baseline,
    serving byte-identical chunks in identical order."""

    def __init__(self, base):
        self.base = base
        self.header = base.header

    def iter_chunks(self):
        return self.base.iter_chunks()

    @property
    def n_records(self):
        return self.base.n_records

    def scan_sync(self):
        return self.base.scan_sync()


def _rewrite_time_sorted(src_path, dst_path):
    """Rewrite a trace with records in corrected-time order, chunked
    small — per-core record order (and so per-core seq order) is
    preserved because each core's placed times are monotone."""
    source = open_trace(src_path)
    correlator = ClockCorrelator(source)
    rows = []
    for chunk in source.iter_chunks():
        for i in range(len(chunk)):
            placed = correlator.place_value(
                chunk.side[i], chunk.core[i], chunk.raw_ts[i]
            )
            rows.append(
                (
                    placed, chunk.side[i], chunk.code[i], chunk.core[i],
                    chunk.seq[i], chunk.raw_ts[i],
                    chunk.values[chunk.val_off[i]:chunk.val_off[i + 1]],
                )
            )
    rows.sort(key=lambda row: row[0])
    writer = ChunkWriter(
        dst_path, source.header, chunk_records=REWRITE_CHUNK_RECORDS
    )
    for __, side, code, core, seq, raw_ts, values in rows:
        writer.append(side, code, core, seq, raw_ts, values)
    writer.close()


def _timed_query(source, t0, t1):
    best = None
    for __ in range(3):
        started = time.perf_counter()
        query = (
            Query(source)
            .where(t0=t0, t1=t1, spe=TARGET_SPE)
            .project(*PROJECTION)
        )
        rows = list(query.records())
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return rows, query.stats, best


def _measure_layout(path, t0, t1):
    indexed = open_trace(path)
    assert indexed.zone_maps() is not None, "v4 trace must carry its index"
    full_rows, full_stats, full_s = _timed_query(
        _FullScan(open_trace(path)), t0, t1
    )
    idx_rows, idx_stats, idx_s = _timed_query(open_trace(path), t0, t1)
    assert idx_rows == full_rows, "pruned query diverged from full scan"
    assert not full_stats.indexed
    assert full_stats.scanned_chunks == indexed.n_chunks
    assert idx_stats.indexed and idx_stats.total_chunks == indexed.n_chunks
    return {
        "chunks": indexed.n_chunks,
        "matched_records": len(idx_rows),
        "chunks_scanned_full": full_stats.scanned_chunks,
        "chunks_scanned_indexed": idx_stats.scanned_chunks,
        "prune_ratio": round(
            full_stats.scanned_chunks / max(1, idx_stats.scanned_chunks), 2
        ),
        "full_scan_ms": round(full_s * 1e3, 2),
        "indexed_ms": round(idx_s * 1e3, 2),
        "speedup": round(full_s / idx_s, 2),
    }


def measure(tmp_dir):
    native = os.path.join(tmp_dir, "t6-native.pdt")
    result, n_bytes = run_and_write_trace(
        StreamingPipelineWorkload(stages=4, blocks=64), native,
        TraceConfig(buffer_bytes=2048),
    )
    assert result.verified
    sorted_path = os.path.join(tmp_dir, "t6-sorted.pdt")
    _rewrite_time_sorted(native, sorted_path)

    # Center the 1% window on the median SPE event time, so the query
    # provably selects something.
    source = open_trace(sorted_path)
    (row,) = Query(source).where(spe=TARGET_SPE).agg(
        mid=("p50", "time")
    ).run()
    t_span = _span_width(source)
    width = max(1, int(t_span * WINDOW_FRACTION))
    t0, t1 = row["mid"] - width // 2, row["mid"] + (width - width // 2)

    return {
        "trace_bytes": n_bytes,
        "records": source.n_records,
        "window_fraction": WINDOW_FRACTION,
        "target_spe": TARGET_SPE,
        "native_layout": _measure_layout(native, t0, t1),
        "time_sorted_layout": _measure_layout(sorted_path, t0, t1),
    }


def _span_width(source):
    zones = [z for z in source.zone_maps() if z.has_time]
    return max(z.t_max for z in zones) - min(z.t_min for z in zones)


def test_t6_indexed_query(benchmark, save_result, tmp_path):
    row = benchmark.pedantic(measure, (str(tmp_path),), rounds=1, iterations=1)
    save_result(
        "BENCH_query.json",
        json.dumps({"row": row, "min_prune_ratio": MIN_PRUNE_RATIO}, indent=2)
        + "\n",
    )
    focused = row["time_sorted_layout"]
    # The query must actually select something, or the ratio is vacuous.
    assert focused["matched_records"] > 0, row
    # The headline gate: a 1%-window single-SPE query decodes >= 5x
    # fewer chunks than the full scan over the same file.
    assert (
        focused["chunks_scanned_indexed"] * MIN_PRUNE_RATIO
        <= focused["chunks_scanned_full"]
    ), row
    # The native per-core-chunk layout still prunes (by SPE bitmap),
    # just not by time.
    native = row["native_layout"]
    assert native["chunks_scanned_indexed"] < native["chunks_scanned_full"], row
