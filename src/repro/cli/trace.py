"""``pdt-trace``: run a workload under PDT and write a trace file."""

from __future__ import annotations

import argparse
import dataclasses
import sys
import typing

from repro.pdt import TraceConfig, TraceFormatError, write_trace
from repro.pdt.config import TraceConfig as _TraceConfig
from repro.workloads import (
    FftWorkload,
    HistogramWorkload,
    MandelbrotWorkload,
    MatmulWorkload,
    MonteCarloWorkload,
    SpmvWorkload,
    StreamingPipelineWorkload,
    Workload,
    run_workload,
)

#: name -> workload factory taking (n_spes)
WORKLOADS: typing.Dict[str, typing.Callable[[int], Workload]] = {
    "matmul": lambda n: MatmulWorkload(n_spes=n),
    "matmul-db": lambda n: MatmulWorkload(n_spes=n, double_buffered=True),
    "matmul-skew": lambda n: MatmulWorkload(n_spes=n, skew=4),
    "fft": lambda n: FftWorkload(n_spes=n),
    "streaming": lambda n: StreamingPipelineWorkload(stages=n),
    "streaming-ls": lambda n: StreamingPipelineWorkload(stages=n, via_ls=True),
    "montecarlo": lambda n: MonteCarloWorkload(n_spes=n),
    "mandelbrot": lambda n: MandelbrotWorkload(n_spes=n, schedule="dynamic"),
    "mandelbrot-static": lambda n: MandelbrotWorkload(n_spes=n, schedule="static"),
    "histogram": lambda n: HistogramWorkload(n_spes=n),
    "spmv": lambda n: SpmvWorkload(n_spes=n),
}

PRESETS = {
    "all": TraceConfig.all_events,
    "dma": TraceConfig.dma_only,
    "lifecycle": TraceConfig.lifecycle_only,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdt-trace",
        description="Run a Cell workload on the simulator under PDT "
        "and write the trace file.",
    )
    parser.add_argument("workload", choices=sorted(WORKLOADS))
    parser.add_argument("-o", "--output", default="trace.pdt",
                        help="trace file to write (default: trace.pdt)")
    parser.add_argument("-n", "--spes", type=int, default=4,
                        help="number of SPEs (default: 4)")
    parser.add_argument("--events", choices=sorted(PRESETS), default="all",
                        help="event-group preset (default: all)")
    parser.add_argument("--buffer", type=int, default=16 * 1024,
                        help="SPE trace buffer bytes (default: 16384)")
    parser.add_argument("--single-buffered-trace", action="store_true",
                        help="disable double buffering of the trace buffer")
    parser.add_argument("--wrap", action="store_true",
                        help="wrap the trace region instead of stopping "
                        "when it fills (keeps the newest events)")
    parser.add_argument("--region", type=int, default=4 * 1024 * 1024,
                        help="main-memory trace region bytes per SPE "
                        "(default: 4194304); runs that outgrow it drop "
                        "or, with --wrap, overwrite records")
    parser.add_argument("--only-spes", metavar="IDS",
                        help="comma-separated SPE ids to trace (default: all)")
    parser.add_argument("--config", metavar="FILE",
                        help="PDT XML configuration file (overrides the "
                        "other tracing flags)")
    parser.add_argument("--trace-version", type=int,
                        choices=(1, 2, 3, 4, 5),
                        default=None, metavar="V",
                        help="trace file format version to write (default: "
                        "5, compressed columnar; 4 = indexed, uncompressed; "
                        "3 = CRC chunks, no index; 2 = plain chunks; "
                        "1 = legacy flat records)")
    return parser


def main(argv: typing.Optional[typing.List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _run(args)
    except (TraceFormatError, OSError) as exc:
        print(f"pdt-trace: {exc}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    if args.config:
        from repro.pdt.configfile import load_config

        config = load_config(args.config)
    else:
        spe_filter = None
        if args.only_spes:
            spe_filter = frozenset(int(s) for s in args.only_spes.split(","))
        config = PRESETS[args.events](
            buffer_bytes=args.buffer,
            double_buffered=not args.single_buffered_trace,
            wrap=args.wrap,
            trace_region_bytes=args.region,
            spe_filter=spe_filter,
        )
    workload = WORKLOADS[args.workload](args.spes)
    result = run_workload(workload, trace_config=config)
    # Stream the recorded chunks straight to the file: the trace is
    # never assembled in memory as record objects.
    source = result.trace_source()
    if (
        args.trace_version is not None
        and args.trace_version != source.header.version
    ):
        source.header = dataclasses.replace(
            source.header, version=args.trace_version
        )
    nbytes = write_trace(source, args.output)
    status = "verified" if result.verified else "FAILED VERIFICATION"
    print(
        f"{workload.describe()}: {result.elapsed_cycles} cycles "
        f"({result.elapsed_us:.1f} us), results {status}"
    )
    print(
        f"wrote {args.output}: {source.n_records} records, {nbytes} bytes "
        f"({result.hooks.stats.total_flushes} buffer flushes)"
    )
    stats = result.hooks.stats
    dropped = sum(s.dropped_records for s in stats.per_spe.values())
    overwritten = sum(s.overwritten_records for s in stats.per_spe.values())
    wraps = sum(s.wraps for s in stats.per_spe.values())
    if dropped or overwritten:
        print(
            f"trace loss: {dropped} records dropped at region full, "
            f"{overwritten} overwritten by wrap ({wraps} wraps) — "
            "see the report's data-quality section"
        )
    return 0 if result.verified else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
