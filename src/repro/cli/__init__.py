"""Command-line tools: ``pdt-trace`` (record) and ``pdt-analyze`` (read).

These mirror how the real tool chain is driven: run an instrumented
application to produce a ``.pdt`` file, then open it in the analyzer.
"""
