"""``pdt-analyze``: read a PDT trace file and report on it."""

from __future__ import annotations

import argparse
import sys
import typing

from repro.pdt import TraceFormatError, open_trace
from repro.ta import (
    analyze,
    communication_edges,
    profile_table,
    records_to_csv,
    render_svg,
    stats_to_csv,
    summarize_channels,
)
from repro.ta.report import format_table, full_report
from repro.ta.stats import TraceStatistics


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdt-analyze",
        description="Analyze a PDT trace file: timeline, statistics, "
        "use-case diagnoses.",
    )
    parser.add_argument("trace", help="path to a .pdt trace file")
    parser.add_argument("--width", type=int, default=80,
                        help="timeline width in columns (default: 80)")
    parser.add_argument("--svg", metavar="FILE",
                        help="also write the timeline as SVG")
    parser.add_argument("--csv-records", metavar="FILE",
                        help="also dump placed records as CSV")
    parser.add_argument("--csv-stats", metavar="FILE",
                        help="also dump the per-SPE summary as CSV")
    parser.add_argument("--html", metavar="FILE",
                        help="write the full analysis as a standalone "
                        "HTML report")
    parser.add_argument("--profile", action="store_true",
                        help="print the event-frequency profile")
    parser.add_argument("--comm", action="store_true",
                        help="print cross-core communication channels")
    parser.add_argument("--salvage", action="store_true",
                        help="recover what is readable from a damaged "
                        "trace instead of failing: corrupt chunks are "
                        "skipped and the salvage summary is printed")
    return parser


def main(argv: typing.Optional[typing.List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _run(args)
    except (TraceFormatError, OSError) as exc:
        print(f"pdt-analyze: {args.trace}: {exc}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    # Stream the file chunk by chunk: the analyzer never holds the
    # whole trace, so multi-million-event files analyze in O(chunk)
    # memory.  With --salvage, damaged files lose only their damaged
    # chunks.
    trace = open_trace(args.trace, strict=not args.salvage)
    if trace.salvage is not None:
        print(f"salvage: {trace.salvage.summary()}")
    print(full_report(trace, gantt_width=args.width), end="")
    model = analyze(trace)
    if args.profile:
        print("\n--- event profile ---")
        print(format_table(profile_table(trace)), end="")
    if args.comm:
        print("\n--- communication channels ---")
        summaries = summarize_channels(communication_edges(model))
        print(
            format_table(
                [
                    {
                        "channel": s.channel,
                        "edges": s.count,
                        "mean_latency": round(s.mean_latency, 1),
                        "max_latency": s.max_latency,
                    }
                    for s in summaries
                ]
            ),
            end="",
        )
    if args.svg:
        with open(args.svg, "w") as handle:
            handle.write(render_svg(model))
        print(f"wrote {args.svg}")
    if args.html:
        from repro.ta.html import save_html_report

        save_html_report(trace, args.html, title=f"PDT: {args.trace}")
        print(f"wrote {args.html}")
    if args.csv_records:
        with open(args.csv_records, "w") as handle:
            records_to_csv(model.iter_placed(), handle)
        print(f"wrote {args.csv_records}")
    if args.csv_stats:
        stats = TraceStatistics.from_model(model)
        with open(args.csv_stats, "w") as handle:
            stats_to_csv(stats, handle)
        print(f"wrote {args.csv_stats}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
