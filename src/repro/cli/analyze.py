"""``pdt-analyze``: read a PDT trace file and report on it."""

from __future__ import annotations

import argparse
import os
import sys
import typing

from repro.pdt import TraceFormatError, open_handle
from repro.pdt.correlate import CorrelationError
from repro.pdt.handle import TraceHandle
from repro.ta.model import ModelError
from repro.ta import (
    analyze,
    communication_edges,
    profile_table,
    records_to_csv,
    render_svg,
    stats_to_csv,
    summarize_channels,
)
from repro.ta.report import format_table, full_report
from repro.ta.stats import TraceStatistics
from repro.tq import Query, build_sidecar


def _window(text: str) -> typing.Tuple[typing.Optional[int], typing.Optional[int]]:
    """Parse ``T0:T1`` (either bound may be empty) into a (t0, t1) pair."""
    lo, sep, hi = text.partition(":")
    if not sep:
        raise argparse.ArgumentTypeError(f"expected T0:T1, got {text!r}")
    try:
        return (int(lo, 0) if lo else None, int(hi, 0) if hi else None)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected integer time bounds, got {text!r}"
        ) from None


def _event(text: str) -> typing.Union[int, str]:
    """An event selector: a numeric code or a kind name like mfc_get."""
    try:
        return int(text, 0)
    except ValueError:
        return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdt-analyze",
        description="Analyze a PDT trace file: timeline, statistics, "
        "use-case diagnoses.",
    )
    parser.add_argument("trace", help="path to a .pdt trace file")
    parser.add_argument("--width", type=int, default=80,
                        help="timeline width in columns (default: 80)")
    parser.add_argument("--svg", metavar="FILE",
                        help="also write the timeline as SVG")
    parser.add_argument("--csv-records", metavar="FILE",
                        help="also dump placed records as CSV")
    parser.add_argument("--csv-stats", metavar="FILE",
                        help="also dump the per-SPE summary as CSV")
    parser.add_argument("--html", metavar="FILE",
                        help="write the full analysis as a standalone "
                        "HTML report")
    parser.add_argument("--profile", action="store_true",
                        help="print the event-frequency profile")
    parser.add_argument("--comm", action="store_true",
                        help="print cross-core communication channels")
    parser.add_argument("--salvage", action="store_true",
                        help="recover what is readable from a damaged "
                        "trace instead of failing: corrupt chunks are "
                        "skipped and the salvage summary is printed")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard scans over N worker processes "
                        "(default: 1 = serial; results are identical "
                        "either way)")
    follow = parser.add_argument_group(
        "follow mode", "tail a trace file still being written: a "
        "top-style live view (per-core state, event rates, loss "
        "counters) refreshed until the writer closes the file; with "
        "--bucket, also print each time bucket's record count the "
        "moment it is provably final")
    follow.add_argument("--follow", action="store_true",
                        help="follow a growing trace instead of "
                        "analyzing a closed one")
    follow.add_argument("--refresh", type=float, default=1.0, metavar="SEC",
                        help="follow-mode refresh interval in seconds "
                        "(default: 1.0)")
    follow.add_argument("--max-polls", type=int, default=None, metavar="N",
                        help="stop after N refreshes even if the trace "
                        "is still growing (exit status 3)")
    follow.add_argument("--bucket", type=int, default=None, metavar="W",
                        help="in follow mode, stream sealed time_bucket "
                        "counts of width W corrected-time units")
    query = parser.add_argument_group(
        "query mode", "restrict to matching records and print a per-core "
        "event summary instead of the full report; zone maps prune the "
        "chunks that cannot match, so narrow queries skip most of the file")
    query.add_argument("--between", metavar="T0:T1", type=_window,
                       help="corrected-time window (either bound may be "
                       "empty: ':5000' or '5000:')")
    query.add_argument("--spe", type=int, metavar="N",
                       help="only records produced by SPE N")
    query.add_argument("--event", type=_event, metavar="CODE",
                       help="only this event: a kind name (e.g. mfc_get) "
                       "or numeric code")
    query.add_argument("--write-index", action="store_true",
                       help="build a .pdtx sidecar index for the trace so "
                       "later queries on v1-v3 files can prune")
    query.add_argument("-v", "--verbose", action="store_true",
                       help="in query mode, also print how many chunks "
                       "the index pruned")
    return parser


def main(argv: typing.Optional[typing.List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print(
            f"pdt-analyze: --jobs must be >= 1, got {args.jobs}",
            file=sys.stderr,
        )
        return 2
    cpus = os.cpu_count() or 1
    if args.jobs > cpus:
        print(
            f"pdt-analyze: --jobs {args.jobs} exceeds the "
            f"{cpus} available CPU(s); using {cpus}",
            file=sys.stderr,
        )
        args.jobs = cpus
    if args.max_polls is not None and args.max_polls < 1:
        print(
            f"pdt-analyze: --max-polls must be >= 1, got {args.max_polls}",
            file=sys.stderr,
        )
        return 2
    if args.bucket is not None and args.bucket < 1:
        print(
            f"pdt-analyze: --bucket must be >= 1, got {args.bucket}",
            file=sys.stderr,
        )
        return 2
    if args.refresh < 0:
        print(
            f"pdt-analyze: --refresh must be >= 0, got {args.refresh}",
            file=sys.stderr,
        )
        return 2
    try:
        if args.follow:
            return _run_follow(args)
        return _run(args)
    except (TraceFormatError, CorrelationError, ModelError, OSError) as exc:
        print(f"pdt-analyze: {args.trace}: {exc}", file=sys.stderr)
        return 2


def _run_follow(args: argparse.Namespace) -> int:
    """Follow mode: live view frames (and, with --bucket, sealed
    windowed counts) until the writer closes the file."""
    import time

    from repro.live import FollowQuery, LiveView

    view = LiveView(args.trace)
    follow = None
    if args.bucket is not None:
        follow = FollowQuery(
            Query(None).groupby("bucket", time_bucket=args.bucket).agg(
                n="count"
            ),
            args.trace,
        )
    polls = 0
    while True:
        tick = view.refresh()
        view.render(tick)
        if follow is not None:
            snapshot = follow.poll()
            for row in snapshot.newly_sealed or ():
                print(f"  sealed bucket {row['bucket']}: {row['n']} records")
        polls += 1
        if tick.status == "complete":
            return 0
        if args.max_polls is not None and polls >= args.max_polls:
            print(
                f"pdt-analyze: {args.trace} still {tick.status} after "
                f"{polls} polls",
                file=sys.stderr,
            )
            return 3
        time.sleep(args.refresh)


def _run_query(args: argparse.Namespace, handle: TraceHandle) -> int:
    """Query mode: filter, group per (side, core, kind), print a table.

    All passes run over the caller's single :class:`TraceHandle` — the
    header/trailer are parsed exactly once per invocation, however many
    statistics passes follow.
    """
    if handle.salvage is not None:
        print(f"salvage: {handle.salvage.summary()}")
    t0, t1 = args.between if args.between else (None, None)
    try:
        query = (
            Query(handle)
            .where(t0=t0, t1=t1, spe=args.spe, event=args.event)
            .groupby("side", "core", "kind")
            .agg(count="count", t_min=("min", "time"), t_max=("max", "time"))
        )
        if args.jobs > 1:
            from repro.par import parallel_rows

            rows = parallel_rows(query, args.jobs)
        else:
            rows = query.run()
    except ValueError as exc:  # e.g. an unknown --event kind name
        print(f"pdt-analyze: {exc}", file=sys.stderr)
        return 2
    total = sum(row["count"] for row in rows)
    print(
        format_table(
            [
                {
                    "side": "SPE" if row["side"] else "PPE",
                    "core": row["core"],
                    "kind": row["kind"],
                    "count": row["count"],
                    "t_min": row["t_min"],
                    "t_max": row["t_max"],
                }
                for row in rows
            ]
        ),
        end="",
    )
    print(f"{total} matching records")
    if args.verbose and query.stats is not None:
        print(query.stats.note())
    return 0


def _run(args: argparse.Namespace) -> int:
    query_mode = (
        args.between is not None
        or args.spe is not None
        or args.event is not None
    )
    # One TraceHandle per invocation: the header, trailer, and clock
    # fit are parsed/fitted exactly once, and every pass below —
    # sidecar backfill, query passes, report, profile, HTML — reads
    # through it.
    with open_handle(args.trace, strict=not args.salvage) as handle:
        if args.write_index:
            # A salvaged open must never feed an index; let
            # build_sidecar do its own strict read in that case.
            source = None if args.salvage else handle
            print(f"wrote {build_sidecar(args.trace, source)}")
            # Serve the freshly written index to this invocation too.
            handle.attach_sidecar()
            if not query_mode:
                return 0
        if query_mode:
            return _run_query(args, handle)
        return _run_report(args, handle)


def _run_report(args: argparse.Namespace, handle: TraceHandle) -> int:
    # Stream the file chunk by chunk: the analyzer never holds the
    # whole trace, so multi-million-event files analyze in O(chunk)
    # memory.  With --salvage, damaged files lose only their damaged
    # chunks.
    trace = handle.source()
    if trace.salvage is not None:
        print(f"salvage: {trace.salvage.summary()}")
    print(full_report(trace, gantt_width=args.width), end="")
    model = analyze(trace)
    if args.profile:
        print("\n--- event profile ---")
        print(format_table(profile_table(trace, jobs=args.jobs)), end="")
    if args.comm:
        print("\n--- communication channels ---")
        summaries = summarize_channels(communication_edges(model))
        print(
            format_table(
                [
                    {
                        "channel": s.channel,
                        "edges": s.count,
                        "mean_latency": round(s.mean_latency, 1),
                        "max_latency": s.max_latency,
                    }
                    for s in summaries
                ]
            ),
            end="",
        )
    if args.svg:
        with open(args.svg, "w") as handle:
            handle.write(render_svg(model))
        print(f"wrote {args.svg}")
    if args.html:
        from repro.ta.html import save_html_report

        save_html_report(trace, args.html, title=f"PDT: {args.trace}")
        print(f"wrote {args.html}")
    if args.csv_records:
        with open(args.csv_records, "w") as handle:
            records_to_csv(model.iter_placed(), handle)
        print(f"wrote {args.csv_records}")
    if args.csv_stats:
        stats = TraceStatistics.from_model(model)
        with open(args.csv_stats, "w") as handle:
            stats_to_csv(stats, handle)
        print(f"wrote {args.csv_stats}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
