"""Waitable primitives that processes yield to the kernel.

A *waitable* is anything a process generator may ``yield``.  The
process driver (:mod:`repro.kernel.process`) subscribes a completion
callback on the yielded waitable; when the waitable completes, the
process resumes with the waitable's value (or has the waitable's
exception thrown into it).

The concrete waitables are:

:class:`Delay`
    Completes after a fixed number of time units.
:class:`Event`
    A one-shot latch another process (or hardware model) triggers.
:class:`AllOf` / :class:`AnyOf`
    Combinators over other waitables.
:class:`~repro.kernel.process.Process`
    Processes are themselves waitables; yielding one joins it.
"""

from __future__ import annotations

import typing

from repro.kernel.errors import KernelError, SimTimeError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.sim import Simulator

#: Signature of the completion callbacks waitables invoke:
#: ``callback(value, exc)`` with exactly one of the two not ``None``
#: (both may be ``None`` for a plain untyped completion).
CompletionCallback = typing.Callable[[typing.Any, typing.Optional[BaseException]], None]


class Interrupt(KernelError):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever object the interrupter
    passed, typically a short reason string.
    """

    def __init__(self, cause: typing.Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Waitable:
    """Base class for everything a process may yield.

    Subclasses implement :meth:`subscribe` and :meth:`unsubscribe`.
    ``subscribe`` must guarantee the callback fires exactly once unless
    unsubscribed first, and must fire it *through the simulator's event
    queue* (never synchronously inside ``subscribe``) so that process
    resumption order is always governed by the scheduler.
    """

    def subscribe(self, sim: "Simulator", callback: CompletionCallback) -> typing.Any:
        """Register ``callback`` to fire on completion; return a token."""
        raise NotImplementedError

    def unsubscribe(self, token: typing.Any) -> None:
        """Cancel a previous :meth:`subscribe` using its token."""
        raise NotImplementedError


class Delay(Waitable):
    """Completes ``duration`` time units after it is yielded.

    The value delivered to the waiting process is the absolute time at
    which the delay elapsed.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: int):
        if duration < 0:
            raise SimTimeError(f"negative delay: {duration}")
        self.duration = int(duration)

    def subscribe(self, sim: "Simulator", callback: CompletionCallback) -> typing.Any:
        wake_at = sim.now + self.duration
        return sim.schedule_at(wake_at, callback, wake_at, None)

    def unsubscribe(self, token: typing.Any) -> None:
        token.cancel()

    def __repr__(self) -> str:
        return f"Delay({self.duration})"


class Event(Waitable):
    """A one-shot latch.

    ``trigger(value)`` completes every current and future waiter with
    ``value``; ``fail(exc)`` completes them by raising ``exc`` inside
    the waiting process.  Triggering twice is an error — events are
    single-use by design, which catches a whole class of hardware-model
    bugs (e.g. completing the same DMA twice).
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self._sim = sim
        self.name = name
        self._done = False
        self._value: typing.Any = None
        self._exc: typing.Optional[BaseException] = None
        self._callbacks: typing.List[CompletionCallback] = []

    @property
    def triggered(self) -> bool:
        """True once :meth:`trigger` or :meth:`fail` has run."""
        return self._done

    @property
    def value(self) -> typing.Any:
        """The value passed to :meth:`trigger` (valid once triggered)."""
        if not self._done:
            raise KernelError(f"event {self.name!r} not yet triggered")
        return self._value

    def trigger(self, value: typing.Any = None) -> None:
        """Latch the event and wake every waiter with ``value``."""
        self._complete(value, None)

    def fail(self, exc: BaseException) -> None:
        """Latch the event and raise ``exc`` inside every waiter."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._complete(None, exc)

    def _complete(self, value: typing.Any, exc: typing.Optional[BaseException]) -> None:
        if self._done:
            raise KernelError(f"event {self.name!r} triggered twice")
        self._done = True
        self._value = value
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._sim.schedule_at(self._sim.now, callback, value, exc)

    def subscribe(self, sim: "Simulator", callback: CompletionCallback) -> typing.Any:
        if sim is not self._sim:
            raise KernelError("event waited on from a different simulator")
        if self._done:
            return sim.schedule_at(sim.now, callback, self._value, self._exc)
        self._callbacks.append(callback)
        return callback

    def unsubscribe(self, token: typing.Any) -> None:
        if token in self._callbacks:
            self._callbacks.remove(token)
        elif hasattr(token, "cancel"):  # already-triggered path returned a timer
            token.cancel()

    def __repr__(self) -> str:
        state = "triggered" if self._done else "pending"
        return f"Event({self.name!r}, {state})"


class _Combinator(Waitable):
    """Shared machinery for :class:`AllOf` and :class:`AnyOf`."""

    def __init__(self, children: typing.Sequence[Waitable]):
        self.children = list(children)
        if not self.children:
            raise KernelError(f"{type(self).__name__} needs at least one waitable")
        for child in self.children:
            if not isinstance(child, Waitable):
                raise TypeError(f"{type(self).__name__} child is not waitable: {child!r}")


class AllOf(_Combinator):
    """Completes when *every* child completes.

    Delivers the list of child values in child order.  If any child
    fails, the first failure propagates and remaining subscriptions are
    cancelled.
    """

    def subscribe(self, sim: "Simulator", callback: CompletionCallback) -> typing.Any:
        state = {
            "remaining": len(self.children),
            "values": [None] * len(self.children),
            "tokens": [],
            "done": False,
        }

        def make_child_callback(index: int) -> CompletionCallback:
            def on_child(value: typing.Any, exc: typing.Optional[BaseException]) -> None:
                if state["done"]:
                    return
                if exc is not None:
                    state["done"] = True
                    _cancel_all(self.children, state["tokens"], skip=index)
                    callback(None, exc)
                    return
                state["values"][index] = value
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    state["done"] = True
                    callback(list(state["values"]), None)

            return on_child

        for i, child in enumerate(self.children):
            state["tokens"].append(child.subscribe(sim, make_child_callback(i)))
        return state

    def unsubscribe(self, token: typing.Any) -> None:
        if not token["done"]:
            token["done"] = True
            _cancel_all(self.children, token["tokens"])


class AnyOf(_Combinator):
    """Completes when the *first* child completes.

    Delivers ``(index, value)`` identifying which child won.  Losing
    children's subscriptions are cancelled; note that cancellation does
    not undo side effects a child may already have had.
    """

    def subscribe(self, sim: "Simulator", callback: CompletionCallback) -> typing.Any:
        state = {"tokens": [], "done": False}

        def make_child_callback(index: int) -> CompletionCallback:
            def on_child(value: typing.Any, exc: typing.Optional[BaseException]) -> None:
                if state["done"]:
                    return
                state["done"] = True
                _cancel_all(self.children, state["tokens"], skip=index)
                if exc is not None:
                    callback(None, exc)
                else:
                    callback((index, value), None)

            return on_child

        for i, child in enumerate(self.children):
            state["tokens"].append(child.subscribe(sim, make_child_callback(i)))
            if state["done"]:
                break
        return state

    def unsubscribe(self, token: typing.Any) -> None:
        if not token["done"]:
            token["done"] = True
            _cancel_all(self.children, token["tokens"])


def _cancel_all(
    children: typing.Sequence[Waitable],
    tokens: typing.Sequence[typing.Any],
    skip: int = -1,
) -> None:
    for i, token in enumerate(tokens):
        if i != skip:
            children[i].unsubscribe(token)
