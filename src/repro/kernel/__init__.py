"""Discrete-event simulation kernel.

This package is the foundation everything else in :mod:`repro` is built
on.  It implements a small, deterministic, generator-coroutine based
discrete-event simulator in the style of SimPy, but purpose-built for
the Cell BE model:

* time is an integer (we use SPU cycles at the machine's SPU clock as
  the base unit everywhere),
* processes are plain Python generators that ``yield`` *waitables*
  (:class:`Delay`, :class:`Event`, :class:`Process`, :class:`AllOf`,
  :class:`AnyOf`),
* composition happens with ``yield from``: higher-level operations
  (e.g. "issue a DMA and wait for its tag group") are generators that
  internally yield kernel primitives, so user programs read like
  straight-line code.

Determinism matters for this project: the trace analyzer's tests
compare event orderings, so the kernel breaks time ties by scheduling
sequence number, never by hash order.
"""

from repro.kernel.errors import DeadlockError, KernelError, ProcessKilled, SimTimeError
from repro.kernel.events import AllOf, AnyOf, Delay, Event, Interrupt, Waitable
from repro.kernel.process import Process
from repro.kernel.queue import Channel, QueueEmpty, QueueFull
from repro.kernel.resource import Resource
from repro.kernel.sim import Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "DeadlockError",
    "Delay",
    "Event",
    "Interrupt",
    "KernelError",
    "Process",
    "ProcessKilled",
    "QueueEmpty",
    "QueueFull",
    "Resource",
    "SimTimeError",
    "Simulator",
    "Waitable",
]
