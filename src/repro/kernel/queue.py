"""A bounded FIFO channel between processes.

This is the substrate for the Cell's mailboxes and signal plumbing:
fixed capacity, blocking put when full, blocking get when empty, plus
non-blocking probes (``try_put`` / ``try_get`` / ``count``) because the
hardware exposes queue-status channels that software polls.
"""

from __future__ import annotations

import collections
import typing

from repro.kernel.errors import KernelError
from repro.kernel.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.sim import Simulator


class QueueFull(KernelError):
    """Non-blocking put on a full channel."""


class QueueEmpty(KernelError):
    """Non-blocking get on an empty channel."""


class Channel:
    """Bounded FIFO with blocking and non-blocking endpoints."""

    def __init__(self, sim: "Simulator", capacity: int, name: str = ""):
        if capacity < 1:
            raise KernelError(f"channel capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name or "channel"
        self.capacity = capacity
        self._items: typing.Deque[typing.Any] = collections.deque()
        self._getters: typing.Deque[Event] = collections.deque()
        self._putters: typing.Deque[typing.Tuple[Event, typing.Any]] = collections.deque()

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Items currently queued (what a status channel would read)."""
        return len(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    # ------------------------------------------------------------------
    # blocking endpoints (yield the returned event)
    # ------------------------------------------------------------------
    def put(self, item: typing.Any) -> Event:
        """Enqueue; the returned event triggers once the item is stored."""
        event = Event(self.sim, name=f"{self.name}.put")
        if len(self._items) < self.capacity and not self._putters:
            self._store(item)
            event.trigger(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Dequeue; the returned event triggers with the item."""
        event = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            event.trigger(self._items.popleft())
            self._admit_putters()
        else:
            self._getters.append(event)
        return event

    # ------------------------------------------------------------------
    # non-blocking endpoints
    # ------------------------------------------------------------------
    def try_put(self, item: typing.Any) -> bool:
        """Enqueue if space; False when full (no queuing)."""
        if len(self._items) >= self.capacity or self._putters:
            return False
        self._store(item)
        return True

    def put_overwrite(self, item: typing.Any) -> bool:
        """Enqueue, overwriting the newest entry when full.

        Models the hardware behaviour of MMIO mailbox writes that do
        not flow-control: the Cell's inbound mailbox overwrites the
        last entry if software writes when full.  Returns True if an
        entry was overwritten.
        """
        if len(self._items) >= self.capacity:
            self._items[-1] = item
            return True
        self._store(item)
        return False

    def try_get(self) -> typing.Any:
        """Dequeue or raise :class:`QueueEmpty` (no queuing)."""
        if not self._items:
            raise QueueEmpty(self.name)
        item = self._items.popleft()
        self._admit_putters()
        return item

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _store(self, item: typing.Any) -> None:
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def _admit_putters(self) -> None:
        while self._putters and len(self._items) < self.capacity:
            event, item = self._putters.popleft()
            self._store(item)
            event.trigger(None)

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, {len(self._items)}/{self.capacity}, "
            f"{len(self._getters)} getters, {len(self._putters)} putters)"
        )
