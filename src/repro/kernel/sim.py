"""The simulator core: an integer-time event queue.

Time is a dimensionless non-negative integer.  Throughout
:mod:`repro` the unit is one SPU cycle of the simulated machine
(3.2 GHz by default), chosen because it is the fastest clock in the
system so every other clock (PPE timebase, SPU decrementers) is an
integer multiple of it.
"""

from __future__ import annotations

import heapq
import typing

from repro.kernel.errors import DeadlockError, SimTimeError


class Timer:
    """A cancellable handle for one scheduled callback."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: typing.Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """A deterministic discrete-event scheduler.

    Determinism guarantee: callbacks scheduled for the same time fire
    in the order they were scheduled (FIFO tie-break by sequence
    number).  Nothing in the kernel iterates a set or dict whose order
    could leak into scheduling decisions.
    """

    def __init__(self):
        self.now: int = 0
        self._heap: typing.List[Timer] = []
        self._seq = 0
        #: Number of processes currently alive (maintained by Process).
        self._live_processes = 0
        #: Number of processes currently blocked on a waitable.
        self._blocked_processes = 0
        #: The process whose generator is currently executing (set by
        #: Process while stepping it).  Lets models attribute work to
        #: a software thread — e.g. PDT tagging PPE records with the
        #: producing thread id.
        self.current_process = None

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule_at(self, time: int, fn: typing.Callable, *args: typing.Any) -> Timer:
        """Schedule ``fn(*args)`` to run at absolute ``time``."""
        if time < self.now:
            raise SimTimeError(f"cannot schedule at {time}, now is {self.now}")
        timer = Timer(int(time), self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, timer)
        return timer

    def schedule(self, delay: int, fn: typing.Callable, *args: typing.Any) -> Timer:
        """Schedule ``fn(*args)`` to run ``delay`` units from now."""
        if delay < 0:
            raise SimTimeError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    # ------------------------------------------------------------------
    # process management (used by Process; counts drive deadlock checks)
    # ------------------------------------------------------------------
    def spawn(self, generator: typing.Generator, name: str = "", daemon: bool = False):
        """Start a new process running ``generator``; returns the Process.

        Convenience alias so call sites do not need to import Process.
        Daemon processes may block forever without tripping deadlock
        detection (hardware engines that idle waiting for work).
        """
        from repro.kernel.process import Process

        return Process(self, generator, name=name, daemon=daemon)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending callback; False if queue empty."""
        while self._heap:
            timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            if timer.time < self.now:
                raise SimTimeError("event queue corrupted: time went backwards")
            self.now = timer.time
            timer.fn(*timer.args)
            return True
        return False

    def run(self, until: typing.Optional[int] = None) -> int:
        """Run until the queue drains or ``until`` is reached.

        Returns the final simulation time.  Raises
        :class:`~repro.kernel.errors.DeadlockError` if the queue drains
        while processes are still blocked — that always indicates a
        modelling bug (e.g. a mailbox read with no writer), and failing
        loudly beats an analysis silently missing half its trace.
        """
        if until is not None and until < self.now:
            raise SimTimeError(f"until={until} is in the past (now={self.now})")
        while True:
            timer = self._peek()
            if timer is None:
                if self._blocked_processes > 0:
                    raise DeadlockError(
                        f"event queue empty at t={self.now} with "
                        f"{self._blocked_processes} blocked process(es)"
                    )
                break
            if until is not None and timer.time > until:
                self.now = until
                break
            self.step()
        return self.now

    def _peek(self) -> typing.Optional[Timer]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled callbacks."""
        return sum(1 for t in self._heap if not t.cancelled)

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now}, pending={self.pending_events}, "
            f"live={self._live_processes}, blocked={self._blocked_processes})"
        )
