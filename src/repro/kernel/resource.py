"""A counted resource with FIFO acquisition.

Used for things like EIB ring slots and MFC queue slots, where a fixed
number of units exist and requesters must queue in arrival order
(hardware arbiters in the Cell are round-robin/FIFO-fair; FIFO keeps
the model deterministic and fair enough for our purposes).
"""

from __future__ import annotations

import collections
import typing

from repro.kernel.errors import KernelError
from repro.kernel.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.sim import Simulator


class Resource:
    """``capacity`` units, acquired one at a time, FIFO order."""

    def __init__(self, sim: "Simulator", capacity: int, name: str = ""):
        if capacity < 1:
            raise KernelError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name or "resource"
        self.capacity = capacity
        self._in_use = 0
        self._waiters: typing.Deque[Event] = collections.deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of acquirers currently waiting."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that triggers once a unit is granted.

        Yield the returned event; the unit is held from the moment the
        event triggers until :meth:`release`.
        """
        event = Event(self.sim, name=f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.trigger(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; wakes the longest-waiting acquirer if any."""
        if self._in_use <= 0:
            raise KernelError(f"{self.name}: release without acquire")
        if self._waiters:
            # Hand the unit directly to the next waiter: _in_use stays
            # constant, ownership transfers.
            self._waiters.popleft().trigger(self)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:
        return (
            f"Resource({self.name!r}, {self._in_use}/{self.capacity} used, "
            f"{len(self._waiters)} waiting)"
        )
