"""Processes: generator coroutines driven by the simulator.

A process wraps a generator.  Each time the generator yields a
:class:`~repro.kernel.events.Waitable`, the process blocks until it
completes, then resumes with its value (``value = yield waitable``).
Returning from the generator (optionally with ``return value``) ends
the process; yielding anything that is not a waitable is an error.

Processes are themselves waitables — yielding a process joins it and
delivers its return value (or re-raises its crash exception in the
joiner).
"""

from __future__ import annotations

import typing

from repro.kernel.errors import KernelError, ProcessKilled
from repro.kernel.events import CompletionCallback, Interrupt, Waitable

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.sim import Simulator


class Process(Waitable):
    """A running simulation process.

    Attributes of interest to models and tests:

    ``alive``
        True until the generator returns or raises.
    ``result``
        The generator's return value once finished normally.
    ``exception``
        The crash exception once finished abnormally.
    """

    _ids = 0

    def __init__(
        self,
        sim: "Simulator",
        generator: typing.Generator,
        name: str = "",
        daemon: bool = False,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process needs a generator, got {generator!r} — did you call "
                "the generator function with ()?"
            )
        Process._ids += 1
        self.pid = Process._ids
        self.sim = sim
        self.name = name or f"proc-{self.pid}"
        #: Daemon processes may block forever without counting as a
        #: deadlock — used for hardware engines (e.g. MFC dispatchers)
        #: that idle until work arrives.
        self.daemon = daemon
        self._generator = generator
        self._alive = True
        self._blocked_on: typing.Optional[Waitable] = None
        self._blocked_token: typing.Any = None
        self._result: typing.Any = None
        self._exception: typing.Optional[BaseException] = None
        self._joiners: typing.List[CompletionCallback] = []
        sim._live_processes += 1
        # First resume happens through the scheduler at the current
        # time so that spawning is itself deterministic.
        sim.schedule_at(sim.now, self._resume, None, None)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> typing.Any:
        if self._alive:
            raise KernelError(f"{self.name} still running")
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def exception(self) -> typing.Optional[BaseException]:
        return self._exception

    # ------------------------------------------------------------------
    # driving the generator
    # ------------------------------------------------------------------
    def _resume(self, value: typing.Any, exc: typing.Optional[BaseException]) -> None:
        if not self._alive:
            return
        if self._blocked_on is not None:
            self._blocked_on = None
            self._blocked_token = None
            if not self.daemon:
                self.sim._blocked_processes -= 1
        previous = self.sim.current_process
        self.sim.current_process = self
        try:
            if exc is not None:
                yielded = self._generator.throw(exc)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except (ProcessKilled, Interrupt) as killed:
            # Kill/interrupt not caught by the process: it dies quietly
            # with the kill recorded as its exception.
            self._finish(None, killed)
            return
        except Exception as crash:
            self._finish(None, crash)
            return
        finally:
            self.sim.current_process = previous
        self._block_on(yielded)

    def _block_on(self, yielded: typing.Any) -> None:
        if not isinstance(yielded, Waitable):
            bug = KernelError(
                f"{self.name} yielded a non-waitable: {yielded!r} "
                "(hint: use 'yield from' for sub-operations)"
            )
            # Surface the bug inside the offending process so its
            # traceback points at the bad yield.
            self.sim.schedule_at(self.sim.now, self._resume, None, bug)
            return
        self._blocked_on = yielded
        if not self.daemon:
            self.sim._blocked_processes += 1
        self._blocked_token = yielded.subscribe(self.sim, self._resume)

    def _finish(self, result: typing.Any, exc: typing.Optional[BaseException]) -> None:
        self._alive = False
        self._result = result
        self._exception = exc
        self.sim._live_processes -= 1
        joiners, self._joiners = self._joiners, []
        for callback in joiners:
            self.sim.schedule_at(self.sim.now, callback, result, exc)
        if exc is not None and not joiners and not isinstance(exc, (ProcessKilled, Interrupt)):
            # Nobody is joining this process, so nobody would ever see
            # the crash: re-raise out of the simulator run loop.
            raise exc

    # ------------------------------------------------------------------
    # control from other processes
    # ------------------------------------------------------------------
    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        self._unblock_with(Interrupt(cause))

    def kill(self, reason: str = "") -> None:
        """Throw :class:`ProcessKilled` into the process."""
        self._unblock_with(ProcessKilled(reason))

    def _unblock_with(self, exc: BaseException) -> None:
        if not self._alive:
            return
        if self._blocked_on is None:
            raise KernelError(f"cannot interrupt {self.name}: it is not blocked")
        self._blocked_on.unsubscribe(self._blocked_token)
        self._blocked_on = None
        self._blocked_token = None
        if not self.daemon:
            self.sim._blocked_processes -= 1
        self.sim.schedule_at(self.sim.now, self._resume, None, exc)

    # ------------------------------------------------------------------
    # Waitable protocol: joining
    # ------------------------------------------------------------------
    def subscribe(self, sim: "Simulator", callback: CompletionCallback) -> typing.Any:
        if sim is not self.sim:
            raise KernelError("process joined from a different simulator")
        if not self._alive:
            return sim.schedule_at(sim.now, callback, self._result, self._exception)
        self._joiners.append(callback)
        return callback

    def unsubscribe(self, token: typing.Any) -> None:
        if token in self._joiners:
            self._joiners.remove(token)
        elif hasattr(token, "cancel"):
            token.cancel()

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"Process({self.name!r}, pid={self.pid}, {state})"
