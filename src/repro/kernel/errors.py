"""Exception hierarchy for the simulation kernel."""


class KernelError(Exception):
    """Base class for every error raised by the simulation kernel."""


class SimTimeError(KernelError):
    """An operation referenced an invalid simulation time.

    Raised for negative delays or for scheduling into the past.
    """


class DeadlockError(KernelError):
    """``run()`` was asked to reach a condition it can never reach.

    Raised when the event queue drains while at least one process is
    still blocked, or when ``run(until=...)`` runs out of events before
    the target time while processes are blocked.
    """


class ProcessKilled(KernelError):
    """Injected into a process that another process killed.

    A process may catch this to clean up; re-raising (or not catching)
    terminates it.
    """
