"""The tracing hook interface the runtime library exposes.

PDT's real-world deployment strategy — link against instrumented
runtime libraries — maps here to one object implementing
:class:`RuntimeHooks`, installed on a :class:`~repro.libspe.Runtime`.
Every hook that runs on a simulated core is a *generator* so the
implementation can charge the core for the cycles tracing costs
(``yield Delay(...)``) and even issue real DMA (trace-buffer flushes);
the no-op base class yields nothing and costs nothing.

Event kind strings are defined here because both the runtime (which
emits them) and PDT (which records them) need the same spellings.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cell.spu import SpuCore
    from repro.libspe.image import SpeProgram
    from repro.libspe.runtime import Runtime


class SpuEventKind:
    """SPU-side event kinds, named after the operations PDT traces."""

    SPE_ENTRY = "spe_entry"
    SPE_EXIT = "spe_exit"
    MFC_GET = "mfc_get"
    MFC_PUT = "mfc_put"
    MFC_GETL = "mfc_getl"
    MFC_PUTL = "mfc_putl"
    ATOMIC_GETLLAR = "atomic_getllar"
    ATOMIC_PUTLLC = "atomic_putllc"
    ATOMIC_PUTLLUC = "atomic_putlluc"
    WAIT_TAG_BEGIN = "wait_tag_begin"
    WAIT_TAG_END = "wait_tag_end"
    READ_MBOX_BEGIN = "read_mbox_begin"
    READ_MBOX_END = "read_mbox_end"
    WRITE_MBOX_BEGIN = "write_mbox_begin"
    WRITE_MBOX_END = "write_mbox_end"
    READ_SIGNAL_BEGIN = "read_signal_begin"
    READ_SIGNAL_END = "read_signal_end"
    SIGNAL_SEND = "signal_send"
    USER_MARKER = "user_marker"
    USER_DATA = "user_data"

    ALL = (
        SPE_ENTRY,
        SPE_EXIT,
        MFC_GET,
        MFC_PUT,
        MFC_GETL,
        MFC_PUTL,
        ATOMIC_GETLLAR,
        ATOMIC_PUTLLC,
        ATOMIC_PUTLLUC,
        WAIT_TAG_BEGIN,
        WAIT_TAG_END,
        READ_MBOX_BEGIN,
        READ_MBOX_END,
        WRITE_MBOX_BEGIN,
        WRITE_MBOX_END,
        READ_SIGNAL_BEGIN,
        READ_SIGNAL_END,
        SIGNAL_SEND,
        USER_MARKER,
        USER_DATA,
    )


class PpeEventKind:
    """PPE-side event kinds."""

    CONTEXT_CREATE = "context_create"
    CONTEXT_DESTROY = "context_destroy"
    PROGRAM_LOAD = "program_load"
    CONTEXT_RUN_BEGIN = "context_run_begin"
    CONTEXT_RUN_END = "context_run_end"
    IN_MBOX_WRITE = "in_mbox_write"
    OUT_MBOX_READ_BEGIN = "out_mbox_read_begin"
    OUT_MBOX_READ_END = "out_mbox_read_end"
    INTR_RECEIVED = "intr_received"
    PROXY_DMA = "proxy_dma"
    SIGNAL_WRITE = "signal_write"
    USER_MARKER = "ppe_user_marker"

    ALL = (
        CONTEXT_CREATE,
        CONTEXT_DESTROY,
        PROGRAM_LOAD,
        CONTEXT_RUN_BEGIN,
        CONTEXT_RUN_END,
        IN_MBOX_WRITE,
        OUT_MBOX_READ_BEGIN,
        OUT_MBOX_READ_END,
        INTR_RECEIVED,
        PROXY_DMA,
        SIGNAL_WRITE,
        USER_MARKER,
    )


def _no_cost() -> typing.Generator:
    """A generator that completes immediately without yielding."""
    return
    yield  # pragma: no cover - makes this function a generator


class RuntimeHooks:
    """No-op base implementation; PDT overrides every method.

    ``spu_event`` and ``ppe_event`` are generators: the runtime drives
    them with ``yield from`` on the core where the event happened, so
    any ``Delay`` they yield is charged to that core — tracing overhead
    becomes part of the simulation, exactly as on hardware.
    """

    def attach(self, runtime: "Runtime") -> None:
        """Called once when installed on a runtime."""

    def spe_program_loaded(self, spu: "SpuCore", program: "SpeProgram") -> None:
        """Called after a program image is placed in local store.

        PDT uses this moment to claim its trace buffer in the same LS.
        """

    def spu_event(
        self, spu: "SpuCore", kind: str, fields: typing.Dict[str, int]
    ) -> typing.Generator:
        """An SPU-side traced operation happened on ``spu``."""
        return _no_cost()

    def ppe_event(self, kind: str, fields: typing.Dict[str, int]) -> typing.Generator:
        """A PPE-side traced operation happened."""
        return _no_cost()

    def finalize(self) -> None:
        """Called when the run harness finishes (flush buffers etc.)."""
