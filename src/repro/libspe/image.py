"""SPE program images.

A real SPE ELF image occupies local store with its text and data
before the program even runs; PDT's trace buffer has to share the same
256 KB.  :class:`SpeProgram` carries that footprint so the simulator
reproduces the pressure.
"""

from __future__ import annotations

import typing

from repro.libspe.errors import SpeProgramError

#: SPE program entry point: ``entry(spu, argp, envp)`` returning a
#: generator that yields runtime operations via ``yield from``.
SpeEntry = typing.Callable[..., typing.Generator]


class SpeProgram:
    """A loadable SPE program image."""

    def __init__(
        self,
        name: str,
        entry: SpeEntry,
        ls_code_bytes: int = 16 * 1024,
        ls_data_bytes: int = 0,
    ):
        if not callable(entry):
            raise SpeProgramError(f"entry must be callable, got {entry!r}")
        if ls_code_bytes <= 0 or ls_data_bytes < 0:
            raise SpeProgramError(
                f"invalid LS footprint: code={ls_code_bytes}, data={ls_data_bytes}"
            )
        self.name = name
        self.entry = entry
        self.ls_code_bytes = ls_code_bytes
        self.ls_data_bytes = ls_data_bytes

    @property
    def ls_footprint(self) -> int:
        """Bytes of local store the image occupies when loaded."""
        return self.ls_code_bytes + self.ls_data_bytes

    def __repr__(self) -> str:
        return f"SpeProgram({self.name!r}, {self.ls_footprint} B)"
