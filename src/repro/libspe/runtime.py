"""PPE-side runtime: contexts, program load/run, mailbox access.

Mirrors the libspe2 call surface the paper's PDT instruments:
``spe_context_create``, ``spe_program_load``, ``spe_context_run``,
``spe_in_mbox_write``, ``spe_out_mbox_read``, ``spe_signal_write``.
All PPE-side operations are generators so the tracing hooks can charge
PPE cycles, and MMIO accesses cost what MMIO costs.
"""

from __future__ import annotations

import enum
import typing

from repro.cell.machine import CellMachine
from repro.cell.mfc import DmaDirection
from repro.cell.spu import SpuCore
from repro.kernel import Event, Process
from repro.libspe.errors import SpeContextError, SpeProgramError
from repro.libspe.hooks import PpeEventKind, RuntimeHooks
from repro.libspe.image import SpeProgram
from repro.libspe.spu_api import SpuRuntime


class _SpePool:
    """Free-list of physical SPEs with blocking acquisition.

    Static contexts remove a specific SPE; virtual contexts take the
    next free one, queuing FIFO when none is free (the OS scheduler
    behaviour libspe applications rely on when they create more
    contexts than the machine has SPEs).
    """

    def __init__(self, sim, spe_ids: typing.Iterable[int]):
        self._sim = sim
        self._free: typing.List[int] = list(spe_ids)
        self._waiters: typing.List[Event] = []

    def take_specific(self, spe_id: int) -> None:
        if spe_id not in self._free:
            raise SpeContextError(f"SPE {spe_id} is not free")
        self._free.remove(spe_id)

    def acquire_any(self) -> Event:
        """Event triggering with a free SPE id (yield it)."""
        event = Event(self._sim, name="spe-pool.acquire")
        if self._free:
            event.trigger(self._free.pop(0))
        else:
            self._waiters.append(event)
        return event

    def release(self, spe_id: int) -> None:
        if self._waiters:
            self._waiters.pop(0).trigger(spe_id)
        else:
            self._free.append(spe_id)

    @property
    def free_count(self) -> int:
        return len(self._free)


class ContextState(enum.Enum):
    CREATED = "created"
    LOADED = "loaded"
    RUNNING = "running"
    STOPPED = "stopped"
    DESTROYED = "destroyed"


class Runtime:
    """The runtime-library instance for one machine.

    ``hooks`` is the tracing seam: pass a
    :class:`repro.pdt.tracer.PdtHooks` to trace the run, or leave the
    default no-op hooks for an uninstrumented run.
    """

    def __init__(self, machine: CellMachine, hooks: typing.Optional[RuntimeHooks] = None):
        self.machine = machine
        self.hooks = hooks or RuntimeHooks()
        self._contexts: typing.Dict[int, "SpeContext"] = {}
        self._virtual_contexts: typing.List["SpeContext"] = []
        self._pool = _SpePool(machine.sim, range(len(machine.spes)))
        self.hooks.attach(self)

    @property
    def sim(self):
        return self.machine.sim

    # ------------------------------------------------------------------
    # context lifecycle
    # ------------------------------------------------------------------
    def context_create(
        self, spe_id: typing.Optional[int] = None, virtual: bool = False
    ) -> typing.Generator:
        """``spe_context_create``: claim an SPE.

        Generator — ``yield from`` it on the PPE.  Returns the context.

        ``virtual=True`` creates an *unbound* context: no physical SPE
        is claimed until :meth:`SpeContext.run`, which waits for one to
        free up.  This models creating more contexts than the machine
        has SPEs, with the runtime scheduling them onto the hardware.
        """
        if virtual:
            if spe_id is not None:
                raise SpeContextError("virtual contexts cannot pin an SPE id")
            context = SpeContext(self, spu=None)
            self._virtual_contexts.append(context)
            yield from self.hooks.ppe_event(
                PpeEventKind.CONTEXT_CREATE, {"spe": -1}
            )
            return context
        if spe_id is None:
            spe_id = self._first_free_spe()
        if spe_id in self._contexts:
            raise SpeContextError(f"SPE {spe_id} already has a context")
        self._pool.take_specific(spe_id)
        spu = self.machine.spe(spe_id)
        context = SpeContext(self, spu)
        self._contexts[spe_id] = context
        yield from self.hooks.ppe_event(
            PpeEventKind.CONTEXT_CREATE, {"spe": spe_id}
        )
        return context

    def _first_free_spe(self) -> int:
        for spe_id in range(len(self.machine.spes)):
            if spe_id not in self._contexts:
                return spe_id
        raise SpeContextError(
            f"all {len(self.machine.spes)} SPEs already have contexts"
        )

    def _release(self, spe_id: int) -> None:
        if self._contexts.pop(spe_id, None) is not None:
            self._pool.release(spe_id)

    @property
    def contexts(self) -> typing.List["SpeContext"]:
        return list(self._contexts.values())

    def finalize(self) -> None:
        """End-of-run: let the hooks flush whatever they buffered."""
        self.hooks.finalize()


class SpeContext:
    """One SPE context (``spe_context_t`` equivalent).

    A context is *bound* when it owns a physical SPE.  Static contexts
    (the default) bind at creation and stay bound until destroyed;
    virtual contexts bind for the duration of each run.
    """

    def __init__(self, runtime: Runtime, spu: typing.Optional[SpuCore]):
        self.runtime = runtime
        self.spu = spu
        self.virtual = spu is None
        self.spe_id: typing.Optional[int] = spu.spe_id if spu else None
        #: The SPE the last run executed on (survives unbinding).
        self.last_spe_id: typing.Optional[int] = self.spe_id
        self.state = ContextState.CREATED
        self.program: typing.Optional[SpeProgram] = None
        self.stop_code: typing.Optional[int] = None
        self._spu_process: typing.Optional[Process] = None

    @property
    def bound(self) -> bool:
        return self.spu is not None

    # ------------------------------------------------------------------
    # load / run
    # ------------------------------------------------------------------
    def load(self, program: SpeProgram) -> typing.Generator:
        """``spe_program_load``: place the image in local store.

        On a virtual (unbound) context the physical placement — and
        the LS-footprint check — happen at bind time inside ``run``.
        """
        if self.state not in (ContextState.CREATED, ContextState.STOPPED):
            raise SpeContextError(f"cannot load program in state {self.state.value}")
        self.program = program
        self.state = ContextState.LOADED
        yield from self.runtime.hooks.ppe_event(
            PpeEventKind.PROGRAM_LOAD,
            {"spe": -1 if self.spe_id is None else self.spe_id},
        )
        if self.bound:
            self._place_image()

    def _place_image(self) -> None:
        """Allocate the image in the bound SPE's local store."""
        program = self.program
        if program.ls_footprint > self.spu.ls.free_bytes:
            raise SpeProgramError(
                f"program {program.name!r} needs {program.ls_footprint} B of LS "
                f"but only {self.spu.ls.free_bytes} B are free"
            )
        self.spu.ls.allocate(program.ls_footprint, align=16)
        self.runtime.hooks.spe_program_loaded(self.spu, program)

    def run(self, argp: int = 0, envp: int = 0) -> typing.Generator:
        """``spe_context_run``: start the SPE and block until it stops.

        Returns the program's stop code.  Like the real call, this
        blocks the calling PPE thread; use :meth:`run_async` to model a
        pthread-per-SPE application.
        """
        self._begin_run()
        return (yield from self._run_body(argp, envp))

    def _begin_run(self) -> None:
        """Validate and claim the context for a run, synchronously.

        Both :meth:`run` and :meth:`run_async` call this *before* any
        simulated time passes, so a ``destroy`` racing with a pending
        asynchronous run is caught deterministically.
        """
        if self.state is not ContextState.LOADED:
            raise SpeContextError(f"cannot run context in state {self.state.value}")
        self.state = ContextState.RUNNING

    def _run_body(self, argp: int, envp: int) -> typing.Generator:
        if not self.bound:
            yield from self._bind()
        yield from self.runtime.hooks.ppe_event(
            PpeEventKind.CONTEXT_RUN_BEGIN, {"spe": self.spe_id}
        )
        self._spu_process = self.runtime.sim.spawn(
            self._spu_main(argp, envp), name=f"spe{self.spe_id}:{self.program.name}"
        )
        stop_code = yield self._spu_process
        self.stop_code = stop_code
        self.state = ContextState.STOPPED
        yield from self.runtime.hooks.ppe_event(
            PpeEventKind.CONTEXT_RUN_END, {"spe": self.spe_id, "stop_code": stop_code}
        )
        if self.virtual:
            self._unbind()
        return stop_code

    def _bind(self) -> typing.Generator:
        """Virtual context: wait for a physical SPE and provision it."""
        spe_id = yield self.runtime._pool.acquire_any()
        self.spu = self.runtime.machine.spe(spe_id)
        self.spe_id = spe_id
        self.last_spe_id = spe_id
        self.runtime._contexts[spe_id] = self
        # Re-provision the SPE for this context: previous occupant's
        # allocations are gone, its bytes may linger (like real LS).
        self.spu.ls.reset()
        self._place_image()

    def _unbind(self) -> None:
        """Virtual context: give the physical SPE back to the pool."""
        spe_id = self.spe_id
        self.runtime._contexts.pop(spe_id, None)
        self.spu = None
        self.spe_id = None
        self.runtime._pool.release(spe_id)

    def run_async(self, argp: int = 0, envp: int = 0) -> Process:
        """Run without blocking the caller (models a dedicated pthread).

        Returns the PPE-thread process; yield it to join and obtain the
        stop code.
        """
        self._begin_run()
        label = "virtual" if self.spe_id is None else f"spe{self.spe_id}"
        return self.runtime.sim.spawn(
            self._run_body(argp, envp), name=f"ppe-thread-{label}"
        )

    def _spu_main(self, argp: int, envp: int) -> typing.Generator:
        from repro.libspe.hooks import SpuEventKind

        spu_api = SpuRuntime(self.runtime, self.spu)
        hooks = self.runtime.hooks
        self.spu.begin_program()
        yield from hooks.spu_event(
            self.spu, SpuEventKind.SPE_ENTRY, {"argp": argp, "envp": envp}
        )
        try:
            result = yield from self.program.entry(spu_api, argp, envp)
        finally:
            yield from hooks.spu_event(self.spu, SpuEventKind.SPE_EXIT, {})
            self.spu.end_program()
        return int(result) if result is not None else 0

    def destroy(self) -> typing.Generator:
        """``spe_context_destroy``: release the SPE."""
        if self.state is ContextState.RUNNING:
            raise SpeContextError("cannot destroy a running context")
        self.state = ContextState.DESTROYED
        if self.virtual:
            if self in self.runtime._virtual_contexts:
                self.runtime._virtual_contexts.remove(self)
        else:
            self.runtime._release(self.spe_id)
        yield from self.runtime.hooks.ppe_event(
            PpeEventKind.CONTEXT_DESTROY,
            {"spe": -1 if self.spe_id is None else self.spe_id},
        )

    # ------------------------------------------------------------------
    # PPE-side mailbox / signal access
    # ------------------------------------------------------------------
    def in_mbox_write(self, value: int, blocking: bool = True) -> typing.Generator:
        """``spe_in_mbox_write``: push one word to the SPE.

        Blocking mode waits for queue space (libspe's
        ``SPE_MBOX_ALL_BLOCKING``); non-blocking returns False when the
        mailbox is full instead of overwriting.
        """
        yield from self.runtime.machine.ppe.mmio_access()
        yield from self.runtime.hooks.ppe_event(
            PpeEventKind.IN_MBOX_WRITE, {"spe": self.spe_id, "value": value}
        )
        mailboxes = self.spu.mailboxes
        if blocking:
            yield mailboxes.inbound.put(value)
            return True
        return mailboxes.inbound.try_put(value)

    def out_mbox_read(self, blocking: bool = True) -> typing.Generator:
        """``spe_out_mbox_read``: pull one word from the SPE.

        Returns the value, or None in non-blocking mode when empty.
        """
        yield from self.runtime.hooks.ppe_event(
            PpeEventKind.OUT_MBOX_READ_BEGIN, {"spe": self.spe_id}
        )
        yield from self.runtime.machine.ppe.mmio_access()
        mailboxes = self.spu.mailboxes
        if blocking:
            value = yield mailboxes.ppe_read_outbound()
        else:
            value = mailboxes.ppe_try_read_outbound()
        yield from self.runtime.hooks.ppe_event(
            PpeEventKind.OUT_MBOX_READ_END,
            {"spe": self.spe_id, "value": -1 if value is None else value},
        )
        return value

    def out_mbox_status(self) -> typing.Generator:
        """Entries waiting in the SPE's outbound mailbox (one MMIO read)."""
        yield from self.runtime.machine.ppe.mmio_access()
        return self.spu.mailboxes.ppe_outbound_count()

    def mfcio_get(self, ls_addr: int, ea: int, size: int, tag: int) -> typing.Generator:
        """``spe_mfcio_get``: PPE-initiated DMA into the SPE's LS.

        Issued through the MFC's proxy command queue (separate from the
        SPU-side queue).  Returns once the transfer *completes* — the
        PPE has no cheap tag-wait channel, so libspe callers block.
        """
        yield from self._proxy_dma(DmaDirection.GET, ls_addr, ea, size, tag)

    def mfcio_put(self, ls_addr: int, ea: int, size: int, tag: int) -> typing.Generator:
        """``spe_mfcio_put``: PPE-initiated DMA out of the SPE's LS."""
        yield from self._proxy_dma(DmaDirection.PUT, ls_addr, ea, size, tag)

    def _proxy_dma(self, direction, ls_addr, ea, size, tag) -> typing.Generator:
        yield from self.runtime.machine.ppe.mmio_access()
        yield from self.runtime.hooks.ppe_event(
            PpeEventKind.PROXY_DMA,
            {
                "spe": self.spe_id,
                "direction": 0 if direction is DmaDirection.GET else 1,
                "size": size,
                "tag": tag,
            },
        )
        command = self.spu.mfc.make_command(
            direction, ls_addr, ea, size, tag, issuer=f"ppe-proxy-spe{self.spe_id}"
        )
        completion = yield from self.spu.mfc.issue(command, proxy=True)
        yield completion

    def wait_interrupt(self) -> typing.Generator:
        """Block until the SPE raises its outbound *interrupt* mailbox.

        The libspe2 ``spe_event`` path: unlike :meth:`out_mbox_read`
        (which polls MMIO), interrupt delivery wakes the PPE — we
        charge one interrupt-dispatch latency (an MMIO round trip)
        instead of a polling loop.  Returns the mailbox value.
        """
        value = yield self.spu.mailboxes.outbound_interrupt.get()
        yield from self.runtime.machine.ppe.mmio_access()
        yield from self.runtime.hooks.ppe_event(
            PpeEventKind.INTR_RECEIVED, {"spe": self.spe_id, "value": value}
        )
        return value

    def on_interrupt(
        self, handler: typing.Callable[[int], typing.Generator], count: int
    ) -> Process:
        """Spawn a PPE service thread handling ``count`` interrupts.

        ``handler(value)`` must be a generator function (it runs on
        the PPE and may perform runtime calls).  Returns the service
        process; yield it to join once the expected interrupts landed.
        """

        def service():
            for __ in range(count):
                value = yield from self.wait_interrupt()
                yield from handler(value)

        return self.runtime.sim.spawn(
            service(), name=f"intr-service-spe{self.spe_id}"
        )

    def signal_write(self, which: int, bits: int) -> typing.Generator:
        """``spe_signal_write``: raise bits in a signal register."""
        if which not in (1, 2):
            raise SpeContextError(f"signal register must be 1 or 2, got {which}")
        yield from self.runtime.machine.ppe.mmio_access()
        yield from self.runtime.hooks.ppe_event(
            PpeEventKind.SIGNAL_WRITE,
            {"spe": self.spe_id, "which": which, "bits": bits},
        )
        mailboxes = self.spu.mailboxes
        register = mailboxes.signal1 if which == 1 else mailboxes.signal2
        register.send(bits)

    def __repr__(self) -> str:
        return f"SpeContext(spe{self.spe_id}, {self.state.value})"
