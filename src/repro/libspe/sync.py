"""SPE synchronization helpers — the simulator's slice of libsync.

The Cell SDK shipped ``libsync`` with atomic operations built on the
GETLLAR/PUTLLC reservation loop.  These generators are that library's
core primitives for SPE programs; each takes the :class:`SpuRuntime`
as its first argument and must be driven with ``yield from``.

All operate on 32-bit words inside a 128-byte lock line; the caller
supplies a 128-byte-aligned line EA plus a word offset, and a
128-byte-aligned LS scratch buffer.
"""

from __future__ import annotations

import struct
import typing

from repro.cell.atomic import LOCK_LINE


def _check_offset(offset: int) -> None:
    if not 0 <= offset <= LOCK_LINE - 4 or offset % 4:
        raise ValueError(
            f"word offset must be 4-aligned within a {LOCK_LINE}-byte line, "
            f"got {offset}"
        )


def _backoff(spu, retries: int) -> typing.Generator:
    """Deterministic phase-breaking backoff after a lost PUTLLC.

    The simulator is perfectly deterministic, so two SPEs whose retry
    loops have the same period can livelock a third out of the line
    forever — a starvation hardware escapes only through timing noise.
    Production reservation loops insert backoff for the same reason;
    this one is a per-SPE, per-retry polynomial so no two contenders
    share a period.
    """
    cycles = 10 + (spu.spe_id * 13 + retries * 29) % 97
    yield from spu.compute(cycles)


def atomic_read(spu, ls_scratch: int, line_ea: int, offset: int) -> typing.Generator:
    """Atomically read one u32 from a lock line (plain GETLLAR)."""
    _check_offset(offset)
    yield from spu.mfc_getllar(ls_scratch, line_ea)
    (value,) = struct.unpack("<I", spu.ls_read(ls_scratch + offset, 4))
    return value


def atomic_modify(
    spu,
    ls_scratch: int,
    line_ea: int,
    offset: int,
    update: typing.Callable[[int], int],
) -> typing.Generator:
    """Atomic read-modify-write of one u32; returns the *old* value.

    The canonical reservation loop: GETLLAR, modify in LS, PUTLLC,
    retry until the conditional store wins.
    """
    _check_offset(offset)
    retries = 0
    while True:
        yield from spu.mfc_getllar(ls_scratch, line_ea)
        (old,) = struct.unpack("<I", spu.ls_read(ls_scratch + offset, 4))
        new = update(old) & 0xFFFF_FFFF
        spu.ls_write(ls_scratch + offset, struct.pack("<I", new))
        success = yield from spu.mfc_putllc(ls_scratch, line_ea)
        if success:
            return old
        retries += 1
        yield from _backoff(spu, retries)


def atomic_add(
    spu, ls_scratch: int, line_ea: int, offset: int, delta: int
) -> typing.Generator:
    """Atomic fetch-and-add on a u32; returns the pre-add value."""
    return (
        yield from atomic_modify(
            spu, ls_scratch, line_ea, offset, lambda v: v + delta
        )
    )


def atomic_increment_bounded(
    spu, ls_scratch: int, line_ea: int, offset: int, bound: int
) -> typing.Generator:
    """Fetch-and-increment that refuses to pass ``bound``.

    Returns the claimed value, or ``bound`` if the counter is
    exhausted — the idiom behind shared work queues: each SPE claims
    the next work-item index until none remain.
    """
    _check_offset(offset)
    retries = 0
    while True:
        yield from spu.mfc_getllar(ls_scratch, line_ea)
        (current,) = struct.unpack("<I", spu.ls_read(ls_scratch + offset, 4))
        if current >= bound:
            return bound
        spu.ls_write(ls_scratch + offset, struct.pack("<I", current + 1))
        success = yield from spu.mfc_putllc(ls_scratch, line_ea)
        if success:
            return current
        retries += 1
        yield from _backoff(spu, retries)
