"""The SPU-side runtime API handed to SPE programs.

Each method is a generator (drive with ``yield from``) that charges
realistic channel-instruction costs, updates the core's ground-truth
state track, and fires the tracing hooks at the same points the real
PDT's instrumented macros do.
"""

from __future__ import annotations

import typing

from repro.cell.mfc import DmaCommand, DmaDirection, DmaListElement
from repro.cell.spu import SpuCore, SpuState
from repro.kernel import Delay
from repro.libspe.hooks import RuntimeHooks, SpuEventKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.libspe.runtime import Runtime


class SpuRuntime:
    """What an SPE program sees as its execution environment."""

    def __init__(self, runtime: "Runtime", spu: SpuCore):
        self._runtime = runtime
        self.spu = spu
        self.spe_id = spu.spe_id
        self.config = spu.config
        self._tag_mask = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def _hooks(self) -> RuntimeHooks:
        return self._runtime.hooks

    @property
    def sim(self):
        return self.spu.sim

    @property
    def now(self) -> int:
        return self.spu.sim.now

    def _charge(self) -> Delay:
        """One channel-instruction cost."""
        return Delay(self.config.channel_latency)

    def ls_alloc(self, size: int, align: int = 16) -> int:
        """Claim local-store space (static allocation at load time)."""
        return self.spu.ls.allocate(size, align)

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------
    def compute(self, cycles: int) -> typing.Generator:
        """Execute ``cycles`` of pure computation."""
        if cycles < 0:
            raise ValueError(f"compute cycles must be >= 0, got {cycles}")
        if cycles:
            yield Delay(cycles)

    def marker(self, value: int) -> typing.Generator:
        """Emit a user event (PDT's ``pdt_trace_user_event``)."""
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.USER_MARKER, {"value": value}
        )

    def marker_data(
        self, value: int, words: typing.Sequence[int] = ()
    ) -> typing.Generator:
        """Emit a user event carrying up to 4 data words.

        PDT's user events accept application payloads (loop indices,
        buffer sizes, phase ids...) so the analyzer can correlate
        application state with the timeline.
        """
        if len(words) > 4:
            raise ValueError(f"marker_data carries at most 4 words, got {len(words)}")
        fields = {"value": value}
        for i, word in enumerate(words):
            fields[f"d{i}"] = word
        yield from self._hooks.spu_event(self.spu, SpuEventKind.USER_DATA, fields)

    def read_decrementer(self) -> typing.Generator:
        """Read the decrementer (costs one channel access)."""
        yield self._charge()
        return self.spu.read_decrementer()

    # ------------------------------------------------------------------
    # DMA
    # ------------------------------------------------------------------
    def mfc_get(
        self, ls_addr: int, ea: int, size: int, tag: int,
        fence: bool = False, barrier: bool = False,
    ) -> typing.Generator:
        """Enqueue a GET (main storage -> LS)."""
        yield from self._dma(DmaDirection.GET, ls_addr, ea, size, tag, fence, barrier)

    def mfc_put(
        self, ls_addr: int, ea: int, size: int, tag: int,
        fence: bool = False, barrier: bool = False,
    ) -> typing.Generator:
        """Enqueue a PUT (LS -> main storage)."""
        yield from self._dma(DmaDirection.PUT, ls_addr, ea, size, tag, fence, barrier)

    def mfc_getf(self, ls_addr: int, ea: int, size: int, tag: int) -> typing.Generator:
        yield from self.mfc_get(ls_addr, ea, size, tag, fence=True)

    def mfc_putf(self, ls_addr: int, ea: int, size: int, tag: int) -> typing.Generator:
        yield from self.mfc_put(ls_addr, ea, size, tag, fence=True)

    def mfc_getb(self, ls_addr: int, ea: int, size: int, tag: int) -> typing.Generator:
        yield from self.mfc_get(ls_addr, ea, size, tag, barrier=True)

    def mfc_putb(self, ls_addr: int, ea: int, size: int, tag: int) -> typing.Generator:
        yield from self.mfc_put(ls_addr, ea, size, tag, barrier=True)

    def _dma(
        self,
        direction: DmaDirection,
        ls_addr: int,
        ea: int,
        size: int,
        tag: int,
        fence: bool,
        barrier: bool,
    ) -> typing.Generator:
        command = self.spu.mfc.make_command(
            direction, ls_addr, ea, size, tag,
            fence=fence, barrier=barrier, issuer=f"spe{self.spe_id}",
        )
        kind = SpuEventKind.MFC_GET if direction is DmaDirection.GET else SpuEventKind.MFC_PUT
        yield from self._hooks.spu_event(
            self.spu, kind,
            {"tag": tag, "size": size, "ls": ls_addr, "ea": ea,
             "fence": int(fence), "barrier": int(barrier)},
        )
        yield from self._issue_tracked(command)

    def mfc_getl(
        self,
        ls_addr: int,
        elements: typing.Sequence[typing.Tuple[int, int]],
        tag: int,
    ) -> typing.Generator:
        """List GET: ``elements`` is a sequence of (ea, size) pairs."""
        yield from self._list_dma(DmaDirection.GET, ls_addr, elements, tag)

    def mfc_putl(
        self,
        ls_addr: int,
        elements: typing.Sequence[typing.Tuple[int, int]],
        tag: int,
    ) -> typing.Generator:
        """List PUT: ``elements`` is a sequence of (ea, size) pairs."""
        yield from self._list_dma(DmaDirection.PUT, ls_addr, elements, tag)

    def _list_dma(
        self,
        direction: DmaDirection,
        ls_addr: int,
        elements: typing.Sequence[typing.Tuple[int, int]],
        tag: int,
    ) -> typing.Generator:
        elems = [DmaListElement(ea, size) for (ea, size) in elements]
        command = self.spu.mfc.make_list_command(
            direction, ls_addr, elems, tag, issuer=f"spe{self.spe_id}"
        )
        kind = (
            SpuEventKind.MFC_GETL if direction is DmaDirection.GET else SpuEventKind.MFC_PUTL
        )
        yield from self._hooks.spu_event(
            self.spu, kind,
            {"tag": tag, "size": command.size, "ls": ls_addr,
             "ea": elems[0].effective_addr, "n_elements": len(elems)},
        )
        yield from self._issue_tracked(command)

    def _issue_tracked(self, command: DmaCommand) -> typing.Generator:
        """Issue with the queue-full stall accounted as WAIT_QUEUE."""
        yield self._charge()
        self.spu.enter_wait(SpuState.WAIT_QUEUE)
        try:
            yield from self.spu.mfc.issue(command)
        finally:
            self.spu.leave_wait()

    # ------------------------------------------------------------------
    # atomic (lock-line) commands
    # ------------------------------------------------------------------
    def mfc_getllar(self, ls_addr: int, ea: int) -> typing.Generator:
        """GETLLAR: load-and-reserve a 128-byte lock line into LS."""
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.ATOMIC_GETLLAR, {"ea": ea}
        )
        yield self._charge()
        yield from self.spu.mfc.atomic_getllar(ls_addr, ea)

    def mfc_putllc(self, ls_addr: int, ea: int) -> typing.Generator:
        """PUTLLC: store-conditional; returns True on success."""
        yield self._charge()
        success = yield from self.spu.mfc.atomic_putllc(ls_addr, ea)
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.ATOMIC_PUTLLC, {"ea": ea, "success": int(success)}
        )
        return success

    def mfc_putlluc(self, ls_addr: int, ea: int) -> typing.Generator:
        """PUTLLUC: unconditional lock-line store."""
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.ATOMIC_PUTLLUC, {"ea": ea}
        )
        yield self._charge()
        yield from self.spu.mfc.atomic_putlluc(ls_addr, ea)

    def ls_base_ea(self, spe_id: typing.Optional[int] = None) -> int:
        """Effective address of an SPE's LS window (own LS by default).

        Passing this EA to mfc_get/put makes the transfer LS-to-LS.
        """
        target = self.spe_id if spe_id is None else spe_id
        return self.spu.mfc.address_map.ls_base_ea(target)

    # ------------------------------------------------------------------
    # tag-group waits
    # ------------------------------------------------------------------
    def mfc_write_tag_mask(self, mask: int) -> typing.Generator:
        """Set the tag mask used by the status-read channels."""
        yield self._charge()
        self._tag_mask = mask

    def mfc_read_tag_status_all(self) -> typing.Generator:
        """Stall until every tag in the current mask is quiescent."""
        return (yield from self._wait_tags(self._tag_mask, "all"))

    def mfc_read_tag_status_any(self) -> typing.Generator:
        """Stall until some tag in the current mask is quiescent."""
        return (yield from self._wait_tags(self._tag_mask, "any"))

    def mfc_wait_tag(self, mask: int, mode: str = "all") -> typing.Generator:
        """Convenience: write mask + read status in one call."""
        self._tag_mask = mask
        return (yield from self._wait_tags(mask, mode))

    def _wait_tags(self, mask: int, mode: str) -> typing.Generator:
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.WAIT_TAG_BEGIN,
            {"mask": mask, "mode": 0 if mode == "all" else 1},
        )
        yield self._charge()
        self.spu.enter_wait(SpuState.WAIT_DMA)
        try:
            status = yield self.spu.mfc.tag_wait_event(mask, mode)
        finally:
            self.spu.leave_wait()
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.WAIT_TAG_END, {"mask": mask, "status": status}
        )
        return status

    # ------------------------------------------------------------------
    # mailboxes
    # ------------------------------------------------------------------
    def read_in_mbox(self) -> typing.Generator:
        """Blocking read of the inbound mailbox; returns the value."""
        yield from self._hooks.spu_event(self.spu, SpuEventKind.READ_MBOX_BEGIN, {})
        yield self._charge()
        self.spu.enter_wait(SpuState.WAIT_MBOX)
        try:
            value = yield self.spu.mailboxes.spu_read_inbound()
        finally:
            self.spu.leave_wait()
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.READ_MBOX_END, {"value": value}
        )
        return value

    def in_mbox_count(self) -> typing.Generator:
        """Read the inbound mailbox status channel (entries queued)."""
        yield self._charge()
        return self.spu.mailboxes.inbound.count

    def write_out_mbox(self, value: int) -> typing.Generator:
        """Blocking write of the outbound mailbox."""
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.WRITE_MBOX_BEGIN, {"value": value}
        )
        yield self._charge()
        self.spu.enter_wait(SpuState.WAIT_MBOX)
        try:
            yield self.spu.mailboxes.spu_write_outbound(value)
        finally:
            self.spu.leave_wait()
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.WRITE_MBOX_END, {"value": value}
        )

    def write_out_intr_mbox(self, value: int) -> typing.Generator:
        """Blocking write of the outbound interrupt mailbox."""
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.WRITE_MBOX_BEGIN, {"value": value, "intr": 1}
        )
        yield self._charge()
        self.spu.enter_wait(SpuState.WAIT_MBOX)
        try:
            yield self.spu.mailboxes.spu_write_outbound_interrupt(value)
        finally:
            self.spu.leave_wait()
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.WRITE_MBOX_END, {"value": value, "intr": 1}
        )

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def read_signal(self, which: int = 1) -> typing.Generator:
        """Blocking read of signal register 1 or 2 (clears it)."""
        if which not in (1, 2):
            raise ValueError(f"signal register must be 1 or 2, got {which}")
        register = self.spu.mailboxes.signal1 if which == 1 else self.spu.mailboxes.signal2
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.READ_SIGNAL_BEGIN, {"which": which}
        )
        yield self._charge()
        while True:
            self.spu.enter_wait(SpuState.WAIT_SIGNAL)
            try:
                yield register.read()
            finally:
                self.spu.leave_wait()
            value = register.take()
            if value:
                break
            # Another waiter consumed the bits first; wait again.
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.READ_SIGNAL_END, {"which": which, "value": value}
        )
        return value

    def signal_spe(self, target_spe_id: int, bits: int, which: int = 1) -> typing.Generator:
        """Raise signal bits on *another* SPE (SPE-to-SPE notification).

        On hardware this is a small DMA to the target's problem-state
        signal register; we charge a channel op plus the interconnect
        command latency.
        """
        if which not in (1, 2):
            raise ValueError(f"signal register must be 1 or 2, got {which}")
        target = self._runtime.machine.spe(target_spe_id)
        yield from self._hooks.spu_event(
            self.spu, SpuEventKind.SIGNAL_SEND,
            {"target": target_spe_id, "which": which, "bits": bits},
        )
        yield self._charge()
        yield Delay(self.config.dma.eib_command_latency)
        mailboxes = target.mailboxes
        register = mailboxes.signal1 if which == 1 else mailboxes.signal2
        register.send(bits)

    # ------------------------------------------------------------------
    # local-store data access (the SPU touching its own LS is free
    # relative to our cycle model; cost belongs to compute())
    # ------------------------------------------------------------------
    def ls_read(self, addr: int, size: int) -> bytes:
        return self.spu.ls.read(addr, size)

    def ls_write(self, addr: int, data: bytes) -> None:
        self.spu.ls.write(addr, data)
