"""Exception hierarchy for the SPE runtime library."""


class SpeError(Exception):
    """Base class for runtime-library errors."""


class SpeContextError(SpeError):
    """Misuse of an SPE context (wrong state, no free SPE, ...)."""


class SpeProgramError(SpeError):
    """A program image is invalid or does not fit in local store."""
