"""SPE runtime library — the simulator's equivalent of libspe2.

On real hardware the PDT does not patch the kernel or the silicon: it
ships instrumented versions of the SPE runtime libraries, so every
*library-level* operation (context creation, program run, DMA issue,
tag wait, mailbox access) passes a tracing hook.  This package is that
surface for the simulator:

* :class:`Runtime` — the library instance; owns the machine and an
  optional :class:`RuntimeHooks` implementation (PDT installs one).
* :class:`SpeContext` — PPE-side handle (``spe_context_create`` ...),
  with blocking ``run`` and PPE-side mailbox/signal accessors.
* :class:`SpuRuntime` — SPU-side API handed to SPE programs: MFC
  commands, tag waits, mailbox/signal channels, explicit ``compute``.
* :class:`SpeProgram` — a loadable program image: a Python generator
  function plus its local-store footprint.

Programs are written like::

    def kernel(spu, argp, envp):
        tag = 1
        yield from spu.mfc_get(ls_addr=0, ea=argp, size=4096, tag=tag)
        yield from spu.mfc_wait_tag(1 << tag)
        yield from spu.compute(50_000)
        yield from spu.write_out_mbox(0)  # done
"""

from repro.libspe.errors import SpeContextError, SpeError, SpeProgramError
from repro.libspe.hooks import RuntimeHooks
from repro.libspe.image import SpeProgram
from repro.libspe.runtime import Runtime, SpeContext
from repro.libspe.spu_api import SpuRuntime

__all__ = [
    "Runtime",
    "RuntimeHooks",
    "SpeContext",
    "SpeContextError",
    "SpeError",
    "SpeProgram",
    "SpeProgramError",
    "SpuRuntime",
]
