"""repro — Trace-based Performance Analysis on Cell BE (ISPASS 2008).

A from-scratch Python reproduction of Biberstein et al.'s PDT/TA tool
chain, including the Cell Broadband Engine substrate it runs on:

* :mod:`repro.kernel` — deterministic discrete-event simulation core
* :mod:`repro.cell` — the Cell BE machine model (PPE, SPEs, MFC DMA,
  EIB, mailboxes/signals, timebase/decrementer clocks)
* :mod:`repro.libspe` — the libspe2-style runtime PDT instruments
* :mod:`repro.pdt` — the Performance Debugging Tool: event recording,
  LS trace buffers flushed by real DMA, binary trace files, clock
  correlation
* :mod:`repro.ta` — the Trace Analyzer: timeline reconstruction,
  statistics, use-case analyses, Gantt rendering, CSV export
* :mod:`repro.workloads` — the profiled applications (matmul, FFT,
  streaming pipeline, Monte Carlo, microbenchmarks)

Quick taste::

    from repro.pdt import TraceConfig
    from repro.ta.report import full_report
    from repro.workloads import MatmulWorkload, run_workload

    result = run_workload(MatmulWorkload(n_spes=4), TraceConfig())
    print(full_report(result.trace()))
"""

from repro.cell import CellConfig, CellMachine
from repro.libspe import Runtime, SpeProgram
from repro.pdt import PdtHooks, TraceConfig, read_trace, write_trace
from repro.ta import analyze, render_ascii, render_svg
from repro.ta.report import full_report
from repro.ta.stats import TraceStatistics
from repro.workloads import (
    FftWorkload,
    MatmulWorkload,
    MonteCarloWorkload,
    StreamingPipelineWorkload,
    measure_overhead,
    run_workload,
)

__version__ = "1.0.0"

__all__ = [
    "CellConfig",
    "CellMachine",
    "FftWorkload",
    "MatmulWorkload",
    "MonteCarloWorkload",
    "PdtHooks",
    "Runtime",
    "SpeProgram",
    "StreamingPipelineWorkload",
    "TraceConfig",
    "TraceStatistics",
    "analyze",
    "full_report",
    "measure_overhead",
    "read_trace",
    "render_ascii",
    "render_svg",
    "run_workload",
    "write_trace",
]
