"""A miniature ALF — the SDK's Accelerated Library Framework.

ALF is the layer many Cell applications of the paper's era actually
programmed against: the application supplies a *compute kernel* and a
list of *work blocks* (input/output buffer descriptors); the framework
owns everything the PDT use cases keep diagnosing by hand — work
distribution across SPEs, input staging into local store with double
buffering, and output write-back.

This package implements that contract on top of :mod:`repro.libspe`:

* :class:`AlfKernel` — the user's compute function plus its cycle
  model and buffer limits.
* :class:`WorkBlock` — one unit of work: up to two input regions, one
  output region, four u64 parameters.
* :class:`AlfTask` — a kernel plus its queue of work blocks, executed
  over N SPEs with a shared atomic work queue and framework-managed
  double buffering.

Work-block descriptors live in main memory as 128-byte records; SPE
agents claim indices with the GETLLAR/PUTLLC bounded increment, DMA
the descriptor, prefetch the *next* block's inputs while computing the
current one, and write results back — all without the application
writing a line of DMA code.
"""

from repro.alf.framework import AlfError, AlfKernel, AlfTask, WorkBlock

__all__ = ["AlfError", "AlfKernel", "AlfTask", "WorkBlock"]
