"""The mini-ALF implementation: tasks, work blocks, SPE agents."""

from __future__ import annotations

import dataclasses
import struct
import typing

from repro.cell.atomic import LOCK_LINE
from repro.cell.machine import CellMachine
from repro.libspe.image import SpeProgram
from repro.libspe.runtime import Runtime
from repro.libspe.sync import atomic_increment_bounded

#: Work-block descriptor: in0_ea, in0_size, in1_ea, in1_size, out_ea,
#: out_size, p0..p3 — ten u64 fields padded to 128 bytes.
_DESCRIPTOR = struct.Struct("<10Q")
DESCRIPTOR_BYTES = 128
MAX_INPUTS = 2

#: Agent DMA tag assignments: one per pipeline slot plus the output.
_SLOT_TAGS = (0, 1)
_OUT_TAG = 2


class AlfError(Exception):
    """Framework misuse: bad kernel, bad work block, failed run."""


@dataclasses.dataclass(frozen=True)
class AlfKernel:
    """The application's compute kernel.

    ``run(params, inputs)`` receives the four u64 parameters and the
    staged input buffers (bytes, in work-block order) and returns the
    output bytes.  ``cycles(params, inputs)`` prices the computation;
    an int means a fixed cost per block.
    """

    name: str
    run: typing.Callable[[typing.Tuple[int, ...], typing.List[bytes]], bytes]
    cycles: typing.Union[int, typing.Callable[[typing.Tuple[int, ...], typing.List[bytes]], int]]
    max_input_bytes: int = 16 * 1024
    max_output_bytes: int = 16 * 1024

    def __post_init__(self) -> None:
        if not callable(self.run):
            raise AlfError("kernel.run must be callable")
        if self.max_input_bytes % 16 or self.max_output_bytes % 16:
            raise AlfError("kernel buffer limits must be 16-byte multiples")
        if self.max_input_bytes > 16 * 1024 or self.max_output_bytes > 16 * 1024:
            raise AlfError("kernel buffers are limited to one 16 KB DMA")

    def price(self, params: typing.Tuple[int, ...], inputs: typing.List[bytes]) -> int:
        if callable(self.cycles):
            return int(self.cycles(params, inputs))
        return int(self.cycles)


@dataclasses.dataclass(frozen=True)
class WorkBlock:
    """One unit of work: input regions, one output region, parameters."""

    inputs: typing.Tuple[typing.Tuple[int, int], ...]  # (ea, size) pairs
    output: typing.Tuple[int, int]  # (ea, size)
    params: typing.Tuple[int, int, int, int] = (0, 0, 0, 0)

    def validate(self, kernel: AlfKernel) -> None:
        if not 0 < len(self.inputs) <= MAX_INPUTS:
            raise AlfError(
                f"work block needs 1..{MAX_INPUTS} inputs, got {len(self.inputs)}"
            )
        for ea, size in self.inputs:
            if size <= 0 or size % 16 or ea % 16:
                raise AlfError(f"input (0x{ea:x}, {size}) violates DMA alignment")
            if size > kernel.max_input_bytes:
                raise AlfError(
                    f"input of {size} B exceeds kernel limit "
                    f"{kernel.max_input_bytes}"
                )
        out_ea, out_size = self.output
        if out_size <= 0 or out_size % 16 or out_ea % 16:
            raise AlfError(
                f"output (0x{out_ea:x}, {out_size}) violates DMA alignment"
            )
        if out_size > kernel.max_output_bytes:
            raise AlfError(
                f"output of {out_size} B exceeds kernel limit "
                f"{kernel.max_output_bytes}"
            )
        if len(self.params) != 4:
            raise AlfError("params must be exactly four u64 values")

    def encode(self) -> bytes:
        fields = []
        for i in range(MAX_INPUTS):
            if i < len(self.inputs):
                fields.extend(self.inputs[i])
            else:
                fields.extend((0, 0))
        fields.extend(self.output)
        fields.extend(self.params)
        blob = _DESCRIPTOR.pack(*fields)
        return blob + b"\x00" * (DESCRIPTOR_BYTES - len(blob))

    @staticmethod
    def decode(blob: bytes) -> "WorkBlock":
        fields = _DESCRIPTOR.unpack_from(blob, 0)
        inputs = tuple(
            (fields[2 * i], fields[2 * i + 1])
            for i in range(MAX_INPUTS)
            if fields[2 * i + 1] > 0
        )
        return WorkBlock(
            inputs=inputs,
            output=(fields[4], fields[5]),
            params=tuple(fields[6:10]),
        )


class AlfTask:
    """A kernel plus its queue of work blocks, run over N SPEs."""

    def __init__(self, kernel: AlfKernel, n_spes: int = 4, prefetch: bool = True):
        if n_spes < 1:
            raise AlfError(f"n_spes must be >= 1, got {n_spes}")
        self.kernel = kernel
        self.n_spes = n_spes
        #: Framework-managed double buffering: stage the next block's
        #: inputs while computing the current one.  False is the
        #: naive-staging ablation (A3).
        self.prefetch = prefetch
        self._blocks: typing.List[WorkBlock] = []
        self.blocks_done_by: typing.Dict[int, int] = {}

    def enqueue(self, block: WorkBlock) -> None:
        block.validate(self.kernel)
        self._blocks.append(block)

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------
    def execute(self, machine: CellMachine, runtime: Runtime) -> typing.Generator:
        """Run every queued block to completion (PPE generator).

        Returns the total number of blocks processed.
        """
        if not self._blocks:
            raise AlfError("task has no work blocks")
        descriptor_ea = machine.memory.allocate(
            len(self._blocks) * DESCRIPTOR_BYTES, align=128
        )
        for index, block in enumerate(self._blocks):
            machine.memory.write(
                descriptor_ea + index * DESCRIPTOR_BYTES, block.encode()
            )
        queue_ea = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)
        machine.memory.write(queue_ea, bytes(LOCK_LINE))

        contexts = []
        for __ in range(self.n_spes):
            ctx = yield from runtime.context_create()
            yield from ctx.load(self._agent_program(descriptor_ea, queue_ea))
            contexts.append(ctx)
        procs = [ctx.run_async() for ctx in contexts]
        total = 0
        for ctx in contexts:
            done = yield from ctx.out_mbox_read()
            self.blocks_done_by[ctx.spe_id] = done
            total += done
        for proc in procs:
            yield proc
        if total != len(self._blocks):
            raise AlfError(
                f"ALF task lost work: {total}/{len(self._blocks)} blocks"
            )
        return total

    # ------------------------------------------------------------------
    def _agent_program(self, descriptor_ea: int, queue_ea: int) -> SpeProgram:
        task = self
        kernel = self.kernel
        n_blocks = len(self._blocks)

        def entry(spu, argp, envp):
            scratch = spu.ls_alloc(LOCK_LINE, align=LOCK_LINE)
            desc_ls = [spu.ls_alloc(DESCRIPTOR_BYTES, align=16) for __ in _SLOT_TAGS]
            in_ls = [
                [spu.ls_alloc(kernel.max_input_bytes) for __ in range(MAX_INPUTS)]
                for __ in _SLOT_TAGS
            ]
            out_ls = spu.ls_alloc(kernel.max_output_bytes)

            def claim():
                index = yield from atomic_increment_bounded(
                    spu, scratch, queue_ea, 0, n_blocks
                )
                return index if index < n_blocks else None

            def stage(slot, index):
                """Fetch descriptor + issue input DMAs on the slot tag."""
                tag = _SLOT_TAGS[slot]
                yield from spu.mfc_get(
                    desc_ls[slot],
                    descriptor_ea + index * DESCRIPTOR_BYTES,
                    DESCRIPTOR_BYTES,
                    tag=tag,
                )
                yield from spu.mfc_wait_tag(1 << tag)
                block = WorkBlock.decode(spu.ls_read(desc_ls[slot], DESCRIPTOR_BYTES))
                for i, (ea, size) in enumerate(block.inputs):
                    yield from spu.mfc_get(in_ls[slot][i], ea, size, tag=tag)
                return block

            done = 0
            index = yield from claim()
            if index is None:
                yield from spu.write_out_mbox(0)
                return 0
            slot = 0
            block = yield from stage(slot, index)
            while True:
                next_index = None
                next_block = None
                if task.prefetch:
                    next_index = yield from claim()
                    if next_index is not None:
                        next_block = yield from stage(1 - slot, next_index)
                # Wait for this slot's inputs, compute, write back.
                yield from spu.mfc_wait_tag(1 << _SLOT_TAGS[slot])
                inputs = [
                    spu.ls_read(in_ls[slot][i], size)
                    for i, (__, size) in enumerate(block.inputs)
                ]
                yield from spu.compute(kernel.price(block.params, inputs))
                output = kernel.run(block.params, inputs)
                out_ea, out_size = block.output
                if len(output) != out_size:
                    raise AlfError(
                        f"kernel {kernel.name!r} produced {len(output)} B, "
                        f"work block expects {out_size}"
                    )
                spu.ls_write(out_ls, output)
                yield from spu.mfc_put(out_ls, out_ea, out_size, tag=_OUT_TAG)
                yield from spu.mfc_wait_tag(1 << _OUT_TAG)
                done += 1
                if not task.prefetch:
                    next_index = yield from claim()
                    if next_index is not None:
                        next_block = yield from stage(1 - slot, next_index)
                if next_block is None:
                    break
                slot = 1 - slot
                block = next_block
            yield from spu.write_out_mbox(done)
            return 0

        footprint = 16 * 1024
        return SpeProgram(f"alf-{kernel.name}", entry, ls_code_bytes=footprint)
