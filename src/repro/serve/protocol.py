"""The ``repro.serve`` wire protocol: JSON lines that map 1:1 onto
:class:`repro.tq.Query`.

One request per line, one response per line, both JSON objects in
**canonical encoding** — ``sort_keys=True`` and compact separators —
so a response is a deterministic function of its payload.  That is
what makes the serving layer's headline guarantee checkable: the
canonical encoding of a served result must equal the canonical
encoding of the same query executed directly against the library, byte
for byte, whether the response came from a fresh execution or the
result cache.

Requests::

    {"op": "ping", "id": 1}
    {"op": "register", "id": 2, "name": "run1", "path": "/traces/run1.pdt"}
    {"op": "list", "id": 3}
    {"op": "evict", "id": 4, "trace": "run1"}
    {"op": "stats", "id": 5}
    {"op": "query", "id": 6, "trace": "run1",
     "mode": "run",                      # "run" | "records" | "count"
     "where": {"t0": 0, "t1": 50000, "spe": 1, "side": 1,
               "event": "mfc_get"},     # every clause optional
     "where_fields": [{"name": "size", "lo": 4096}],
     "groupby": ["spe", "kind"], "time_bucket": 1000,
     "agg": {"n": "count", "bytes": ["sum", "size"]},
     "project": ["time", "side", "core", "kind", "seq"]}

Responses::

    {"id": 6, "ok": true, "result": ...}
    {"id": 6, "ok": false, "error": "no such trace: run1"}

``result`` is query rows (list of objects) for ``run``, projected
tuples (list of arrays) for ``records``, and an integer for ``count``.
"""

from __future__ import annotations

import json
import socket
import typing

from repro.tq.pipeline import Query, QueryPlan

#: Query modes the protocol exposes, mapping onto Query terminals.
QUERY_MODES = ("run", "records", "count")


class ProtocolError(ValueError):
    """A request that cannot be served: malformed JSON, unknown op,
    bad query shape.  The message is safe to return to the client."""


def canonical_json(payload: typing.Any) -> str:
    """The one true encoding: key-sorted, compact, ASCII-safe.

    Byte-identical for equal payloads — the serving layer caches and
    compares these strings directly.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def plan_key(plan: QueryPlan) -> typing.Tuple:
    """A hashable, order-canonical key for a frozen
    :class:`~repro.tq.pipeline.QueryPlan`.

    Two plans that select the same records get the same key even when
    their frozen sets were built in different orders — set iteration
    order must never decide a cache hit.
    """
    predicate = plan.predicate
    return (
        predicate.t_min,
        predicate.t_max,
        predicate.side,
        tuple(sorted(predicate.spes)) if predicate.spes is not None else None,
        tuple(sorted(predicate.events))
        if predicate.events is not None
        else None,
        predicate.fields,
        plan.projection,
        plan.group_keys,
        plan.time_bucket,
        plan.aggs,
    )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def build_query(source: typing.Any, spec: typing.Mapping) -> Query:
    """A :class:`~repro.tq.Query` over ``source`` from a request's
    query clauses.  Raises :class:`ProtocolError` on a malformed spec;
    clause-level validation errors (unknown group key, bad agg op)
    surface as the pipeline's own ``ValueError``."""
    query = Query(source)
    where = spec.get("where") or {}
    _require(isinstance(where, dict), '"where" must be an object')
    unknown = set(where) - {"t0", "t1", "spe", "side", "event"}
    _require(not unknown, f"unknown where clause(s): {sorted(unknown)}")
    if where:
        query = query.where(
            t0=where.get("t0"),
            t1=where.get("t1"),
            spe=where.get("spe"),
            side=where.get("side"),
            event=where.get("event"),
        )
    for clause in spec.get("where_fields") or []:
        _require(
            isinstance(clause, dict) and "name" in clause,
            '"where_fields" entries must be objects with a "name"',
        )
        query = query.where_field(
            clause["name"],
            lo=clause.get("lo"),
            hi=clause.get("hi"),
            eq=clause.get("eq"),
        )
    groupby = spec.get("groupby")
    if groupby:
        _require(
            isinstance(groupby, list),
            '"groupby" must be an array of key names',
        )
        query = query.groupby(*groupby, time_bucket=spec.get("time_bucket"))
    agg = spec.get("agg")
    if agg:
        _require(isinstance(agg, dict), '"agg" must be an object')
        reductions = {}
        for name, shape in agg.items():
            reductions[name] = (
                shape if shape == "count" else tuple(shape)
            )
        query = query.agg(**reductions)
    project = spec.get("project")
    if project:
        _require(
            isinstance(project, list),
            '"project" must be an array of column names',
        )
        query = query.project(*project)
    return query


def query_mode(spec: typing.Mapping) -> str:
    mode = spec.get("mode", "run")
    _require(
        mode in QUERY_MODES,
        f"unknown query mode {mode!r}; choose from {', '.join(QUERY_MODES)}",
    )
    return mode


def decode_request(line: str) -> typing.Dict[str, typing.Any]:
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from exc
    _require(isinstance(request, dict), "request must be a JSON object")
    _require("op" in request, 'request needs an "op"')
    return request


def ok_response(request_id: typing.Any, result: typing.Any) -> str:
    return canonical_json({"id": request_id, "ok": True, "result": result})


def error_response(request_id: typing.Any, message: str) -> str:
    return canonical_json({"id": request_id, "ok": False, "error": message})


class ServeClient:
    """A small blocking client for the JSON-line protocol — what the
    tests, the smoke tool, and :mod:`examples` talk through.

    Not thread-safe; open one client per thread (the server is
    threaded, a connection per client is the intended shape).
    """

    def __init__(
        self,
        address: typing.Tuple[str, int],
        timeout: typing.Optional[float] = 30.0,
    ):
        self._sock = socket.create_connection(address, timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._writer = self._sock.makefile("w", encoding="utf-8", newline="\n")
        self._next_id = 0

    def request_raw(self, request: typing.Mapping) -> str:
        """Send one request, return the raw response line (no trailing
        newline) — the byte-identity tests compare these directly."""
        return self.request_line(canonical_json(dict(request)))

    def request_line(self, line: str) -> str:
        """Send one verbatim line (malformed on purpose, perhaps) and
        return the raw response line."""
        self._writer.write(line + "\n")
        self._writer.flush()
        response = self._reader.readline()
        if not response:
            raise ConnectionError("server closed the connection")
        return response.rstrip("\n")

    def request(self, request: typing.Mapping) -> typing.Any:
        """Send one request; return its ``result`` or raise
        :class:`ProtocolError` with the server's error message."""
        payload = dict(request)
        payload.setdefault("id", self._take_id())
        response = json.loads(self.request_raw(payload))
        if not response.get("ok"):
            raise ProtocolError(response.get("error", "unknown server error"))
        return response["result"]

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- convenience ops ----------------------------------------------
    def ping(self) -> str:
        return self.request({"op": "ping"})

    def register(
        self, name: str, path: str, strict: bool = True, live: bool = False
    ):
        return self.request(
            {
                "op": "register",
                "name": name,
                "path": path,
                "strict": strict,
                "live": live,
            }
        )

    def list_traces(self):
        return self.request({"op": "list"})

    def evict(self, name: str):
        return self.request({"op": "evict", "trace": name})

    def refresh(self, name: str):
        """Re-open a live trace under a new generation if it grew."""
        return self.request({"op": "refresh", "trace": name})

    def stats(self):
        return self.request({"op": "stats"})

    def query(self, trace: str, **spec) -> typing.Any:
        return self.request({"op": "query", "trace": trace, **spec})

    def close(self) -> None:
        for closer in (self._reader, self._writer, self._sock):
            try:
                closer.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
