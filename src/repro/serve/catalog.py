"""TraceCatalog: many open traces behind one memory budget.

The catalog is the serving daemon's registry of
:class:`~repro.pdt.handle.TraceHandle` objects.  Registering a trace
opens it once (header parse, index load — failures surface at
registration, not mid-query); every query then borrows the shared
handle through :meth:`TraceCatalog.acquire`, which also hands back the
trace's window onto the catalog-wide decoded-chunk cache.

**Ownership and eviction.**  Acquire/release is refcounted.  Evicting
a trace that has queries in flight does not yank descriptors out from
under them: the entry is marked *evicting*, disappears from
:meth:`list_traces` and new :meth:`acquire` calls immediately, and the
handle is actually closed by whichever release drops the refcount to
zero.  Cache entries die with the entry's *generation*, so a name
re-registered later can never hit a stale chunk or result.

**Memory budget.**  One configurable byte budget covers both cache
populations — decoded chunks (3/4) and canonical query results (1/4).
Handles themselves hold only parsed metadata (header, frame offsets,
zone maps, clock fits), a few KB per trace; bulk memory lives in the
caches, which is what the budget bounds.
"""

from __future__ import annotations

import contextlib
import os
import threading
import typing

from repro.pdt.handle import DEFAULT_POOL_CAP, TraceHandle, open_handle
from repro.serve.cache import CacheStats, ChunkCache, LruCache

#: Default catalog budget: 256 MiB across chunk + result caches.
DEFAULT_MEMORY_BUDGET = 256 * 1024 * 1024

#: Fraction of the budget given to decoded chunks (rest: results).
_CHUNK_SHARE = 0.75


class CatalogError(ValueError):
    """A catalog operation that cannot proceed (unknown name, duplicate
    registration, closed catalog).  Message is client-safe."""


class _Entry:
    __slots__ = (
        "name", "path", "strict", "handle", "generation", "refs", "evicting",
        "live", "size",
    )

    def __init__(
        self,
        name: str,
        path: str,
        strict: bool,
        handle: TraceHandle,
        generation: int,
        live: bool = False,
        size: typing.Optional[int] = None,
    ):
        self.name = name
        self.path = path
        self.strict = strict
        self.handle = handle
        self.generation = generation
        self.live = live
        self.size = size
        self.refs = 0
        self.evicting = False

    @property
    def complete(self) -> bool:
        salvage = self.handle.salvage
        return salvage is None or not getattr(salvage, "growing", False)

    def info(self) -> typing.Dict[str, typing.Any]:
        return {
            "name": self.name,
            "path": self.path,
            "strict": self.strict,
            "records": self.handle.n_records,
            "chunks": self.handle.n_chunks,
            "indexed": self.handle.zone_maps() is not None,
            "salvaged": self.handle.salvage is not None,
            "generation": self.generation,
            "live": self.live,
            "complete": self.complete,
        }


class TraceCatalog:
    """Register / list / acquire / evict many open traces, with shared
    chunk and result caches under one byte budget."""

    def __init__(
        self,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        pool_cap: int = DEFAULT_POOL_CAP,
    ):
        if memory_budget < 0:
            raise ValueError(f"budget must be >= 0, got {memory_budget}")
        self.memory_budget = memory_budget
        self.pool_cap = pool_cap
        chunk_budget = int(memory_budget * _CHUNK_SHARE)
        self.chunk_cache = LruCache(chunk_budget)
        self.result_cache = LruCache(memory_budget - chunk_budget)
        self._lock = threading.Lock()
        self._entries: typing.Dict[str, _Entry] = {}
        self._next_generation = 0
        self._closed = False

    # -- registration --------------------------------------------------
    def register(
        self, name: str, path: str, strict: bool = True, live: bool = False
    ) -> typing.Dict[str, typing.Any]:
        """Open ``path`` under ``name``; returns the trace's info row.

        Opening is eager so a bad path or corrupt file fails the
        *registration*, with a clean catalog afterwards — never a later
        query.  Raises :class:`CatalogError` on a duplicate name and
        lets :class:`~repro.pdt.format.TraceFormatError` / ``OSError``
        from the open propagate.

        ``live=True`` registers a trace that may still be growing: the
        open is forced non-strict (a sentinel header and a torn tail
        are expected, not damage), the info row reports ``live`` and
        whether the prefix is ``complete``, and :meth:`refresh`
        re-opens the file under a **new generation** whenever it has
        grown — so every cached chunk or result is keyed to the exact
        prefix it was computed from and a stale prefix can never be
        served as the complete trace.
        """
        with self._lock:
            self._check_open()
            if name in self._entries:
                raise CatalogError(f"trace already registered: {name}")
            generation = self._next_generation
            self._next_generation += 1
        if live:
            strict = False
        handle = open_handle(path, strict=strict, pool_cap=self.pool_cap)
        try:
            size = os.path.getsize(path)
        except OSError:
            size = None
        entry = _Entry(name, path, strict, handle, generation, live, size)
        with self._lock:
            if self._closed or name in self._entries:
                # Lost a race while the file was opening; do not leak.
                handle.close()
                self._check_open()
                raise CatalogError(f"trace already registered: {name}")
            self._entries[name] = entry
            return entry.info()

    def register_many(
        self,
        items: typing.Iterable[typing.Tuple[str, str]],
        strict: bool = True,
    ) -> typing.List[typing.Dict[str, typing.Any]]:
        """Register ``(name, path)`` pairs all-or-nothing.

        Corpus-scale registration: if any open fails (bad path, corrupt
        file, duplicate name), every trace this call already registered
        is evicted before the error propagates, so the catalog never
        ends up holding half a corpus.  Returns the info rows in input
        order.
        """
        registered: typing.List[str] = []
        rows: typing.List[typing.Dict[str, typing.Any]] = []
        try:
            for name, path in items:
                rows.append(self.register(name, path, strict=strict))
                registered.append(name)
        except Exception:
            for name in reversed(registered):
                try:
                    self.evict(name)
                except CatalogError:
                    pass
            raise
        return rows

    def list_traces(self) -> typing.List[typing.Dict[str, typing.Any]]:
        """Info rows for every live (non-evicting) trace, name order."""
        with self._lock:
            return [
                entry.info()
                for name, entry in sorted(self._entries.items())
                if not entry.evicting
            ]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            entry = self._entries.get(name)
            return entry is not None and not entry.evicting

    def __len__(self) -> int:
        with self._lock:
            return sum(
                1 for entry in self._entries.values() if not entry.evicting
            )

    # -- acquire / release ---------------------------------------------
    @contextlib.contextmanager
    def acquire(
        self, name: str
    ) -> typing.Iterator[typing.Tuple[TraceHandle, ChunkCache, typing.Tuple]]:
        """Borrow ``name``'s handle for one query.

        Yields ``(handle, chunk_cache, identity)``: the shared handle,
        this trace's window onto the chunk cache, and the
        ``(name, generation)`` identity to key result-cache entries by.
        The entry cannot be evicted out from under the block — eviction
        requested meanwhile is deferred to the last release.
        """
        with self._lock:
            self._check_open()
            entry = self._entries.get(name)
            if entry is None or entry.evicting:
                raise CatalogError(f"no such trace: {name}")
            entry.refs += 1
        identity = (entry.name, entry.generation)
        try:
            yield entry.handle, ChunkCache(self.chunk_cache, identity), identity
        finally:
            self._release(entry)

    def _release(self, entry: _Entry) -> None:
        with self._lock:
            entry.refs -= 1
            finalize = entry.evicting and entry.refs == 0
            if finalize:
                self._entries.pop(entry.name, None)
        if finalize:
            self._finalize_eviction(entry)

    # -- eviction ------------------------------------------------------
    def evict(self, name: str) -> typing.Dict[str, typing.Any]:
        """Remove ``name`` from the catalog.

        With no queries in flight the handle closes immediately;
        otherwise closing is deferred to the last release (the entry is
        already invisible to ``list``/``acquire``).  Returns
        ``{"evicted": name, "deferred": bool}``.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.evicting:
                raise CatalogError(f"no such trace: {name}")
            entry.evicting = True
            immediate = entry.refs == 0
            if immediate:
                self._entries.pop(name, None)
        if immediate:
            self._finalize_eviction(entry)
        return {"evicted": name, "deferred": not immediate}

    # -- live refresh --------------------------------------------------
    def refresh(self, name: str) -> typing.Dict[str, typing.Any]:
        """Re-open a live trace if its file changed since registration.

        When the file's byte size moved (or the previous open saw a
        still-growing tail), the entry is evicted and re-registered
        under a fresh generation: in-flight queries finish against the
        old handle, and every cache key carrying the old
        ``(name, generation)`` identity dies with it — a result
        computed over the stale prefix can never be returned for the
        refreshed trace.  Returns the (possibly new) info row plus a
        ``"refreshed"`` flag.  Raises :class:`CatalogError` for unknown
        names and for traces not registered ``live``.
        """
        with self._lock:
            self._check_open()
            entry = self._entries.get(name)
            if entry is None or entry.evicting:
                raise CatalogError(f"no such trace: {name}")
            if not entry.live:
                raise CatalogError(f"not a live trace: {name}")
            path = entry.path
            unchanged_size = entry.size
            was_complete = entry.complete
            row = entry.info()
        try:
            size = os.path.getsize(path)
        except OSError:
            size = None
        if was_complete and size == unchanged_size:
            row["refreshed"] = False
            return row
        self.evict(name)
        row = self.register(name, path, live=True)
        row["refreshed"] = True
        return row

    def _finalize_eviction(self, entry: _Entry) -> None:
        entry.handle.close()
        identity = (entry.name, entry.generation)
        self.chunk_cache.invalidate(
            lambda key: len(key) >= 2 and key[1] == identity
        )
        self.result_cache.invalidate(
            lambda key: len(key) >= 2 and key[1] == identity
        )

    # -- lifecycle -----------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise CatalogError("catalog is closed")

    def close(self) -> None:
        """Evict everything and refuse further use.  In-flight queries
        finish against their already-acquired handles; their entries
        close on release."""
        with self._lock:
            self._closed = True
            doomed = []
            for name in list(self._entries):
                entry = self._entries[name]
                if entry.evicting:
                    continue
                entry.evicting = True
                if entry.refs == 0:
                    self._entries.pop(name, None)
                    doomed.append(entry)
        for entry in doomed:
            self._finalize_eviction(entry)
        self.chunk_cache.clear()
        self.result_cache.clear()

    def __enter__(self) -> "TraceCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounting ----------------------------------------------------
    def stats(self) -> typing.Dict[str, typing.Any]:
        chunk = self.chunk_cache.stats()
        result = self.result_cache.stats()
        with self._lock:
            open_fds = sum(
                entry.handle.open_descriptors
                for entry in self._entries.values()
            )
            n_traces = sum(
                1 for entry in self._entries.values() if not entry.evicting
            )
        return {
            "traces": n_traces,
            "memory_budget": self.memory_budget,
            "cached_bytes": chunk.current_bytes + result.current_bytes,
            "open_descriptors": open_fds,
            "chunk_cache": _stats_row(chunk),
            "result_cache": _stats_row(result),
        }


def _stats_row(stats: CacheStats) -> typing.Dict[str, typing.Any]:
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "insertions": stats.insertions,
        "evictions": stats.evictions,
        "rejected": stats.rejected,
        "current_bytes": stats.current_bytes,
        "budget_bytes": stats.budget_bytes,
        "entries": stats.entries,
    }
