"""repro.serve: the trace-analysis daemon.

A long-lived process that keeps traces *open* — parsed headers, zone
maps, clock fits, bounded descriptor pools — in a
:class:`TraceCatalog`, and answers :class:`repro.tq.Query`-shaped
requests over a JSON-line socket protocol.  Clients pay the open/index
cost once per registration instead of once per query; decoded chunks
and canonical results are cached under one configurable memory budget.

The serving contract is differential: a served response is
byte-identical to the canonical encoding of the same query executed
serially against the library, whether it came from a fresh execution,
the result cache, or a sharded :mod:`repro.par` fan-out.

Entry points:

* :class:`TraceServer` / :class:`ServerConfig` — the daemon itself
  (embed with ``start()``, or run the ``pdt-serve`` CLI).
* :class:`TraceCatalog` — register/list/acquire/evict open traces.
* :class:`ServeClient` — a small blocking client for the protocol.
"""

from repro.serve.cache import CacheStats, ChunkCache, LruCache, chunk_nbytes
from repro.serve.catalog import (
    DEFAULT_MEMORY_BUDGET,
    CatalogError,
    TraceCatalog,
)
from repro.serve.protocol import (
    ProtocolError,
    ServeClient,
    canonical_json,
    plan_key,
)
from repro.serve.server import (
    DEFAULT_MAX_CONCURRENT,
    AdmissionController,
    ServerConfig,
    TraceServer,
)

__all__ = [
    "AdmissionController",
    "CacheStats",
    "CatalogError",
    "ChunkCache",
    "DEFAULT_MAX_CONCURRENT",
    "DEFAULT_MEMORY_BUDGET",
    "LruCache",
    "ProtocolError",
    "ServeClient",
    "ServerConfig",
    "TraceCatalog",
    "TraceServer",
    "canonical_json",
    "chunk_nbytes",
    "plan_key",
]
