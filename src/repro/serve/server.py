"""The ``repro.serve`` daemon: a threaded JSON-line server over a
:class:`~repro.serve.catalog.TraceCatalog`.

One thread per connection (``socketserver.ThreadingTCPServer``), one
request per line, responses in canonical JSON.  The execution path for
``op: query`` is:

1. **admission control** — a counting semaphore bounds how many query
   executions run at once; clients beyond the bound queue in arrival
   order rather than oversubscribing the machine.  Sharded executions
   (server ``jobs > 1``) additionally serialize on one lock, so every
   concurrent client funnels into a *single* shared
   :mod:`repro.par` worker fan-out instead of each spawning its own
   process pool.
2. **catalog acquire** — refcounted borrow of the shared
   :class:`~repro.pdt.handle.TraceHandle` (eviction defers to release).
3. **result cache** — keyed by trace identity (name + generation),
   query mode, and the order-canonical
   :func:`~repro.serve.protocol.plan_key` of the frozen
   :class:`~repro.tq.pipeline.QueryPlan`.  A hit returns the exact
   canonical-JSON bytes the first execution produced.
4. **execution** — an ordinary :class:`~repro.tq.Query` over a
   ``handle.source(chunk_cache=...)`` view: zone-map pruning, shared
   clock fit, decoded chunks served from (and fed back into) the
   catalog's budgeted cache.

Every response for the same query is byte-identical to direct serial
library execution — the differential harness drives exactly this
comparison from many concurrent clients.
"""

from __future__ import annotations

import dataclasses
import socketserver
import threading
import typing

from repro.pdt.correlate import CorrelationError
from repro.pdt.format import TraceFormatError
from repro.serve.catalog import CatalogError, TraceCatalog
from repro.serve.protocol import (
    ProtocolError,
    build_query,
    canonical_json,
    decode_request,
    error_response,
    ok_response,
    plan_key,
    query_mode,
)

#: Default cap on concurrently *executing* queries.
DEFAULT_MAX_CONCURRENT = 4


class AdmissionController:
    """A counting semaphore with accounting: at most ``limit`` query
    executions at once, arrivals beyond it queue (FIFO within the
    semaphore's fairness).  ``peak_active`` and ``peak_queued`` make
    the funneling observable in ``op: stats``."""

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        self.limit = limit
        self._semaphore = threading.Semaphore(limit)
        self._lock = threading.Lock()
        self._active = 0
        self._queued = 0
        self._admitted = 0
        self.peak_active = 0
        self.peak_queued = 0

    def __enter__(self) -> "AdmissionController":
        with self._lock:
            self._queued += 1
            self.peak_queued = max(self.peak_queued, self._queued)
        self._semaphore.acquire()
        with self._lock:
            self._queued -= 1
            self._active += 1
            self._admitted += 1
            self.peak_active = max(self.peak_active, self._active)
        return self

    def __exit__(self, *exc) -> None:
        with self._lock:
            self._active -= 1
        self._semaphore.release()

    def stats(self) -> typing.Dict[str, int]:
        with self._lock:
            return {
                "limit": self.limit,
                "active": self._active,
                "queued": self._queued,
                "admitted": self._admitted,
                "peak_active": self.peak_active,
                "peak_queued": self.peak_queued,
            }


@dataclasses.dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    port: int = 0  # 0: let the OS pick (tests)
    jobs: int = 1  # worker processes per sharded query execution
    max_concurrent: int = DEFAULT_MAX_CONCURRENT


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server = typing.cast("_InnerServer", self.server)
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            response = server.trace_server.dispatch_line(line)
            try:
                self.wfile.write(response.encode("utf-8") + b"\n")
            except (BrokenPipeError, ConnectionResetError):
                return


class _InnerServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    trace_server: "TraceServer"


class TraceServer:
    """The daemon: owns the catalog, the admission controller, and the
    listening socket.  ``start()`` serves in a daemon thread (tests and
    embedding); ``serve_forever()`` serves in the calling thread (the
    CLI).  Closing the server closes the catalog."""

    def __init__(
        self,
        catalog: typing.Optional[TraceCatalog] = None,
        config: typing.Optional[ServerConfig] = None,
    ):
        self.config = config or ServerConfig()
        self.catalog = catalog if catalog is not None else TraceCatalog()
        self.admission = AdmissionController(self.config.max_concurrent)
        #: Serializes sharded (multi-process) executions: one shared
        #: repro.par fan-out at a time, however many clients are active.
        self._par_lock = threading.Lock()
        self._inner = _InnerServer(
            (self.config.host, self.config.port), _RequestHandler
        )
        self._inner.trace_server = self
        self._thread: typing.Optional[threading.Thread] = None
        self._requests_served = 0
        self._stats_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> typing.Tuple[str, int]:
        """The bound (host, port) — with ``port=0``, the real port."""
        return self._inner.server_address[:2]

    def start(self) -> "TraceServer":
        """Serve in a background daemon thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._inner.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._inner.serve_forever()

    def stop(self) -> None:
        """Stop accepting, close the socket and the catalog."""
        self._inner.shutdown()
        self._inner.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.catalog.close()

    def __enter__(self) -> "TraceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- dispatch ------------------------------------------------------
    def dispatch_line(self, line: str) -> str:
        """One request line in, one canonical response line out.
        Never raises: every failure becomes an error response."""
        request_id: typing.Any = None
        try:
            request = decode_request(line)
            request_id = request.get("id")
            result = self._dispatch(request)
            if isinstance(result, _CannedResult):
                # Splice the already-canonical result bytes verbatim:
                # "result" sorts after "id"/"ok", so the envelope stays
                # in canonical key order.
                envelope = canonical_json({"id": request_id, "ok": True})
                response = envelope[:-1] + ',"result":' + result.encoded + "}"
            else:
                response = ok_response(request_id, result)
        except (
            ProtocolError,
            CatalogError,
            TraceFormatError,
            CorrelationError,
            ValueError,
            OSError,
        ) as exc:
            response = error_response(request_id, str(exc))
        with self._stats_lock:
            self._requests_served += 1
        return response

    def _dispatch(self, request: typing.Mapping) -> typing.Any:
        op = request["op"]
        if op == "ping":
            return "pong"
        if op == "register":
            for field in ("name", "path"):
                if not isinstance(request.get(field), str):
                    raise ProtocolError(f'register needs a string "{field}"')
            return self.catalog.register(
                request["name"],
                request["path"],
                strict=bool(request.get("strict", True)),
                live=bool(request.get("live", False)),
            )
        if op == "list":
            return self.catalog.list_traces()
        if op == "evict":
            if not isinstance(request.get("trace"), str):
                raise ProtocolError('evict needs a string "trace"')
            return self.catalog.evict(request["trace"])
        if op == "refresh":
            if not isinstance(request.get("trace"), str):
                raise ProtocolError('refresh needs a string "trace"')
            return self.catalog.refresh(request["trace"])
        if op == "stats":
            return self.server_stats()
        if op == "query":
            return self._execute_query(request)
        raise ProtocolError(f"unknown op {op!r}")

    # -- queries -------------------------------------------------------
    def _execute_query(self, request: typing.Mapping) -> typing.Any:
        name = request.get("trace")
        if not isinstance(name, str):
            raise ProtocolError('query needs a string "trace"')
        mode = query_mode(request)
        with self.admission:
            with self.catalog.acquire(name) as (handle, chunk_cache, identity):
                # The plan is derived source-free first, so a cache hit
                # never touches the trace at all.
                shape = build_query(None, request).plan()
                cache_key = ("result", identity, mode, plan_key(shape))
                cached = self.catalog.result_cache.get(cache_key)
                if cached is not None:
                    return _CannedResult(cached)
                source = handle.source(chunk_cache=chunk_cache)
                query = build_query(source, request)
                result = self._run(query, mode)
                encoded = canonical_json(result)
                self.catalog.result_cache.put(
                    cache_key, encoded, len(encoded.encode("utf-8"))
                )
                return _CannedResult(encoded)

    def _run(self, query, mode: str) -> typing.Any:
        jobs = self.config.jobs
        if jobs > 1:
            from repro.par import parallel_count, parallel_records, parallel_rows

            # One shared par fan-out at a time: concurrent clients
            # funnel here instead of each spawning a process pool.
            with self._par_lock:
                if mode == "run":
                    return parallel_rows(query, jobs)
                if mode == "records":
                    return [list(row) for row in parallel_records(query, jobs)]
                return parallel_count(query, jobs)
        if mode == "run":
            return query.run()
        if mode == "records":
            return [list(row) for row in query.records()]
        return query.count()

    # -- accounting ----------------------------------------------------
    def server_stats(self) -> typing.Dict[str, typing.Any]:
        with self._stats_lock:
            served = self._requests_served
        return {
            "address": list(self.address),
            "jobs": self.config.jobs,
            "requests_served": served,
            "admission": self.admission.stats(),
            "catalog": self.catalog.stats(),
        }


class _CannedResult:
    """A result already in canonical JSON: splice verbatim rather than
    re-encoding, so cached and fresh responses are byte-identical."""

    __slots__ = ("encoded",)

    def __init__(self, encoded: str):
        self.encoded = encoded
