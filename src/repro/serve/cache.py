"""Byte-budget LRU caches for the serving layer.

Two cache populations sit behind a :class:`~repro.serve.catalog.TraceCatalog`:

* **decoded chunks** — decoded *columns*, keyed by
  ``("chunk", (trace, generation), chunk_index, column)``.  Decoding
  dominates warm query latency, so a catalog that keeps hot columns
  decoded answers repeat queries without touching the codec (or, for
  pruned chunks, the disk).  Caching per column rather than per chunk
  does two things for the byte budget: the accounted size is the real
  ``itemsize * len`` of what is resident (a projection-pushdown scan
  that decoded two of six columns charges two columns, not a whole
  chunk), and eviction granularity follows access granularity — a
  narrow hot query keeps its two columns warm without also pinning (or
  evicting) the wide columns another query populated.
* **results** — the canonical JSON encoding of a finished query,
  keyed by trace identity + frozen query shape
  (:func:`~repro.serve.protocol.plan_key`).  A hit returns the exact
  bytes the first execution produced, so cached and uncached responses
  are byte-identical by construction.

Both live in :class:`LruCache`: a thread-safe, least-recently-used
mapping bounded by a *byte* budget rather than an entry count — the
catalog's memory ceiling is what operators configure, and entries
(chunks especially) vary wildly in size.  Inserting past the budget
evicts from the cold end until the new entry fits; an entry larger
than the whole budget is simply not cached.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import typing

from repro.pdt.store import CHUNK_COLUMNS, ColumnChunk, LazyChunk


@dataclasses.dataclass
class CacheStats:
    """Counters one cache exposes (snapshot; see :meth:`LruCache.stats`)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0  # entries larger than the whole budget
    current_bytes: int = 0
    budget_bytes: int = 0
    entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LruCache:
    """A thread-safe LRU mapping bounded by total byte size.

    ``put`` evicts least-recently-used entries until the new one fits
    its byte budget; ``get`` refreshes recency.  Keys are arbitrary
    hashables — the serving layer namespaces them with tuples like
    ``("chunk", name, generation, index)`` so one cache can hold many
    traces and :meth:`invalidate` can drop one trace's entries when the
    catalog evicts it.
    """

    def __init__(self, budget_bytes: int):
        if budget_bytes < 0:
            raise ValueError(f"budget must be >= 0, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._entries: "collections.OrderedDict[typing.Any, typing.Tuple[typing.Any, int]]" = (
            collections.OrderedDict()
        )
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0
        self._rejected = 0

    def get(self, key: typing.Any) -> typing.Optional[typing.Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: typing.Any, value: typing.Any, nbytes: int) -> bool:
        """Insert (or refresh) ``key``; returns False when the entry is
        larger than the whole budget and was not cached.

        Every entry is accounted as at least one byte: a declared size
        of zero must not let entries bypass the budget entirely, or a
        stream of empty results against a tiny budget would grow the
        table without bound (and a zero budget would cache forever).
        """
        accounted = max(int(nbytes), 1)
        if accounted > self.budget_bytes:
            with self._lock:
                self._rejected += 1
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            while self._entries and self._bytes + accounted > self.budget_bytes:
                __, (___, evicted_bytes) = self._entries.popitem(last=False)
                self._bytes -= evicted_bytes
                self._evictions += 1
            self._entries[key] = (value, accounted)
            self._bytes += accounted
            self._insertions += 1
            return True

    def invalidate(
        self, match: typing.Callable[[typing.Any], bool]
    ) -> int:
        """Drop every entry whose key satisfies ``match``; returns the
        number dropped."""
        with self._lock:
            doomed = [key for key in self._entries if match(key)]
            for key in doomed:
                __, nbytes = self._entries.pop(key)
                self._bytes -= nbytes
            return len(doomed)

    def clear(self) -> None:
        """Drop everything; the dropped entries count as evictions so
        ``stats()`` keeps accounting for every departed entry."""
        with self._lock:
            self._evictions += len(self._entries)
            self._entries.clear()
            self._bytes = 0

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                insertions=self._insertions,
                evictions=self._evictions,
                rejected=self._rejected,
                current_bytes=self._bytes,
                budget_bytes=self.budget_bytes,
                entries=len(self._entries),
            )


def chunk_nbytes(chunk: ColumnChunk) -> int:
    """The decoded size of one chunk: the sum of its *materialized*
    column buffers (a lazy chunk's undecoded columns occupy nothing)."""
    total = 0
    lazy = isinstance(chunk, LazyChunk)
    for name in ColumnChunk.__slots__:
        if lazy and not chunk.materialized(name):
            continue
        column = getattr(chunk, name)
        total += column.itemsize * len(column)
    return total


def _column_nbytes(entry: typing.Any) -> int:
    if isinstance(entry, tuple):  # the (val_off, values) pair
        return sum(part.itemsize * len(part) for part in entry)
    return entry.itemsize * len(entry)


class ChunkCache:
    """One trace's window onto the shared chunk :class:`LruCache`.

    Implements the ``get(i, columns)`` / ``put(i, chunk, columns)``
    protocol :meth:`repro.pdt.handle.TraceHandle.iter_chunk_range`
    consults, so a handle view created with ``source(chunk_cache=...)``
    transparently reads hot columns from the catalog's budgeted cache
    and feeds cold decodes back into it.

    Entries are per column — ``("chunk", trace_key, index, name)`` —
    with the trace key at position 1, where the catalog's
    identity-based invalidation expects it.  The ``values`` entry
    carries its ``val_off`` offsets alongside (one is useless without
    the other) and is charged for both; ``truth`` is never cached (it
    is synthesized, not decoded).  A ``get`` answers only when *every*
    column the caller needs is resident — the assembled chunk is a
    :class:`LazyChunk` whose absent columns fail loudly rather than
    silently decode — and a ``put`` stores exactly the columns the
    decode materialized.
    """

    def __init__(self, shared: LruCache, trace_key: typing.Any):
        self._shared = shared
        self._trace_key = trace_key

    def _key(self, index: int, name: str) -> typing.Tuple:
        return ("chunk", self._trace_key, index, name)

    def get(
        self,
        index: int,
        columns: typing.Optional[typing.FrozenSet[str]] = None,
    ) -> typing.Optional[ColumnChunk]:
        names = (
            CHUNK_COLUMNS
            if columns is None
            else tuple(n for n in CHUNK_COLUMNS if n in columns)
        )
        if not names:
            names = ("side",)  # a degenerate mask still needs row count
        got = {}
        for name in names:
            entry = self._shared.get(self._key(index, name))
            if entry is None:
                return None
            got[name] = entry
        first_name, first = next(iter(got.items()))
        n = len(first[0]) - 1 if first_name == "values" else len(first)
        chunk = LazyChunk(n)
        for name, entry in got.items():
            if name == "values":
                chunk.set_column("val_off", entry[0])
                chunk.set_column("values", entry[1])
            else:
                chunk.set_column(name, entry)
        return chunk

    def put(
        self,
        index: int,
        chunk: ColumnChunk,
        columns: typing.Optional[typing.FrozenSet[str]] = None,
    ) -> None:
        lazy = isinstance(chunk, LazyChunk)
        for name in CHUNK_COLUMNS:
            if lazy and not chunk.materialized(name):
                continue
            if name == "values":
                entry: typing.Any = (chunk.val_off, chunk.values)
            else:
                entry = getattr(chunk, name)
            self._shared.put(
                self._key(index, name), entry, _column_nbytes(entry)
            )
