"""``pdt-serve``: run the trace-analysis daemon.

Registers any ``--register name=path`` traces up front (failing fast
on a bad path), prints the bound address, and serves until
interrupted::

    pdt-serve --port 7441 --register run1=traces/run1.pdt --jobs 4
"""

from __future__ import annotations

import argparse
import os
import sys
import typing

from repro.pdt.format import TraceFormatError
from repro.serve.catalog import DEFAULT_MEMORY_BUDGET, TraceCatalog
from repro.serve.server import (
    DEFAULT_MAX_CONCURRENT,
    ServerConfig,
    TraceServer,
)


def _registration(text: str) -> typing.Tuple[str, str]:
    name, sep, path = text.partition("=")
    if not sep or not name or not path:
        raise argparse.ArgumentTypeError(
            f"expected NAME=PATH, got {text!r}"
        )
    return name, path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdt-serve",
        description="Serve PDT trace analysis over a JSON-line socket "
        "protocol: register traces once, query them many times through "
        "a shared catalog of open handles and caches.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7441,
                        help="port to bind; 0 lets the OS pick "
                        "(default: 7441)")
    parser.add_argument("--register", metavar="NAME=PATH",
                        type=_registration, action="append", default=[],
                        help="register a trace at startup (repeatable)")
    parser.add_argument("--budget-mb", type=int, default=None,
                        metavar="MB",
                        help="catalog memory budget for chunk + result "
                        "caches (default: 256)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per sharded query "
                        "(default: 1 = serial; results are identical)")
    parser.add_argument("--max-clients", type=int,
                        default=DEFAULT_MAX_CONCURRENT, metavar="N",
                        help="queries admitted to execute concurrently; "
                        "the rest queue (default: "
                        f"{DEFAULT_MAX_CONCURRENT})")
    return parser


def main(argv: typing.Optional[typing.List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print(f"pdt-serve: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    cpus = os.cpu_count() or 1
    if args.jobs > cpus:
        print(
            f"pdt-serve: --jobs {args.jobs} exceeds the {cpus} available "
            f"CPU(s); using {cpus}",
            file=sys.stderr,
        )
        args.jobs = cpus
    if args.max_clients < 1:
        print(
            f"pdt-serve: --max-clients must be >= 1, got {args.max_clients}",
            file=sys.stderr,
        )
        return 2
    if args.budget_mb is not None and args.budget_mb < 1:
        print(
            f"pdt-serve: --budget-mb must be >= 1, got {args.budget_mb}",
            file=sys.stderr,
        )
        return 2
    budget = (
        args.budget_mb * 1024 * 1024
        if args.budget_mb is not None
        else DEFAULT_MEMORY_BUDGET
    )
    catalog = TraceCatalog(memory_budget=budget)
    try:
        for name, path in args.register:
            info = catalog.register(name, path)
            print(
                f"registered {name}: {info['records']} records in "
                f"{info['chunks']} chunks"
                + (" (indexed)" if info["indexed"] else "")
            )
    except (TraceFormatError, OSError, ValueError) as exc:
        print(f"pdt-serve: {exc}", file=sys.stderr)
        catalog.close()
        return 2
    config = ServerConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        max_concurrent=args.max_clients,
    )
    try:
        server = TraceServer(catalog, config)
    except OSError as exc:
        print(f"pdt-serve: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        catalog.close()
        return 2
    host, port = server.address
    print(f"serving on {host}:{port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
