"""Corpus-scale differential trace analytics.

The paper's workflow is comparative: trace the application under one
configuration, change a knob (buffer size, SPE count, buffering
discipline, recorded event groups), trace again, and ask what moved.
This package makes that workflow corpus-shaped:

* :mod:`repro.corpus.runner` — execute a workload × configuration
  matrix, every cell seeded deterministically and repeated, each run
  streamed to its own trace file;
* :mod:`repro.corpus.manifest` — the corpus's self-description: every
  run's configuration, seed, stats, and trace path;
* :mod:`repro.corpus.metrics` — every corpus metric as frozen
  :class:`~repro.tq.pipeline.QueryPlan` objects over shared
  :class:`~repro.pdt.handle.TraceHandle` s — shardable via
  :mod:`repro.par` with byte-identical results;
* :mod:`repro.corpus.differ` — ranked what-changed reports between two
  runs: metric deltas, per-SPE stall/DMA breakdowns, and
  corrected-time-aligned activity timelines;
* :mod:`repro.corpus.regress` — noise-aware regression detection: the
  repeats of a cell are its noise population, and a delta flags only
  beyond ``k`` robust sigmas of that noise — never a raw threshold;
* :mod:`repro.corpus.cli` — the ``pdt-corpus`` command
  (run / list / diff / check).
"""

from repro.corpus.differ import CorpusDiff, MetricDelta, diff_handles, diff_runs
from repro.corpus.manifest import (
    CorpusError,
    CorpusManifest,
    RunRecord,
    config_id,
)
from repro.corpus.metrics import (
    MetricSpec,
    default_metrics,
    evaluate_metrics,
    stall_breakdown_rows,
)
from repro.corpus.regress import (
    MetricComparison,
    RegressionReport,
    collect_cell_metrics,
    compare_cells,
    detect_regressions,
    inject_regression,
    median,
    robust_spread,
)
from repro.corpus.runner import (
    CellSpec,
    cell_seed,
    open_corpus,
    run_matrix,
    sweep_cells,
)

__all__ = [
    "CellSpec",
    "CorpusDiff",
    "CorpusError",
    "CorpusManifest",
    "MetricComparison",
    "MetricDelta",
    "MetricSpec",
    "RegressionReport",
    "RunRecord",
    "cell_seed",
    "collect_cell_metrics",
    "compare_cells",
    "config_id",
    "default_metrics",
    "detect_regressions",
    "diff_handles",
    "diff_runs",
    "evaluate_metrics",
    "inject_regression",
    "median",
    "open_corpus",
    "robust_spread",
    "run_matrix",
    "stall_breakdown_rows",
    "sweep_cells",
]
