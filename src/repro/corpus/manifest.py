"""The corpus manifest: what was run, under what knobs, and where.

A corpus is a directory of traces produced by one matrix run
(:mod:`repro.corpus.runner`) plus ``manifest.json`` describing every
cell: the workload, the full configuration (SPE count, trace buffer
size, single/double buffering, trace-group mask), the seed, the repeat
index, the trace path, and the run's wall/overhead stats.  Everything
downstream — catalog registration, metric fan-out, the differ, the
regression detector — consumes the manifest, never the directory
listing, so a corpus is exactly what its manifest says it is.

Identity rules:

* ``config_id`` is a deterministic function of the configuration
  alone (``spes2-buf4096-db-all``), so cells of equal configuration
  group together however the matrix enumerated them;
* ``run_id`` is ``{workload}.{label}.{config_id}.r{repeat}`` — unique
  per cell, stable across re-runs, and the name the run registers
  under in a :class:`~repro.serve.catalog.TraceCatalog`;
* the cell *label* separates deliberately-identical configurations
  (e.g. the regression gate's baseline/candidate pair) without
  changing what ``config_id`` groups.
"""

from __future__ import annotations

import dataclasses
import json
import os
import typing

#: Manifest schema version; bumped on incompatible changes.
MANIFEST_VERSION = 1

#: The manifest's filename inside a corpus directory.
MANIFEST_NAME = "manifest.json"


class CorpusError(ValueError):
    """A corpus operation that cannot proceed: malformed manifest,
    unknown run id, mismatched comparison."""


def config_id(config: typing.Mapping[str, typing.Any]) -> str:
    """The deterministic group identity of one configuration dict."""
    groups = config.get("groups")
    mask = "all" if groups is None else "+".join(sorted(groups)) or "none"
    buffering = "db" if config.get("double_buffered", True) else "sb"
    return (
        f"spes{config['n_spes']}-buf{config['buffer_bytes']}-"
        f"{buffering}-{mask}"
    )


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One executed cell of the matrix."""

    run_id: str
    workload: str
    label: str
    config: typing.Mapping[str, typing.Any]
    seed: int
    repeat: int
    path: str  # trace path relative to the corpus directory
    stats: typing.Mapping[str, typing.Any]

    @property
    def config_id(self) -> str:
        return config_id(self.config)

    @property
    def group(self) -> typing.Tuple[str, str, str]:
        """Cells that are repeats of each other share this key."""
        return (self.workload, self.label, self.config_id)

    def row(self) -> typing.Dict[str, typing.Any]:
        """One table row for ``pdt-corpus list``."""
        return {
            "run_id": self.run_id,
            "workload": self.workload,
            "config": self.config_id,
            "repeat": self.repeat,
            "seed": self.seed,
            "cycles": self.stats.get("elapsed_cycles"),
            "records": self.stats.get("records"),
            "trace_bytes": self.stats.get("trace_bytes"),
        }

    def to_json(self) -> typing.Dict[str, typing.Any]:
        return {
            "run_id": self.run_id,
            "workload": self.workload,
            "label": self.label,
            "config": dict(self.config),
            "seed": self.seed,
            "repeat": self.repeat,
            "path": self.path,
            "stats": dict(self.stats),
        }


_RUN_KEYS = frozenset(
    ("run_id", "workload", "label", "config", "seed", "repeat", "path", "stats")
)


def _run_from_json(payload: typing.Mapping[str, typing.Any]) -> RunRecord:
    missing = _RUN_KEYS - set(payload)
    if missing:
        raise CorpusError(f"manifest run missing keys: {sorted(missing)}")
    config = payload["config"]
    if not isinstance(config, dict) or "n_spes" not in config:
        raise CorpusError(
            f"manifest run {payload['run_id']!r} has a malformed config"
        )
    return RunRecord(
        run_id=payload["run_id"],
        workload=payload["workload"],
        label=payload["label"],
        config=config,
        seed=payload["seed"],
        repeat=payload["repeat"],
        path=payload["path"],
        stats=payload["stats"],
    )


@dataclasses.dataclass
class CorpusManifest:
    """Every run of one corpus, in matrix-enumeration order."""

    base_seed: int
    repeats: int
    runs: typing.List[RunRecord]
    root: typing.Optional[str] = None  # directory the manifest loaded from

    # -- lookup --------------------------------------------------------
    def run(self, run_id: str) -> RunRecord:
        for record in self.runs:
            if record.run_id == run_id:
                return record
        raise CorpusError(
            f"no such run: {run_id!r} (corpus has "
            f"{', '.join(r.run_id for r in self.runs[:8])}"
            f"{', ...' if len(self.runs) > 8 else ''})"
        )

    def trace_path(self, run_id: str) -> str:
        """The run's trace path, absolute when the manifest knows its
        corpus directory."""
        record = self.run(run_id)
        if self.root is None or os.path.isabs(record.path):
            return record.path
        return os.path.join(self.root, record.path)

    def groups(self) -> typing.Dict[typing.Tuple[str, str, str], typing.List[RunRecord]]:
        """Repeat cells per (workload, label, config_id), repeat order."""
        grouped: typing.Dict[
            typing.Tuple[str, str, str], typing.List[RunRecord]
        ] = {}
        for record in self.runs:
            grouped.setdefault(record.group, []).append(record)
        for members in grouped.values():
            members.sort(key=lambda record: record.repeat)
        return grouped

    # -- persistence ---------------------------------------------------
    def to_json(self) -> typing.Dict[str, typing.Any]:
        return {
            "version": MANIFEST_VERSION,
            "base_seed": self.base_seed,
            "repeats": self.repeats,
            "runs": [record.to_json() for record in self.runs],
        }

    def save(self, directory: str) -> str:
        path = os.path.join(directory, MANIFEST_NAME)
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        self.root = directory
        return path

    @classmethod
    def load(cls, directory_or_path: str) -> "CorpusManifest":
        """Read a manifest from a corpus directory (or the JSON file
        itself); raises :class:`CorpusError` on malformed content."""
        path = directory_or_path
        if os.path.isdir(path):
            path = os.path.join(path, MANIFEST_NAME)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CorpusError(f"{path}: malformed manifest JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise CorpusError(f"{path}: manifest must be a JSON object")
        version = payload.get("version")
        if version != MANIFEST_VERSION:
            raise CorpusError(
                f"{path}: unsupported manifest version {version!r} "
                f"(expected {MANIFEST_VERSION})"
            )
        runs = payload.get("runs")
        if not isinstance(runs, list):
            raise CorpusError(f"{path}: manifest needs a \"runs\" array")
        manifest = cls(
            base_seed=payload.get("base_seed", 0),
            repeats=payload.get("repeats", 1),
            runs=[_run_from_json(run) for run in runs],
            root=os.path.dirname(os.path.abspath(path)),
        )
        seen: typing.Set[str] = set()
        for record in manifest.runs:
            if record.run_id in seen:
                raise CorpusError(f"{path}: duplicate run id {record.run_id!r}")
            seen.add(record.run_id)
        return manifest
