"""Noise-aware regression detection over repeat cells.

The corpus runner executes every cell ``repeats`` times under distinct
deterministic seeds; those repeats are the *noise population* of the
cell.  The detector never applies a raw threshold to a metric value —
it compares the baseline and candidate groups' medians and flags only
deltas beyond ``k`` times the groups' robust spread:

* center = median of the repeat values (one outlier repeat cannot
  shift it);
* spread = 1.4826 × MAD (the median absolute deviation scaled to the
  standard deviation of a normal population — the usual robust sigma);
* the comparison spread is the larger of the two groups' spreads, and
  a delta is flagged iff ``|delta| > k × spread`` (strictly — a
  perfectly reproduced deterministic metric has spread 0 *and* delta
  0, which must not flag).

A deterministic metric that truly changed (spread 0, delta ≠ 0) flags
at any ``k``; a noisy metric flags only when it moves out of its own
noise.  With fewer than 3 repeats per cell the spread estimate is
degenerate (a single repeat always has spread 0) — the report carries
``repeats`` so gates can refuse underpowered corpora.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ta.report import format_table
from repro.corpus.manifest import CorpusError, CorpusManifest
from repro.corpus.metrics import WORSE_IF_UP, MetricSpec, evaluate_metrics

#: MAD → sigma under normality.
MAD_SCALE = 1.4826

#: Default flag threshold, in robust sigmas.
DEFAULT_K = 4.0


def median(values: typing.Sequence[float]) -> float:
    """Plain median (mean of the middle pair on even counts)."""
    if not values:
        raise CorpusError("median of an empty population")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def robust_spread(values: typing.Sequence[float]) -> float:
    """Robust sigma estimate: max(1.4826 × MAD, half the range).

    The scaled MAD is the textbook robust sigma, but at corpus repeat
    counts (3–5 per cell) it collapses toward the *smallest* deviation
    — three repeats where two happen to tie give MAD 0 even though the
    population clearly has noise, and an underestimated spread turns
    ordinary noise into flags.  Half the range is the conservative
    companion estimator at these sizes (for 3 normal samples its
    expectation is ≈0.85σ); taking the max keeps a genuinely
    deterministic metric at exactly 0 while never letting a noisy one
    report less spread than its own repeats exhibited.
    """
    center = median(values)
    mad = median([abs(v - center) for v in values])
    half_range = (max(values) - min(values)) / 2
    return max(MAD_SCALE * mad, half_range)


# Group key: (workload, label, config_id) as the manifest defines it.
GroupKey = typing.Tuple[str, str, str]
#: metric name → repeat values, one entry per group.
CellMetrics = typing.Dict[GroupKey, typing.Dict[str, typing.List[float]]]


def collect_cell_metrics(
    manifest: CorpusManifest,
    catalog,
    jobs: int = 1,
    metrics: typing.Optional[typing.Sequence[MetricSpec]] = None,
) -> CellMetrics:
    """Every metric of every run, grouped into repeat populations.

    One :func:`~repro.corpus.metrics.evaluate_metrics` call per run
    against its shared catalog handle; values land in repeat order.
    """
    collected: CellMetrics = {}
    for group, records in manifest.groups().items():
        per_metric: typing.Dict[str, typing.List[float]] = {}
        for record in records:
            with catalog.acquire(record.run_id) as (handle, __, __unused):
                values = evaluate_metrics(handle, jobs=jobs, metrics=metrics)
            for name, value in values.items():
                per_metric.setdefault(name, []).append(value)
        collected[group] = per_metric
    return collected


def inject_regression(
    cell_metrics: CellMetrics,
    label: str,
    metric_prefix: str,
    factor: float,
) -> CellMetrics:
    """A copy with every ``metric_prefix*`` value of every ``label``
    group scaled by ``factor`` — the gate's synthetic regression,
    injected into the measured populations so the self-test exercises
    the detector against real noise."""
    injected: CellMetrics = {}
    for group, per_metric in cell_metrics.items():
        scale = group[1] == label
        injected[group] = {
            name: [
                v * factor if scale and name.startswith(metric_prefix) else v
                for v in values
            ]
            for name, values in per_metric.items()
        }
    return injected


@dataclasses.dataclass(frozen=True)
class MetricComparison:
    """One metric of one (workload, config) cell pair, compared."""

    metric: str
    workload: str
    config_id: str
    base_label: str
    cand_label: str
    base_values: typing.Tuple[float, ...]
    cand_values: typing.Tuple[float, ...]
    k: float

    @property
    def base_median(self) -> float:
        return median(self.base_values)

    @property
    def cand_median(self) -> float:
        return median(self.cand_values)

    @property
    def delta(self) -> float:
        return self.cand_median - self.base_median

    @property
    def spread(self) -> float:
        return max(
            robust_spread(self.base_values), robust_spread(self.cand_values)
        )

    @property
    def threshold(self) -> float:
        return self.k * self.spread

    @property
    def flagged(self) -> bool:
        return abs(self.delta) > self.threshold

    @property
    def direction(self) -> str:
        if not self.flagged:
            return "ok"
        if self.metric in WORSE_IF_UP:
            return "regression" if self.delta > 0 else "improvement"
        return "changed"

    def row(self) -> typing.Dict[str, typing.Any]:
        return {
            "workload": self.workload,
            "config": self.config_id,
            "metric": self.metric,
            "base": self.base_median,
            "cand": self.cand_median,
            "delta": self.delta,
            "threshold": round(self.threshold, 1),
            "verdict": self.direction,
        }

    def to_json(self) -> typing.Dict[str, typing.Any]:
        return {
            "workload": self.workload,
            "config_id": self.config_id,
            "metric": self.metric,
            "base_label": self.base_label,
            "cand_label": self.cand_label,
            "base_values": list(self.base_values),
            "cand_values": list(self.cand_values),
            "base_median": self.base_median,
            "cand_median": self.cand_median,
            "delta": self.delta,
            "spread": self.spread,
            "k": self.k,
            "threshold": self.threshold,
            "flagged": self.flagged,
            "direction": self.direction,
        }


@dataclasses.dataclass
class RegressionReport:
    """Every comparison of one baseline/candidate label pair."""

    base_label: str
    cand_label: str
    k: float
    repeats: int
    comparisons: typing.List[MetricComparison]

    @property
    def flagged(self) -> typing.List[MetricComparison]:
        return [c for c in self.comparisons if c.flagged]

    @property
    def regressions(self) -> typing.List[MetricComparison]:
        return [c for c in self.comparisons if c.direction == "regression"]

    def to_json(self) -> typing.Dict[str, typing.Any]:
        return {
            "base_label": self.base_label,
            "cand_label": self.cand_label,
            "k": self.k,
            "repeats": self.repeats,
            "flagged": len(self.flagged),
            "regressions": len(self.regressions),
            "comparisons": [c.to_json() for c in self.comparisons],
        }

    def format_report(self) -> str:
        header = (
            f"=== regression check: {self.base_label} -> {self.cand_label} "
            f"(k={self.k:g}, {self.repeats} repeats/cell) ==="
        )
        if not self.comparisons:
            return header + "\n(no comparable cell pairs)\n"
        verdict = (
            f"{len(self.flagged)} flagged ({len(self.regressions)} "
            f"regressions) of {len(self.comparisons)} comparisons"
        )
        return "\n".join(
            [header, "", format_table([c.row() for c in self.comparisons]),
             verdict]
        ) + "\n"


def compare_cells(
    cell_metrics: CellMetrics,
    base_label: str,
    cand_label: str,
    k: float = DEFAULT_K,
    repeats: int = 0,
) -> RegressionReport:
    """Pair every (workload, config) present under both labels and
    compare metric-by-metric.  Ranked flagged-first, then by
    |delta| / threshold headroom."""
    if k <= 0:
        raise CorpusError(f"k must be > 0, got {k}")
    base_groups = {
        (g[0], g[2]): m for g, m in cell_metrics.items() if g[1] == base_label
    }
    cand_groups = {
        (g[0], g[2]): m for g, m in cell_metrics.items() if g[1] == cand_label
    }
    paired = sorted(set(base_groups) & set(cand_groups))
    if not paired:
        raise CorpusError(
            f"no cell is present under both labels {base_label!r} and "
            f"{cand_label!r}"
        )
    comparisons = []
    for workload, cfg in paired:
        base_metrics = base_groups[(workload, cfg)]
        cand_metrics = cand_groups[(workload, cfg)]
        for name in base_metrics:
            if name not in cand_metrics:
                continue
            comparisons.append(
                MetricComparison(
                    metric=name,
                    workload=workload,
                    config_id=cfg,
                    base_label=base_label,
                    cand_label=cand_label,
                    base_values=tuple(base_metrics[name]),
                    cand_values=tuple(cand_metrics[name]),
                    k=k,
                )
            )
    comparisons.sort(
        key=lambda c: (
            not c.flagged,
            -(abs(c.delta) / (c.threshold or 1.0)),
            c.workload,
            c.config_id,
            c.metric,
        )
    )
    return RegressionReport(
        base_label=base_label,
        cand_label=cand_label,
        k=k,
        repeats=repeats,
        comparisons=comparisons,
    )


def detect_regressions(
    manifest: CorpusManifest,
    catalog,
    base_label: str,
    cand_label: str,
    k: float = DEFAULT_K,
    jobs: int = 1,
) -> RegressionReport:
    """End-to-end: collect repeat populations from the corpus and
    compare ``base_label`` cells against ``cand_label`` cells."""
    cell_metrics = collect_cell_metrics(manifest, catalog, jobs=jobs)
    return compare_cells(
        cell_metrics,
        base_label,
        cand_label,
        k=k,
        repeats=manifest.repeats,
    )
