"""Cross-trace differential analytics: what changed between two runs.

:func:`diff_runs` compares two corpus runs through their shared
catalog handles and produces one :class:`CorpusDiff`: every default
metric as a ranked delta, per-SPE stall-breakdown and DMA-profile
deltas, and the two runs' activity timelines aligned on a shared
relative bucket axis.  Every number flows through frozen
:class:`~repro.tq.pipeline.QueryPlan` objects
(:mod:`repro.corpus.metrics`), so a diff computed with ``jobs=4`` is
byte-identical to the serial one.

Alignment: bucket series group *absolute* corrected time (each run's
own shared clock fit), so the two runs are rebased to their first
occupied bucket before joining
(:func:`repro.ta.diff.align_bucket_series`).  The residual skew is at
most one bucket of quantization — deterministic, and irrelevant at the
default resolution (span/64 per bucket).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ta.diff import align_bucket_series, diff_rows
from repro.ta.report import format_table
from repro.corpus.manifest import CorpusError
from repro.corpus.metrics import (
    WORSE_IF_UP,
    bucket_series_plan,
    dma_profile_plan,
    evaluate_metrics,
    run_plan,
    stall_breakdown_rows,
)

#: Buckets the aligned timeline aims for (width = span/this, min 1).
DEFAULT_BUCKETS = 64


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline→candidate movement."""

    name: str
    baseline: typing.Union[int, float]
    candidate: typing.Union[int, float]

    @property
    def delta(self) -> typing.Union[int, float]:
        return self.candidate - self.baseline

    @property
    def rel(self) -> float:
        """Relative change; ±inf when appearing from / against zero."""
        if self.baseline == 0:
            if self.delta == 0:
                return 0.0
            return float("inf") if self.delta > 0 else float("-inf")
        return self.delta / abs(self.baseline)

    @property
    def direction(self) -> str:
        """``worse``/``better``/``same`` for directional metrics,
        ``changed``/``same`` for neutral ones."""
        if self.delta == 0:
            return "same"
        if self.name in WORSE_IF_UP:
            return "worse" if self.delta > 0 else "better"
        return "changed"

    def row(self) -> typing.Dict[str, typing.Any]:
        rel = self.rel
        return {
            "metric": self.name,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "rel": "inf" if rel in (float("inf"), float("-inf"))
                   else f"{rel:+.1%}",
            "direction": self.direction,
        }

    def to_json(self) -> typing.Dict[str, typing.Any]:
        rel = self.rel
        return {
            "metric": self.name,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "rel": None if rel in (float("inf"), float("-inf")) else rel,
            "direction": self.direction,
        }


@dataclasses.dataclass
class CorpusDiff:
    """Everything :func:`diff_runs` measured, ranked."""

    baseline: str
    candidate: str
    metrics: typing.List[MetricDelta]  # ranked, largest |rel| first
    stall_rows: typing.List[typing.Dict[str, typing.Any]]
    dma_rows: typing.List[typing.Dict[str, typing.Any]]
    series: typing.List[typing.Dict[str, typing.Any]]
    bucket_width: int

    @property
    def changed(self) -> typing.List[MetricDelta]:
        return [delta for delta in self.metrics if delta.delta != 0]

    def to_json(self) -> typing.Dict[str, typing.Any]:
        return {
            "baseline": self.baseline,
            "candidate": self.candidate,
            "metrics": [delta.to_json() for delta in self.metrics],
            "stalls": self.stall_rows,
            "dma": self.dma_rows,
            "series": {"bucket_width": self.bucket_width, "rows": self.series},
        }

    def format_report(self) -> str:
        """The ranked what-changed report as text tables."""
        sections = [
            f"=== corpus diff: {self.baseline} -> {self.candidate} ===",
            "",
            "--- metrics, ranked by |relative change| ---",
            format_table([delta.row() for delta in self.metrics]),
            "--- per-SPE stall breakdown deltas (cycles) ---",
            format_table(self.stall_rows),
            "--- per-SPE DMA profile deltas ---",
            format_table(self.dma_rows),
        ]
        occupied = sum(
            1 for row in self.series if row["base_n"] or row["cand_n"]
        )
        sections.append(
            f"timeline: {len(self.series)} aligned buckets of "
            f"{self.bucket_width} cycles ({occupied} occupied; full "
            f"series in the JSON report)"
        )
        return "\n".join(sections) + "\n"


def _rank_key(delta: MetricDelta) -> typing.Tuple[float, str]:
    rel = abs(delta.rel)
    if rel == float("inf"):
        rel = float(10**9)
    return (-rel, delta.name)


def diff_handles(
    base_handle,
    cand_handle,
    baseline: str = "baseline",
    candidate: str = "candidate",
    jobs: int = 1,
    buckets: int = DEFAULT_BUCKETS,
) -> CorpusDiff:
    """Diff two open trace handles (catalog-free core of
    :func:`diff_runs`)."""
    if buckets < 1:
        raise CorpusError(f"buckets must be >= 1, got {buckets}")
    base_metrics = evaluate_metrics(base_handle, jobs=jobs)
    cand_metrics = evaluate_metrics(cand_handle, jobs=jobs)
    deltas = sorted(
        (
            MetricDelta(name, base_metrics[name], cand_metrics[name])
            for name in base_metrics
        ),
        key=_rank_key,
    )
    stall_rows = diff_rows(
        stall_breakdown_rows(base_handle, jobs),
        stall_breakdown_rows(cand_handle, jobs),
        keys=("spe", "family"),
        fields=("cycles", "waits"),
    )
    dma_rows = diff_rows(
        run_plan(base_handle, dma_profile_plan(), jobs),
        run_plan(cand_handle, dma_profile_plan(), jobs),
        keys=("spe",),
        fields=("n", "bytes"),
    )
    span = max(base_metrics["span_cycles"], cand_metrics["span_cycles"])
    width = max(int(span) // buckets, 1)
    plan = bucket_series_plan(width)
    series = align_bucket_series(
        run_plan(base_handle, plan, jobs),
        run_plan(cand_handle, plan, jobs),
        fields=("n", "bytes"),
    )
    return CorpusDiff(
        baseline=baseline,
        candidate=candidate,
        metrics=deltas,
        stall_rows=stall_rows,
        dma_rows=dma_rows,
        series=series,
        bucket_width=width,
    )


def diff_runs(
    catalog,
    baseline: str,
    candidate: str,
    jobs: int = 1,
    buckets: int = DEFAULT_BUCKETS,
) -> CorpusDiff:
    """Diff two runs registered in a
    :class:`~repro.serve.catalog.TraceCatalog` (e.g. from
    :func:`repro.corpus.runner.open_corpus`) by name."""
    with catalog.acquire(baseline) as (base_handle, __, __unused):
        with catalog.acquire(candidate) as (cand_handle, __, __unused2):
            return diff_handles(
                base_handle,
                cand_handle,
                baseline=baseline,
                candidate=candidate,
                jobs=jobs,
                buckets=buckets,
            )
