"""``pdt-corpus``: run, inspect, diff, and gate trace corpora.

Four subcommands over one corpus directory::

    pdt-corpus run   out/ --workload matmul --workload spmv --repeats 3
    pdt-corpus list  out/
    pdt-corpus diff  out/ BASE_RUN_ID CAND_RUN_ID --jobs 4 --json diff.json
    pdt-corpus check out/ --repeats 3 --json BENCH_corpus.json

``check`` is the CI regression gate: it runs a seeded two-label matrix
(identical configuration under the labels ``base`` and ``cand``),
verifies the noise-aware detector reports **zero** flags on that
clean pair, then injects a synthetic stall-time regression into the
candidate's measured populations and verifies the detector catches
it.  Exit status 0 only when both halves hold.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import typing

from repro.pdt.format import TraceFormatError
from repro.serve.catalog import CatalogError
from repro.ta.report import format_table
from repro.corpus.differ import DEFAULT_BUCKETS, diff_runs
from repro.corpus.manifest import CorpusError, CorpusManifest
from repro.corpus.regress import (
    DEFAULT_K,
    collect_cell_metrics,
    compare_cells,
    inject_regression,
)
from repro.corpus.runner import (
    WORKLOAD_FACTORIES,
    open_corpus,
    run_matrix,
    sweep_cells,
)

#: The check gate's synthetic stall regression factor (+25 %).
DEFAULT_INJECT = 1.25


def _csv_ints(text: str) -> typing.List[int]:
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdt-corpus",
        description="Corpus-scale differential trace analytics: run "
        "workload/configuration matrices, diff runs, and gate on "
        "noise-aware regression detection.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute a workload x configuration matrix"
    )
    run.add_argument("out_dir", help="corpus directory to create")
    run.add_argument("--workload", action="append", default=[],
                     metavar="NAME", choices=sorted(WORKLOAD_FACTORIES),
                     help="workload family (repeatable; default: matmul)")
    run.add_argument("--spes", type=_csv_ints, default=[2], metavar="N,..",
                     help="SPE counts to sweep (default: 2)")
    run.add_argument("--buffer-bytes", type=_csv_ints, default=[16 * 1024],
                     metavar="B,..",
                     help="trace buffer sizes to sweep (default: 16384)")
    run.add_argument("--buffering", choices=("db", "sb", "both"),
                     default="db",
                     help="double/single buffered trace writer, or both "
                     "(default: db)")
    run.add_argument("--groups", default=None, metavar="G1,G2",
                     help="trace-group mask, e.g. lifecycle,dma "
                     "(default: all groups)")
    run.add_argument("--label", default="cell",
                     help="cell label recorded in run ids (default: cell)")
    run.add_argument("--repeats", type=int, default=1, metavar="N",
                     help="seeded repeats per cell (default: 1)")
    run.add_argument("--seed", type=int, default=0, metavar="S",
                     help="base seed every cell seed derives from "
                     "(default: 0)")

    lst = sub.add_parser("list", help="list a corpus's runs")
    lst.add_argument("corpus", help="corpus directory (or manifest path)")
    lst.add_argument("--json", action="store_true",
                     help="print the manifest JSON instead of a table")

    diff = sub.add_parser(
        "diff", help="aligned differential report between two runs"
    )
    diff.add_argument("corpus", help="corpus directory")
    diff.add_argument("baseline", help="baseline run id")
    diff.add_argument("candidate", help="candidate run id")
    diff.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="shard every metric query over N workers "
                      "(default: 1; results are identical)")
    diff.add_argument("--buckets", type=int, default=DEFAULT_BUCKETS,
                      metavar="N",
                      help="aligned timeline resolution "
                      f"(default: {DEFAULT_BUCKETS})")
    diff.add_argument("--json", metavar="FILE",
                      help="also write the full diff as JSON")

    check = sub.add_parser(
        "check", help="seeded self-gating regression check (CI gate)"
    )
    check.add_argument("out_dir", help="directory for the gate's corpus")
    check.add_argument("--workload", action="append", default=[],
                       metavar="NAME", choices=sorted(WORKLOAD_FACTORIES),
                       help="workload family (repeatable; default: spmv — "
                       "its per-seed sparsity makes real noise)")
    check.add_argument("--spes", type=int, default=2, metavar="N",
                       help="SPE count (default: 2)")
    check.add_argument("--repeats", type=int, default=3, metavar="N",
                       help="repeats per cell (default: 3)")
    check.add_argument("--seed", type=int, default=0, metavar="S",
                       help="base seed (default: 0)")
    check.add_argument("--k", type=float, default=DEFAULT_K, metavar="K",
                       help="flag threshold in robust sigmas "
                       f"(default: {DEFAULT_K:g})")
    check.add_argument("--inject", type=float, default=DEFAULT_INJECT,
                       metavar="F",
                       help="synthetic stall regression factor "
                       f"(default: {DEFAULT_INJECT:g} = "
                       f"+{(DEFAULT_INJECT - 1):.0%})")
    check.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="shard metric queries over N workers "
                       "(default: 1)")
    check.add_argument("--json", metavar="FILE",
                       help="write the gate result JSON (BENCH format)")
    return parser


def _fail(message: str) -> int:
    print(f"pdt-corpus: {message}", file=sys.stderr)
    return 2


def _check_jobs(args: argparse.Namespace) -> typing.Optional[int]:
    """Shared --jobs validation: non-positive is an error (exit 2),
    beyond the CPU count clamps with a note, like pdt-analyze."""
    if args.jobs < 1:
        return _fail(f"--jobs must be >= 1, got {args.jobs}")
    cpus = os.cpu_count() or 1
    if args.jobs > cpus:
        print(
            f"pdt-corpus: --jobs {args.jobs} exceeds the {cpus} available "
            f"CPU(s); using {cpus}",
            file=sys.stderr,
        )
        args.jobs = cpus
    return None


def main(argv: typing.Optional[typing.List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "list": _cmd_list,
        "diff": _cmd_diff,
        "check": _cmd_check,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `pdt-corpus diff | head`):
        # not an error.  Point stdout at devnull so the interpreter's
        # exit flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (CorpusError, CatalogError, TraceFormatError, OSError) as exc:
        return _fail(str(exc))


def _cmd_run(args: argparse.Namespace) -> int:
    if args.repeats < 1:
        return _fail(f"--repeats must be >= 1, got {args.repeats}")
    buffering = {"db": (True,), "sb": (False,), "both": (True, False)}[
        args.buffering
    ]
    groups = (
        None if args.groups is None
        else tuple(part for part in args.groups.split(",") if part)
    )
    cells = sweep_cells(
        workloads=args.workload or ["matmul"],
        n_spes=args.spes,
        buffer_bytes=args.buffer_bytes,
        double_buffered=buffering,
        groups=(groups,),
        label=args.label,
    )
    manifest = run_matrix(
        cells,
        args.out_dir,
        repeats=args.repeats,
        base_seed=args.seed,
        progress=lambda line: print(f"  {line}"),
    )
    print(f"{len(manifest.runs)} runs -> {args.out_dir}/")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    manifest = CorpusManifest.load(args.corpus)
    if args.json:
        json.dump(manifest.to_json(), sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print(format_table([record.row() for record in manifest.runs]), end="")
    print(
        f"{len(manifest.runs)} runs, {manifest.repeats} repeat(s)/cell, "
        f"base seed {manifest.base_seed}"
    )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    failed = _check_jobs(args)
    if failed is not None:
        return failed
    if args.buckets < 1:
        return _fail(f"--buckets must be >= 1, got {args.buckets}")
    manifest = CorpusManifest.load(args.corpus)
    # Fail on unknown run ids before opening the whole corpus — the
    # manifest error names the runs that do exist.
    manifest.run(args.baseline)
    manifest.run(args.candidate)
    with open_corpus(manifest) as catalog:
        diff = diff_runs(
            catalog,
            args.baseline,
            args.candidate,
            jobs=args.jobs,
            buckets=args.buckets,
        )
    print(diff.format_report(), end="")
    if args.json:
        with open(args.json, "w") as out:
            json.dump(diff.to_json(), out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    failed = _check_jobs(args)
    if failed is not None:
        return failed
    if args.repeats < 1:
        return _fail(f"--repeats must be >= 1, got {args.repeats}")
    if args.k <= 0:
        return _fail(f"--k must be > 0, got {args.k:g}")
    if args.inject <= 1.0:
        return _fail(
            f"--inject must be > 1.0 (a regression), got {args.inject:g}"
        )
    workloads = args.workload or ["spmv"]
    cells = [
        *sweep_cells(workloads, n_spes=(args.spes,), label="base"),
        *sweep_cells(workloads, n_spes=(args.spes,), label="cand"),
    ]
    print(
        f"gate: {len(cells)} cells x {args.repeats} repeats "
        f"(seed {args.seed}, k={args.k:g}, inject x{args.inject:g})"
    )
    manifest = run_matrix(
        cells, args.out_dir, repeats=args.repeats, base_seed=args.seed
    )
    with open_corpus(manifest) as catalog:
        cell_metrics = collect_cell_metrics(
            manifest, catalog, jobs=args.jobs
        )

    clean = compare_cells(
        cell_metrics, "base", "cand", k=args.k, repeats=args.repeats
    )
    injected = compare_cells(
        inject_regression(cell_metrics, "cand", "stall_", args.inject),
        "base",
        "cand",
        k=args.k,
        repeats=args.repeats,
    )
    print(clean.format_report())
    clean_ok = not clean.flagged
    injected_ok = any(
        c.direction == "regression" and c.metric.startswith("stall_")
        for c in injected.comparisons
    )
    print(
        f"clean pair: {len(clean.flagged)} flagged "
        f"({'ok' if clean_ok else 'FALSE POSITIVES'})"
    )
    print(
        f"injected x{args.inject:g} stall regression: "
        f"{'caught' if injected_ok else 'MISSED'}"
    )
    ok = clean_ok and injected_ok
    if args.json:
        payload = {
            "bench": "corpus_gate",
            "ok": ok,
            "workloads": workloads,
            "repeats": args.repeats,
            "base_seed": args.seed,
            "k": args.k,
            "inject_factor": args.inject,
            "jobs": args.jobs,
            "runs": len(manifest.runs),
            "clean": clean.to_json(),
            "injected": injected.to_json(),
        }
        with open(args.json, "w") as out:
            json.dump(payload, out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"wrote {args.json}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
