"""Corpus metrics: every number the differ compares is a frozen
:class:`~repro.tq.pipeline.QueryPlan`.

A metric is *not* a function over decoded records — it is one or more
frozen query plans plus a pure combiner over their result rows.  That
shape is what the corpus layer's guarantees hang on:

* the plan executes through the ordinary :class:`repro.tq.Query`
  pipeline over a shared :class:`~repro.pdt.handle.TraceHandle`, so
  zone-map pruning, the batch kernels, and the handle's one-time
  clock fit all apply;
* with ``jobs > 1`` the same plan fans out through
  :func:`repro.par.parallel_rows` — and because sharded aggregation
  is byte-identical to serial, every corpus metric is too;
* a plan is hashable/picklable, so results can be cached per
  (trace identity, plan) like any served query.

**Stall times without interval pairing.**  The timeline model pairs
``*_begin``/``*_end`` records by scanning; a groupby can't.  But
begins and ends pair 1:1 in a complete trace, so the total stall time
of a wait family is ``sum(time of ends) − sum(time of begins)`` —
two reductions of one grouped plan.  Times are corrected placements
(each handle's shared clock fit), so the subtraction is exact even
though each sum is in absolute corrected cycles.  Traces with recorded
loss can split pairs; :func:`evaluate_metrics` reports what the trace
shows, and the differ surfaces loss counters separately.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.pdt.events import SIDE_SPE
from repro.tq.pipeline import Query, QueryPlan
from repro.tq.predicate import Predicate

#: (begin kind, end kind) pairs per stall family.
STALL_FAMILIES: typing.Dict[str, typing.Tuple[typing.Tuple[str, str], ...]] = {
    "dma": (("wait_tag_begin", "wait_tag_end"),),
    "mbox": (
        ("read_mbox_begin", "read_mbox_end"),
        ("write_mbox_begin", "write_mbox_end"),
    ),
    "signal": (("read_signal_begin", "read_signal_end"),),
}

#: DMA issue kinds (the commands that move bytes).
DMA_ISSUE_KINDS = ("mfc_get", "mfc_put", "mfc_getl", "mfc_putl")

#: Metrics where an increase is a regression (the detector's
#: direction model; the rest are reported but direction-neutral).
WORSE_IF_UP = frozenset(
    {"span_cycles", "stall_dma_cycles", "stall_mbox_cycles",
     "stall_signal_cycles", "stall_total_cycles"}
)


def _plan(
    aggs: typing.Tuple[typing.Tuple[str, str, typing.Optional[str]], ...],
    t0: typing.Optional[int] = None,
    t1: typing.Optional[int] = None,
    spe: typing.Union[int, typing.Iterable[int], None] = None,
    side: typing.Optional[int] = None,
    event: typing.Union[int, str, typing.Iterable, None] = None,
    group_keys: typing.Tuple[str, ...] = (),
    time_bucket: typing.Optional[int] = None,
) -> QueryPlan:
    """A frozen plan from clause kwargs (the builder :class:`Query`
    would have produced for the same calls)."""
    predicate = Predicate().refine(t0=t0, t1=t1, spe=spe, side=side, event=event)
    return QueryPlan(
        predicate=predicate,
        projection=None,
        group_keys=group_keys,
        time_bucket=time_bucket,
        aggs=aggs,
    )


def run_plan(
    handle, plan: QueryPlan, jobs: int = 1
) -> typing.List[typing.Dict[str, typing.Any]]:
    """Execute one frozen plan over a shared handle, sharded over
    ``jobs`` worker processes when more than one; rows are
    byte-identical either way."""
    query = Query.from_plan(handle.source(), plan)
    if jobs > 1:
        from repro.par import parallel_rows

        return parallel_rows(query, jobs)
    return query.run()


def _stall_kinds(family: str) -> typing.List[str]:
    return [kind for pair in STALL_FAMILIES[family] for kind in pair]


def _stall_value(
    rows: typing.List[typing.Dict[str, typing.Any]], family: str
) -> int:
    """end-sum minus begin-sum over one family's per-kind rows."""
    ends = {end for __, end in STALL_FAMILIES[family]}
    begins = {begin for begin, __ in STALL_FAMILIES[family]}
    total = 0
    for row in rows:
        if row["kind"] in ends:
            total += row["t_sum"] or 0
        elif row["kind"] in begins:
            total -= row["t_sum"] or 0
    return total


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """One corpus metric: frozen plans plus a pure combiner."""

    name: str
    plans: typing.Tuple[QueryPlan, ...]
    #: rows-per-plan -> scalar (int/float; JSON-safe).
    combine: typing.Callable[
        [typing.List[typing.List[typing.Dict[str, typing.Any]]]],
        typing.Union[int, float],
    ]
    description: str = ""

    def evaluate(self, handle, jobs: int = 1) -> typing.Union[int, float]:
        return self.combine([run_plan(handle, plan, jobs) for plan in self.plans])


def _count_agg() -> typing.Tuple[typing.Tuple[str, str, typing.Optional[str]], ...]:
    return (("n", "count", None),)


def _first(rows_list, key, default=0):
    rows = rows_list[0]
    if not rows or rows[0][key] is None:
        return default
    return rows[0][key]


def _stall_metric(family: str) -> MetricSpec:
    plan = _plan(
        aggs=(("t_sum", "sum", "time"), ("n", "count", None)),
        side=SIDE_SPE,
        event=_stall_kinds(family),
        group_keys=("kind",),
    )
    return MetricSpec(
        name=f"stall_{family}_cycles",
        plans=(plan,),
        combine=lambda rows_list, family=family: _stall_value(
            rows_list[0], family
        ),
        description=f"total SPE cycles inside {family} wait pairs",
    )


def default_metrics() -> typing.Tuple[MetricSpec, ...]:
    """The corpus metric set, order fixed (report order)."""
    span_plan = _plan(
        aggs=(("t_min", "min", "time"), ("t_max", "max", "time")),
    )
    dma_plan = _plan(
        aggs=(
            ("n", "count", None),
            ("bytes", "sum", "size"),
            ("p99", "p99", "size"),
        ),
        side=SIDE_SPE,
        event=list(DMA_ISSUE_KINDS),
    )
    stall_metrics = tuple(_stall_metric(family) for family in STALL_FAMILIES)
    return (
        MetricSpec(
            name="events_total",
            plans=(_plan(aggs=_count_agg()),),
            combine=lambda rows_list: _first(rows_list, "n"),
            description="records in the trace",
        ),
        MetricSpec(
            name="span_cycles",
            plans=(span_plan,),
            combine=lambda rows_list: (
                _first(rows_list, "t_max") - _first(rows_list, "t_min")
            ),
            description="first-to-last corrected-time extent",
        ),
        *stall_metrics,
        MetricSpec(
            name="stall_total_cycles",
            plans=tuple(
                _stall_metric(family).plans[0] for family in STALL_FAMILIES
            ),
            combine=lambda rows_list: sum(
                _stall_value(rows, family)
                for rows, family in zip(rows_list, STALL_FAMILIES)
            ),
            description="all wait families combined",
        ),
        MetricSpec(
            name="dma_count",
            plans=(dma_plan,),
            combine=lambda rows_list: _first(rows_list, "n"),
            description="DMA commands issued",
        ),
        MetricSpec(
            name="dma_bytes",
            plans=(dma_plan,),
            combine=lambda rows_list: _first(rows_list, "bytes"),
            description="bytes entering flight",
        ),
        MetricSpec(
            name="dma_p99_bytes",
            plans=(dma_plan,),
            combine=lambda rows_list: _first(rows_list, "p99"),
            description="99th-percentile DMA command size",
        ),
    )


#: name -> spec for the default set.
METRICS: typing.Dict[str, MetricSpec] = {
    spec.name: spec for spec in default_metrics()
}


def evaluate_metrics(
    handle,
    jobs: int = 1,
    metrics: typing.Optional[typing.Sequence[MetricSpec]] = None,
) -> typing.Dict[str, typing.Union[int, float]]:
    """Every metric of one run, name → value, via frozen plans only.

    Identical plans are executed once per call (the dma/stall metrics
    share plans), so a full evaluation costs four scans of the trace,
    pruned per plan by the handle's zone maps.
    """
    chosen = tuple(metrics) if metrics is not None else default_metrics()
    cache: typing.Dict[QueryPlan, typing.List] = {}
    values: typing.Dict[str, typing.Union[int, float]] = {}
    for spec in chosen:
        rows_list = []
        for plan in spec.plans:
            if plan not in cache:
                cache[plan] = run_plan(handle, plan, jobs)
            rows_list.append(cache[plan])
        values[spec.name] = spec.combine(rows_list)
    return values


# ----------------------------------------------------------------------
# per-SPE breakdown plans (the differ's report sections)
# ----------------------------------------------------------------------
def stall_breakdown_plan() -> QueryPlan:
    """(spe, kind) → summed corrected time + count over every wait
    begin/end kind; the differ folds it into per-SPE stall deltas."""
    kinds = [k for family in STALL_FAMILIES for k in _stall_kinds(family)]
    return _plan(
        aggs=(("t_sum", "sum", "time"), ("n", "count", None)),
        side=SIDE_SPE,
        event=kinds,
        group_keys=("spe", "kind"),
    )


def dma_profile_plan() -> QueryPlan:
    """Per-SPE DMA issue profile: count, bytes, mean size."""
    return _plan(
        aggs=(
            ("n", "count", None),
            ("bytes", "sum", "size"),
            ("mean_bytes", "mean", "size"),
        ),
        side=SIDE_SPE,
        event=list(DMA_ISSUE_KINDS),
        group_keys=("spe",),
    )


def bucket_series_plan(
    width: int,
    event: typing.Union[int, str, typing.Iterable, None] = None,
) -> QueryPlan:
    """Event counts (and DMA bytes when sized events are selected) per
    corrected-time bucket of ``width`` cycles."""
    if width < 1:
        raise ValueError(f"bucket width must be >= 1, got {width}")
    return _plan(
        aggs=(("n", "count", None), ("bytes", "sum", "size")),
        event=event,
        group_keys=("bucket",),
        time_bucket=width,
    )


def stall_breakdown_rows(
    handle, jobs: int = 1
) -> typing.List[typing.Dict[str, typing.Any]]:
    """Per-(spe, family) stall cycles from :func:`stall_breakdown_plan`,
    sorted by (spe, family)."""
    raw = run_plan(handle, stall_breakdown_plan(), jobs)
    per: typing.Dict[typing.Tuple[int, str], typing.Dict[str, int]] = {}
    for family, pairs in STALL_FAMILIES.items():
        ends = {end for __, end in pairs}
        begins = {begin for begin, __ in pairs}
        for row in raw:
            if row["kind"] in ends:
                sign, waits = 1, row["n"]
            elif row["kind"] in begins:
                sign, waits = -1, 0
            else:
                continue
            cell = per.setdefault(
                (row["spe"], family), {"cycles": 0, "waits": 0}
            )
            cell["cycles"] += sign * (row["t_sum"] or 0)
            cell["waits"] += waits
    return [
        {"spe": spe, "family": family,
         "cycles": cell["cycles"], "waits": cell["waits"]}
        for (spe, family), cell in sorted(per.items())
    ]
