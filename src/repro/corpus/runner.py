"""The matrix runner: workloads × configurations → a trace corpus.

The paper's real workflow is comparative — tune the trace buffer size,
the SPE count, single vs double buffering, the recorded event groups,
and ask what changed.  :func:`run_matrix` executes that sweep: every
:class:`CellSpec` crossed with ``repeats`` seeded repeat runs, each
streamed to its own trace file through
:func:`repro.workloads.harness.run_and_write_trace`, and the whole
sweep described by one :class:`~repro.corpus.manifest.CorpusManifest`.

Determinism: a cell's seed is a CRC32 hash of
``(base_seed, workload, label, config_id, repeat)``, so re-running the
same matrix in a fresh interpreter reproduces every trace
byte-for-byte (within one long-lived process, PPE thread ids continue
a process-wide sequence; the seeded workload content is identical
either way), repeats within a cell sample distinct seeds (the
regression detector's noise population), and two cells that differ
only by *label* — the gate's baseline/candidate pair — run the same
configuration under different seeds.
"""

from __future__ import annotations

import dataclasses
import os
import typing
import zlib

from repro.pdt.config import TraceConfig
from repro.serve.catalog import TraceCatalog
from repro.workloads import (
    FftWorkload,
    HistogramWorkload,
    MatmulWorkload,
    MonteCarloWorkload,
    SpmvWorkload,
    StreamingPipelineWorkload,
    Workload,
    run_and_write_trace,
    run_stats_row,
)
from repro.corpus.manifest import (
    CorpusError,
    CorpusManifest,
    RunRecord,
    config_id,
)

#: Workload families the matrix can enumerate, each a factory taking
#: ``n_spes``.  Sized for corpus duty: many cells per sweep, so one
#: cell must run in seconds, not minutes.
WORKLOAD_FACTORIES: typing.Dict[str, typing.Callable[[int], Workload]] = {
    "matmul": lambda n_spes: MatmulWorkload(
        n=128, tile=32, n_spes=n_spes, double_buffered=False
    ),
    "matmul-db": lambda n_spes: MatmulWorkload(
        n=128, tile=32, n_spes=n_spes, double_buffered=True
    ),
    "streaming": lambda n_spes: StreamingPipelineWorkload(
        stages=n_spes, blocks=24
    ),
    "fft": lambda n_spes: FftWorkload(points=256, batch=16, n_spes=n_spes),
    "montecarlo": lambda n_spes: MonteCarloWorkload(
        samples_per_spe=4000, n_spes=n_spes
    ),
    "histogram": lambda n_spes: HistogramWorkload(
        samples=32 * 1024, n_spes=n_spes
    ),
    "spmv": lambda n_spes: SpmvWorkload(
        n=1024, density=0.03, rows_per_block=128, n_spes=n_spes
    ),
}


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One cell of the matrix: a workload under one configuration."""

    workload: str
    n_spes: int = 2
    buffer_bytes: int = 16 * 1024
    double_buffered: bool = True
    groups: typing.Optional[typing.Tuple[str, ...]] = None
    label: str = "cell"

    def __post_init__(self) -> None:
        if self.workload not in WORKLOAD_FACTORIES:
            raise CorpusError(
                f"unknown workload {self.workload!r} (choose from "
                f"{', '.join(sorted(WORKLOAD_FACTORIES))})"
            )
        if self.n_spes < 1:
            raise CorpusError(f"n_spes must be >= 1, got {self.n_spes}")

    def config(self) -> typing.Dict[str, typing.Any]:
        """The cell's configuration as the manifest records it."""
        return {
            "n_spes": self.n_spes,
            "buffer_bytes": self.buffer_bytes,
            "double_buffered": self.double_buffered,
            "groups": list(self.groups) if self.groups is not None else None,
        }

    @property
    def config_id(self) -> str:
        return config_id(self.config())

    def trace_config(self) -> TraceConfig:
        overrides: typing.Dict[str, typing.Any] = {
            "buffer_bytes": self.buffer_bytes,
            "double_buffered": self.double_buffered,
        }
        if self.groups is not None:
            overrides["groups"] = frozenset(self.groups)
        return TraceConfig(**overrides)

    def make_workload(self) -> Workload:
        return WORKLOAD_FACTORIES[self.workload](self.n_spes)

    def run_id(self, repeat: int) -> str:
        return f"{self.workload}.{self.label}.{self.config_id}.r{repeat}"


def cell_seed(
    base_seed: int, cell: CellSpec, repeat: int
) -> int:
    """The deterministic seed of one repeat of one cell."""
    key = f"{base_seed}|{cell.workload}|{cell.label}|{cell.config_id}|{repeat}"
    return zlib.crc32(key.encode("ascii")) & 0x7FFFFFFF


def sweep_cells(
    workloads: typing.Sequence[str],
    n_spes: typing.Sequence[int] = (2,),
    buffer_bytes: typing.Sequence[int] = (16 * 1024,),
    double_buffered: typing.Sequence[bool] = (True,),
    groups: typing.Sequence[typing.Optional[typing.Tuple[str, ...]]] = (None,),
    label: str = "cell",
) -> typing.List[CellSpec]:
    """The full cross product of the given axes, enumeration order
    fixed (workload-major, then spes, buffer, buffering, mask)."""
    cells = []
    for workload in workloads:
        for spes in n_spes:
            for buf in buffer_bytes:
                for buffered in double_buffered:
                    for mask in groups:
                        cells.append(
                            CellSpec(
                                workload=workload,
                                n_spes=spes,
                                buffer_bytes=buf,
                                double_buffered=buffered,
                                groups=mask,
                                label=label,
                            )
                        )
    return cells


def run_matrix(
    cells: typing.Sequence[CellSpec],
    out_dir: str,
    repeats: int = 1,
    base_seed: int = 0,
    progress: typing.Optional[typing.Callable[[str], None]] = None,
) -> CorpusManifest:
    """Execute every cell × repeat into ``out_dir`` and write the
    manifest.  Traces land as ``{run_id}.pdt``; a run that fails
    verification raises (a corpus must not silently contain wrong
    results)."""
    if repeats < 1:
        raise CorpusError(f"repeats must be >= 1, got {repeats}")
    if not cells:
        raise CorpusError("matrix has no cells")
    seen: typing.Set[str] = set()
    for cell in cells:
        key = cell.run_id(0)
        if key in seen:
            raise CorpusError(
                f"matrix enumerates {key} twice; give duplicate "
                f"configurations distinct labels"
            )
        seen.add(key)
    os.makedirs(out_dir, exist_ok=True)
    runs: typing.List[RunRecord] = []
    for cell in cells:
        for repeat in range(repeats):
            run_id = cell.run_id(repeat)
            seed = cell_seed(base_seed, cell, repeat)
            filename = f"{run_id}.pdt"
            result, n_bytes = run_and_write_trace(
                cell.make_workload(),
                os.path.join(out_dir, filename),
                cell.trace_config(),
                seed=seed,
            )
            if not result.verified:
                raise CorpusError(
                    f"{run_id}: workload failed verification (seed {seed})"
                )
            runs.append(
                RunRecord(
                    run_id=run_id,
                    workload=cell.workload,
                    label=cell.label,
                    config=cell.config(),
                    seed=seed,
                    repeat=repeat,
                    path=filename,
                    stats=run_stats_row(result, n_bytes),
                )
            )
            if progress is not None:
                progress(f"{run_id}: {result.elapsed_cycles} cycles, "
                         f"{n_bytes} trace bytes (seed {seed})")
    manifest = CorpusManifest(base_seed=base_seed, repeats=repeats, runs=runs)
    manifest.save(out_dir)
    return manifest


def open_corpus(
    manifest: CorpusManifest,
    memory_budget: typing.Optional[int] = None,
) -> TraceCatalog:
    """A :class:`~repro.serve.catalog.TraceCatalog` with every corpus
    run registered under its run id — the corpus analytics' shared
    open-trace pool.  Registration is all-or-nothing
    (:meth:`~repro.serve.catalog.TraceCatalog.register_many`)."""
    catalog = (
        TraceCatalog()
        if memory_budget is None
        else TraceCatalog(memory_budget=memory_budget)
    )
    try:
        catalog.register_many(
            (record.run_id, manifest.trace_path(record.run_id))
            for record in manifest.runs
        )
    except Exception:
        catalog.close()
        raise
    return catalog
