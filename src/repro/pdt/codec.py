"""Binary record encoding shared by the LS buffer and the trace file.

Layout of one record (little endian)::

    offset  size  field
    0       1     side (0 = PPE, 1 = SPE)
    1       1     record code
    2       2     core id
    4       4     per-core sequence number
    8       8     raw timestamp (timebase ticks or decrementer value)
    16      8*n   field values, signed 64-bit, in EventSpec order
    ...           zero padding to a 16-byte boundary

The 16-byte padding is not cosmetic: SPE trace buffers are flushed by
DMA, and the MFC requires 16-byte-aligned multiples of 16, so the real
PDT also sizes its records accordingly.
"""

from __future__ import annotations

import struct
import typing

from repro.pdt.events import TraceRecord, spec_for_code

_PREFIX = struct.Struct("<BBHIQ")
assert _PREFIX.size == 16


def record_size(n_fields: int) -> int:
    """Encoded size of a record with ``n_fields`` fields."""
    raw = _PREFIX.size + 8 * n_fields
    return (raw + 15) & ~15


def encode_fields(
    side: int, code: int, core: int, seq: int, raw_ts: int,
    values: typing.Sequence[int],
) -> bytes:
    """Encode one record from its raw components (allocation-light hot
    path: no :class:`TraceRecord` needs to exist)."""
    body = _PREFIX.pack(side, code, core, seq, raw_ts) + struct.pack(
        f"<{len(values)}q", *values
    )
    pad = record_size(len(values)) - len(body)
    return body + b"\x00" * pad


def encode_record(record: TraceRecord) -> bytes:
    """Encode one record, padded to a 16-byte boundary."""
    return encode_fields(
        record.side, record.code, record.core, record.seq, record.raw_ts,
        record.field_values(),
    )


#: (side, code) -> (values Struct, encoded size, kind) — computed once
#: per record type so the per-record decode does no format building.
_DECODE_INFO: typing.Dict[
    typing.Tuple[int, int], typing.Tuple[struct.Struct, int, str]
] = {}


def record_info(side: int, code: int) -> typing.Tuple[struct.Struct, int, str]:
    """(values struct, encoded size, kind) for one record type, cached."""
    info = _DECODE_INFO.get((side, code))
    if info is None:
        spec = spec_for_code(side, code)
        n = len(spec.fields)
        info = (struct.Struct(f"<{n}q"), record_size(n), spec.kind)
        _DECODE_INFO[(side, code)] = info
    return info


def decode_fields(buffer: bytes, offset: int) -> typing.Tuple[
    int, int, int, int, int, typing.Tuple[int, ...], int
]:
    """Decode the record at ``offset`` into raw components.

    Returns ``(side, code, core, seq, raw_ts, values, next_offset)``
    without materializing a :class:`TraceRecord` — the columnar store's
    ingestion path.
    """
    if offset + _PREFIX.size > len(buffer):
        raise ValueError(f"truncated record prefix at offset {offset}")
    side, code, core, seq, raw_ts = _PREFIX.unpack_from(buffer, offset)
    values_struct, total, kind = record_info(side, code)
    if offset + total > len(buffer):
        raise ValueError(f"truncated record body at offset {offset} ({kind})")
    values = values_struct.unpack_from(buffer, offset + _PREFIX.size)
    return side, code, core, seq, raw_ts, values, offset + total


def iter_prefixes(buffer: bytes, offset: int, count: int) -> typing.Iterator[
    typing.Tuple[int, int, int, int, int, int]
]:
    """Walk ``count`` records decoding prefixes only.

    Yields ``(side, code, core, seq, raw_ts, payload_offset)`` per
    record, skipping the payload values — the cheap pass for scans that
    only need record identity (e.g. collecting sync records)."""
    end = len(buffer)
    for __ in range(count):
        if offset + _PREFIX.size > end:
            raise ValueError(f"truncated record prefix at offset {offset}")
        side, code, core, seq, raw_ts = _PREFIX.unpack_from(buffer, offset)
        __struct, total, kind = record_info(side, code)
        if offset + total > end:
            raise ValueError(f"truncated record body at offset {offset} ({kind})")
        yield side, code, core, seq, raw_ts, offset + _PREFIX.size
        offset += total


def decode_record(buffer: bytes, offset: int) -> typing.Tuple[TraceRecord, int]:
    """Decode the record at ``offset``; returns (record, next_offset)."""
    side, code, core, seq, raw_ts, values, offset = decode_fields(buffer, offset)
    record = TraceRecord.from_values(side, code, core, seq, raw_ts, values)
    return record, offset


def decode_stream(buffer: bytes, count: int, offset: int = 0) -> typing.Tuple[
    typing.List[TraceRecord], int
]:
    """Decode ``count`` consecutive records; returns (records, next_offset)."""
    records = []
    for __ in range(count):
        record, offset = decode_record(buffer, offset)
        records.append(record)
    return records, offset
