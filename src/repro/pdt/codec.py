"""Binary record encoding shared by the LS buffer and the trace file.

Layout of one record (little endian)::

    offset  size  field
    0       1     side (0 = PPE, 1 = SPE)
    1       1     record code
    2       2     core id
    4       4     per-core sequence number
    8       8     raw timestamp (timebase ticks or decrementer value)
    16      8*n   field values, signed 64-bit, in EventSpec order
    ...           zero padding to a 16-byte boundary

The 16-byte padding is not cosmetic: SPE trace buffers are flushed by
DMA, and the MFC requires 16-byte-aligned multiples of 16, so the real
PDT also sizes its records accordingly.

Two decode/encode granularities share this layout:

* the scalar path (:func:`decode_fields` / :func:`encode_fields`) —
  one record per call, and the single definition of the format's error
  behavior (truncation ``ValueError``, unknown-type ``KeyError``,
  out-of-range ``struct.error``);
* the batch path (:func:`decode_batch` / :func:`encode_batch`) — a
  whole run of records per call.  Decode walks record boundaries with
  a size lookup table (every size is a multiple of 16, so record
  starts stay 16-aligned within the run) and then splits all prefix
  columns and payload values with vectorized gathers.  The batch path
  *never raises for malformed input*: on any anomaly — truncation,
  unknown record type, out-of-range component — it returns ``None``
  (decode) or falls back internally (encode) and the caller re-runs
  the scalar path, which reproduces today's exact error behavior and
  salvage semantics byte for byte.  Setting ``REPRO_SCALAR_CODEC=1``
  in the environment disables the batch path entirely (the
  differential-testing escape hatch).
"""

from __future__ import annotations

import os
import struct
import typing
from array import array

import numpy as np

from repro.pdt.events import EVENT_SPECS, TraceRecord, spec_for_code

_PREFIX = struct.Struct("<BBHIQ")
assert _PREFIX.size == 16


def record_size(n_fields: int) -> int:
    """Encoded size of a record with ``n_fields`` fields."""
    raw = _PREFIX.size + 8 * n_fields
    return (raw + 15) & ~15


def encode_fields(
    side: int, code: int, core: int, seq: int, raw_ts: int,
    values: typing.Sequence[int],
) -> bytes:
    """Encode one record from its raw components (allocation-light hot
    path: no :class:`TraceRecord` needs to exist)."""
    body = _PREFIX.pack(side, code, core, seq, raw_ts) + struct.pack(
        f"<{len(values)}q", *values
    )
    pad = record_size(len(values)) - len(body)
    return body + b"\x00" * pad


def encode_record(record: TraceRecord) -> bytes:
    """Encode one record, padded to a 16-byte boundary."""
    return encode_fields(
        record.side, record.code, record.core, record.seq, record.raw_ts,
        record.field_values(),
    )


#: (side, code) -> (values Struct, encoded size, kind) — computed once
#: per record type so the per-record decode does no format building.
_DECODE_INFO: typing.Dict[
    typing.Tuple[int, int], typing.Tuple[struct.Struct, int, str]
] = {}


def record_info(side: int, code: int) -> typing.Tuple[struct.Struct, int, str]:
    """(values struct, encoded size, kind) for one record type, cached."""
    info = _DECODE_INFO.get((side, code))
    if info is None:
        spec = spec_for_code(side, code)
        n = len(spec.fields)
        info = (struct.Struct(f"<{n}q"), record_size(n), spec.kind)
        _DECODE_INFO[(side, code)] = info
    return info


def decode_fields(buffer: bytes, offset: int) -> typing.Tuple[
    int, int, int, int, int, typing.Tuple[int, ...], int
]:
    """Decode the record at ``offset`` into raw components.

    Returns ``(side, code, core, seq, raw_ts, values, next_offset)``
    without materializing a :class:`TraceRecord` — the columnar store's
    ingestion path.
    """
    if offset + _PREFIX.size > len(buffer):
        raise ValueError(f"truncated record prefix at offset {offset}")
    side, code, core, seq, raw_ts = _PREFIX.unpack_from(buffer, offset)
    values_struct, total, kind = record_info(side, code)
    if offset + total > len(buffer):
        raise ValueError(f"truncated record body at offset {offset} ({kind})")
    values = values_struct.unpack_from(buffer, offset + _PREFIX.size)
    return side, code, core, seq, raw_ts, values, offset + total


def iter_prefixes(buffer: bytes, offset: int, count: int) -> typing.Iterator[
    typing.Tuple[int, int, int, int, int, int]
]:
    """Walk ``count`` records decoding prefixes only.

    Yields ``(side, code, core, seq, raw_ts, payload_offset)`` per
    record, skipping the payload values — the cheap pass for scans that
    only need record identity (e.g. collecting sync records)."""
    end = len(buffer)
    for __ in range(count):
        if offset + _PREFIX.size > end:
            raise ValueError(f"truncated record prefix at offset {offset}")
        side, code, core, seq, raw_ts = _PREFIX.unpack_from(buffer, offset)
        __struct, total, kind = record_info(side, code)
        if offset + total > end:
            raise ValueError(f"truncated record body at offset {offset} ({kind})")
        yield side, code, core, seq, raw_ts, offset + _PREFIX.size
        offset += total


def decode_record(buffer: bytes, offset: int) -> typing.Tuple[TraceRecord, int]:
    """Decode the record at ``offset``; returns (record, next_offset)."""
    side, code, core, seq, raw_ts, values, offset = decode_fields(buffer, offset)
    record = TraceRecord.from_values(side, code, core, seq, raw_ts, values)
    return record, offset


def decode_stream(buffer: bytes, count: int, offset: int = 0) -> typing.Tuple[
    typing.List[TraceRecord], int
]:
    """Decode ``count`` consecutive records; returns (records, next_offset)."""
    records = []
    for __ in range(count):
        record, offset = decode_record(buffer, offset)
        records.append(record)
    return records, offset


# ---------------------------------------------------------------------------
# Batch codec
# ---------------------------------------------------------------------------

#: Column dtypes matching the platform ``array`` typecodes the store
#: uses ('L' is 4 or 8 bytes depending on the C long).
SEQ_DTYPE = np.dtype(f"<u{array('L').itemsize}")
OFF_DTYPE = SEQ_DTYPE
CORE_DTYPE = np.dtype(f"<u{array('H').itemsize}")

#: The batch codec assumes the wire widths map onto numpy gathers at
#: 1/2/4/8-byte granularity; on an exotic platform it simply stays off
#: and everything runs the scalar path.
_BATCH_CAPABLE = (
    array("B").itemsize == 1
    and array("H").itemsize == 2
    and array("Q").itemsize == 8
    and array("q").itemsize == 8
)

#: (side << 8 | code) -> encoded record size; 0 marks unknown types so
#: the boundary walk fails over to the scalar path (which raises).
_SIZE_LUT: typing.List[int] = [0] * 65536
_NF_LUT = np.zeros(65536, dtype=np.int64)
for (_side, _code), _spec in EVENT_SPECS.items():
    _SIZE_LUT[(_side << 8) | _code] = record_size(len(_spec.fields))
    _NF_LUT[(_side << 8) | _code] = len(_spec.fields)
del _side, _code, _spec


def batch_enabled() -> bool:
    """Whether the vectorized batch paths are in use.  Checked per run,
    so ``REPRO_SCALAR_CODEC=1`` flips every layer — codec, ingest and
    query kernels — from one switch, including in worker processes
    (environment is inherited across ``multiprocessing`` spawns)."""
    return _BATCH_CAPABLE and not os.environ.get("REPRO_SCALAR_CODEC")


class DecodedBatch:
    """A run of decoded records as parallel numpy columns.

    ``val_off`` is a prefix-offset column of length ``count + 1``
    (record ``i``'s payload is ``values[val_off[i]:val_off[i + 1]]``),
    exactly mirroring :class:`~repro.pdt.store.ColumnChunk` so a batch
    can be appended to a chunk with byte copies
    (:meth:`~repro.pdt.store.ColumnChunk.extend_run`).
    """

    __slots__ = ("count", "sides", "codes", "cores", "seqs", "raws",
                 "val_off", "values", "next_offset")

    def __init__(self, count, sides, codes, cores, seqs, raws, val_off,
                 values, next_offset):
        self.count = count
        self.sides = sides
        self.codes = codes
        self.cores = cores
        self.seqs = seqs
        self.raws = raws
        self.val_off = val_off
        self.values = values
        self.next_offset = next_offset


def _walk_records(
    buffer, offset: int, count: typing.Optional[int], bound: int
) -> typing.Optional[typing.List[int]]:
    """Record start offsets for ``count`` records (or until ``bound``
    when ``count`` is None); ``None`` when the run is not cleanly
    decodable (unknown type, truncation)."""
    lut = _SIZE_LUT
    offs: typing.List[int] = []
    append = offs.append
    pos = offset
    try:
        if count is None:
            while pos < bound:
                size = lut[(buffer[pos] << 8) | buffer[pos + 1]]
                if size == 0 or pos + size > bound:
                    return None
                append(pos)
                pos += size
        else:
            for __ in range(count):
                size = lut[(buffer[pos] << 8) | buffer[pos + 1]]
                if size == 0 or pos + size > bound:
                    return None
                append(pos)
                pos += size
    except IndexError:
        return None
    return offs


def decode_batch(
    buffer, offset: int = 0, count: typing.Optional[int] = None
) -> typing.Optional[DecodedBatch]:
    """Batch-decode consecutive records starting at ``offset``.

    ``count`` bounds the walk by record count (record bodies may reach
    anywhere inside ``buffer``, matching :func:`decode_fields` bounds);
    ``count=None`` decodes until the end of ``buffer`` exactly (the
    :meth:`EventSink.append_encoded` contract).  Returns ``None``
    whenever the run cannot be *proven* clean — the caller must then
    take the scalar path, which either succeeds identically or raises
    the exact scalar error.
    """
    if not batch_enabled() or count == 0:
        return None
    bound = len(buffer)
    offs = _walk_records(buffer, offset, count, bound)
    if offs is None or not offs:
        return None
    n = len(offs)
    end = offs[-1] + _SIZE_LUT[(buffer[offs[-1]] << 8) | buffer[offs[-1] + 1]]
    # Record starts are 16-aligned relative to the run start, so the
    # fixed-width prefix fields land on element boundaries of the
    # 2/4/8-byte views below.
    mv = memoryview(buffer)[offset:end]
    rel = np.array(offs, dtype=np.int64)
    rel -= offset
    v8 = np.frombuffer(mv, np.uint8)
    v16 = np.frombuffer(mv, np.uint16)
    v32 = np.frombuffer(mv, np.uint32)
    v64u = np.frombuffer(mv, np.uint64)
    v64i = np.frombuffer(mv, np.int64)
    sides = v8[rel]
    codes = v8[rel + 1]
    cores = v16[(rel >> 1) + 1]
    seqs = v32[(rel >> 2) + 1]
    raws = v64u[(rel >> 3) + 1]
    tids = (sides.astype(np.int32) << 8) | codes
    nf = _NF_LUT[tids]
    val_off = np.empty(n + 1, dtype=np.int64)
    val_off[0] = 0
    np.cumsum(nf, out=val_off[1:])
    values = np.empty(int(val_off[-1]), dtype=np.int64)
    slots = (rel >> 3) + 2
    for tid in np.unique(tids).tolist():
        width = int(_NF_LUT[tid])
        if width == 0:
            continue
        idx = np.flatnonzero(tids == tid)
        lanes = np.arange(width)
        values[val_off[idx][:, None] + lanes] = v64i[slots[idx][:, None] + lanes]
    return DecodedBatch(n, sides, codes, cores, seqs, raws, val_off, values, end)


class MaskedBatch:
    """A masked batch decode: structure now, the rest on demand.

    The boundary walk plus the byte-wide gathers it needs for
    validation (``sides``/``codes``) and the derived ``val_off`` are
    always present; the wider gathers and the value scatter — the
    expensive parts of :func:`decode_batch` — live behind ``makers``,
    one zero-argument callable per remaining column (``core``,
    ``seq``, ``raw_ts``, ``values``) returning a numpy array of the
    column's exact wire dtype.  Makers hold views of the decode
    buffer, so callers that outlive the buffer must copy what they
    materialize (:mod:`repro.pdt.colenc` passes an owned ``bytes``).
    """

    __slots__ = ("count", "next_offset", "sides", "codes", "val_off",
                 "makers")

    def __init__(self, count, next_offset, sides, codes, val_off, makers):
        self.count = count
        self.next_offset = next_offset
        self.sides = sides
        self.codes = codes
        self.val_off = val_off
        self.makers = makers


def decode_batch_masked(
    buffer, offset: int = 0, count: typing.Optional[int] = None
) -> typing.Optional[MaskedBatch]:
    """:func:`decode_batch` with the per-column work deferred.

    A record stream interleaves every column, so the walk still reads
    the whole run — but a consumer that needs only a couple of columns
    skips the numpy gathers and the value scatter for the rest.  Same
    ``None``-on-anomaly contract as :func:`decode_batch`: the caller
    then runs the scalar path, whose full decode satisfies any mask.
    """
    if not batch_enabled() or count == 0:
        return None
    bound = len(buffer)
    offs = _walk_records(buffer, offset, count, bound)
    if offs is None or not offs:
        return None
    n = len(offs)
    end = offs[-1] + _SIZE_LUT[(buffer[offs[-1]] << 8) | buffer[offs[-1] + 1]]
    mv = memoryview(buffer)[offset:end]
    rel = np.array(offs, dtype=np.int64)
    rel -= offset
    v8 = np.frombuffer(mv, np.uint8)
    sides = v8[rel]
    codes = v8[rel + 1]
    tids = (sides.astype(np.int32) << 8) | codes
    nf = _NF_LUT[tids]
    val_off = np.empty(n + 1, dtype=np.int64)
    val_off[0] = 0
    np.cumsum(nf, out=val_off[1:])

    def make_cores() -> np.ndarray:
        return np.frombuffer(mv, np.uint16)[(rel >> 1) + 1].astype(
            CORE_DTYPE, copy=False
        )

    def make_seqs() -> np.ndarray:
        return np.frombuffer(mv, np.uint32)[(rel >> 2) + 1].astype(SEQ_DTYPE)

    def make_raws() -> np.ndarray:
        return np.frombuffer(mv, np.uint64)[(rel >> 3) + 1]

    def make_values() -> np.ndarray:
        v64i = np.frombuffer(mv, np.int64)
        slots = (rel >> 3) + 2
        values = np.empty(int(val_off[-1]), dtype=np.int64)
        for tid in np.unique(tids).tolist():
            width = int(_NF_LUT[tid])
            if width == 0:
                continue
            idx = np.flatnonzero(tids == tid)
            lanes = np.arange(width)
            values[val_off[idx][:, None] + lanes] = (
                v64i[slots[idx][:, None] + lanes]
            )
        return values

    makers = {
        "core": make_cores,
        "seq": make_seqs,
        "raw_ts": make_raws,
        "values": make_values,
    }
    return MaskedBatch(n, end, sides, codes, val_off, makers)


def encode_batch(chunk) -> bytes:
    """Encode a whole :class:`~repro.pdt.store.ColumnChunk`, bytes
    identical to concatenating :func:`encode_fields` per record.

    Falls back to the scalar per-record loop — including its exact
    ``struct.error`` behavior for out-of-range components — when the
    batch path is off or a sequence number exceeds the wire's u32.
    """
    n = len(chunk)
    if n == 0:
        return b""
    if not batch_enabled():
        return encode_chunk_scalar(chunk)
    off = np.frombuffer(chunk.val_off, OFF_DTYPE).astype(np.int64)
    nf = np.diff(off)
    sizes = (16 + 8 * nf + 15) & ~15
    starts = np.empty(n + 1, dtype=np.int64)
    starts[0] = 0
    np.cumsum(sizes, out=starts[1:])
    seqs = np.frombuffer(chunk.seq, SEQ_DTYPE)
    if int(seqs.max()) > 0xFFFF_FFFF:
        return encode_chunk_scalar(chunk)  # scalar raises struct.error
    buf = np.zeros(int(starts[-1]) >> 3, dtype=np.uint64)
    v8 = buf.view(np.uint8)
    v16 = buf.view(np.uint16)
    v32 = buf.view(np.uint32)
    v64i = buf.view(np.int64)
    s = starts[:-1]
    v8[s] = np.frombuffer(chunk.side, np.uint8)
    v8[s + 1] = np.frombuffer(chunk.code, np.uint8)
    v16[(s >> 1) + 1] = np.frombuffer(chunk.core, CORE_DTYPE)
    v32[(s >> 2) + 1] = seqs.astype(np.uint32)
    buf[(s >> 3) + 1] = np.frombuffer(chunk.raw_ts, np.uint64)
    values = np.frombuffer(chunk.values, np.int64)
    for width in np.unique(nf).tolist():
        if width == 0:
            continue
        idx = np.flatnonzero(nf == width)
        lanes = np.arange(width)
        v64i[((s[idx] >> 3) + 2)[:, None] + lanes] = (
            values[off[idx][:, None] + lanes]
        )
    return buf.tobytes()


def encode_chunk_scalar(chunk) -> bytes:
    """The per-record reference encode of a chunk (the scalar baseline
    ``encode_batch`` must match byte for byte)."""
    off = chunk.val_off
    return b"".join(
        encode_fields(
            chunk.side[i], chunk.code[i], chunk.core[i], chunk.seq[i],
            chunk.raw_ts[i], chunk.values[off[i] : off[i + 1]],
        )
        for i in range(len(chunk))
    )
