"""Binary record encoding shared by the LS buffer and the trace file.

Layout of one record (little endian)::

    offset  size  field
    0       1     side (0 = PPE, 1 = SPE)
    1       1     record code
    2       2     core id
    4       4     per-core sequence number
    8       8     raw timestamp (timebase ticks or decrementer value)
    16      8*n   field values, signed 64-bit, in EventSpec order
    ...           zero padding to a 16-byte boundary

The 16-byte padding is not cosmetic: SPE trace buffers are flushed by
DMA, and the MFC requires 16-byte-aligned multiples of 16, so the real
PDT also sizes its records accordingly.
"""

from __future__ import annotations

import struct
import typing

from repro.pdt.events import TraceRecord, spec_for_code

_PREFIX = struct.Struct("<BBHIQ")
assert _PREFIX.size == 16


def record_size(n_fields: int) -> int:
    """Encoded size of a record with ``n_fields`` fields."""
    raw = _PREFIX.size + 8 * n_fields
    return (raw + 15) & ~15


def encode_record(record: TraceRecord) -> bytes:
    """Encode one record, padded to a 16-byte boundary."""
    values = record.field_values()
    body = _PREFIX.pack(
        record.side, record.code, record.core, record.seq, record.raw_ts
    ) + struct.pack(f"<{len(values)}q", *values)
    pad = record_size(len(values)) - len(body)
    return body + b"\x00" * pad


def decode_record(buffer: bytes, offset: int) -> typing.Tuple[TraceRecord, int]:
    """Decode the record at ``offset``; returns (record, next_offset)."""
    if offset + _PREFIX.size > len(buffer):
        raise ValueError(f"truncated record prefix at offset {offset}")
    side, code, core, seq, raw_ts = _PREFIX.unpack_from(buffer, offset)
    spec = spec_for_code(side, code)
    n = len(spec.fields)
    total = record_size(n)
    if offset + total > len(buffer):
        raise ValueError(f"truncated record body at offset {offset} ({spec.kind})")
    values = struct.unpack_from(f"<{n}q", buffer, offset + _PREFIX.size)
    record = TraceRecord.from_values(side, code, core, seq, raw_ts, values)
    return record, offset + total


def decode_stream(buffer: bytes, count: int, offset: int = 0) -> typing.Tuple[
    typing.List[TraceRecord], int
]:
    """Decode ``count`` consecutive records; returns (records, next_offset)."""
    records = []
    for __ in range(count):
        record, offset = decode_record(buffer, offset)
        records.append(record)
    return records, offset
