"""PDT configuration files.

The real PDT is driven by an XML configuration naming the traced event
groups, buffer sizing, and output policy.  This module reads and
writes that file for :class:`~repro.pdt.config.TraceConfig`, so runs
are reproducible from an artifact rather than code::

    <pdt version="1">
      <groups lifecycle="true" dma="true" mailbox="false" ... />
      <buffer bytes="16384" double_buffered="true" flush_tag="31"/>
      <region bytes="4194304" wrap="false"/>
      <costs spu_record_cycles="150" ppe_record_cycles="400"/>
      <spes filter="0,2"/>   <!-- optional -->
    </pdt>
"""

from __future__ import annotations

import typing
import xml.etree.ElementTree as ET

from repro.pdt import events as ev
from repro.pdt.config import TraceConfig


class ConfigFileError(Exception):
    """The configuration file is malformed."""


_USER_GROUPS = tuple(g for g in ev.ALL_GROUPS if g != ev.GROUP_SYNC)


def config_to_xml(config: TraceConfig) -> str:
    """Serialize a TraceConfig as a PDT-style XML document."""
    root = ET.Element("pdt", version="1")
    groups = ET.SubElement(root, "groups")
    for group in _USER_GROUPS:
        groups.set(group, "true" if group in config.groups else "false")
    ET.SubElement(
        root, "buffer",
        bytes=str(config.buffer_bytes),
        double_buffered="true" if config.double_buffered else "false",
        flush_tag=str(config.flush_tag),
    )
    ET.SubElement(
        root, "region",
        bytes=str(config.trace_region_bytes),
        wrap="true" if config.wrap else "false",
    )
    ET.SubElement(
        root, "costs",
        spu_record_cycles=str(config.spu_record_cycles),
        ppe_record_cycles=str(config.ppe_record_cycles),
    )
    if config.spe_filter is not None:
        ET.SubElement(
            root, "spes", filter=",".join(str(s) for s in sorted(config.spe_filter))
        )
    return ET.tostring(root, encoding="unicode")


def config_from_xml(text: str) -> TraceConfig:
    """Parse a PDT XML configuration document."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConfigFileError(f"not valid XML: {exc}") from exc
    if root.tag != "pdt":
        raise ConfigFileError(f"root element must be <pdt>, got <{root.tag}>")

    kwargs: typing.Dict[str, typing.Any] = {}
    groups_el = root.find("groups")
    if groups_el is not None:
        enabled = set()
        for group, value in groups_el.attrib.items():
            if group not in _USER_GROUPS:
                raise ConfigFileError(f"unknown event group {group!r}")
            if _parse_bool(value, f"groups/{group}"):
                enabled.add(group)
        kwargs["groups"] = frozenset(enabled)
    buffer_el = root.find("buffer")
    if buffer_el is not None:
        kwargs["buffer_bytes"] = _parse_int(buffer_el, "bytes")
        if "double_buffered" in buffer_el.attrib:
            kwargs["double_buffered"] = _parse_bool(
                buffer_el.get("double_buffered"), "buffer/double_buffered"
            )
        if "flush_tag" in buffer_el.attrib:
            kwargs["flush_tag"] = _parse_int(buffer_el, "flush_tag")
    region_el = root.find("region")
    if region_el is not None:
        kwargs["trace_region_bytes"] = _parse_int(region_el, "bytes")
        if "wrap" in region_el.attrib:
            kwargs["wrap"] = _parse_bool(region_el.get("wrap"), "region/wrap")
    costs_el = root.find("costs")
    if costs_el is not None:
        if "spu_record_cycles" in costs_el.attrib:
            kwargs["spu_record_cycles"] = _parse_int(costs_el, "spu_record_cycles")
        if "ppe_record_cycles" in costs_el.attrib:
            kwargs["ppe_record_cycles"] = _parse_int(costs_el, "ppe_record_cycles")
    spes_el = root.find("spes")
    if spes_el is not None:
        raw = spes_el.get("filter", "")
        try:
            kwargs["spe_filter"] = frozenset(
                int(part) for part in raw.split(",") if part.strip()
            )
        except ValueError as exc:
            raise ConfigFileError(f"bad spes/filter {raw!r}") from exc
    try:
        return TraceConfig(**kwargs)
    except ValueError as exc:
        raise ConfigFileError(str(exc)) from exc


def save_config(config: TraceConfig, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(config_to_xml(config))


def load_config(path: str) -> TraceConfig:
    with open(path) as handle:
        return config_from_xml(handle.read())


def _parse_bool(value: typing.Optional[str], where: str) -> bool:
    if value == "true":
        return True
    if value == "false":
        return False
    raise ConfigFileError(f"{where} must be 'true' or 'false', got {value!r}")


def _parse_int(element: ET.Element, attribute: str) -> int:
    value = element.get(attribute)
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ConfigFileError(
            f"{element.tag}/{attribute} must be an integer, got {value!r}"
        ) from None
