"""The PDT event taxonomy: record types and their field layouts.

Every traced operation maps to one record code with a fixed tuple of
64-bit fields.  The specs below are the single source of truth shared
by the tracer (encode), the writer/reader (binary layout), and the
Trace Analyzer (interpretation).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.libspe.hooks import PpeEventKind, SpuEventKind

SIDE_PPE = 0
SIDE_SPE = 1

#: Group names, matching PDT's configurable event groups.
GROUP_LIFECYCLE = "lifecycle"
GROUP_DMA = "dma"
GROUP_MAILBOX = "mailbox"
GROUP_SIGNAL = "signal"
GROUP_USER = "user"
GROUP_SYNC = "sync"  # always recorded while tracing: correlation anchors

ALL_GROUPS = (
    GROUP_LIFECYCLE,
    GROUP_DMA,
    GROUP_MAILBOX,
    GROUP_SIGNAL,
    GROUP_USER,
    GROUP_SYNC,
)

#: Synthetic kind for clock-sync records (not a runtime hook kind).
KIND_SYNC = "sync"

#: Synthetic kind for the per-SPE event-loss summary written at trace
#: close: how many records the region policy destroyed (dropped at
#: region full / overwritten by wrap) and the raw-timestamp span of
#: the destruction, so the analyzer can mark the loss interval.
KIND_TRACE_LOSS = "trace_loss"


@dataclasses.dataclass(frozen=True)
class EventSpec:
    """Static description of one record type."""

    code: int
    side: int
    kind: str
    group: str
    fields: typing.Tuple[str, ...]


_SPU = [
    EventSpec(0x01, SIDE_SPE, SpuEventKind.SPE_ENTRY, GROUP_LIFECYCLE, ("argp", "envp")),
    EventSpec(0x02, SIDE_SPE, SpuEventKind.SPE_EXIT, GROUP_LIFECYCLE, ()),
    EventSpec(
        0x10, SIDE_SPE, SpuEventKind.MFC_GET, GROUP_DMA,
        ("tag", "size", "ls", "ea", "fence", "barrier"),
    ),
    EventSpec(
        0x11, SIDE_SPE, SpuEventKind.MFC_PUT, GROUP_DMA,
        ("tag", "size", "ls", "ea", "fence", "barrier"),
    ),
    EventSpec(
        0x12, SIDE_SPE, SpuEventKind.MFC_GETL, GROUP_DMA,
        ("tag", "size", "ls", "ea", "n_elements"),
    ),
    EventSpec(
        0x13, SIDE_SPE, SpuEventKind.MFC_PUTL, GROUP_DMA,
        ("tag", "size", "ls", "ea", "n_elements"),
    ),
    EventSpec(0x14, SIDE_SPE, SpuEventKind.ATOMIC_GETLLAR, GROUP_DMA, ("ea",)),
    EventSpec(
        0x15, SIDE_SPE, SpuEventKind.ATOMIC_PUTLLC, GROUP_DMA, ("ea", "success")
    ),
    EventSpec(0x16, SIDE_SPE, SpuEventKind.ATOMIC_PUTLLUC, GROUP_DMA, ("ea",)),
    EventSpec(0x20, SIDE_SPE, SpuEventKind.WAIT_TAG_BEGIN, GROUP_DMA, ("mask", "mode")),
    EventSpec(0x21, SIDE_SPE, SpuEventKind.WAIT_TAG_END, GROUP_DMA, ("mask", "status")),
    EventSpec(0x30, SIDE_SPE, SpuEventKind.READ_MBOX_BEGIN, GROUP_MAILBOX, ()),
    EventSpec(0x31, SIDE_SPE, SpuEventKind.READ_MBOX_END, GROUP_MAILBOX, ("value",)),
    EventSpec(
        0x32, SIDE_SPE, SpuEventKind.WRITE_MBOX_BEGIN, GROUP_MAILBOX, ("value", "intr")
    ),
    EventSpec(
        0x33, SIDE_SPE, SpuEventKind.WRITE_MBOX_END, GROUP_MAILBOX, ("value", "intr")
    ),
    EventSpec(0x38, SIDE_SPE, SpuEventKind.READ_SIGNAL_BEGIN, GROUP_SIGNAL, ("which",)),
    EventSpec(
        0x39, SIDE_SPE, SpuEventKind.READ_SIGNAL_END, GROUP_SIGNAL, ("which", "value")
    ),
    EventSpec(
        0x3A, SIDE_SPE, SpuEventKind.SIGNAL_SEND, GROUP_SIGNAL,
        ("target", "which", "bits"),
    ),
    EventSpec(0x40, SIDE_SPE, SpuEventKind.USER_MARKER, GROUP_USER, ("value",)),
    EventSpec(
        0x41, SIDE_SPE, SpuEventKind.USER_DATA, GROUP_USER,
        ("value", "d0", "d1", "d2", "d3"),
    ),
    EventSpec(0x50, SIDE_SPE, KIND_SYNC, GROUP_SYNC, ("tb_raw",)),
    EventSpec(
        0x51, SIDE_SPE, KIND_TRACE_LOSS, GROUP_SYNC,
        ("dropped", "overwritten", "wraps", "first_lost_ts", "last_lost_ts"),
    ),
]

_PPE = [
    EventSpec(0x01, SIDE_PPE, PpeEventKind.CONTEXT_CREATE, GROUP_LIFECYCLE, ("spe",)),
    EventSpec(0x02, SIDE_PPE, PpeEventKind.CONTEXT_DESTROY, GROUP_LIFECYCLE, ("spe",)),
    EventSpec(0x03, SIDE_PPE, PpeEventKind.PROGRAM_LOAD, GROUP_LIFECYCLE, ("spe",)),
    EventSpec(0x04, SIDE_PPE, PpeEventKind.CONTEXT_RUN_BEGIN, GROUP_LIFECYCLE, ("spe",)),
    EventSpec(
        0x05, SIDE_PPE, PpeEventKind.CONTEXT_RUN_END, GROUP_LIFECYCLE,
        ("spe", "stop_code"),
    ),
    EventSpec(0x10, SIDE_PPE, PpeEventKind.IN_MBOX_WRITE, GROUP_MAILBOX, ("spe", "value")),
    EventSpec(0x11, SIDE_PPE, PpeEventKind.OUT_MBOX_READ_BEGIN, GROUP_MAILBOX, ("spe",)),
    EventSpec(
        0x12, SIDE_PPE, PpeEventKind.OUT_MBOX_READ_END, GROUP_MAILBOX, ("spe", "value")
    ),
    EventSpec(
        0x13, SIDE_PPE, PpeEventKind.INTR_RECEIVED, GROUP_MAILBOX, ("spe", "value")
    ),
    EventSpec(
        0x14, SIDE_PPE, PpeEventKind.PROXY_DMA, GROUP_DMA,
        ("spe", "direction", "size", "tag"),
    ),
    EventSpec(
        0x20, SIDE_PPE, PpeEventKind.SIGNAL_WRITE, GROUP_SIGNAL,
        ("spe", "which", "bits"),
    ),
    EventSpec(0x30, SIDE_PPE, PpeEventKind.USER_MARKER, GROUP_USER, ("value",)),
]

#: (side, code) -> EventSpec
EVENT_SPECS: typing.Dict[typing.Tuple[int, int], EventSpec] = {
    (spec.side, spec.code): spec for spec in _SPU + _PPE
}

_KIND_TO_SPEC: typing.Dict[typing.Tuple[int, str], EventSpec] = {
    (spec.side, spec.kind): spec for spec in _SPU + _PPE
}


def spec_for_code(side: int, code: int) -> EventSpec:
    """Look up a record spec; raises KeyError with context if unknown."""
    try:
        return EVENT_SPECS[(side, code)]
    except KeyError:
        raise KeyError(
            f"unknown trace record: side={side} code=0x{code:02x}"
        ) from None


def code_for_kind(side: int, kind: str) -> EventSpec:
    """Spec for a runtime hook kind string."""
    try:
        return _KIND_TO_SPEC[(side, kind)]
    except KeyError:
        raise KeyError(f"no trace record defined for side={side} kind={kind!r}") from None


@dataclasses.dataclass(slots=True)
class TraceRecord:
    """One decoded trace record.

    ``raw_ts`` is in the *recording core's* clock domain: timebase
    ticks for PPE records, decrementer value for SPE records.  ``seq``
    is a per-core monotone counter that preserves program order even
    when the coarse clocks produce ties (the abstract's "maintaining
    the sequential order of events").
    """

    side: int
    code: int
    core: int  # SPE id, or 0 for the PPE
    seq: int
    raw_ts: int
    fields: typing.Dict[str, int]
    #: Ground-truth simulation time at record creation.  Debug-only:
    #: never serialized (a real trace cannot contain it), lost on file
    #: round-trip (-1), and used solely to *evaluate* clock-correlation
    #: accuracy in the F6 experiment.
    truth_time: int = -1

    @property
    def spec(self) -> EventSpec:
        return spec_for_code(self.side, self.code)

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def group(self) -> str:
        return self.spec.group

    @property
    def is_spe(self) -> bool:
        return self.side == SIDE_SPE

    def field_values(self) -> typing.Tuple[int, ...]:
        """Field values in spec order (missing fields encode as 0)."""
        return tuple(int(self.fields.get(name, 0)) for name in self.spec.fields)

    @classmethod
    def from_values(
        cls, side: int, code: int, core: int, seq: int, raw_ts: int,
        values: typing.Sequence[int],
    ) -> "TraceRecord":
        spec = spec_for_code(side, code)
        if len(values) != len(spec.fields):
            raise ValueError(
                f"record {spec.kind}: expected {len(spec.fields)} fields, "
                f"got {len(values)}"
            )
        return cls(
            side=side, code=code, core=core, seq=seq, raw_ts=raw_ts,
            fields=dict(zip(spec.fields, (int(v) for v in values))),
        )

    def __repr__(self) -> str:
        side = "spe" if self.is_spe else "ppe"
        return (
            f"TraceRecord({self.kind} {side}{self.core} seq={self.seq} "
            f"raw_ts={self.raw_ts} {self.fields})"
        )
