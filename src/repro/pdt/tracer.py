"""The PDT tracer: instrumented-runtime hooks and SPE trace buffers.

This is the operational core of the tool.  Architecture (matching the
paper's description of PDT):

* The PPE side keeps its records in host memory and charges the PPE
  for each one.
* Each traced SPE gets a trace buffer **in its local store**, claimed
  at program-load time (so big applications feel the squeeze).  The
  buffer is split into two halves: records fill one half while the
  other is (possibly) in flight to main storage via a real simulated
  DMA on a reserved tag.  With double buffering the SPU only stalls if
  it produces events faster than the flush DMA drains them; the
  single-buffered ablation waits on every flush.
* Every record costs the recording core cycles
  (``TraceConfig.spu_record_cycles`` / ``ppe_record_cycles``); flush
  DMAs consume real MFC queue slots and EIB bandwidth.  Tracing
  overhead is therefore *emergent*, not estimated.
* Sync records pairing (decrementer, timebase) readings are emitted at
  SPE entry/exit and at every buffer flush — the anchors the clock
  correlator fits.

Recorded events land in a per-stream :class:`~repro.pdt.store.ColumnStore`
(the :class:`~repro.pdt.store.EventSink` interface): the hot path never
builds a :class:`TraceRecord` object, it encodes the record bytes for
the LS buffer and appends the raw components to the columnar sink.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cell.machine import CellMachine
from repro.cell.mfc import DmaDirection
from repro.cell.spu import SpuCore
from repro.kernel import Delay, Event
from repro.pdt import events as ev
from repro.pdt.codec import decode_record, encode_fields
from repro.pdt.config import TraceConfig
from repro.pdt.events import TraceRecord, code_for_kind
from repro.pdt.store import ColumnStore, ConcatSource, EventSource
from repro.pdt.trace import Trace, TraceHeader
from repro.libspe.hooks import RuntimeHooks, SpuEventKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.libspe.image import SpeProgram
    from repro.libspe.runtime import Runtime


@dataclasses.dataclass
class SpeTraceStats:
    """Per-SPE tracing cost accounting."""

    records: int = 0
    dropped_records: int = 0
    #: Wrap mode: how many old records were overwritten by new ones.
    overwritten_records: int = 0
    #: Wrap mode: how many times the region write pointer wrapped.
    wraps: int = 0
    bytes_buffered: int = 0
    flushes: int = 0
    flush_bytes: int = 0
    #: Cycles charged to the SPU for writing records.
    record_cycles: int = 0
    #: Cycles the SPU stalled waiting for a trace-buffer half to drain.
    flush_wait_cycles: int = 0


@dataclasses.dataclass
class TracingStats:
    """Whole-run tracing cost accounting."""

    per_spe: typing.Dict[int, SpeTraceStats] = dataclasses.field(default_factory=dict)
    ppe_records: int = 0
    ppe_record_cycles: int = 0

    def spe(self, spe_id: int) -> SpeTraceStats:
        return self.per_spe.setdefault(spe_id, SpeTraceStats())

    @property
    def total_records(self) -> int:
        return self.ppe_records + sum(s.records for s in self.per_spe.values())

    @property
    def total_flushes(self) -> int:
        return sum(s.flushes for s in self.per_spe.values())

    @property
    def total_flush_bytes(self) -> int:
        return sum(s.flush_bytes for s in self.per_spe.values())


class _SpuTraceContext:
    """Tracing state for one SPE: the LS buffer and its flush machinery."""

    def __init__(self, machine: CellMachine, spu: SpuCore, config: TraceConfig,
                 stats: SpeTraceStats):
        self.machine = machine
        self.spu = spu
        self.config = config
        self.stats = stats
        self.ls_base = spu.ls.allocate(config.buffer_bytes, align=128)
        self.ls_generation = spu.ls.generation
        self.half_size = config.buffer_bytes // 2
        self.region_ea = machine.memory.allocate(config.trace_region_bytes, align=128)
        self.write_ea = self.region_ea
        self.current_half = 0
        self.fill = 0
        self._pending_flush: typing.List[typing.Optional[Event]] = [None, None]
        self.seq = 0
        self.sink = ColumnStore()
        self._trim_from = 0  # index of the oldest retained record
        #: Wrap mode: physical placement of each sink record — which
        #: lap of the region it landed in and its byte offset there.
        #: The write pointer wraps *early* whenever a record would
        #: straddle the region end, so each lap's usable capacity is
        #: whatever the pointer reached before wrapping, not the full
        #: ``trace_region_bytes``; trimming must compare against the
        #: actual offsets, or retained_records() reports records whose
        #: bytes are gone.
        self._lap = 0
        self._rec_lap: typing.List[int] = []
        self._rec_off: typing.List[int] = []
        #: Index of the first sink record whose bytes are still in the
        #: LS buffer (the wrap path drains the buffer before rewinding
        #: the pointer, so flushed placements are final).
        self._unflushed_from = 0
        #: Raw timestamps bounding the destroyed records, in recording
        #: order (decrementers count down, so "first" is the largest).
        self._first_lost_ts: typing.Optional[int] = None
        self._last_lost_ts: typing.Optional[int] = None

    # ------------------------------------------------------------------
    def record(self, kind: str, fields: typing.Dict[str, int]) -> typing.Generator:
        """Write one record (runs on the SPU; charges its cost)."""
        yield Delay(self.config.spu_record_cycles)
        self.stats.record_cycles += self.config.spu_record_cycles
        yield from self._store(kind, fields)

    def sync(self) -> typing.Generator:
        """Write a clock-sync record (decrementer paired with timebase)."""
        yield Delay(self.config.spu_record_cycles)
        self.stats.record_cycles += self.config.spu_record_cycles
        tb_raw = self.machine.ppe.read_timebase()
        yield from self._store(ev.KIND_SYNC, {"tb_raw": tb_raw})

    def _store(self, kind: str, fields: typing.Dict[str, int]) -> typing.Generator:
        spec = code_for_kind(ev.SIDE_SPE, kind)
        values = tuple(int(fields.get(name, 0)) for name in spec.fields)
        seq = self.seq
        raw_ts = self.spu.read_decrementer()
        truth = self.spu.sim.now
        self.seq += 1
        data = encode_fields(ev.SIDE_SPE, spec.code, self.spu.spe_id, seq, raw_ts, values)
        if self.fill + len(data) > self.half_size:
            yield from self._flush_current_half()
        region_end = self.region_ea + self.config.trace_region_bytes
        if self.write_ea + self.fill + len(data) > region_end:
            if not self.config.wrap:
                # Region exhausted: stop recording (drop new records).
                self.stats.dropped_records += 1
                self._note_lost(raw_ts)
                return
            # Wrap mode: drain the LS buffer to the old pointer (the
            # last flush of this lap — it cannot overflow, because
            # every prior append verified write_ea + fill fits the
            # region), then return the pointer to the region start and
            # let the new lap overwrite the oldest records.  Draining
            # first keeps every record's placement final and makes the
            # wrap progress even when the LS buffer holds more bytes
            # than the whole region.
            yield from self._flush_current_half()
            self.write_ea = self.region_ea
            self.stats.wraps += 1
            self._lap += 1
            if len(data) > self.config.trace_region_bytes:
                # Degenerate config: one record larger than the region.
                self.stats.dropped_records += 1
                self._note_lost(raw_ts)
                return
        place = (self.write_ea - self.region_ea) + self.fill
        self.spu.ls.write(
            self.ls_base + self.current_half * self.half_size + self.fill, data
        )
        self.fill += len(data)
        self.sink.append(
            ev.SIDE_SPE, spec.code, self.spu.spe_id, seq, raw_ts, values, truth
        )
        self.stats.records += 1
        self.stats.bytes_buffered += len(data)
        if self.config.wrap:
            self._rec_lap.append(self._lap)
            self._rec_off.append(place)
            self._trim_overwritten(place + len(data))

    def _note_lost(self, raw_ts: int) -> None:
        if self._first_lost_ts is None:
            self._first_lost_ts = raw_ts
        self._last_lost_ts = raw_ts

    def _trim_overwritten(self, high: int) -> None:
        """Wrap mode: forget records whose bytes were overwritten.

        ``high`` is the exclusive end offset of the newest record in
        the current lap.  A previous-lap record survives only while it
        lies entirely at or beyond ``high`` — the pointer has not
        reached its bytes this lap.  Anything two or more laps old is
        treated as lost even if a short lap never reached its offset:
        the bytes around it have been rewritten, so it can no longer be
        framed in the region.
        """
        lap, off = self._rec_lap, self._rec_off
        i = self._trim_from
        n = len(self.sink)
        while i < n:
            age = self._lap - lap[i]
            if age == 0:
                break
            if age == 1 and off[i] >= high:
                break
            self.stats.overwritten_records += 1
            self._note_lost(self.sink.raw_ts_at(i))
            i += 1
        self._trim_from = i

    def retained_records(self) -> typing.List[TraceRecord]:
        """Records still present in the region (all of them unless
        wrap mode overwrote the oldest), materialized as objects."""
        return [
            self.sink.record_at(i)
            for i in range(self._trim_from, len(self.sink))
        ]

    def emit_loss_record(self) -> None:
        """Append the per-SPE event-loss summary to the record stream.

        Written once, at trace close, by the PPE-side trace daemon —
        it costs the SPU nothing and never passes through the LS
        buffer or the memory region, so it is pure stream metadata:
        how many records the region policy destroyed and the raw
        decrementer span of the destruction, which the analyzer maps
        to a wall-clock loss interval.  No-op when nothing was lost.
        """
        st = self.stats
        if not (st.dropped_records or st.overwritten_records):
            return
        spec = code_for_kind(ev.SIDE_SPE, ev.KIND_TRACE_LOSS)
        seq = self.seq
        self.seq += 1
        first = self._first_lost_ts if self._first_lost_ts is not None else -1
        last = self._last_lost_ts if self._last_lost_ts is not None else -1
        values = (
            st.dropped_records, st.overwritten_records, st.wraps, first, last,
        )
        self.sink.append(
            ev.SIDE_SPE, spec.code, self.spu.spe_id, seq,
            self.spu.read_decrementer(), values, self.spu.sim.now,
        )
        if self.config.wrap:
            # Keep the placement arrays parallel to the sink; the
            # summary has no region bytes, so give it the current
            # write position (it is the newest record and never trims).
            self._rec_lap.append(self._lap)
            self._rec_off.append(self.write_ea - self.region_ea + self.fill)

    def rebind(self) -> None:
        """The SPE's local store was re-provisioned (virtual-context
        switch): claim a fresh trace buffer there.  The record stream,
        sequence numbers, and main-memory region carry on — one stream
        per physical SPE, like the hardware's view.
        """
        if self.fill:
            raise RuntimeError(
                "rebind with unflushed trace bytes: the previous program "
                "did not exit cleanly"
            )
        self.ls_base = self.spu.ls.allocate(self.config.buffer_bytes, align=128)
        self.ls_generation = self.spu.ls.generation
        self._pending_flush = [None, None]
        self.current_half = 0
        self._unflushed_from = len(self.sink)

    # ------------------------------------------------------------------
    def _flush_current_half(self) -> typing.Generator:
        """DMA the filled half out and switch to the other half."""
        if self.fill == 0:
            return
        half = self.current_half
        command = self.spu.mfc.make_command(
            DmaDirection.PUT,
            self.ls_base + half * self.half_size,
            self.write_ea,
            self.fill,
            tag=self.config.flush_tag,
            issuer=f"pdt-trace-spe{self.spu.spe_id}",
        )
        completion = yield from self.spu.mfc.issue(command)
        self._pending_flush[half] = completion
        self.stats.flushes += 1
        self.stats.flush_bytes += self.fill
        self.write_ea += self.fill
        self._unflushed_from = len(self.sink)
        self.current_half ^= 1
        self.fill = 0
        if self.config.double_buffered:
            # Only stall if the half we are switching *into* is still
            # in flight from its previous flush.
            blocker = self._pending_flush[self.current_half]
        else:
            blocker = completion
        if blocker is not None and not blocker.triggered:
            stalled_at = self.spu.sim.now
            yield blocker
            self.stats.flush_wait_cycles += self.spu.sim.now - stalled_at
        self._pending_flush[self.current_half] = None

    def final_flush(self) -> typing.Generator:
        """Flush the tail and wait for it (PDT's SPE exit handler)."""
        yield from self._flush_current_half()
        for half in (0, 1):
            pending = self._pending_flush[half]
            if pending is not None and not pending.triggered:
                stalled_at = self.spu.sim.now
                yield pending
                self.stats.flush_wait_cycles += self.spu.sim.now - stalled_at
            self._pending_flush[half] = None

    # ------------------------------------------------------------------
    def region_blob(self) -> bytes:
        """The raw bytes that physically arrived in main storage."""
        if self.config.wrap:
            raise ValueError(
                "wrap-mode regions interleave generations and cannot be "
                "decoded linearly; use to_trace() / retained_records()"
            )
        return self.machine.memory.read(
            self.region_ea, self.write_ea - self.region_ea
        )

    def read_back_records(self) -> typing.List[TraceRecord]:
        """Decode the records from the main-memory trace region.

        This is what a trace-file writer daemon on the PPE would see:
        only bytes that actually arrived by DMA.  Used by tests to
        prove the full LS -> DMA -> main-storage path carries the
        trace intact.
        """
        blob = self.region_blob()
        records = []
        offset = 0
        while offset < len(blob):
            record, offset = decode_record(blob, offset)
            records.append(record)
        return records


class PdtHooks(RuntimeHooks):
    """The instrumented-runtime implementation of the tracing seam."""

    def __init__(self, config: typing.Optional[TraceConfig] = None):
        self.config = config or TraceConfig()
        self.stats = TracingStats()
        self.machine: typing.Optional[CellMachine] = None
        self._spu_contexts: typing.Dict[int, _SpuTraceContext] = {}
        self._ppe_store = ColumnStore()
        self._ppe_seq = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # RuntimeHooks implementation
    # ------------------------------------------------------------------
    def attach(self, runtime: "Runtime") -> None:
        self.machine = runtime.machine

    def spe_program_loaded(self, spu: SpuCore, program: "SpeProgram") -> None:
        if not self.config.traces_spe(spu.spe_id):
            return
        context = self._spu_contexts.get(spu.spe_id)
        if context is None:
            self._spu_contexts[spu.spe_id] = _SpuTraceContext(
                self.machine, spu, self.config, self.stats.spe(spu.spe_id)
            )
        elif context.ls_generation != spu.ls.generation:
            context.rebind()

    def spu_event(
        self, spu: SpuCore, kind: str, fields: typing.Dict[str, int]
    ) -> typing.Generator:
        spec = code_for_kind(ev.SIDE_SPE, kind)
        if not self.config.enabled(spec.group):
            return
        context = self._spu_contexts.get(spu.spe_id)
        if context is None:
            # Program bypassed the loader (possible in low-level tests):
            # silently untraced, like running an uninstrumented binary.
            return
        if kind == SpuEventKind.SPE_ENTRY:
            yield from context.sync()
        yield from context.record(kind, fields)
        if kind == SpuEventKind.SPE_EXIT:
            yield from context.sync()
            yield from context.final_flush()

    def ppe_event(self, kind: str, fields: typing.Dict[str, int]) -> typing.Generator:
        spec = code_for_kind(ev.SIDE_PPE, kind)
        if not self.config.enabled(spec.group):
            return
        yield Delay(self.config.ppe_record_cycles)
        self.stats.ppe_record_cycles += self.config.ppe_record_cycles
        # PDT tags PPE records with the producing software thread; we
        # use the simulation process id of the PPE thread making the
        # runtime call (0 if unattributable).
        process = self.machine.sim.current_process
        thread_id = (process.pid & 0xFFFF) if process is not None else 0
        values = tuple(int(fields.get(name, 0)) for name in spec.fields)
        self._ppe_store.append(
            ev.SIDE_PPE, spec.code, thread_id, self._ppe_seq,
            self.machine.ppe.read_timebase(), values, self.machine.sim.now,
        )
        self._ppe_seq += 1
        self.stats.ppe_records += 1

    def finalize(self) -> None:
        """Close the trace: append each SPE's loss summary (once)."""
        if self._finalized:
            return
        for spe_id in sorted(self._spu_contexts):
            self._spu_contexts[spe_id].emit_loss_record()
        self._finalized = True

    # ------------------------------------------------------------------
    # trace assembly
    # ------------------------------------------------------------------
    def _header(self) -> TraceHeader:
        return TraceHeader(
            n_spes=self.machine.config.n_spes,
            timebase_divider=self.machine.config.timebase_divider,
            spu_clock_hz=self.machine.config.spu_clock_hz,
            groups_bitmap=self.config.groups_bitmap(),
            buffer_bytes=self.config.buffer_bytes,
        )

    def event_source(self) -> EventSource:
        """The recorded streams as one :class:`EventSource`, zero-copy.

        Serves the PPE stream then each SPE's retained records straight
        from the recording sinks — the streaming path from tracer to
        file writer or analyzer.
        """
        parts = [(self._ppe_store, 0)]
        for spe_id in sorted(self._spu_contexts):
            context = self._spu_contexts[spe_id]
            parts.append((context.sink, context._trim_from))
        return ConcatSource(self._header(), parts)

    def to_trace(self) -> Trace:
        """Assemble the Trace object (what the trace file contains)."""
        trace = Trace(header=self._header())
        trace.store.extend_from(self._ppe_store)
        for spe_id in sorted(self._spu_contexts):
            context = self._spu_contexts[spe_id]
            trace.store.extend_from(context.sink, start=context._trim_from)
        trace.validate()
        return trace

    def read_back_trace(self) -> Trace:
        """Like :meth:`to_trace`, but SPE streams are decoded from the
        bytes that physically arrived in main storage via DMA."""
        trace = Trace(header=self._header())
        trace.store.extend_from(self._ppe_store)
        for spe_id, context in sorted(self._spu_contexts.items()):
            trace.store.append_encoded(context.region_blob())
        trace.validate()
        return trace

    def spu_context(self, spe_id: int) -> _SpuTraceContext:
        """Expose one SPE's trace context (tests, buffer experiments)."""
        return self._spu_contexts[spe_id]
