"""Trace-file reader — the Trace Analyzer's input stage."""

from __future__ import annotations

import io
import struct
import typing

from repro.pdt.codec import decode_stream
from repro.pdt.trace import Trace, TraceHeader
from repro.pdt.writer import _HEADER, _STREAM, MAGIC


class TraceFormatError(Exception):
    """The file is not a valid PDT trace."""


def read_trace(path_or_file: typing.Union[str, typing.BinaryIO, bytes]) -> Trace:
    """Parse a trace file (path, binary file object, or raw bytes)."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "rb") as handle:
            return read_trace(handle.read())
    if isinstance(path_or_file, (bytes, bytearray)):
        blob = bytes(path_or_file)
    else:
        blob = path_or_file.read()

    if len(blob) < _HEADER.size:
        raise TraceFormatError(f"file too short for header: {len(blob)} bytes")
    (
        magic,
        version,
        n_spes,
        timebase_divider,
        spu_clock_hz,
        groups_bitmap,
        buffer_bytes,
        n_ppe,
        n_streams,
    ) = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != 1:
        raise TraceFormatError(f"unsupported trace version {version}")

    offset = _HEADER.size
    streams: typing.List[typing.Tuple[int, int]] = []
    for __ in range(n_streams):
        if offset + _STREAM.size > len(blob):
            raise TraceFormatError("truncated stream directory")
        spe_id, count = _STREAM.unpack_from(blob, offset)
        streams.append((spe_id, count))
        offset += _STREAM.size

    header = TraceHeader(
        n_spes=n_spes,
        timebase_divider=timebase_divider,
        spu_clock_hz=spu_clock_hz,
        groups_bitmap=groups_bitmap,
        buffer_bytes=buffer_bytes,
        version=version,
    )
    trace = Trace(header=header)
    try:
        ppe_records, offset = decode_stream(blob, n_ppe, offset)
        for record in ppe_records:
            trace.add(record)
        for spe_id, count in streams:
            records, offset = decode_stream(blob, count, offset)
            for record in records:
                if record.core != spe_id:
                    raise TraceFormatError(
                        f"stream for SPE {spe_id} contains a record from "
                        f"core {record.core}"
                    )
                trace.add(record)
    except (ValueError, KeyError) as exc:
        raise TraceFormatError(f"corrupt trace payload: {exc}") from exc
    trace.validate()
    return trace
